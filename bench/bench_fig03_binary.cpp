/**
 * @file
 * Figure 3: speedup over FR-FCFS from Binary criticality prediction,
 * sweeping the CBP table size (64/256/1024/unlimited) and comparing
 * CLPT-Binary, for both arbitration arrangements (Crit-CASRAS on top,
 * CASRAS-Crit below). Paper reference: 6.5% average for a 64-entry
 * table under either arrangement, 7.4% for the unlimited table,
 * CLPT-Binary flat.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

namespace
{

void
sweep(SchedAlgo algo, std::uint64_t q)
{
    std::printf("## %s\n", toString(algo));
    printHeader({"CLPT-Bin", "CBP-64", "CBP-256", "CBP-1024",
                 "CBP-unl"});
    const std::vector<std::uint32_t> sizes = {64, 256, 1024, 0};

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        std::vector<double> row;
        row.push_back(speedup(
            base, runParallel(withPredictor(parallelBase(),
                                            CritPredictor::ClptBinary,
                                            1024, algo),
                              app, q)));
        for (const std::uint32_t size : sizes) {
            row.push_back(speedup(
                base,
                runParallel(withPredictor(parallelBase(),
                                          CritPredictor::CbpBinary,
                                          size, algo),
                            app, q)));
        }
        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
}

} // namespace

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 3: Binary criticality, CBP size sweep "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    sweep(SchedAlgo::CritCasRas, q);
    sweep(SchedAlgo::CasRasCrit, q);
    std::printf("# paper: 64-entry Binary ~1.065 avg under both "
                "arrangements; unlimited ~1.074; CLPT-Binary ~1.0\n");
    return 0;
}

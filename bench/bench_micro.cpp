/**
 * @file
 * Google-benchmark micro-benchmarks backing the paper's
 * implementability arguments (Sections 3.2 and 5.8.1): the per-cycle
 * cost of each scheduler's pick() on realistic candidate sets (the
 * "lean controller" claim — criticality adds a comparator widening,
 * not a pipeline), plus CBP lookup/update and DRAM/system tick rates.
 */

#include <benchmark/benchmark.h>

#include "crit/cbp.hh"
#include "sched/ahb.hh"
#include "sched/crit_frfcfs.hh"
#include "sched/frfcfs.hh"
#include "sched/morse.hh"
#include "sched/parbs.hh"
#include "sched/tcm.hh"
#include "sim/random.hh"
#include "system/system.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

std::vector<SchedCandidate>
makeCandidates(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<SchedCandidate> cands(n);
    for (std::size_t i = 0; i < n; ++i) {
        SchedCandidate &c = cands[i];
        const std::uint64_t draw = rng.next();
        c.cmd = static_cast<DramCmd>(draw % 4);
        c.rowHit = c.cmd == DramCmd::Read || c.cmd == DramCmd::Write;
        c.isWrite = c.cmd == DramCmd::Write;
        c.coord.rank = draw % 4;
        c.coord.bank = (draw >> 8) % 8;
        c.coord.row = (draw >> 16) % 4096;
        c.core = (draw >> 3) % 8;
        c.crit = (draw % 5 == 0) ? (draw % 4000) : 0;
        c.arrival = 1000 + i;
        c.seq = i;
        c.queueIndex = static_cast<std::uint32_t>(i);
    }
    return cands;
}

template <typename Sched>
void
pickLoop(benchmark::State &state, Sched &sched)
{
    const auto cands =
        makeCandidates(static_cast<std::size_t>(state.range(0)), 42);
    DramCycle now = 10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched.pick(0, cands, now));
        ++now;
    }
}

void
BM_PickFrFcfs(benchmark::State &state)
{
    FrFcfsScheduler sched;
    pickLoop(state, sched);
}

void
BM_PickCasRasCrit(benchmark::State &state)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst);
    pickLoop(state, sched);
}

void
BM_PickCritCasRas(benchmark::State &state)
{
    CritFrFcfsScheduler sched(CritOrder::CritFirst);
    pickLoop(state, sched);
}

void
BM_PickAhb(benchmark::State &state)
{
    AhbScheduler sched;
    pickLoop(state, sched);
}

void
BM_PickTcm(benchmark::State &state)
{
    SchedConfig cfg;
    TcmScheduler sched(8, cfg, false, 7);
    pickLoop(state, sched);
}

void
BM_PickParBs(benchmark::State &state)
{
    ParBsScheduler sched(4, 8, 8, 5);
    pickLoop(state, sched);
}

void
BM_PickMorse(benchmark::State &state)
{
    MorseScheduler sched(4, 8,
                         static_cast<std::uint32_t>(state.range(0)),
                         false, 7);
    pickLoop(state, sched);
}

void
BM_CbpPredict(benchmark::State &state)
{
    CommitBlockPredictor cbp(CritPredictor::CbpMaxStall, 64, 0);
    for (std::uint64_t pc = 0; pc < 4096; pc += 4)
        cbp.update(0x400000 + pc, pc % 9000);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cbp.predict(pc));
        pc += 4;
    }
}

void
BM_CbpUpdate(benchmark::State &state)
{
    CommitBlockPredictor cbp(CritPredictor::CbpTotalStall, 64, 0);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        cbp.update(pc, 137);
        pc += 4;
    }
}

void
BM_SystemTick(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = SchedAlgo::CasRasCrit;
    cfg.crit.predictor = CritPredictor::CbpMaxStall;
    System sys(cfg, appParams("mg"));
    sys.prewarmCaches();
    std::uint64_t quota = 1000;
    for (auto _ : state) {
        state.PauseTiming();
        quota += 200;
        state.ResumeTiming();
        sys.run(quota, false, 100000);
    }
}

} // namespace

BENCHMARK(BM_PickFrFcfs)->Arg(8)->Arg(32);
BENCHMARK(BM_PickCasRasCrit)->Arg(8)->Arg(32);
BENCHMARK(BM_PickCritCasRas)->Arg(8)->Arg(32);
BENCHMARK(BM_PickAhb)->Arg(8)->Arg(32);
BENCHMARK(BM_PickTcm)->Arg(8)->Arg(32);
BENCHMARK(BM_PickParBs)->Arg(8)->Arg(32);
BENCHMARK(BM_PickMorse)->Arg(6)->Arg(24);
BENCHMARK(BM_CbpPredict);
BENCHMARK(BM_CbpUpdate);
BENCHMARK(BM_SystemTick)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK_MAIN();

/**
 * @file
 * Google-benchmark micro-benchmarks backing the paper's
 * implementability arguments (Sections 3.2 and 5.8.1): the per-cycle
 * cost of each scheduler's pick() on realistic candidate sets (the
 * "lean controller" claim — criticality adds a comparator widening,
 * not a pipeline), plus CBP lookup/update and DRAM/system tick rates.
 */

#include <benchmark/benchmark.h>

#include "crit/cbp.hh"
#include "dram/dram.hh"
#include "sched/ahb.hh"
#include "sched/crit_frfcfs.hh"
#include "sched/frfcfs.hh"
#include "sched/morse.hh"
#include "sched/parbs.hh"
#include "sched/registry.hh"
#include "sched/tcm.hh"
#include "sim/random.hh"
#include "system/system.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

std::vector<SchedCandidate>
makeCandidates(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<SchedCandidate> cands(n);
    for (std::size_t i = 0; i < n; ++i) {
        SchedCandidate &c = cands[i];
        const std::uint64_t draw = rng.next();
        c.cmd = static_cast<DramCmd>(draw % 4);
        c.rowHit = c.cmd == DramCmd::Read || c.cmd == DramCmd::Write;
        c.isWrite = c.cmd == DramCmd::Write;
        c.coord.rank = draw % 4;
        c.coord.bank = (draw >> 8) % 8;
        c.coord.row = (draw >> 16) % 4096;
        c.core = (draw >> 3) % 8;
        c.crit = (draw % 5 == 0) ? (draw % 4000) : 0;
        c.arrival = 1000 + i;
        c.seq = i;
        c.queueIndex = static_cast<std::uint32_t>(i);
    }
    return cands;
}

template <typename Sched>
void
pickLoop(benchmark::State &state, Sched &sched)
{
    const auto cands =
        makeCandidates(static_cast<std::size_t>(state.range(0)), 42);
    DramCycle now = 10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched.pick(0, cands, now));
        ++now;
    }
}

void
BM_PickFrFcfs(benchmark::State &state)
{
    FrFcfsScheduler sched;
    pickLoop(state, sched);
}

void
BM_PickCasRasCrit(benchmark::State &state)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst);
    pickLoop(state, sched);
}

void
BM_PickCritCasRas(benchmark::State &state)
{
    CritFrFcfsScheduler sched(CritOrder::CritFirst);
    pickLoop(state, sched);
}

void
BM_PickAhb(benchmark::State &state)
{
    AhbScheduler sched;
    pickLoop(state, sched);
}

void
BM_PickTcm(benchmark::State &state)
{
    SchedConfig cfg;
    TcmScheduler sched(8, cfg, false, 7);
    pickLoop(state, sched);
}

void
BM_PickParBs(benchmark::State &state)
{
    ParBsScheduler sched(4, 8, 8, 5);
    pickLoop(state, sched);
}

void
BM_PickMorse(benchmark::State &state)
{
    MorseScheduler sched(4, 8,
                         static_cast<std::uint32_t>(state.range(0)),
                         false, 7);
    pickLoop(state, sched);
}

void
BM_CbpPredict(benchmark::State &state)
{
    CommitBlockPredictor cbp(CritPredictor::CbpMaxStall, 64, 0);
    for (std::uint64_t pc = 0; pc < 4096; pc += 4)
        cbp.update(0x400000 + pc, pc % 9000);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cbp.predict(pc));
        pc += 4;
    }
}

void
BM_CbpUpdate(benchmark::State &state)
{
    CommitBlockPredictor cbp(CritPredictor::CbpTotalStall, 64, 0);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        cbp.update(pc, 137);
        pc += 4;
    }
}

void
BM_CmacLookup(benchmark::State &state)
{
    Cmac cmac;
    Cmac::ActiveTiles tiles;
    Rng rng(3);
    float features[8];
    // Pre-train so value() reads non-trivial weights.
    for (int i = 0; i < 4096; ++i) {
        for (int f = 0; f < 8; ++f)
            features[f] = static_cast<float>(rng.next() % 64);
        cmac.tiles(features, 8, tiles);
        cmac.update(tiles, 0.01f);
    }
    for (auto _ : state) {
        for (int f = 0; f < 8; ++f)
            features[f] = static_cast<float>(rng.next() % 64);
        cmac.tiles(features, 8, tiles);
        benchmark::DoNotOptimize(cmac.value(tiles));
    }
}

void
BM_BankTimingUpdate(benchmark::State &state)
{
    // The per-command bookkeeping plus the ready/min scan the channel
    // runs every tick, on the SoA layout the channel actually uses.
    const std::size_t nBanks =
        static_cast<std::size_t>(state.range(0));
    BankTimingSoA banks(nBanks);
    Rng rng(11);
    DramCycle now = 100;
    for (auto _ : state) {
        const std::size_t b = rng.next() % nBanks;
        // One command's worth of state transitions.
        if (banks.open[b]) {
            banks.readyPre[b] = now + 24;
            banks.readyRead[b] = now + 5;
            banks.readyWrite[b] = now + 5;
        } else {
            banks.open[b] = 1;
            banks.row[b] = rng.next() % 16384;
            banks.readyAct[b] = now + 26;
        }
        // The nextEventCycle-style min scan over all banks.
        DramCycle earliest = ~DramCycle{0};
        for (std::size_t i = 0; i < banks.size(); ++i) {
            const DramCycle ready = banks.open[i]
                                        ? banks.readyRead[i]
                                        : banks.readyAct[i];
            earliest = ready < earliest ? ready : earliest;
        }
        benchmark::DoNotOptimize(earliest);
        ++now;
    }
}

/** Keep one channel ~16 transactions deep and measure tick(). */
void
BM_DramChannelTick(benchmark::State &state)
{
    stats::Group root;
    SystemConfig sysCfg = SystemConfig::parallelDefault();
    sysCfg.dram.channels = 1;
    validateOrFatal(sysCfg);
    const auto sched = makeScheduler(sysCfg);
    DramSystem dram(sysCfg.dram, *sched, root);
    Rng rng(7);
    DramCycle now = 0;
    for (auto _ : state) {
        while (dram.channel(0).readQueueSize() +
                   dram.channel(0).writeQueueSize() <
               16) {
            MemRequest req;
            req.addr = (rng.next() % (1u << 26)) & ~Addr{63};
            req.type = rng.next() % 4 == 0 ? ReqType::Write
                                           : ReqType::Read;
            req.core = static_cast<CoreId>(rng.next() % 8);
            dram.enqueue(std::move(req));
        }
        dram.tick(++now);
    }
}

/**
 * The idle-probe path fast-forwarding leans on: nextEventCycle() on a
 * loaded channel that has reached a steady mid-burst state.
 */
void
BM_DramReadyScan(benchmark::State &state)
{
    stats::Group root;
    SystemConfig sysCfg = SystemConfig::parallelDefault();
    sysCfg.dram.channels = 1;
    validateOrFatal(sysCfg);
    const auto sched = makeScheduler(sysCfg);
    DramSystem dram(sysCfg.dram, *sched, root);
    Rng rng(13);
    DramCycle now = 0;
    for (int i = 0; i < 400; ++i) {
        if (i % 3 == 0) {
            MemRequest req;
            req.addr = (rng.next() % (1u << 26)) & ~Addr{63};
            req.type = rng.next() % 4 == 0 ? ReqType::Write
                                           : ReqType::Read;
            req.core = static_cast<CoreId>(rng.next() % 8);
            dram.enqueue(std::move(req));
        }
        dram.tick(++now);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(dram.nextEventCycle(now));
}

/**
 * A pure pointer-chase application: every load is a far miss whose
 * address depends on the previous load, so the pipeline fully drains
 * between misses and the machine spends most cycles provably idle —
 * the long-idle-gap shape where event-driven cycle skipping shines.
 */
AppParams
chaseParams()
{
    AppParams p = appParams("mcf");
    p.name = "chase";
    p.loadFrac = 0.40;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.fpFrac = 0.0;
    p.mispredictRate = 0.0;
    p.localFrac = 0.0;
    p.seqFrac = 0.0;
    p.randomFrac = 0.0;
    p.chaseFrac = 1.0;
    p.sharedFrac = 0.0;
    p.fanoutLoadFrac = 0.0;
    p.privateBytes = 64ull << 20;
    p.rowLocality = 0.0;
    // A short loop keeps the chase-load count under the generator's
    // one-chain threshold: a single serialized pointer chain, MLP 1.
    p.loopLength = 64;
    return p;
}

void
runSystem(benchmark::State &state, bool fastForward)
{
    std::uint64_t totalCycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = SystemConfig::parallelDefault();
        cfg.sched.algo = SchedAlgo::FrFcfs;
        cfg.fastForward = fastForward;
        // One core: the misses serialize and the whole machine goes
        // quiescent for most of every miss's latency.
        cfg.numCores = 1;
        System sys(cfg, chaseParams());
        sys.prewarmCaches();
        state.ResumeTiming();
        totalCycles += sys.run(2000, true, 50'000'000);
    }
    state.counters["cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(totalCycles),
        benchmark::Counter::kIsRate);
}

/** End-to-end System::run() with event-driven cycle skipping on. */
void
BM_SystemRunSkip(benchmark::State &state)
{
    runSystem(state, true);
}

/** The same workload with the plain tick-every-cycle loop. */
void
BM_SystemRunNoSkip(benchmark::State &state)
{
    runSystem(state, false);
}

void
BM_SystemTick(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = SchedAlgo::CasRasCrit;
    cfg.crit.predictor = CritPredictor::CbpMaxStall;
    System sys(cfg, appParams("mg"));
    sys.prewarmCaches();
    std::uint64_t quota = 1000;
    for (auto _ : state) {
        state.PauseTiming();
        quota += 200;
        state.ResumeTiming();
        sys.run(quota, false, 100000);
    }
}

} // namespace

BENCHMARK(BM_PickFrFcfs)->Arg(8)->Arg(32);
BENCHMARK(BM_PickCasRasCrit)->Arg(8)->Arg(32);
BENCHMARK(BM_PickCritCasRas)->Arg(8)->Arg(32);
BENCHMARK(BM_PickAhb)->Arg(8)->Arg(32);
BENCHMARK(BM_PickTcm)->Arg(8)->Arg(32);
BENCHMARK(BM_PickParBs)->Arg(8)->Arg(32);
BENCHMARK(BM_PickMorse)->Arg(6)->Arg(24);
BENCHMARK(BM_CbpPredict);
BENCHMARK(BM_CbpUpdate);
BENCHMARK(BM_CmacLookup);
BENCHMARK(BM_BankTimingUpdate)->Arg(16)->Arg(64);
BENCHMARK(BM_DramChannelTick);
BENCHMARK(BM_DramReadyScan);
BENCHMARK(BM_SystemRunSkip)->Unit(benchmark::kMillisecond)
    ->Iterations(3)->Repetitions(3)->ReportAggregatesOnly(true);
BENCHMARK(BM_SystemRunNoSkip)->Unit(benchmark::kMillisecond)
    ->Iterations(3)->Repetitions(3)->ReportAggregatesOnly(true);
BENCHMARK(BM_SystemTick)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK_MAIN();

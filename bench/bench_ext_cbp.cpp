/**
 * @file
 * Extension experiment: the CBP counter options Section 5.3 mentions
 * but does not explore — saturating counters narrower than the
 * worst-case width of Table 5, and probabilistic accumulation (Riley
 * & Zilles [21]) for the accumulating annotations. The question: how
 * much performance does shaving counter bits actually cost, i.e. was
 * the paper right that sizing for the observed maximum is not
 * essential?
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

namespace
{

double
avgSpeedup(CritPredictor pred, std::uint32_t width,
           std::uint32_t probShift, std::uint64_t q)
{
    double sum = 0.0;
    int count = 0;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        SystemConfig cfg = withPredictor(parallelBase(), pred, 64);
        cfg.crit.counterWidth = width;
        cfg.crit.probShift = probShift;
        sum += speedup(base, runParallel(cfg, app, q));
        ++count;
    }
    return sum / count;
}

} // namespace

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota(16000);
    std::printf("# Extension: saturating / probabilistic CBP counters "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));

    std::printf("%-16s %10s %10s %10s %10s\n", "annotation", "full",
                "8-bit", "6-bit", "4-bit");
    for (const CritPredictor pred :
         {CritPredictor::CbpMaxStall, CritPredictor::CbpTotalStall,
          CritPredictor::CbpBlockCount}) {
        std::printf("%-16s %10.4f %10.4f %10.4f %10.4f\n",
                    toString(pred), avgSpeedup(pred, 0, 0, q),
                    avgSpeedup(pred, 8, 0, q),
                    avgSpeedup(pred, 6, 0, q),
                    avgSpeedup(pred, 4, 0, q));
    }

    std::printf("\n%-16s %10s %10s %10s\n", "annotation", "exact",
                "prob 2^-2", "prob 2^-4");
    for (const CritPredictor pred :
         {CritPredictor::CbpTotalStall, CritPredictor::CbpBlockCount}) {
        std::printf("%-16s %10.4f %10.4f %10.4f\n", toString(pred),
                    avgSpeedup(pred, 0, 0, q),
                    avgSpeedup(pred, 10, 2, q),
                    avgSpeedup(pred, 8, 4, q));
    }
    std::printf("# the magnitudes only feed an ordering comparator, "
                "so modest truncation should cost little — the\n"
                "# paper's Table 5 worst-case sizing is conservative\n");
    return 0;
}

/**
 * @file
 * Figure 9: sweep over the load queue size {32, 48, 64}, averaged
 * over the parallel applications, normalized to the 32-entry FR-FCFS
 * system. Paper reference: 48 entries removes most LQ capacity
 * stalls, yet Binary still gains 6.4% and MaxStallTime 8.3%; 64
 * entries changes little beyond 48.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 9: load queue size sweep (quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"FR-FCFS", "Binary", "MaxStall", "%lqFull"}, "lq");

    auto configured = [&](std::uint32_t lq) {
        SystemConfig cfg = parallelBase();
        cfg.core.lqEntries = lq;
        return cfg;
    };

    std::vector<RunResult> base32;
    for (const AppParams &app : parallelApps())
        base32.push_back(runParallel(configured(32), app, q));

    for (const std::uint32_t lq : {32u, 48u, 64u}) {
        std::vector<double> sums(4, 0.0);
        std::size_t appIdx = 0;
        for (const AppParams &app : parallelApps()) {
            const SystemConfig frf = configured(lq);
            const RunResult frfRun = runParallel(frf, app, q);
            sums[0] += speedup(base32[appIdx], frfRun);
            sums[1] += speedup(
                base32[appIdx],
                runParallel(
                    withPredictor(frf, CritPredictor::CbpBinary), app,
                    q));
            sums[2] += speedup(
                base32[appIdx],
                runParallel(
                    withPredictor(frf, CritPredictor::CbpMaxStall),
                    app, q));
            sums[3] += 100.0 * static_cast<double>(frfRun.lqFullCycles) /
                static_cast<double>(frfRun.coreCycles);
            ++appIdx;
        }
        for (double &sum : sums)
            sum /= static_cast<double>(appIdx);
        printRow(std::to_string(lq), sums);
    }
    std::printf("# paper: with 48 LQ entries capacity stalls mostly "
                "vanish but Binary/MaxStall keep 6.4%%/8.3%%\n");
    return 0;
}

/**
 * @file
 * Extension experiment (beyond the paper's Figure 10): a wider
 * scheduler landscape on the parallel suite, adding the related-work
 * policies the paper cites but does not measure — strict FCFS (the
 * lower bound FR-FCFS was proposed against), ATLAS [11]
 * (least-attained-service fairness) and the Minimalist Open-page
 * scheduler [10] (memory-side "criticality" via MLP ranking) —
 * against the paper's MaxStallTime CBP. The paper's thesis predicts
 * that memory-side rankings (Minimalist) cannot match processor-side
 * blocking information; this bench tests exactly that.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Extension: wider scheduler landscape vs FR-FCFS "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"FCFS", "ATLAS", "Minimalist", "TCM", "MaxStall"});

    const std::vector<SchedAlgo> algos = {
        SchedAlgo::Fcfs, SchedAlgo::Atlas, SchedAlgo::Minimalist,
        SchedAlgo::Tcm};

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        std::vector<double> row;
        for (const SchedAlgo algo : algos) {
            SystemConfig cfg = parallelBase();
            cfg.sched.algo = algo;
            row.push_back(speedup(base, runParallel(cfg, app, q)));
        }
        row.push_back(speedup(
            base, runParallel(withPredictor(parallelBase(),
                                            CritPredictor::CbpMaxStall),
                              app, q)));
        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# expectation: FCFS well below 1.0; the memory-side "
                "rankings hover near FR-FCFS on homogeneous parallel\n"
                "# threads; processor-side criticality (MaxStall) "
                "clearly ahead — the paper's core claim\n");
    return 0;
}

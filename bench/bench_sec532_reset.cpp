/**
 * @file
 * Section 5.3.2: periodic table reset to fight saturation/aliasing.
 * The paper trains the reset interval on {fft, mg, radix} (100K CPU
 * cycles wins) and reports the remaining six applications as the test
 * set: 64-entry Binary improves from 7.5% to 9.0% with the 100K-cycle
 * reset; MaxStallTime is insensitive; resetting the unlimited table
 * changes nothing (criticality is long-term-useful information).
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

namespace
{

const std::vector<std::string> kTrain = {"fft", "mg", "radix"};

bool
isTrain(const std::string &name)
{
    for (const std::string &train : kTrain) {
        if (train == name)
            return true;
    }
    return false;
}

double
avgSpeedup(CritPredictor pred, std::uint32_t entries,
           std::uint64_t reset, bool train, std::uint64_t q)
{
    double sum = 0.0;
    int count = 0;
    for (const AppParams &app : parallelApps()) {
        if (isTrain(app.name) != train)
            continue;
        const RunResult base = runParallel(parallelBase(), app, q);
        SystemConfig cfg =
            withPredictor(parallelBase(), pred, entries);
        cfg.crit.resetInterval = reset;
        sum += speedup(base, runParallel(cfg, app, q));
        ++count;
    }
    return sum / count;
}

} // namespace

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Section 5.3.2: table reset interval study "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));

    const std::vector<std::uint64_t> intervals = {
        0, 5000, 10000, 50000, 100000, 500000, 1000000};

    std::printf("## training set (fft, mg, radix), 64-entry tables\n");
    printHeader({"Binary", "MaxStall"}, "interval");
    for (const std::uint64_t interval : intervals) {
        printRow(interval == 0 ? "none" : std::to_string(interval),
                 {avgSpeedup(CritPredictor::CbpBinary, 64, interval,
                             true, q),
                  avgSpeedup(CritPredictor::CbpMaxStall, 64, interval,
                             true, q)});
    }

    std::printf("## test set (remaining six), 64-entry tables\n");
    printHeader({"Binary", "MaxStall"}, "interval");
    for (const std::uint64_t interval : {std::uint64_t{0},
                                         std::uint64_t{100000}}) {
        printRow(interval == 0 ? "none" : std::to_string(interval),
                 {avgSpeedup(CritPredictor::CbpBinary, 64, interval,
                             false, q),
                  avgSpeedup(CritPredictor::CbpMaxStall, 64, interval,
                             false, q)});
    }

    std::printf("## unlimited table, reset sensitivity (Binary)\n");
    printHeader({"Binary"}, "interval");
    for (const std::uint64_t interval : {std::uint64_t{0},
                                         std::uint64_t{100000}}) {
        printRow(interval == 0 ? "none" : std::to_string(interval),
                 {avgSpeedup(CritPredictor::CbpBinary, 0, interval,
                             false, q)});
    }
    std::printf("# paper: Binary test set 1.075 -> 1.090 with the "
                "100K reset; unlimited table unaffected\n");
    return 0;
}

/**
 * @file
 * Figure 11: MORSE-P restricted to evaluating N ready commands per
 * DRAM cycle (the hardware feasibility argument of Section 5.8.1:
 * each extra way of tri-ported CMAC arrays costs SRAM, and DDR3-2133
 * leaves no latency budget). Speedups over FR-FCFS, averaged across
 * the parallel applications. Paper reference: performance climbs from
 * ~1.02 at 6 commands toward ~1.11 at 24; matching MaxStallTime's
 * 9.3% takes ~15 commands (80 kB of CMAC per controller).
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 11: MORSE-P ready-command restriction "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"speedup"}, "cmds");

    // Per-app FR-FCFS baselines, computed once.
    std::vector<RunResult> base;
    for (const AppParams &app : parallelApps())
        base.push_back(runParallel(parallelBase(), app, q));

    for (const std::uint32_t cmds : {6u, 9u, 12u, 15u, 18u, 21u, 24u}) {
        double sum = 0.0;
        std::size_t appIdx = 0;
        for (const AppParams &app : parallelApps()) {
            SystemConfig cfg = parallelBase();
            cfg.sched.algo = SchedAlgo::Morse;
            cfg.sched.morseMaxCommands = cmds;
            sum += speedup(base[appIdx], runParallel(cfg, app, q));
            ++appIdx;
        }
        printRow(std::to_string(cmds),
                 {sum / static_cast<double>(appIdx)});
    }
    std::printf("# paper: climbs with evaluated commands; 24 commands "
                "needs 128 kB of CMAC SRAM per controller\n");
    return 0;
}

/**
 * @file
 * Figure 7: interaction with an aggressive L2 stream prefetcher (64
 * streams, distance 64, degree 4). All columns are normalized to
 * FR-FCFS *without* prefetching. Paper reference: FR-FCFS+prefetch
 * alone 1.084; adding the CBP retains 4.9% (Binary) to 7.4%
 * (TotalStallTime) on top.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 7: criticality + L2 stream prefetcher "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"frf-pref", "Binary", "BlockCnt", "LastStall",
                 "MaxStall", "TotalStall"});

    const std::vector<CritPredictor> preds = {
        CritPredictor::CbpBinary,     CritPredictor::CbpBlockCount,
        CritPredictor::CbpLastStall,  CritPredictor::CbpMaxStall,
        CritPredictor::CbpTotalStall,
    };

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);

        SystemConfig pref = parallelBase();
        pref.prefetch.enabled = true;
        std::vector<double> row = {
            speedup(base, runParallel(pref, app, q))};
        for (const CritPredictor pred : preds) {
            SystemConfig cfg = withPredictor(parallelBase(), pred, 64);
            cfg.prefetch.enabled = true;
            row.push_back(speedup(base, runParallel(cfg, app, q)));
        }
        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: prefetch-only 1.084; CBP still adds up to "
                "+7.4%% on top (parallel threads defeat the trainer)\n");
    return 0;
}

/**
 * @file
 * Section 5.1: the naive predictor-less implementation — forward a
 * criticality flag to the controller only at the moment a load starts
 * blocking the ROB head. Paper reference: ~3.5% average speedup,
 * "low enough that one could consider it within simulation noise".
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Section 5.1: naive block-time forwarding "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"speedup"});

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        const RunResult naive = runParallel(
            withPredictor(parallelBase(), CritPredictor::NaiveForward),
            app, q);
        const std::vector<double> row = {speedup(base, naive)};
        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: ~3.5%% average (within noise); the predictor "
                "is what makes the mechanism work\n");
    return 0;
}

/**
 * @file
 * Figure 5: MaxStallTime criticality, sweeping the CBP table size
 * against the unlimited fully-associative reference. Paper reference:
 * effectively no drop down to 64 entries; `art` anomalously prefers
 * the small table (its reordering-sensitive double-pointer loads).
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 5: MaxStallTime table-size sweep "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"64", "256", "1024", "Unlimited"});

    const std::vector<std::uint32_t> sizes = {64, 256, 1024, 0};
    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        std::vector<double> row;
        for (const std::uint32_t size : sizes) {
            row.push_back(speedup(
                base, runParallel(withPredictor(parallelBase(),
                                                CritPredictor::CbpMaxStall,
                                                size),
                                  app, q)));
        }
        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: 64 entries performs within noise of the "
                "unlimited table (~1.093 avg)\n");
    return 0;
}

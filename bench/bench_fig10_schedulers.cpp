/**
 * @file
 * Figure 10: the paper's scheduler against AHB (Hur/Lin), MORSE-P and
 * Crit-RL (MORSE plus the criticality features of Table 6) on the
 * parallel applications, all relative to FR-FCFS. Paper reference
 * averages: MaxStallTime 1.093, AHB 1.016, MORSE-P 1.112, Crit-RL
 * matching MORSE-P (its features already capture criticality
 * implicitly).
 */

#include "bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 10: state-of-the-art scheduler comparison "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"MaxStall", "AHB", "MORSE-P", "Crit-RL"});

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        std::vector<double> row;
        row.push_back(speedup(
            base,
            runParallel(withPredictor(parallelBase(),
                                      CritPredictor::CbpMaxStall),
                        app, q)));

        SystemConfig ahb = parallelBase();
        ahb.sched.algo = SchedAlgo::Ahb;
        row.push_back(speedup(base, runParallel(ahb, app, q)));

        SystemConfig morse = parallelBase();
        morse.sched.algo = SchedAlgo::Morse;
        morse.sched.morseMaxCommands = 24;
        row.push_back(speedup(base, runParallel(morse, app, q)));

        // Crit-RL: the RL scheduler consumes the 64-entry Binary CBP
        // prediction as an input feature (Table 6).
        SystemConfig critRl = withPredictor(
            parallelBase(), CritPredictor::CbpBinary, 64,
            SchedAlgo::CritRl);
        critRl.sched.morseMaxCommands = 24;
        row.push_back(speedup(base, runParallel(critRl, app, q)));

        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: MaxStall 1.093, AHB 1.016, MORSE-P 1.112, "
                "Crit-RL ~= MORSE-P\n");
    return 0;
}

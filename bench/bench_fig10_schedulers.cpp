/**
 * @file
 * Figure 10: the paper's scheduler against AHB (Hur/Lin), MORSE-P and
 * Crit-RL (MORSE plus the criticality features of Table 6) on the
 * parallel applications, all relative to FR-FCFS. Paper reference
 * averages: MaxStallTime 1.093, AHB 1.016, MORSE-P 1.112, Crit-RL
 * matching MORSE-P (its features already capture criticality
 * implicitly).
 *
 * Runs on the execution engine: the whole app × scheduler
 * cross-product executes as one parallel campaign (CRITMEM_JOBS
 * worker threads), then the table is assembled from the buffered
 * records. Output is identical to the former serial loop.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 10: state-of-the-art scheduler comparison "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"MaxStall", "AHB", "MORSE-P", "Crit-RL"});

    SystemConfig ahb = parallelBase();
    ahb.sched.algo = SchedAlgo::Ahb;

    SystemConfig morse = parallelBase();
    morse.sched.algo = SchedAlgo::Morse;
    morse.sched.morseMaxCommands = 24;

    // Crit-RL: the RL scheduler consumes the 64-entry Binary CBP
    // prediction as an input feature (Table 6).
    SystemConfig critRl = withPredictor(
        parallelBase(), CritPredictor::CbpBinary, 64,
        SchedAlgo::CritRl);
    critRl.sched.morseMaxCommands = 24;

    const std::vector<std::pair<std::string, SystemConfig>> variants =
        {{"base", parallelBase()},
         {"maxstall", withPredictor(parallelBase(),
                                    CritPredictor::CbpMaxStall)},
         {"ahb", ahb},
         {"morse", morse},
         {"crit-rl", critRl}};

    std::vector<exec::JobSpec> jobs;
    for (const AppParams &app : parallelApps()) {
        for (const auto &[key, cfg] : variants) {
            jobs.push_back(makeJob(app.name + "/" + key,
                                   exec::RunKind::Parallel, app.name,
                                   cfg, q));
        }
    }
    exec::MemorySink sink;
    runCampaign(jobs, sink);

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult &base = sink.result(app.name + "/base");
        std::vector<double> row;
        for (const char *key : {"maxstall", "ahb", "morse", "crit-rl"})
            row.push_back(speedup(
                base, sink.result(app.name + "/" + key)));
        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: MaxStall 1.093, AHB 1.016, MORSE-P 1.112, "
                "Crit-RL ~= MORSE-P\n");
    return 0;
}

/**
 * @file
 * Figure 8: sweep over the number of ranks per channel for DDR3-1600
 * and DDR3-2133, averaged over the parallel applications. Speedups
 * are relative to the single-rank FR-FCFS subsystem of the same speed
 * grade. Paper reference: fewer ranks mean more contention and larger
 * criticality benefits — up to 14.6% for single-rank DDR3-2133 with
 * the 64-entry MaxStallTime predictor.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 8: rank sweep (quota=%llu/core)\n",
                static_cast<unsigned long long>(q));

    for (const DramSpeed speed :
         {DramSpeed::DDR3_1600, DramSpeed::DDR3_2133}) {
        std::printf("## %s (normalized to 1-rank FR-FCFS)\n",
                    toString(speed));
        printHeader({"FR-FCFS", "Binary", "MaxStall"}, "ranks");

        // Single-rank FR-FCFS reference for this speed grade.
        auto configured = [&](std::uint32_t ranks) {
            SystemConfig cfg = parallelBase();
            const std::uint32_t channels = cfg.dram.channels;
            const std::uint32_t queueEntries = cfg.dram.queueEntries;
            cfg.dram = DramConfig::preset(speed);
            cfg.dram.channels = channels;
            cfg.dram.queueEntries = queueEntries;
            cfg.dram.ranksPerChannel = ranks;
            return cfg;
        };

        // Per-app single-rank baselines.
        std::vector<RunResult> base1;
        for (const AppParams &app : parallelApps())
            base1.push_back(runParallel(configured(1), app, q));

        for (const std::uint32_t ranks : {1u, 2u, 4u}) {
            std::vector<double> sums(3, 0.0);
            std::size_t appIdx = 0;
            for (const AppParams &app : parallelApps()) {
                const SystemConfig frf = configured(ranks);
                sums[0] +=
                    speedup(base1[appIdx], runParallel(frf, app, q));
                sums[1] += speedup(
                    base1[appIdx],
                    runParallel(withPredictor(
                                    frf, CritPredictor::CbpBinary),
                                app, q));
                sums[2] += speedup(
                    base1[appIdx],
                    runParallel(withPredictor(
                                    frf, CritPredictor::CbpMaxStall),
                                app, q));
                ++appIdx;
            }
            for (double &sum : sums)
                sum /= static_cast<double>(appIdx);
            printRow(std::to_string(ranks), sums);
        }
    }
    std::printf("# paper: 1-rank DDR3-2133 MaxStallTime ~1.146 over "
                "its FR-FCFS; benefit shrinks as ranks grow\n");
    return 0;
}

/**
 * @file
 * Figure 1: percentage of dynamic loads that block at the ROB head
 * and percentage of processor cycles those loads block the head,
 * under baseline FR-FCFS, per parallel application plus the average.
 * Paper reference: 6.1% of loads, 48.6% of execution time on average.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 1: ROB-head blocking under FR-FCFS "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"%dynLoads", "%execTime"});

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult r = runParallel(parallelBase(), app, q);
        const std::vector<double> row = {
            100.0 * static_cast<double>(r.blockingLoads) /
                static_cast<double>(r.dynamicLoads),
            100.0 * static_cast<double>(r.robBlockedCycles) /
                static_cast<double>(r.coreCycles),
        };
        printRow(app.name, row, " %12.2f");
        avg.add(row);
    }
    printRow("Average", avg.average(), " %12.2f");
    std::printf("# paper: Average ~6.1%% of dynamic loads, ~48.6%% of "
                "execution time\n");
    return 0;
}

/**
 * @file
 * Figure 6: average L2 miss latency for critical vs non-critical
 * loads under FR-FCFS, Binary CBP and MaxStallTime CBP (64-entry,
 * CASRAS-Crit). In the FR-FCFS rows the predictor still classifies
 * loads (so the same population is compared) but the scheduler
 * ignores the flag. Paper reference: critical latency drops for every
 * benchmark; several applications see non-critical latency *rise* as
 * the scheduler exploits their slack; `art` uniquely sees both drop.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 6: L2 miss latency, critical vs non-critical "
                "(CPU cycles, quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"frf-crit", "frf-non", "bin-crit", "bin-non",
                 "max-crit", "max-non"});

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        // FR-FCFS with a passive MaxStallTime predictor: requests are
        // classified but the arbiter ignores criticality.
        const RunResult frf = runParallel(
            withPredictor(parallelBase(), CritPredictor::CbpMaxStall,
                          64, SchedAlgo::FrFcfs),
            app, q);
        const RunResult bin = runParallel(
            withPredictor(parallelBase(), CritPredictor::CbpBinary),
            app, q);
        const RunResult max = runParallel(
            withPredictor(parallelBase(), CritPredictor::CbpMaxStall),
            app, q);
        const std::vector<double> row = {
            frf.l2MissLatCrit, frf.l2MissLatNonCrit,
            bin.l2MissLatCrit, bin.l2MissLatNonCrit,
            max.l2MissLatCrit, max.l2MissLatNonCrit,
        };
        printRow(app.name, row, " %12.1f");
        avg.add(row);
    }
    printRow("Average", avg.average(), " %12.1f");
    std::printf("# paper: critical latency drops under the CBP "
                "schedulers; non-critical latency rises (slack)\n");
    return 0;
}

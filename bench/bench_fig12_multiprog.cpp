/**
 * @file
 * Figure 12: multiprogrammed weighted speedups over PAR-BS for the
 * eight Table 4 bundles, on the 4-core / 2-channel system. Columns:
 * FR-FCFS, TCM, MaxStallTime CBP (64-entry CASRAS-Crit) and the
 * TCM+MaxStallTime hybrid; plus the max-slowdown change of
 * MaxStallTime vs TCM. Paper reference: MaxStallTime +6.0% weighted
 * speedup over PAR-BS (Binary +5.2%), TCM +1.9%, hybrid ~TCM, and
 * MaxStallTime improving max slowdown by 11.6% over TCM.
 *
 * Runs on the execution engine: alone-IPC baselines are deduplicated
 * per distinct app (an app appearing in several bundles runs alone
 * once), then all bundle × scheduler jobs execute as one campaign.
 * Output is identical to the former serial loop.
 */

#include <set>

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 12: multiprogrammed weighted speedup vs "
                "PAR-BS (quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"FR-FCFS", "TCM", "MaxStall", "TCM+MaxStall",
                 "maxSlowdown"},
                "bundle");

    SystemConfig frf = multiprogBase();
    frf.sched.algo = SchedAlgo::FrFcfs;

    SystemConfig tcm = multiprogBase();
    tcm.sched.algo = SchedAlgo::Tcm;

    const std::vector<std::pair<std::string, SystemConfig>> variants =
        {{"parbs", multiprogBase()},
         {"frfcfs", frf},
         {"tcm", tcm},
         {"maxstall", withPredictor(multiprogBase(),
                                    CritPredictor::CbpMaxStall, 64,
                                    SchedAlgo::CasRasCrit)},
         {"hybrid", withPredictor(multiprogBase(),
                                  CritPredictor::CbpMaxStall, 64,
                                  SchedAlgo::TcmCrit)}};

    std::vector<exec::JobSpec> jobs;
    std::set<std::string> aloneApps;
    for (const Bundle &bundle : multiprogBundles()) {
        for (const std::string &app : bundle.apps) {
            if (aloneApps.insert(app).second) {
                jobs.push_back(makeJob("alone/" + app,
                                       exec::RunKind::Alone, app,
                                       multiprogBase(), q,
                                       /*multiprog=*/true));
            }
        }
        for (const auto &[key, cfg] : variants) {
            jobs.push_back(makeJob(bundle.name + "/" + key,
                                   exec::RunKind::Bundle, bundle.name,
                                   cfg, q, /*multiprog=*/true));
        }
    }
    exec::MemorySink sink;
    runCampaign(jobs, sink);

    Averager avg;
    for (const Bundle &bundle : multiprogBundles()) {
        // Alone-IPC baselines under the PAR-BS configuration.
        std::array<double, 4> alone{};
        for (std::size_t i = 0; i < bundle.apps.size(); ++i)
            alone[i] =
                sink.result("alone/" + bundle.apps[i]).ipc(0, q);

        const double wsParbs = weightedSpeedup(
            sink.result(bundle.name + "/parbs"), alone, q);

        auto wsOf = [&](const char *key) {
            return weightedSpeedup(sink.result(bundle.name + "/" + key),
                                   alone, q) /
                wsParbs;
        };

        const double slowdownRatio =
            maxSlowdown(sink.result(bundle.name + "/maxstall"), alone,
                        q) /
            maxSlowdown(sink.result(bundle.name + "/tcm"), alone, q);

        const std::vector<double> row = {
            wsOf("frfcfs"), wsOf("tcm"), wsOf("maxstall"),
            wsOf("hybrid"), slowdownRatio};
        printRow(bundle.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: MaxStall 1.060, TCM 1.019, hybrid ~TCM; "
                "MaxStall cuts max slowdown 11.6%% vs TCM\n");
    return 0;
}

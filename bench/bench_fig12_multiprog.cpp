/**
 * @file
 * Figure 12: multiprogrammed weighted speedups over PAR-BS for the
 * eight Table 4 bundles, on the 4-core / 2-channel system. Columns:
 * FR-FCFS, TCM, MaxStallTime CBP (64-entry CASRAS-Crit) and the
 * TCM+MaxStallTime hybrid; plus the max-slowdown change of
 * MaxStallTime vs TCM. Paper reference: MaxStallTime +6.0% weighted
 * speedup over PAR-BS (Binary +5.2%), TCM +1.9%, hybrid ~TCM, and
 * MaxStallTime improving max slowdown by 11.6% over TCM.
 */

#include "bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 12: multiprogrammed weighted speedup vs "
                "PAR-BS (quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"FR-FCFS", "TCM", "MaxStall", "TCM+MaxStall",
                 "maxSlowdown"},
                "bundle");

    Averager avg;
    for (const Bundle &bundle : multiprogBundles()) {
        // Alone-IPC baselines under the PAR-BS configuration.
        std::array<double, 4> alone{};
        for (std::size_t i = 0; i < bundle.apps.size(); ++i) {
            alone[i] =
                runAlone(multiprogBase(), appParams(bundle.apps[i]), q);
        }

        const RunResult parbs = runBundle(multiprogBase(), bundle, q);
        const double wsParbs = weightedSpeedup(parbs, alone, q);

        auto wsOf = [&](const SystemConfig &cfg, RunResult *out =
                                                     nullptr) {
            const RunResult run = runBundle(cfg, bundle, q);
            if (out)
                *out = run;
            return weightedSpeedup(run, alone, q) / wsParbs;
        };

        SystemConfig frf = multiprogBase();
        frf.sched.algo = SchedAlgo::FrFcfs;

        SystemConfig tcm = multiprogBase();
        tcm.sched.algo = SchedAlgo::Tcm;
        RunResult tcmRun;
        const double wsTcm = wsOf(tcm, &tcmRun);

        const SystemConfig maxStall = withPredictor(
            multiprogBase(), CritPredictor::CbpMaxStall, 64,
            SchedAlgo::CasRasCrit);
        RunResult maxRun;
        const double wsMax = wsOf(maxStall, &maxRun);

        const SystemConfig hybrid = withPredictor(
            multiprogBase(), CritPredictor::CbpMaxStall, 64,
            SchedAlgo::TcmCrit);

        const double slowdownRatio =
            maxSlowdown(maxRun, alone, q) /
            maxSlowdown(tcmRun, alone, q);

        const std::vector<double> row = {
            wsOf(frf), wsTcm, wsMax, wsOf(hybrid), slowdownRatio};
        printRow(bundle.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: MaxStall 1.060, TCM 1.019, hybrid ~TCM; "
                "MaxStall cuts max slowdown 11.6%% vs TCM\n");
    return 0;
}

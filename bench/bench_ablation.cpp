/**
 * @file
 * Ablation study for the reproduction's own design choices
 * (DESIGN.md §4): how much of the criticality benefit depends on
 * (a) the paper-era unified transaction queue vs a modern split
 * write buffer, (b) the steady-state dirtiness of the prewarmed L2
 * (which sets the writeback share of DRAM traffic), and (c) the
 * burstiness of the workload models (which sets transient queue
 * depth). Reported: average Binary and MaxStallTime speedups over
 * FR-FCFS across the parallel suite for each knob setting.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

namespace
{

RunResult
runWith(const SystemConfig &cfg, const AppParams &app,
        std::uint64_t quota, double dirtyFrac)
{
    System sys(cfg, app);
    sys.prewarmCaches(0.9, dirtyFrac);
    sys.run(defaultWarmup(quota), false);
    sys.resetStatsWindow();
    sys.run(quota, true);
    return collect(sys);
}

struct Knobs
{
    bool unifiedQueue = true;
    double dirtyFrac = 0.12;
    double burstiness = -1.0; ///< <0 keeps each app's own value
    AddressMapKind mapKind = AddressMapKind::PageInterleave;
    bool closedPage = false;
};

std::pair<double, double>
averageSpeedups(const Knobs &knobs, std::uint64_t quota)
{
    double bin = 0.0, max = 0.0;
    int count = 0;
    for (AppParams app : parallelApps()) {
        if (knobs.burstiness >= 0.0)
            app.burstiness = knobs.burstiness;
        SystemConfig base = parallelBase();
        base.dram.unifiedQueue = knobs.unifiedQueue;
        base.dram.mapKind = knobs.mapKind;
        base.dram.closedPage = knobs.closedPage;
        const RunResult b = runWith(base, app, quota, knobs.dirtyFrac);

        SystemConfig cbin =
            withPredictor(base, CritPredictor::CbpBinary);
        SystemConfig cmax =
            withPredictor(base, CritPredictor::CbpMaxStall);
        bin += speedup(b, runWith(cbin, app, quota, knobs.dirtyFrac));
        max += speedup(b, runWith(cmax, app, quota, knobs.dirtyFrac));
        ++count;
    }
    return {bin / count, max / count};
}

void
row(const char *label, const Knobs &knobs, std::uint64_t quota)
{
    const auto [bin, max] = averageSpeedups(knobs, quota);
    std::printf("%-34s %10.4f %10.4f\n", label, bin, max);
}

} // namespace

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota(16000);
    std::printf("# Ablations of reproduction design choices "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    std::printf("%-34s %10s %10s\n", "configuration", "Binary",
                "MaxStall");

    row("default (unified queue, d=0.12)", Knobs{}, q);

    Knobs split;
    split.unifiedQueue = false;
    row("split write buffer (watermarks)", split, q);

    Knobs clean;
    clean.dirtyFrac = 0.0;
    row("clean prewarm (no writebacks)", clean, q);

    Knobs dirty;
    dirty.dirtyFrac = 0.35;
    row("heavy dirtiness (d=0.35)", dirty, q);

    Knobs uniform;
    uniform.burstiness = 0.0;
    row("uniform traffic (no bursts)", uniform, q);

    Knobs bursty;
    bursty.burstiness = 1.0;
    row("fully clustered memory phases", bursty, q);

    Knobs blockMap;
    blockMap.mapKind = AddressMapKind::BlockInterleave;
    row("block-interleaved mapping", blockMap, q);

    Knobs closed;
    closed.closedPage = true;
    row("closed-page row policy", closed, q);

    std::printf("# The criticality benefit tracks queue pressure: a "
                "modern split write buffer or fully smooth traffic\n"
                "# shrinks it, write-heavy unified queues amplify it "
                "(see EXPERIMENTS.md).\n");
    return 0;
}

/**
 * @file
 * Figure 4: ranked criticality with the CASRAS-Crit algorithm and
 * 64-entry CBP tables. Paper reference averages: Binary 1.065,
 * CLPT-Consumers ~1.0, BlockCount 1.087, LastStallTime ~Binary,
 * MaxStallTime 1.093, TotalStallTime best by a hair.
 */

#include "bench/bench_util.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Figure 4: ranking degrees of criticality "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    printHeader({"Binary", "CLPT-Cons", "BlockCnt", "LastStall",
                 "MaxStall", "TotalStall"});

    const std::vector<CritPredictor> preds = {
        CritPredictor::CbpBinary,     CritPredictor::ClptConsumers,
        CritPredictor::CbpBlockCount, CritPredictor::CbpLastStall,
        CritPredictor::CbpMaxStall,   CritPredictor::CbpTotalStall,
    };

    Averager avg;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        std::vector<double> row;
        for (const CritPredictor pred : preds) {
            const std::uint32_t entries =
                pred == CritPredictor::ClptConsumers ? 1024 : 64;
            row.push_back(speedup(
                base, runParallel(
                          withPredictor(parallelBase(), pred, entries),
                          app, q)));
        }
        printRow(app.name, row);
        avg.add(row);
    }
    printRow("Average", avg.average());
    std::printf("# paper: MaxStallTime 1.093 avg; BlockCount 1.087; "
                "TotalStallTime marginally best; CLPT flat\n");
    return 0;
}

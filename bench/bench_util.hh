/**
 * @file
 * Shared helpers for the per-figure/table bench binaries: canonical
 * configurations, quota handling and row formatting. Every bench
 * prints the same rows/series as the corresponding figure or table of
 * the paper; CRITMEM_INSTRS (and CRITMEM_WARMUP) scale simulation
 * length.
 */

#ifndef CRITMEM_BENCH_BENCH_UTIL_HH
#define CRITMEM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "exec/job_runner.hh"
#include "exec/table.hh"
#include "sim/config.hh"
#include "sim/log.hh"
#include "system/experiment.hh"
#include "trace/workloads.hh"

namespace critmem::bench
{

// Row formatting lives in the exec layer (shared with critmem-sweep).
using exec::Averager;
using exec::printHeader;
using exec::printRow;

/** Default per-core quota for bench runs (scaled by CRITMEM_INSTRS). */
inline std::uint64_t
quota(std::uint64_t fallback = 24000)
{
    return defaultQuota(fallback);
}

/**
 * CRITMEM_CHECK=1 in the environment attaches the protocol invariant
 * checker to every bench run: any violation aborts the bench via
 * CheckViolation instead of silently producing a bad figure.
 */
inline bool
checkRequested()
{
    const char *env = std::getenv("CRITMEM_CHECK");
    return env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0');
}

/** Apply checkRequested() to @p cfg. */
inline SystemConfig
withCheckEnv(SystemConfig cfg)
{
    if (checkRequested())
        cfg.check.enabled = true;
    return cfg;
}

/** The paper's 8-core baseline: FR-FCFS, no criticality. */
inline SystemConfig
parallelBase()
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = SchedAlgo::FrFcfs;
    cfg.crit.predictor = CritPredictor::None;
    return withCheckEnv(cfg);
}

/** The multiprogrammed baseline (PAR-BS, Section 5.8.2). */
inline SystemConfig
multiprogBase()
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    cfg.sched.algo = SchedAlgo::ParBs;
    cfg.crit.predictor = CritPredictor::None;
    return withCheckEnv(cfg);
}

/** Attach a criticality predictor + scheduler to a configuration. */
inline SystemConfig
withPredictor(SystemConfig cfg, CritPredictor pred,
              std::uint32_t entries = 64,
              SchedAlgo algo = SchedAlgo::CasRasCrit)
{
    cfg.crit.predictor = pred;
    cfg.crit.tableEntries = entries;
    cfg.sched.algo = algo;
    return cfg;
}

/** One engine job for a bench campaign. */
inline exec::JobSpec
makeJob(std::string name, exec::RunKind kind, std::string workload,
        SystemConfig cfg, std::uint64_t quota, bool multiprog = false)
{
    exec::JobSpec spec;
    spec.name = std::move(name);
    spec.kind = kind;
    spec.workload = std::move(workload);
    spec.cfg = std::move(cfg);
    spec.quota = quota;
    spec.multiprogPreset = multiprog;
    return spec;
}

/**
 * Run a bench campaign on the execution engine and buffer the results
 * for table construction. CRITMEM_JOBS caps the worker threads
 * (default: all cores); the numbers are identical either way.
 */
inline void
runCampaign(const std::vector<exec::JobSpec> &jobs,
            exec::MemorySink &sink)
{
    exec::RunnerOptions opts;
    if (const char *env = std::getenv("CRITMEM_JOBS"))
        opts.threads = static_cast<unsigned>(std::atoi(env));
    exec::JobRunner runner(opts);
    const std::vector<exec::ResultSink *> sinks{&sink};
    runner.run(jobs, sinks);
}

} // namespace critmem::bench

#endif // CRITMEM_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Shared helpers for the per-figure/table bench binaries: canonical
 * configurations, quota handling and row formatting. Every bench
 * prints the same rows/series as the corresponding figure or table of
 * the paper; CRITMEM_INSTRS (and CRITMEM_WARMUP) scale simulation
 * length.
 */

#ifndef CRITMEM_BENCH_BENCH_UTIL_HH
#define CRITMEM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/log.hh"
#include "system/experiment.hh"
#include "trace/workloads.hh"

namespace critmem::bench
{

/** Default per-core quota for bench runs (scaled by CRITMEM_INSTRS). */
inline std::uint64_t
quota(std::uint64_t fallback = 24000)
{
    return defaultQuota(fallback);
}

/**
 * CRITMEM_CHECK=1 in the environment attaches the protocol invariant
 * checker to every bench run: any violation aborts the bench via
 * CheckViolation instead of silently producing a bad figure.
 */
inline bool
checkRequested()
{
    const char *env = std::getenv("CRITMEM_CHECK");
    return env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0');
}

/** Apply checkRequested() to @p cfg. */
inline SystemConfig
withCheckEnv(SystemConfig cfg)
{
    if (checkRequested())
        cfg.check.enabled = true;
    return cfg;
}

/** The paper's 8-core baseline: FR-FCFS, no criticality. */
inline SystemConfig
parallelBase()
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = SchedAlgo::FrFcfs;
    cfg.crit.predictor = CritPredictor::None;
    return withCheckEnv(cfg);
}

/** The multiprogrammed baseline (PAR-BS, Section 5.8.2). */
inline SystemConfig
multiprogBase()
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    cfg.sched.algo = SchedAlgo::ParBs;
    cfg.crit.predictor = CritPredictor::None;
    return withCheckEnv(cfg);
}

/** Attach a criticality predictor + scheduler to a configuration. */
inline SystemConfig
withPredictor(SystemConfig cfg, CritPredictor pred,
              std::uint32_t entries = 64,
              SchedAlgo algo = SchedAlgo::CasRasCrit)
{
    cfg.crit.predictor = pred;
    cfg.crit.tableEntries = entries;
    cfg.sched.algo = algo;
    return cfg;
}

/** Print a row header: app column plus one column per config. */
inline void
printHeader(const std::vector<std::string> &columns,
            const char *first = "app")
{
    std::printf("%-10s", first);
    for (const std::string &col : columns)
        std::printf(" %12s", col.c_str());
    std::printf("\n");
}

/** Print one row of values. */
inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *fmt = " %12.4f")
{
    std::printf("%-10s", label.c_str());
    for (const double value : values)
        std::printf(fmt, value);
    std::printf("\n");
}

/** Geometric-mean-free average row across previously printed rows. */
class Averager
{
  public:
    void
    add(const std::vector<double> &row)
    {
        if (sums_.empty())
            sums_.assign(row.size(), 0.0);
        for (std::size_t i = 0; i < row.size(); ++i)
            sums_[i] += row[i];
        ++count_;
    }

    std::vector<double>
    average() const
    {
        std::vector<double> avg(sums_);
        for (double &value : avg)
            value /= count_ ? count_ : 1;
        return avg;
    }

  private:
    std::vector<double> sums_;
    std::size_t count_ = 0;
};

} // namespace critmem::bench

#endif // CRITMEM_BENCH_BENCH_UTIL_HH

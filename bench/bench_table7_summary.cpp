/**
 * @file
 * Table 7: the summary comparison matrix. The two numeric rows
 * (average parallel speedup vs FR-FCFS; average multiprogrammed
 * weighted speedup vs PAR-BS) are measured; the storage and
 * qualitative rows reproduce the paper's accounting. Paper reference:
 * AHB 1.6%/3.1%, TCM 0.6%/1.9%, MORSE-P 11.2%/11.3%, Binary CBP
 * 6.5%/5.2%, MaxStallTime CBP 9.3%/6.0%; PAR-BS itself loses 6.4% on
 * parallel workloads vs FR-FCFS.
 */

#include "bench_util.hh"

#include "crit/overhead.hh"

using namespace critmem;
using namespace critmem::bench;

namespace
{

struct Contender
{
    const char *name;
    SchedAlgo algo;
    CritPredictor pred;
    const char *storage;
    const char *procSide;
    const char *highSpeed;
    const char *lowContention;
};

double
parallelAvg(const Contender &c, std::uint64_t q)
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const AppParams &app : parallelApps()) {
        const RunResult base = runParallel(parallelBase(), app, q);
        SystemConfig cfg =
            withPredictor(parallelBase(), c.pred, 64, c.algo);
        sum += speedup(base, runParallel(cfg, app, q));
        ++count;
    }
    return sum / static_cast<double>(count);
}

double
multiprogAvg(const Contender &c, std::uint64_t q)
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const Bundle &bundle : multiprogBundles()) {
        std::array<double, 4> alone{};
        for (std::size_t i = 0; i < bundle.apps.size(); ++i) {
            alone[i] =
                runAlone(multiprogBase(), appParams(bundle.apps[i]), q);
        }
        const RunResult parbs = runBundle(multiprogBase(), bundle, q);
        SystemConfig cfg =
            withPredictor(multiprogBase(), c.pred, 64, c.algo);
        const RunResult run = runBundle(cfg, bundle, q);
        sum += weightedSpeedup(run, alone, q) /
            weightedSpeedup(parbs, alone, q);
        ++count;
    }
    return sum / static_cast<double>(count);
}

} // namespace

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota(12000);
    std::printf("# Table 7: scheduler comparison summary "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));

    const std::vector<Contender> contenders = {
        {"AHB", SchedAlgo::Ahb, CritPredictor::None, "31 B", "No",
         "Yes", "Yes"},
        {"TCM", SchedAlgo::Tcm, CritPredictor::None, "4816 B", "No",
         "Yes", "No"},
        {"MORSE-P", SchedAlgo::Morse, CritPredictor::None,
         "128-512 kB", "Yes", "No", "Yes"},
        {"BinaryCBP", SchedAlgo::CasRasCrit, CritPredictor::CbpBinary,
         "109-301 B", "Yes", "Yes", "Yes"},
        {"MaxStallCBP", SchedAlgo::CasRasCrit,
         CritPredictor::CbpMaxStall, "1357-1805 B", "Yes", "Yes",
         "Yes"},
        // Footnote 1 of the paper: PAR-BS on parallel workloads.
        {"PAR-BS", SchedAlgo::ParBs, CritPredictor::None, "-", "No",
         "Yes", "No"},
    };

    std::printf("%-12s %10s %10s %12s %9s %10s %14s\n", "scheduler",
                "parallel", "multiprog", "storage", "procSide",
                "highSpeed", "lowContention");
    for (const Contender &c : contenders) {
        const double par = parallelAvg(c, q);
        const double multi = multiprogAvg(c, q);
        std::printf("%-12s %10.4f %10.4f %12s %9s %10s %14s\n", c.name,
                    par, multi, c.storage, c.procSide, c.highSpeed,
                    c.lowContention);
    }

    // Storage accounting cross-check (Section 5.7 published widths).
    const SystemConfig dims = SystemConfig::parallelDefault();
    const OverheadReport binary = storageOverhead(1, 64, dims);
    const OverheadReport maxStall = storageOverhead(14, 64, dims);
    std::printf("\n# storage model: Binary %llu-%llu B, MaxStallTime "
                "%llu-%llu B (paper: 109-301, 1357-1805)\n",
                static_cast<unsigned long long>(binary.systemMinBytes),
                static_cast<unsigned long long>(binary.systemMaxBytes),
                static_cast<unsigned long long>(
                    maxStall.systemMinBytes),
                static_cast<unsigned long long>(
                    maxStall.systemMaxBytes));
    return 0;
}

/**
 * @file
 * Table 7: the summary comparison matrix. The two numeric rows
 * (average parallel speedup vs FR-FCFS; average multiprogrammed
 * weighted speedup vs PAR-BS) are measured; the storage and
 * qualitative rows reproduce the paper's accounting. Paper reference:
 * AHB 1.6%/3.1%, TCM 0.6%/1.9%, MORSE-P 11.2%/11.3%, Binary CBP
 * 6.5%/5.2%, MaxStallTime CBP 9.3%/6.0%; PAR-BS itself loses 6.4% on
 * parallel workloads vs FR-FCFS.
 *
 * Runs on the execution engine as one campaign; the shared baselines
 * (FR-FCFS parallel runs, PAR-BS bundle runs, alone-IPC runs) execute
 * once instead of once per contender, so this bench is much faster
 * than the former serial loops while printing identical numbers.
 */

#include <set>

#include "bench/bench_util.hh"

#include "crit/overhead.hh"

using namespace critmem;
using namespace critmem::bench;

namespace
{

struct Contender
{
    const char *name;
    SchedAlgo algo;
    CritPredictor pred;
    const char *storage;
    const char *procSide;
    const char *highSpeed;
    const char *lowContention;
};

} // namespace

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota(12000);
    std::printf("# Table 7: scheduler comparison summary "
                "(quota=%llu/core)\n",
                static_cast<unsigned long long>(q));

    const std::vector<Contender> contenders = {
        {"AHB", SchedAlgo::Ahb, CritPredictor::None, "31 B", "No",
         "Yes", "Yes"},
        {"TCM", SchedAlgo::Tcm, CritPredictor::None, "4816 B", "No",
         "Yes", "No"},
        {"MORSE-P", SchedAlgo::Morse, CritPredictor::None,
         "128-512 kB", "Yes", "No", "Yes"},
        {"BinaryCBP", SchedAlgo::CasRasCrit, CritPredictor::CbpBinary,
         "109-301 B", "Yes", "Yes", "Yes"},
        {"MaxStallCBP", SchedAlgo::CasRasCrit,
         CritPredictor::CbpMaxStall, "1357-1805 B", "Yes", "Yes",
         "Yes"},
        // Footnote 1 of the paper: PAR-BS on parallel workloads.
        {"PAR-BS", SchedAlgo::ParBs, CritPredictor::None, "-", "No",
         "Yes", "No"},
    };

    std::vector<exec::JobSpec> jobs;
    for (const AppParams &app : parallelApps()) {
        jobs.push_back(makeJob(app.name + "/base",
                               exec::RunKind::Parallel, app.name,
                               parallelBase(), q));
        for (const Contender &c : contenders) {
            jobs.push_back(makeJob(
                app.name + "/" + c.name, exec::RunKind::Parallel,
                app.name,
                withPredictor(parallelBase(), c.pred, 64, c.algo), q));
        }
    }
    std::set<std::string> aloneApps;
    for (const Bundle &bundle : multiprogBundles()) {
        for (const std::string &app : bundle.apps) {
            if (aloneApps.insert(app).second) {
                jobs.push_back(makeJob("alone/" + app,
                                       exec::RunKind::Alone, app,
                                       multiprogBase(), q,
                                       /*multiprog=*/true));
            }
        }
        jobs.push_back(makeJob(bundle.name + "/parbs",
                               exec::RunKind::Bundle, bundle.name,
                               multiprogBase(), q,
                               /*multiprog=*/true));
        for (const Contender &c : contenders) {
            jobs.push_back(makeJob(
                bundle.name + "/" + c.name, exec::RunKind::Bundle,
                bundle.name,
                withPredictor(multiprogBase(), c.pred, 64, c.algo), q,
                /*multiprog=*/true));
        }
    }
    exec::MemorySink sink;
    runCampaign(jobs, sink);

    auto parallelAvg = [&](const Contender &c) {
        double sum = 0.0;
        std::size_t count = 0;
        for (const AppParams &app : parallelApps()) {
            sum += speedup(sink.result(app.name + "/base"),
                           sink.result(app.name + "/" + c.name));
            ++count;
        }
        return sum / static_cast<double>(count);
    };

    auto multiprogAvg = [&](const Contender &c) {
        double sum = 0.0;
        std::size_t count = 0;
        for (const Bundle &bundle : multiprogBundles()) {
            std::array<double, 4> alone{};
            for (std::size_t i = 0; i < bundle.apps.size(); ++i)
                alone[i] =
                    sink.result("alone/" + bundle.apps[i]).ipc(0, q);
            sum += weightedSpeedup(
                       sink.result(bundle.name + "/" + c.name), alone,
                       q) /
                weightedSpeedup(sink.result(bundle.name + "/parbs"),
                                alone, q);
            ++count;
        }
        return sum / static_cast<double>(count);
    };

    std::printf("%-12s %10s %10s %12s %9s %10s %14s\n", "scheduler",
                "parallel", "multiprog", "storage", "procSide",
                "highSpeed", "lowContention");
    for (const Contender &c : contenders) {
        std::printf("%-12s %10.4f %10.4f %12s %9s %10s %14s\n", c.name,
                    parallelAvg(c), multiprogAvg(c), c.storage,
                    c.procSide, c.highSpeed, c.lowContention);
    }

    // Storage accounting cross-check (Section 5.7 published widths).
    const SystemConfig dims = SystemConfig::parallelDefault();
    const OverheadReport binary = storageOverhead(1, 64, dims);
    const OverheadReport maxStall = storageOverhead(14, 64, dims);
    std::printf("\n# storage model: Binary %llu-%llu B, MaxStallTime "
                "%llu-%llu B (paper: 109-301, 1357-1805)\n",
                static_cast<unsigned long long>(binary.systemMinBytes),
                static_cast<unsigned long long>(binary.systemMaxBytes),
                static_cast<unsigned long long>(
                    maxStall.systemMinBytes),
                static_cast<unsigned long long>(
                    maxStall.systemMaxBytes));
    return 0;
}

/**
 * @file
 * Table 5 (criticality counter widths) and Section 5.7 (storage
 * overhead). The max observed value for each CBP annotation is
 * measured across all parallel applications with the 64-entry table;
 * the width is the bits needed to store it, and the storage
 * calculator reproduces the paper's per-core and whole-system SRAM
 * accounting. Paper reference widths: Binary 1 b, BlockCount 21 b,
 * Last/MaxStallTime 14 b, TotalStallTime 27 b; Binary costs
 * 109-301 B, MaxStallTime 1,357-1,805 B, TotalStallTime
 * 2,605-3,469 B for 8 cores / 4 channels.
 */

#include "bench/bench_util.hh"

#include "crit/overhead.hh"

using namespace critmem;
using namespace critmem::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t q = quota();
    std::printf("# Table 5 + Section 5.7: counter widths and storage "
                "overhead (quota=%llu/core)\n",
                static_cast<unsigned long long>(q));
    std::printf("%-14s %14s %6s %12s %12s %12s %12s\n", "metric",
                "maxObserved", "width", "core-min(b)", "core-max(b)",
                "sys-min(B)", "sys-max(B)");

    const SystemConfig dims = SystemConfig::parallelDefault();
    const std::vector<CritPredictor> preds = {
        CritPredictor::CbpBinary,    CritPredictor::CbpBlockCount,
        CritPredictor::CbpLastStall, CritPredictor::CbpMaxStall,
        CritPredictor::CbpTotalStall,
    };

    for (const CritPredictor pred : preds) {
        std::uint64_t maxObserved = 0;
        for (const AppParams &app : parallelApps()) {
            const RunResult run = runParallel(
                withPredictor(parallelBase(), pred, 64), app, q);
            maxObserved = std::max(maxObserved, run.maxCbpValue);
        }
        const std::uint32_t width =
            pred == CritPredictor::CbpBinary
                ? 1
                : counterWidth(maxObserved);
        const OverheadReport report =
            storageOverhead(width, 64, dims);
        std::printf("%-14s %14llu %5ub %12llu %12llu %12llu %12llu\n",
                    toString(pred),
                    static_cast<unsigned long long>(maxObserved), width,
                    static_cast<unsigned long long>(
                        report.perCoreMinBits),
                    static_cast<unsigned long long>(
                        report.perCoreMaxBits),
                    static_cast<unsigned long long>(
                        report.systemMinBytes),
                    static_cast<unsigned long long>(
                        report.systemMaxBytes));
    }

    std::printf("\n# paper-width reference accounting (widths as "
                "published):\n");
    for (const auto &[name, width] :
         std::vector<std::pair<const char *, std::uint32_t>>{
             {"Binary", 1},
             {"BlockCount", 21},
             {"LastStallTime", 14},
             {"MaxStallTime", 14},
             {"TotalStallTime", 27}}) {
        const OverheadReport report = storageOverhead(width, 64, dims);
        std::printf("%-14s %5ub core %llu-%llu bits, system %llu-%llu "
                    "bytes\n",
                    name, width,
                    static_cast<unsigned long long>(
                        report.perCoreMinBits),
                    static_cast<unsigned long long>(
                        report.perCoreMaxBits),
                    static_cast<unsigned long long>(
                        report.systemMinBytes),
                    static_cast<unsigned long long>(
                        report.systemMaxBytes));
    }
    return 0;
}

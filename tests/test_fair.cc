/**
 * @file
 * Fairness-subsystem tests: hand-computed metric goldens, the
 * alone-baseline cache (each baseline computed exactly once), the
 * "fair" stats group, and the arena annotator end-to-end on a real
 * multiprogrammed campaign.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "exec/arena.hh"
#include "exec/job_runner.hh"
#include "exec/result_sink.hh"
#include "exec/sweep.hh"
#include "fair/baseline_cache.hh"
#include "fair/fairness_stats.hh"
#include "fair/metrics.hh"

using namespace critmem;

TEST(FairMetrics, TwoCoreGolden)
{
    // Core 0: alone 2.0, shared 1.0 -> slowdown 2. Core 1: alone 1.0,
    // shared 0.5 -> slowdown 2. WS = 0.5 + 0.5 = 1.0, HS = 2/4 = 0.5,
    // max slowdown 2, unfairness 2/2 = 1 (both suffer equally).
    const fair::FairnessMetrics m =
        fair::computeFairness({1.0, 0.5}, {2.0, 1.0});
    ASSERT_TRUE(m.valid);
    ASSERT_EQ(m.slowdown.size(), 2u);
    EXPECT_DOUBLE_EQ(m.slowdown[0], 2.0);
    EXPECT_DOUBLE_EQ(m.slowdown[1], 2.0);
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 0.5);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 2.0);
    EXPECT_DOUBLE_EQ(m.unfairness, 1.0);
}

TEST(FairMetrics, FourCoreGolden)
{
    // Slowdowns 1, 2, 2, 4: WS = 1 + 0.5 + 0.5 + 0.25 = 2.25,
    // HS = 4/9, max slowdown 4, unfairness 4/1 = 4.
    const fair::FairnessMetrics m = fair::computeFairness(
        {1.0, 1.0, 0.5, 0.25}, {1.0, 2.0, 1.0, 1.0});
    ASSERT_TRUE(m.valid);
    ASSERT_EQ(m.slowdown.size(), 4u);
    EXPECT_DOUBLE_EQ(m.slowdown[0], 1.0);
    EXPECT_DOUBLE_EQ(m.slowdown[1], 2.0);
    EXPECT_DOUBLE_EQ(m.slowdown[2], 2.0);
    EXPECT_DOUBLE_EQ(m.slowdown[3], 4.0);
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 2.25);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 4.0 / 9.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 4.0);
    EXPECT_DOUBLE_EQ(m.unfairness, 4.0);
}

TEST(FairMetrics, InvalidInputsYieldZeroedMetrics)
{
    // Size mismatch, empty vectors, and a core that never reached its
    // quota (zero IPC) all invalidate; every field must stay zero.
    for (const fair::FairnessMetrics &m :
         {fair::computeFairness({1.0, 1.0}, {1.0}),
          fair::computeFairness({}, {}),
          fair::computeFairness({1.0, 0.0}, {1.0, 1.0}),
          fair::computeFairness({1.0, 1.0}, {0.0, 1.0})}) {
        EXPECT_FALSE(m.valid);
        EXPECT_TRUE(m.slowdown.empty());
        EXPECT_DOUBLE_EQ(m.weightedSpeedup, 0.0);
        EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 0.0);
        EXPECT_DOUBLE_EQ(m.maxSlowdown, 0.0);
        EXPECT_DOUBLE_EQ(m.unfairness, 0.0);
    }
}

TEST(FairBaselineCache, ComputesEachKeyExactlyOnce)
{
    fair::AloneBaselineCache cache;
    const SystemConfig cfg = SystemConfig::multiprogDefault();
    int computes = 0;
    auto compute = [&] { return ++computes, 1.5; };

    EXPECT_DOUBLE_EQ(cache.getOrCompute("art_st", cfg, 1000, compute),
                     1.5);
    EXPECT_DOUBLE_EQ(cache.getOrCompute("art_st", cfg, 1000, compute),
                     1.5);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(cache.runsExecuted(), 1u);

    // A different quota or app is a different baseline.
    cache.getOrCompute("art_st", cfg, 2000, compute);
    cache.getOrCompute("mcf", cfg, 1000, compute);
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(FairBaselineCache, InsertAndFindBypassCompute)
{
    fair::AloneBaselineCache cache;
    const SystemConfig cfg = SystemConfig::multiprogDefault();
    EXPECT_EQ(cache.find("lu", cfg, 500), nullptr);
    cache.insert("lu", cfg, 500, 0.75);
    const double *hit = cache.find("lu", cfg, 500);
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(*hit, 0.75);
    EXPECT_EQ(cache.runsExecuted(), 0u);
}

TEST(FairBaselineCache, ConfigHashSeesSchedulerKnobs)
{
    const SystemConfig base = SystemConfig::multiprogDefault();
    EXPECT_EQ(fair::configHash(base), fair::configHash(base));

    SystemConfig sched = base;
    sched.sched.algo = SchedAlgo::Bliss;
    EXPECT_NE(fair::configHash(base), fair::configHash(sched));

    SystemConfig knob = base;
    knob.sched.blissThreshold += 1;
    EXPECT_NE(fair::configHash(base), fair::configHash(knob));

    SystemConfig seed = base;
    seed.seed += 1;
    EXPECT_NE(fair::configHash(base), fair::configHash(seed));
}

TEST(FairStats, PublishesGaugesAndJson)
{
    fair::FairnessStats stats(nullptr, 2);
    fair::FairnessMetrics m =
        fair::computeFairness({1.0, 0.5}, {2.0, 1.0});
    stats.set(m);

    const stats::Value *ws = stats.group().findValue("weightedSpeedup");
    ASSERT_NE(ws, nullptr);
    EXPECT_DOUBLE_EQ(ws->value(), 1.0);
    const stats::Value *s1 = stats.group().findValue("slowdown1");
    ASSERT_NE(s1, nullptr);
    EXPECT_DOUBLE_EQ(s1->value(), 2.0);

    const std::string json = stats.json();
    EXPECT_NE(json.find("\"valid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"harmonicSpeedup\":0.5"), std::string::npos);
    EXPECT_NE(json.find("\"slowdown0\":2"), std::string::npos);

    // Invalid metrics reset every gauge to zero.
    stats.set(fair::FairnessMetrics{});
    EXPECT_DOUBLE_EQ(ws->value(), 0.0);
    const stats::Value *valid = stats.group().findValue("valid");
    ASSERT_NE(valid, nullptr);
    EXPECT_DOUBLE_EQ(valid->value(), 0.0);
}

TEST(FairArena, SpliceHandlesEmptyAndBareObjects)
{
    const fair::FairnessMetrics m =
        fair::computeFairness({1.0, 0.5}, {2.0, 1.0});
    EXPECT_EQ(exec::spliceFairStats("", m, 2), "");

    const std::string bare = exec::spliceFairStats("{}", m, 2);
    EXPECT_EQ(bare.find("{\"fair\":{"), 0u);
    EXPECT_EQ(bare.back(), '}');

    const std::string spliced =
        exec::spliceFairStats("{\"core\":{\"ipc\":1}}", m, 2);
    EXPECT_NE(spliced.find("\"core\""), std::string::npos);
    EXPECT_NE(spliced.find(",\"fair\":{"), std::string::npos);
    EXPECT_NE(spliced.find("\"maxSlowdown\":2"), std::string::npos);
}

namespace
{

/** AELV and CMLI share "lu": 7 distinct apps across the two bundles. */
exec::SweepSpec
arenaSpec()
{
    std::istringstream in(
        "mode = multiprog\n"
        "workloads = AELV, CMLI\n"
        "quota = 400\n"
        "seed = 1\n"
        "seed-mode = fixed\n"
        "alone = 1\n"
        "scheds = frfcfs, bliss\n");
    return exec::parseSweepSpec(in);
}

} // namespace

TEST(FairArena, CampaignRunsEachBaselineOnceAndAnnotatesBundles)
{
    const exec::SweepSpec spec = arenaSpec();
    const std::vector<exec::JobSpec> jobs = spec.expand();

    // One alone job per distinct app — shared apps and extra variants
    // must not add baselines.
    std::size_t aloneJobs = 0;
    for (const exec::JobSpec &job : jobs)
        if (job.kind == exec::RunKind::Alone)
            ++aloneJobs;
    EXPECT_EQ(aloneJobs, 7u);
    EXPECT_EQ(jobs.size(), 7u + 2u * 2u);

    exec::FairnessAnnotator annotator;
    exec::MemorySink memory;
    exec::RunnerOptions opts;
    opts.threads = 4;
    opts.annotate = [&annotator](exec::JobRecord &rec) {
        annotator(rec);
    };
    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary = runner.run(jobs, {&memory});
    EXPECT_EQ(summary.failed, 0u);

    // Every baseline banked exactly once, none recomputed on demand.
    EXPECT_EQ(annotator.cache().size(), 7u);
    EXPECT_EQ(annotator.cache().runsExecuted(), 0u);

    for (const exec::JobRecord &rec : memory.records()) {
        if (rec.spec.kind != exec::RunKind::Bundle)
            continue;
        ASSERT_TRUE(rec.fairness.valid) << rec.spec.name;
        EXPECT_EQ(rec.fairness.slowdown.size(), 4u);
        EXPECT_GT(rec.fairness.weightedSpeedup, 0.0);
        EXPECT_GE(rec.fairness.maxSlowdown, 1.0) << rec.spec.name;
        EXPECT_GE(rec.fairness.unfairness, 1.0);
    }
}

TEST(FairArena, AnnotatedJsonlIdenticalAcrossThreadCounts)
{
    const std::vector<exec::JobSpec> jobs = arenaSpec().expand();
    auto run = [&](unsigned threads) {
        std::ostringstream out;
        exec::JsonlSink sink(out);
        exec::FairnessAnnotator annotator;
        exec::RunnerOptions opts;
        opts.threads = threads;
        opts.annotate = [&annotator](exec::JobRecord &rec) {
            annotator(rec);
        };
        exec::JobRunner runner(opts);
        runner.run(jobs, {&sink});
        return out.str();
    };
    const std::string serial = run(1);
    EXPECT_NE(serial.find("\"weightedSpeedup\""), std::string::npos);
    EXPECT_EQ(serial, run(4));
}

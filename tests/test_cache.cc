/** @file Unit tests for the set-associative MESI cache array. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace critmem;

namespace
{

CacheConfig
smallCache(std::uint32_t ways = 2)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.blockBytes = 64;
    cfg.ways = ways;
    return cfg;
}

} // namespace

class CacheTest : public ::testing::Test
{
  protected:
    stats::Group root_;
};

TEST_F(CacheTest, MissThenHit)
{
    Cache cache(smallCache(), "c", root_);
    EXPECT_FALSE(cache.access(0x1000));
    cache.insert(0x1000, LineState::Exclusive);
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_EQ(cache.cacheStats().hits.value(), 1u);
    EXPECT_EQ(cache.cacheStats().misses.value(), 1u);
}

TEST_F(CacheTest, ProbeDoesNotTouchStats)
{
    Cache cache(smallCache(), "c", root_);
    EXPECT_EQ(cache.probe(0x40), LineState::Invalid);
    EXPECT_EQ(cache.cacheStats().misses.value(), 0u);
    cache.insert(0x40, LineState::Shared);
    EXPECT_EQ(cache.probe(0x40), LineState::Shared);
}

TEST_F(CacheTest, BlockAlign)
{
    Cache cache(smallCache(), "c", root_);
    EXPECT_EQ(cache.blockAlign(0x1234), 0x1200u & ~Addr{63});
    EXPECT_EQ(cache.blockAlign(0x1240), 0x1240u);
}

TEST_F(CacheTest, LruEviction)
{
    // 2-way: fill a set with two lines, touch the first, insert a
    // third -> the second (LRU) must be the victim.
    Cache cache(smallCache(2), "c", root_);
    const std::uint32_t setStride = 1024 / 2; // sets*block
    cache.insert(0x0, LineState::Exclusive);
    cache.insert(0x0 + setStride, LineState::Exclusive);
    cache.access(0x0); // make first MRU
    const Cache::Victim victim =
        cache.insert(0x0 + 2 * setStride, LineState::Exclusive);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 0x0 + setStride);
    EXPECT_EQ(cache.probe(0x0), LineState::Exclusive);
    EXPECT_EQ(cache.probe(0x0 + setStride), LineState::Invalid);
}

TEST_F(CacheTest, VictimReportsDirty)
{
    Cache cache(smallCache(1), "c", root_);
    cache.insert(0x0, LineState::Modified);
    const Cache::Victim victim =
        cache.insert(0x0 + 1024, LineState::Exclusive);
    ASSERT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
    EXPECT_EQ(cache.cacheStats().writebacks.value(), 1u);
}

TEST_F(CacheTest, CleanVictimNotDirty)
{
    Cache cache(smallCache(1), "c", root_);
    cache.insert(0x0, LineState::Shared);
    const Cache::Victim victim =
        cache.insert(0x0 + 1024, LineState::Exclusive);
    ASSERT_TRUE(victim.valid);
    EXPECT_FALSE(victim.dirty);
}

TEST_F(CacheTest, InsertExistingUpdatesInPlace)
{
    Cache cache(smallCache(2), "c", root_);
    cache.insert(0x0, LineState::Shared);
    const Cache::Victim victim =
        cache.insert(0x0, LineState::Modified);
    EXPECT_FALSE(victim.valid);
    EXPECT_EQ(cache.probe(0x0), LineState::Modified);
}

TEST_F(CacheTest, SetStateOnResidentLine)
{
    Cache cache(smallCache(), "c", root_);
    cache.insert(0x80, LineState::Exclusive);
    cache.setState(0x80, LineState::Modified);
    EXPECT_EQ(cache.probe(0x80), LineState::Modified);
}

TEST_F(CacheTest, SetStateOnMissingLineIsNoop)
{
    Cache cache(smallCache(), "c", root_);
    cache.setState(0x80, LineState::Modified);
    EXPECT_EQ(cache.probe(0x80), LineState::Invalid);
}

TEST_F(CacheTest, InvalidateDropsLine)
{
    Cache cache(smallCache(), "c", root_);
    cache.insert(0x100, LineState::Shared);
    cache.invalidate(0x100);
    EXPECT_EQ(cache.probe(0x100), LineState::Invalid);
    EXPECT_EQ(cache.cacheStats().invalidations.value(), 1u);
}

TEST_F(CacheTest, PrefetchedFlagLifecycle)
{
    Cache cache(smallCache(), "c", root_);
    cache.insert(0x200, LineState::Exclusive, /*prefetched=*/true);
    EXPECT_TRUE(cache.wasPrefetched(0x200));
    cache.clearPrefetched(0x200);
    EXPECT_FALSE(cache.wasPrefetched(0x200));
}

TEST_F(CacheTest, InvalidWaysFilledBeforeEviction)
{
    Cache cache(smallCache(2), "c", root_);
    cache.insert(0x0, LineState::Exclusive);
    const Cache::Victim victim =
        cache.insert(0x0 + 512, LineState::Exclusive);
    EXPECT_FALSE(victim.valid);
    EXPECT_EQ(cache.probe(0x0), LineState::Exclusive);
    EXPECT_EQ(cache.probe(0x0 + 512), LineState::Exclusive);
}

TEST(CacheDeath, NonPowerOfTwoBlockFatal)
{
    stats::Group root;
    CacheConfig cfg;
    cfg.sizeBytes = 960;
    cfg.blockBytes = 48;
    cfg.ways = 1;
    EXPECT_DEATH({ Cache cache(cfg, "c", root); }, "power of two");
}

/** Property: with W ways, the W most recently used blocks of a set
 *  always survive. */
class CacheWaysTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheWaysTest, MruBlocksSurvive)
{
    stats::Group root;
    CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.blockBytes = 64;
    cfg.ways = GetParam();
    Cache cache(cfg, "c", root);

    const std::uint32_t sets = cfg.sets();
    const Addr stride = static_cast<Addr>(sets) * cfg.blockBytes;
    // Insert 2W blocks that all map to set 0; the last W must remain.
    const std::uint32_t w = GetParam();
    for (std::uint32_t i = 0; i < 2 * w; ++i)
        cache.insert(stride * i, LineState::Exclusive);
    for (std::uint32_t i = w; i < 2 * w; ++i) {
        EXPECT_EQ(cache.probe(stride * i), LineState::Exclusive)
            << "way count " << w << " block " << i;
    }
    for (std::uint32_t i = 0; i < w; ++i)
        EXPECT_EQ(cache.probe(stride * i), LineState::Invalid);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheWaysTest,
                         ::testing::Values(1, 2, 4, 8, 16));

/** @file Property sweeps over every workload model: invariants that
 *  must hold for each of the nine parallel applications and each
 *  single-threaded bundle member. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/synthetic.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names;
    for (const AppParams &app : parallelApps())
        names.push_back(app.name);
    for (const Bundle &bundle : multiprogBundles()) {
        for (const std::string &name : bundle.apps) {
            if (std::find(names.begin(), names.end(), name) ==
                names.end()) {
                names.push_back(name);
            }
        }
    }
    return names;
}

} // namespace

class WorkloadPropertyTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const AppParams &params() const { return appParams(GetParam()); }
};

TEST_P(WorkloadPropertyTest, StaticClassesStableAcrossIterations)
{
    // A PC must always decode to the same op class — PC-indexed
    // predictors depend on it.
    SyntheticApp gen(params(), 0, 8, 0, 13);
    std::map<std::uint64_t, OpClass> classOf;
    MicroOp op;
    for (std::uint32_t i = 0; i < params().loopLength * 3; ++i) {
        gen.next(op);
        const auto it = classOf.find(op.pc);
        if (it != classOf.end())
            EXPECT_EQ(it->second, op.cls);
        else
            classOf[op.pc] = op.cls;
    }
    EXPECT_EQ(classOf.size(), params().loopLength);
}

TEST_P(WorkloadPropertyTest, InstructionMixNearConfigured)
{
    SyntheticApp gen(params(), 0, 8, 0, 13);
    std::uint64_t loads = 0, stores = 0, branches = 0;
    const std::uint32_t n = params().loopLength * 8;
    MicroOp op;
    for (std::uint32_t i = 0; i < n; ++i) {
        gen.next(op);
        loads += op.cls == OpClass::Load;
        stores += op.cls == OpClass::Store;
        branches += op.cls == OpClass::Branch;
    }
    EXPECT_NEAR(static_cast<double>(loads) / n, params().loadFrac,
                0.06);
    EXPECT_NEAR(static_cast<double>(stores) / n, params().storeFrac,
                0.05);
    EXPECT_NEAR(static_cast<double>(branches) / n,
                params().branchFrac, 0.05);
}

TEST_P(WorkloadPropertyTest, DependenceDistancesBounded)
{
    SyntheticApp gen(params(), 0, 8, 0, 13);
    MicroOp op;
    for (std::uint32_t i = 0; i < params().loopLength * 2; ++i) {
        gen.next(op);
        EXPECT_LE(op.dep1, params().loopLength);
        EXPECT_LE(op.dep2, 64u); // generic deps are short
    }
}

TEST_P(WorkloadPropertyTest, AddressesStayInDeclaredRegions)
{
    SyntheticApp gen(params(), 2, 8, 0x100000000ull, 13);
    const auto regions = gen.farRegions();
    MicroOp op;
    for (std::uint32_t i = 0; i < params().loopLength * 4; ++i) {
        gen.next(op);
        if (op.cls != OpClass::Load && op.cls != OpClass::Store)
            continue;
        EXPECT_GE(op.addr, 0x100000000ull);
    }
    for (const auto &[addr, size] : regions) {
        EXPECT_GE(addr, 0x100000000ull);
        EXPECT_GT(size, 0u);
    }
}

TEST_P(WorkloadPropertyTest, DeterministicPerSeedAndThread)
{
    SyntheticApp a(params(), 3, 8, 0, 99);
    SyntheticApp b(params(), 3, 8, 0, 99);
    SyntheticApp other(params(), 4, 8, 0, 99);
    MicroOp oa, ob, oo;
    bool anyAddrDiffers = false;
    for (int i = 0; i < 600; ++i) {
        a.next(oa);
        b.next(ob);
        other.next(oo);
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.addr, ob.addr);
        anyAddrDiffers |= (oa.cls == OpClass::Load ||
                           oa.cls == OpClass::Store) &&
            oa.addr != oo.addr;
    }
    EXPECT_TRUE(anyAddrDiffers) << "threads should diverge in data";
}

TEST_P(WorkloadPropertyTest, MemoryOpsAligned)
{
    SyntheticApp gen(params(), 0, 8, 0, 13);
    MicroOp op;
    for (std::uint32_t i = 0; i < params().loopLength * 4; ++i) {
        gen.next(op);
        if (op.cls == OpClass::Load || op.cls == OpClass::Store) {
            EXPECT_EQ(op.addr % 8, 0u) << "8-byte alignment";
        }
    }
}

TEST_P(WorkloadPropertyTest, StaticLoadsCountedCorrectly)
{
    SyntheticApp gen(params(), 0, 8, 0, 13);
    std::set<std::uint64_t> loadPcs;
    MicroOp op;
    for (std::uint32_t i = 0; i < params().loopLength; ++i) {
        gen.next(op);
        if (op.cls == OpClass::Load)
            loadPcs.insert(op.pc);
    }
    EXPECT_EQ(loadPcs.size(), gen.staticLoads());
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadPropertyTest,
                         ::testing::ValuesIn(allAppNames()));

/** @file Unit tests for the scheduling policies' arbitration rules. */

#include <gtest/gtest.h>

#include "sched/ahb.hh"
#include "sched/batch_cap_rr.hh"
#include "sched/bliss.hh"
#include "sched/crit_frfcfs.hh"
#include "sched/dyn_thresh.hh"
#include "sched/frfcfs.hh"
#include "sched/morse.hh"
#include "sched/parbs.hh"
#include "sched/registry.hh"
#include "sched/tcm.hh"

using namespace critmem;

namespace
{

SchedCandidate
cand(DramCmd cmd, std::uint64_t seq, CritLevel crit = 0,
     CoreId core = 0, bool prefetch = false)
{
    SchedCandidate c;
    c.cmd = cmd;
    c.rowHit = cmd == DramCmd::Read || cmd == DramCmd::Write;
    c.seq = seq;
    c.crit = crit;
    c.core = core;
    c.isPrefetch = prefetch;
    c.arrival = 100;
    c.queueIndex = static_cast<std::uint32_t>(seq);
    return c;
}

} // namespace

TEST(FrFcfs, PrefersCasOverRas)
{
    FrFcfsScheduler sched;
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Act, 1), cand(DramCmd::Read, 9)};
    EXPECT_EQ(sched.pick(0, cands, 200), 1);
}

TEST(FrFcfs, OldestWithinClass)
{
    FrFcfsScheduler sched;
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 5), cand(DramCmd::Read, 2),
        cand(DramCmd::Read, 8)};
    EXPECT_EQ(sched.pick(0, cands, 200), 1);
}

TEST(FrFcfs, DemandBeatsPrefetch)
{
    FrFcfsScheduler sched;
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 1, 0, 0, /*prefetch=*/true),
        cand(DramCmd::Read, 9)};
    EXPECT_EQ(sched.pick(0, cands, 200), 1);
}

TEST(FrFcfs, PreOverNothing)
{
    FrFcfsScheduler sched;
    const std::vector<SchedCandidate> cands = {cand(DramCmd::Pre, 4)};
    EXPECT_EQ(sched.pick(0, cands, 200), 0);
}

TEST(CasRasCrit, CriticalCasFirst)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst, 0);
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 1, 0),       // older non-crit CAS
        cand(DramCmd::Read, 9, 5),       // younger critical CAS
        cand(DramCmd::Act, 0, 9)};       // oldest critical RAS
    EXPECT_EQ(sched.pick(0, cands, 200), 1);
}

TEST(CasRasCrit, NonCritCasBeatsCritRas)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst, 0);
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Act, 0, 9), cand(DramCmd::Read, 5, 0)};
    EXPECT_EQ(sched.pick(0, cands, 200), 1);
}

TEST(CritCasRas, CritRasBeatsNonCritCas)
{
    CritFrFcfsScheduler sched(CritOrder::CritFirst, 0);
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Act, 0, 9), cand(DramCmd::Read, 5, 0)};
    EXPECT_EQ(sched.pick(0, cands, 200), 0);
}

TEST(CasRasCrit, MagnitudeOutranksAge)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst, 0);
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 1, 100), cand(DramCmd::Read, 9, 5000)};
    EXPECT_EQ(sched.pick(0, cands, 200), 1);
}

TEST(CasRasCrit, AgeBreaksMagnitudeTies)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst, 0);
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 7, 42), cand(DramCmd::Read, 3, 42)};
    EXPECT_EQ(sched.pick(0, cands, 200), 1);
}

TEST(CasRasCrit, StarvationCapPromotesOldRequests)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst, 50);
    SchedCandidate old = cand(DramCmd::Read, 0, 0);
    old.arrival = 100;
    SchedCandidate young = cand(DramCmd::Read, 9, 7);
    young.arrival = 999;
    // Past the cap, the old non-critical request outranks magnitude 7.
    EXPECT_EQ(sched.pick(0, {old, young}, 1000), 0);
    EXPECT_GT(sched.starvationPromotions(), 0u);
}

TEST(CasRasCrit, NoPromotionBeforeCap)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst, 6000);
    SchedCandidate old = cand(DramCmd::Read, 0, 0);
    old.arrival = 100;
    SchedCandidate young = cand(DramCmd::Read, 9, 7);
    young.arrival = 999;
    EXPECT_EQ(sched.pick(0, {old, young}, 1000), 1);
    EXPECT_EQ(sched.starvationPromotions(), 0u);
}

namespace
{

/** Feed PAR-BS a mirrored queue entry. */
void
feed(ParBsScheduler &sched, std::uint64_t id, CoreId core,
     std::uint32_t bank, bool write = false)
{
    MemRequest req;
    req.id = id;
    req.core = core;
    req.type = write ? ReqType::Write : ReqType::Read;
    DramCoord coord;
    coord.rank = 0;
    coord.bank = bank;
    sched.onEnqueue(0, req, coord, 10);
}

} // namespace

TEST(ParBs, MarkedRequestsOutrankRowHits)
{
    ParBsScheduler sched(1, 2, 8, /*markingCap=*/1);
    feed(sched, 0, 0, 0); // will be marked (first of thread 0, bank 0)
    feed(sched, 1, 0, 0); // exceeds cap: unmarked
    // Unmarked row hit vs marked row miss: marked wins.
    SchedCandidate hit = cand(DramCmd::Read, 1, 0, 0);
    SchedCandidate marked = cand(DramCmd::Act, 0, 0, 0);
    EXPECT_EQ(sched.pick(0, {hit, marked}, 100), 1);
    EXPECT_EQ(sched.batchesFormed(), 1u);
}

TEST(ParBs, ShortestJobRankedFirst)
{
    ParBsScheduler sched(1, 2, 8, 5);
    // Thread 0: 4 requests on one bank (max load 4). Thread 1: 1.
    for (std::uint64_t i = 0; i < 4; ++i)
        feed(sched, i, 0, 0);
    feed(sched, 4, 1, 1);
    // Both marked and row-hit: the lighter thread (1) wins despite age.
    SchedCandidate heavy = cand(DramCmd::Read, 0, 0, 0);
    SchedCandidate light = cand(DramCmd::Read, 4, 0, 1);
    EXPECT_EQ(sched.pick(0, {heavy, light}, 100), 1);
}

TEST(ParBs, WritebacksWithoutThreadAreSafe)
{
    // Regression: writebacks carry core == kNoCore and must neither
    // crash batch formation nor be marked.
    ParBsScheduler sched(1, 4, 8, 5);
    MemRequest wb;
    wb.id = 0;
    wb.core = kNoCore;
    wb.type = ReqType::Write;
    DramCoord coord;
    sched.onEnqueue(0, wb, coord, 10);
    feed(sched, 1, 2, 3);
    SchedCandidate write = cand(DramCmd::Write, 0, 0, kNoCore);
    SchedCandidate demand = cand(DramCmd::Read, 1, 0, 2);
    EXPECT_EQ(sched.pick(0, {write, demand}, 100), 1);
}

TEST(ParBs, NewBatchWhenMarkedDrains)
{
    ParBsScheduler sched(1, 2, 8, 1);
    feed(sched, 0, 0, 0);
    const std::vector<SchedCandidate> first = {
        cand(DramCmd::Read, 0, 0, 0)};
    EXPECT_EQ(sched.pick(0, first, 100), 0);
    sched.onIssue(0, first[0], 100); // CAS retires the marked request
    feed(sched, 1, 1, 0);
    const std::vector<SchedCandidate> second = {
        cand(DramCmd::Read, 1, 0, 1)};
    EXPECT_EQ(sched.pick(0, second, 110), 0);
    EXPECT_EQ(sched.batchesFormed(), 2u);
}

TEST(Tcm, LatencyClusterOutranksBandwidth)
{
    SchedConfig cfg;
    cfg.tcmQuantum = 100;
    TcmScheduler sched(2, cfg, false, 1);
    // Core 1 hogs bandwidth during the first quantum.
    for (int i = 0; i < 100; ++i)
        sched.onIssue(0, cand(DramCmd::Read, i, 0, 1), 10);
    sched.onIssue(0, cand(DramCmd::Read, 100, 0, 0), 10);
    sched.tick(100); // recluster
    EXPECT_TRUE(sched.inLatencyCluster(0));
    EXPECT_FALSE(sched.inLatencyCluster(1));
    // Row-hit candidate of the hog vs row-miss of the light thread:
    // thread rank dominates.
    SchedCandidate hog = cand(DramCmd::Read, 1, 0, 1);
    SchedCandidate light = cand(DramCmd::Act, 5, 0, 0);
    EXPECT_EQ(sched.pick(0, {hog, light}, 120), 1);
}

TEST(Tcm, CritTiebreakOnlyWithinRank)
{
    SchedConfig cfg;
    TcmScheduler sched(2, cfg, /*critTiebreak=*/true, 1);
    // Same thread, both row hits: criticality decides.
    SchedCandidate a = cand(DramCmd::Read, 1, 0, 0);
    SchedCandidate b = cand(DramCmd::Read, 9, 50, 0);
    EXPECT_EQ(sched.pick(0, {a, b}, 100), 1);
    // Without the hybrid flag, age decides.
    TcmScheduler plain(2, cfg, false, 1);
    EXPECT_EQ(plain.pick(0, {a, b}, 100), 0);
}

TEST(Ahb, PrefersCasAndAvoidsTurnaround)
{
    AhbScheduler sched;
    // Seed history: last CAS was a read on rank 0.
    sched.onIssue(0, cand(DramCmd::Read, 0, 0, 0), 10);
    SchedCandidate sameKind = cand(DramCmd::Read, 5, 0, 0);
    SchedCandidate turnaround = cand(DramCmd::Write, 1, 0, 0);
    // Despite being younger, the read avoids the read->write switch.
    EXPECT_EQ(sched.pick(0, {turnaround, sameKind}, 20), 1);
}

TEST(Ahb, CasBeatsRowCommands)
{
    AhbScheduler sched;
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Pre, 0), cand(DramCmd::Read, 9)};
    EXPECT_EQ(sched.pick(0, cands, 20), 1);
}

TEST(Morse, PicksValidIndexAndIsDeterministic)
{
    MorseScheduler a(1, 8, 24, false, 99);
    MorseScheduler b(1, 8, 24, false, 99);
    std::vector<SchedCandidate> cands;
    for (std::uint64_t i = 0; i < 10; ++i)
        cands.push_back(cand(i % 2 ? DramCmd::Read : DramCmd::Act, i));
    for (DramCycle now = 1; now < 200; ++now) {
        const int pa = a.pick(0, cands, now);
        const int pb = b.pick(0, cands, now);
        ASSERT_GE(pa, 0);
        ASSERT_LT(pa, static_cast<int>(cands.size()));
        EXPECT_EQ(pa, pb);
    }
}

TEST(Morse, RestrictionConsidersOldestOnly)
{
    MorseScheduler sched(1, 8, /*maxCommands=*/2, false, 7);
    // Ten candidates; only the two oldest (seq 0, 1) are evaluable.
    std::vector<SchedCandidate> cands;
    for (std::uint64_t i = 0; i < 10; ++i)
        cands.push_back(cand(DramCmd::Read, i));
    for (DramCycle now = 1; now < 100; ++now) {
        const int p = sched.pick(0, cands, now);
        EXPECT_LE(cands[p].seq, 1u);
    }
}

TEST(Morse, LearnsToPreferDataMovingCommands)
{
    MorseScheduler sched(1, 8, 24, false, 3);
    std::vector<SchedCandidate> cands = {cand(DramCmd::Pre, 0),
                                         cand(DramCmd::Read, 1)};
    int casPicks = 0;
    const int rounds = 4000;
    for (int i = 0; i < rounds; ++i) {
        const int p = sched.pick(0, cands, 10 + i);
        if (cands[p].cmd == DramCmd::Read) {
            ++casPicks;
            sched.onIssue(0, cands[p], 10 + i); // reward: data moved
        }
    }
    // After training, CAS should dominate (well above the 50% of a
    // random policy).
    EXPECT_GT(casPicks, rounds * 3 / 4);
}

TEST(Registry, BuildsEveryAlgorithm)
{
    for (const SchedAlgo algo :
         {SchedAlgo::Fcfs, SchedAlgo::FrFcfs, SchedAlgo::CritCasRas,
          SchedAlgo::CasRasCrit, SchedAlgo::ParBs, SchedAlgo::Tcm,
          SchedAlgo::TcmCrit, SchedAlgo::Ahb, SchedAlgo::Morse,
          SchedAlgo::CritRl, SchedAlgo::Atlas, SchedAlgo::Minimalist,
          SchedAlgo::Bliss, SchedAlgo::BatchCapRr,
          SchedAlgo::DynThreshCrit}) {
        SystemConfig cfg = SystemConfig::parallelDefault();
        cfg.sched.algo = algo;
        const auto sched = makeScheduler(cfg);
        ASSERT_NE(sched, nullptr);
        EXPECT_STREQ(sched->name(), toString(algo));
    }
}

/** Fuzz: every policy returns a valid index on arbitrary inputs. */
class SchedFuzzTest : public ::testing::TestWithParam<SchedAlgo>
{
};

TEST_P(SchedFuzzTest, AlwaysPicksValidCandidate)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = GetParam();
    const auto sched = makeScheduler(cfg);

    std::uint64_t state = 0x1234abcd;
    auto rnd = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };

    for (int round = 0; round < 300; ++round) {
        std::vector<SchedCandidate> cands;
        const std::size_t n = 1 + rnd() % 32;
        for (std::size_t i = 0; i < n; ++i) {
            SchedCandidate c;
            c.cmd = static_cast<DramCmd>(rnd() % 4);
            c.rowHit =
                c.cmd == DramCmd::Read || c.cmd == DramCmd::Write;
            c.isWrite = c.cmd == DramCmd::Write;
            c.isPrefetch = rnd() % 8 == 0;
            c.coord.rank = rnd() % 4;
            c.coord.bank = rnd() % 8;
            c.core = rnd() % 10; // sometimes out of range on purpose
            if (rnd() % 4 == 0)
                c.core = kNoCore;
            c.crit = rnd() % 3 ? 0 : static_cast<CritLevel>(rnd());
            c.seq = rnd();
            c.arrival = rnd() % 1000;
            c.queueIndex = static_cast<std::uint32_t>(i);
            cands.push_back(c);
        }
        const DramCycle now = 1000 + round;
        sched->tick(now);
        const int p = sched->pick(0, cands, now);
        ASSERT_GE(p, 0);
        ASSERT_LT(p, static_cast<int>(cands.size()));
        sched->onIssue(0, cands[p], now);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SchedFuzzTest,
    ::testing::Values(SchedAlgo::Fcfs, SchedAlgo::FrFcfs,
                      SchedAlgo::CritCasRas, SchedAlgo::CasRasCrit,
                      SchedAlgo::ParBs, SchedAlgo::Tcm,
                      SchedAlgo::TcmCrit, SchedAlgo::Ahb,
                      SchedAlgo::Morse, SchedAlgo::CritRl,
                      SchedAlgo::Atlas, SchedAlgo::Minimalist,
                      SchedAlgo::Bliss, SchedAlgo::BatchCapRr,
                      SchedAlgo::DynThreshCrit));

TEST(Ahb, AdaptsTargetMixAcrossEpochs)
{
    AhbScheduler sched(/*epoch=*/100);
    // Epoch 1 arrivals: write-heavy.
    for (std::uint64_t i = 0; i < 20; ++i) {
        MemRequest req;
        req.type = i % 2 ? ReqType::Write : ReqType::Read;
        sched.onEnqueue(0, req, DramCoord{}, 10);
    }
    sched.tick(100); // target write fraction becomes ~0.5
    // With zero writes issued yet, the scheduler now wants a write.
    SchedCandidate rd = cand(DramCmd::Read, 5, 0, 0);
    SchedCandidate wr = cand(DramCmd::Write, 9, 0, 0);
    EXPECT_EQ(sched.pick(0, {rd, wr}, 120), 1);
}

TEST(Tcm, ShuffleIsDeterministicPerSeed)
{
    SchedConfig cfg;
    cfg.tcmQuantum = 50;
    TcmScheduler a(8, cfg, false, 42);
    TcmScheduler b(8, cfg, false, 42);
    // Drive identical issue + tick histories; picks must match.
    for (DramCycle now = 1; now < 2000; now += 7) {
        a.tick(now);
        b.tick(now);
        std::vector<SchedCandidate> cands;
        for (std::uint64_t i = 0; i < 8; ++i)
            cands.push_back(cand(DramCmd::Read, i, 0, i % 8));
        const int pa = a.pick(0, cands, now);
        ASSERT_EQ(pa, b.pick(0, cands, now));
        a.onIssue(0, cands[pa], now);
        b.onIssue(0, cands[pa], now);
    }
}

TEST(Morse, CritRlConsumesCriticalityFeatures)
{
    // Crit-RL must distinguish two otherwise-identical candidates by
    // criticality: after rewarding only the critical pick, it should
    // prefer critical candidates.
    MorseScheduler sched(1, 8, 24, /*useCriticality=*/true, 11);
    SchedCandidate plain = cand(DramCmd::Read, 0, 0, 0);
    SchedCandidate critical = cand(DramCmd::Read, 1, 5000, 0);
    int critPicks = 0;
    const int rounds = 4000;
    for (int i = 0; i < rounds; ++i) {
        const int p = sched.pick(0, {plain, critical}, 10 + i);
        if (p == 1) {
            ++critPicks;
            sched.onIssue(0, critical, 10 + i); // reward
        }
    }
    EXPECT_GT(critPicks, rounds / 2);
}

TEST(CasRasCrit, WritebacksAreNonCriticalClass)
{
    CritFrFcfsScheduler sched(CritOrder::CasRasFirst, 0);
    // A younger critical read row hit beats an older write row hit.
    SchedCandidate wb = cand(DramCmd::Write, 0, 0, kNoCore);
    SchedCandidate rd = cand(DramCmd::Read, 9, 3, 1);
    EXPECT_EQ(sched.pick(0, {wb, rd}, 100), 1);
}

TEST(Bliss, BlacklistsExactlyAtThreshold)
{
    BlissScheduler sched(1, 4, /*threshold=*/4, /*clearInterval=*/10000);
    // Three consecutive CAS for core 0: one short of the threshold.
    for (int i = 0; i < 3; ++i)
        sched.onIssue(0, cand(DramCmd::Read, i, 0, 0), 10 + i);
    EXPECT_FALSE(sched.isBlacklisted(0));
    EXPECT_EQ(sched.streak(0), 3u);
    // The tie-at-threshold issue: the fourth consecutive CAS is the
    // boundary case and must trip the blacklist.
    sched.onIssue(0, cand(DramCmd::Read, 3, 0, 0), 13);
    EXPECT_TRUE(sched.isBlacklisted(0));
    EXPECT_EQ(sched.streak(0), 0u); // streak restarts after the trip
}

TEST(Bliss, AlternatingCoresNeverBlacklist)
{
    BlissScheduler sched(1, 2, /*threshold=*/4, /*clearInterval=*/10000);
    for (int i = 0; i < 40; ++i)
        sched.onIssue(0, cand(DramCmd::Read, i, 0, i % 2), 10 + i);
    EXPECT_FALSE(sched.isBlacklisted(0));
    EXPECT_FALSE(sched.isBlacklisted(1));
}

TEST(Bliss, BlacklistedCoreLosesToOthers)
{
    BlissScheduler sched(1, 2, /*threshold=*/2, /*clearInterval=*/10000);
    sched.onIssue(0, cand(DramCmd::Read, 0, 0, 0), 10);
    sched.onIssue(0, cand(DramCmd::Read, 1, 0, 0), 11);
    ASSERT_TRUE(sched.isBlacklisted(0));
    // Older row hit from the blacklisted core vs younger row miss from
    // core 1: the non-blacklisted request wins.
    SchedCandidate hog = cand(DramCmd::Read, 2, 0, 0);
    SchedCandidate other = cand(DramCmd::Act, 9, 0, 1);
    EXPECT_EQ(sched.pick(0, {hog, other}, 20), 1);
    // RAS commands never advance the streak.
    sched.onIssue(0, other, 20);
    EXPECT_EQ(sched.streak(0), 0u);
}

TEST(Bliss, ClearingIntervalWraparound)
{
    BlissScheduler sched(1, 2, /*threshold=*/2, /*clearInterval=*/100);
    sched.onIssue(0, cand(DramCmd::Read, 0, 0, 0), 10);
    sched.onIssue(0, cand(DramCmd::Read, 1, 0, 0), 11);
    ASSERT_TRUE(sched.isBlacklisted(0));
    EXPECT_EQ(sched.nextEventCycle(11), 100u);

    // Before the boundary nothing clears.
    sched.tick(99);
    EXPECT_TRUE(sched.isBlacklisted(0));

    // An event-driven cycle skip can land past several clearing
    // boundaries at once; the next clear must re-arm strictly beyond
    // `now`, not at a stale cycle in the past.
    sched.tick(250);
    EXPECT_FALSE(sched.isBlacklisted(0));
    EXPECT_EQ(sched.nextClear(), 300u);
    EXPECT_GT(sched.nextEventCycle(250), 250u);
}

TEST(BatchCapRr, RotatesAfterCap)
{
    BatchCapRrScheduler sched(1, 2, /*cap=*/2);
    EXPECT_EQ(sched.activeCore(0), 0u);
    // While core 0 holds the batch, its younger request beats core 1's
    // older one.
    SchedCandidate c0 = cand(DramCmd::Read, 9, 0, 0);
    SchedCandidate c1 = cand(DramCmd::Read, 1, 0, 1);
    EXPECT_EQ(sched.pick(0, {c1, c0}, 20), 1);

    sched.onIssue(0, c0, 20);
    EXPECT_EQ(sched.served(0), 1u);
    sched.onIssue(0, c0, 21); // cap reached: rotate to core 1
    EXPECT_EQ(sched.activeCore(0), 1u);
    EXPECT_EQ(sched.served(0), 0u);
    EXPECT_EQ(sched.pick(0, {c1, c0}, 22), 0);
}

TEST(BatchCapRr, RowHitsWinWithinTheActiveBatch)
{
    BatchCapRrScheduler sched(1, 2, /*cap=*/8);
    SchedCandidate miss = cand(DramCmd::Act, 1, 0, 0);
    SchedCandidate hit = cand(DramCmd::Read, 9, 0, 0);
    EXPECT_EQ(sched.pick(0, {miss, hit}, 20), 1);
}

TEST(DynThreshCrit, CriticalCasOutranksTheRest)
{
    DynThreshCritScheduler sched(/*epoch=*/1000, /*targetPct=*/25);
    // Threshold starts at 1, so crit=5 is critical and crit=0 is not.
    SchedCandidate plain = cand(DramCmd::Read, 1, 0, 0);
    SchedCandidate critical = cand(DramCmd::Read, 9, 5, 1);
    SchedCandidate critRas = cand(DramCmd::Act, 0, 9, 2);
    EXPECT_EQ(sched.pick(0, {plain, critical, critRas}, 20), 1);
    // Non-critical CAS still beats a critical row command.
    EXPECT_EQ(sched.pick(0, {plain, critRas}, 21), 0);
}

TEST(DynThreshCrit, ThresholdAdaptsTowardTargetMix)
{
    DynThreshCritScheduler sched(/*epoch=*/100, /*targetPct=*/25);
    ASSERT_EQ(sched.threshold(), 1u);
    // Epoch 1: every CAS lands in the critical class (100% > 25%), so
    // the threshold doubles.
    for (int i = 0; i < 8; ++i)
        sched.onIssue(0, cand(DramCmd::Read, i, 1, 0), 10 + i);
    EXPECT_EQ(sched.casIssued(), 8u);
    EXPECT_EQ(sched.critIssued(), 8u);
    sched.tick(100);
    EXPECT_EQ(sched.threshold(), 2u);
    EXPECT_EQ(sched.casIssued(), 0u); // counters reset per epoch

    // Epoch 2: magnitude 1 is now below the threshold (0% < 25%), so
    // the threshold halves back.
    for (int i = 0; i < 8; ++i)
        sched.onIssue(0, cand(DramCmd::Read, i, 1, 0), 110 + i);
    EXPECT_EQ(sched.critIssued(), 0u);
    // A skip past several epoch boundaries must still re-arm the next
    // epoch strictly beyond `now`.
    sched.tick(450);
    EXPECT_EQ(sched.threshold(), 1u);
    EXPECT_GT(sched.nextEventCycle(450), 450u);
}

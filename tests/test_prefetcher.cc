/** @file Unit tests for the L2 stream prefetcher. */

#include <gtest/gtest.h>

#include "mem/prefetcher.hh"

using namespace critmem;

namespace
{

PrefetchConfig
config(std::uint32_t streams = 4, std::uint32_t distance = 8,
       std::uint32_t degree = 2)
{
    PrefetchConfig cfg;
    cfg.enabled = true;
    cfg.streams = streams;
    cfg.distance = distance;
    cfg.degree = degree;
    return cfg;
}

} // namespace

class PrefetcherTest : public ::testing::Test
{
  protected:
    stats::Group root_;
    std::vector<Addr> out_;
};

TEST_F(PrefetcherTest, NoPrefetchBeforeConfirmation)
{
    StreamPrefetcher pf(config(), 64, root_);
    pf.onDemandMiss(0x0, out_);
    EXPECT_TRUE(out_.empty());
    pf.onDemandMiss(0x40, out_);
    EXPECT_TRUE(out_.empty()); // confidence 1, not confirmed yet
}

TEST_F(PrefetcherTest, ConfirmedStreamPrefetchesAtDistance)
{
    StreamPrefetcher pf(config(4, 8, 2), 64, root_);
    pf.onDemandMiss(0x0, out_);
    pf.onDemandMiss(0x40, out_);
    pf.onDemandMiss(0x80, out_);
    ASSERT_EQ(out_.size(), 2u);
    // Demand at block 2, distance 8: prefetch blocks 10 and 11.
    EXPECT_EQ(out_[0], Addr{10 * 64});
    EXPECT_EQ(out_[1], Addr{11 * 64});
}

TEST_F(PrefetcherTest, DescendingStreamDetected)
{
    StreamPrefetcher pf(config(4, 8, 2), 64, root_);
    pf.onDemandMiss(100 * 64, out_);
    pf.onDemandMiss(99 * 64, out_);
    pf.onDemandMiss(98 * 64, out_);
    ASSERT_EQ(out_.size(), 2u);
    EXPECT_EQ(out_[0], Addr{90 * 64});
    EXPECT_EQ(out_[1], Addr{89 * 64});
}

TEST_F(PrefetcherTest, DirectionFlipResetsConfidence)
{
    StreamPrefetcher pf(config(4, 8, 2), 64, root_);
    pf.onDemandMiss(0x0, out_);
    pf.onDemandMiss(0x40, out_);
    pf.onDemandMiss(0x0, out_); // flip down
    out_.clear();
    pf.onDemandMiss(0x40, out_); // flip up again: confidence 1
    EXPECT_TRUE(out_.empty());
}

TEST_F(PrefetcherTest, FarMissAllocatesNewStream)
{
    StreamPrefetcher pf(config(2, 8, 2), 64, root_);
    pf.onDemandMiss(0x0, out_);
    pf.onDemandMiss(1 << 20, out_); // outside the match window
    EXPECT_EQ(pf.prefStats().streamsAllocated.value(), 2u);
}

TEST_F(PrefetcherTest, LruStreamReplaced)
{
    StreamPrefetcher pf(config(2, 8, 2), 64, root_);
    pf.onDemandMiss(0x0, out_);        // stream A
    pf.onDemandMiss(1 << 20, out_);    // stream B
    pf.onDemandMiss(2 << 20, out_);    // stream C replaces A (LRU)
    // A's region no longer matches: allocating again proves eviction.
    pf.onDemandMiss(0x0, out_);
    EXPECT_EQ(pf.prefStats().streamsAllocated.value(), 4u);
}

TEST_F(PrefetcherTest, PointerAdvancesWithoutReissuing)
{
    StreamPrefetcher pf(config(4, 4, 2), 64, root_);
    pf.onDemandMiss(0 * 64, out_);
    pf.onDemandMiss(1 * 64, out_);
    pf.onDemandMiss(2 * 64, out_);
    const std::size_t first = out_.size();
    pf.onDemandMiss(3 * 64, out_);
    // New prefetches continue from the pointer; no duplicates.
    std::sort(out_.begin(), out_.end());
    EXPECT_EQ(std::adjacent_find(out_.begin(), out_.end()), out_.end());
    EXPECT_GT(out_.size(), first);
}

TEST_F(PrefetcherTest, ThrottleCutsDegreeOnUselessness)
{
    StreamPrefetcher pf(config(4, 4, 4), 64, root_);
    // Never report usefulness; after an epoch of 256 issued the
    // degree must fall to 1.
    std::int64_t block = 0;
    for (int i = 0; i < 400; ++i) {
        out_.clear();
        pf.onDemandMiss(static_cast<Addr>(block) * 64, out_);
        block += 1;
    }
    out_.clear();
    pf.onDemandMiss(static_cast<Addr>(block) * 64, out_);
    EXPECT_LE(out_.size(), 1u);
    EXPECT_GE(pf.prefStats().throttleEpochs.value(), 1u);
}

TEST_F(PrefetcherTest, AccurateStreamKeepsFullDegree)
{
    StreamPrefetcher pf(config(4, 4, 4), 64, root_);
    std::int64_t block = 0;
    for (int i = 0; i < 400; ++i) {
        out_.clear();
        pf.onDemandMiss(static_cast<Addr>(block) * 64, out_);
        for (std::size_t k = 0; k < out_.size(); ++k)
            pf.onUseful(); // everything consumed
        block += 1;
    }
    out_.clear();
    pf.onDemandMiss(static_cast<Addr>(block) * 64, out_);
    // In steady state the pointer rate-matches the demand stream (one
    // block per trigger), but the degree is never throttled.
    EXPECT_GE(out_.size(), 1u);
    EXPECT_EQ(pf.prefStats().throttleEpochs.value(), 0u);
}

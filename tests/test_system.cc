/** @file Integration tests for the full System and the experiment
 *  harness. These use tiny quotas so the whole file runs in seconds. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sched/crit_frfcfs.hh"
#include "system/experiment.hh"
#include "system/system.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

SystemConfig
smallParallel(SchedAlgo algo = SchedAlgo::FrFcfs,
              CritPredictor pred = CritPredictor::None)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = algo;
    cfg.crit.predictor = pred;
    return cfg;
}

} // namespace

TEST(System, ParallelRunCompletesAllCores)
{
    System sys(smallParallel(), appParams("mg"));
    const Cycle cycles = sys.run(2000);
    EXPECT_GT(cycles, 0u);
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        EXPECT_TRUE(sys.core(i).finished());
        EXPECT_GE(sys.core(i).committed(), 2000u);
    }
}

TEST(System, DeterministicAcrossInstances)
{
    System a(smallParallel(), appParams("fft"));
    System b(smallParallel(), appParams("fft"));
    EXPECT_EQ(a.run(2000), b.run(2000));
}

TEST(System, SeedChangesOutcome)
{
    SystemConfig cfg = smallParallel();
    System a(cfg, appParams("fft"));
    cfg.seed = 2;
    System b(cfg, appParams("fft"));
    EXPECT_NE(a.run(2000), b.run(2000));
}

TEST(System, SchedulerChangesExecution)
{
    System frf(smallParallel(), appParams("art"));
    System crit(smallParallel(SchedAlgo::CasRasCrit,
                              CritPredictor::CbpMaxStall),
                appParams("art"));
    frf.prewarmCaches();
    crit.prewarmCaches();
    EXPECT_NE(frf.run(3000), crit.run(3000));
}

TEST(System, PrewarmPopulatesL2)
{
    System sys(smallParallel(), appParams("swim"));
    const std::uint64_t before =
        sys.hierarchy().l2().cacheStats().evictions.value();
    sys.prewarmCaches(0.9, 0.3);
    sys.run(2000);
    // A ~full L2 must evict on new fills almost immediately.
    EXPECT_GT(sys.hierarchy().l2().cacheStats().evictions.value(),
              before);
}

TEST(System, PrewarmDirtyLinesCauseWritebacks)
{
    System sys(smallParallel(), appParams("swim"));
    sys.prewarmCaches(0.95, 0.5);
    sys.run(3000);
    std::uint64_t writes = 0;
    for (std::uint32_t c = 0; c < sys.dram().numChannels(); ++c)
        writes += sys.dram().channel(c).channelStats().writes.value();
    EXPECT_GT(writes, 0u);
}

TEST(System, ResetStatsWindowZeroesCounters)
{
    System sys(smallParallel(), appParams("mg"));
    sys.run(1000, /*stopAtQuota=*/false);
    EXPECT_GT(sys.core(0).coreStats().cycles.value(), 0u);
    sys.resetStatsWindow();
    EXPECT_EQ(sys.core(0).coreStats().cycles.value(), 0u);
    EXPECT_EQ(sys.windowCycles(), 0u);
    EXPECT_FALSE(sys.core(0).finished());
}

TEST(System, WindowCyclesMeasureOnlyTheWindow)
{
    System sys(smallParallel(), appParams("mg"));
    sys.run(1000, false);
    const Cycle warmupEnd = sys.cycle();
    sys.resetStatsWindow();
    sys.run(1000, true);
    EXPECT_EQ(sys.windowCycles(), sys.cycle() - warmupEnd);
}

TEST(System, StatsTreePathsResolve)
{
    System sys(smallParallel(), appParams("cg"));
    sys.run(1500);
    EXPECT_NE(sys.statsRoot().findScalar("core0.committedOps"),
              nullptr);
    EXPECT_NE(sys.statsRoot().findScalar("hier.mem.loads"), nullptr);
    EXPECT_NE(sys.statsRoot().findScalar("dram.channel0.reads"),
              nullptr);
    EXPECT_NE(sys.statsRoot().findHistogram(
                  "dram.channel0.readLatency"),
              nullptr);
}

TEST(System, DataBusNeverOverCommitted)
{
    System sys(smallParallel(), appParams("radix"));
    sys.prewarmCaches();
    sys.run(4000);
    for (std::uint32_t c = 0; c < sys.dram().numChannels(); ++c) {
        const auto &ds = sys.dram().channel(c).channelStats();
        // busyDataCycles is in DRAM cycles; window is CPU cycles / 4.
        EXPECT_LE(ds.busyDataCycles.value(), sys.cycle() / 4 + 1);
    }
}

TEST(System, CasCountMatchesCompletedTransactions)
{
    System sys(smallParallel(), appParams("mg"));
    sys.run(3000);
    // Let the DRAM drain.
    std::uint64_t reads = 0;
    std::uint64_t hits = 0, misses = 0;
    for (std::uint32_t c = 0; c < sys.dram().numChannels(); ++c) {
        const auto &ds = sys.dram().channel(c).channelStats();
        reads += ds.reads.value();
        hits += ds.rowHits.value();
        misses += ds.rowMisses.value();
    }
    EXPECT_GT(reads, 0u);
    EXPECT_EQ(hits, [&] {
        std::uint64_t rw = 0;
        for (std::uint32_t c = 0; c < sys.dram().numChannels(); ++c) {
            const auto &ds = sys.dram().channel(c).channelStats();
            rw += ds.reads.value() + ds.writes.value();
        }
        return rw;
    }());
}

TEST(System, MultiprogDisjointPerCoreApps)
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    std::vector<AppParams> perCore = {
        appParams("crafty"), appParams("mcf"), appParams("lu"),
        appParams("is")};
    System sys(cfg, perCore);
    sys.run(1500, /*stopAtQuota=*/false);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_GE(sys.core(i).committed(), 1500u);
    // The CPU-bound app must finish (much) earlier than mcf.
    EXPECT_LT(sys.core(0).finishCycle(), sys.core(1).finishCycle());
}

TEST(System, IdleCoresFinishInstantly)
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    std::vector<AppParams> perCore(4);
    perCore[0] = appParams("crafty");
    System sys(cfg, perCore);
    EXPECT_TRUE(sys.core(1).finished());
    sys.run(1000);
    EXPECT_EQ(sys.core(1).committed(), 0u);
    EXPECT_GE(sys.core(0).committed(), 1000u);
}

TEST(SystemDeath, WrongPerCoreCountIsFatal)
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    std::vector<AppParams> perCore(3);
    EXPECT_DEATH({ System sys(cfg, perCore); }, "cores");
}

TEST(Experiment, CollectAggregatesAreConsistent)
{
    const std::uint64_t quota = 2000;
    const RunResult r =
        runParallel(smallParallel(), appParams("equake"), quota);
    EXPECT_GT(r.cycles, 0u);
    ASSERT_EQ(r.finishCycles.size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_NE(r.finishCycles[i], kNoCycle);
        EXPECT_LE(r.finishCycles[i], r.cycles);
        EXPECT_GE(r.committed[i], quota);
    }
    EXPECT_GE(r.dynamicLoads, r.blockingLoads);
    EXPECT_GT(r.demandMisses, 0u);
    EXPECT_GT(r.ipc(0, quota), 0.0);
}

TEST(Experiment, SpeedupIsRatioOfCycles)
{
    RunResult a, b;
    a.cycles = 1000;
    b.cycles = 800;
    EXPECT_DOUBLE_EQ(speedup(a, b), 1.25);
}

TEST(Experiment, WeightedSpeedupAndMaxSlowdown)
{
    RunResult run;
    run.finishCycles = {1000, 2000, 1000, 4000};
    const std::uint64_t quota = 1000;
    // shared IPCs: 1.0, 0.5, 1.0, 0.25
    const std::array<double, 4> alone = {1.0, 1.0, 2.0, 0.5};
    // WS = 1 + 0.5 + 0.5 + 0.5 = 2.5
    EXPECT_NEAR(weightedSpeedup(run, alone, quota), 2.5, 1e-9);
    // slowdowns: 1, 2, 2, 2 -> max 2
    EXPECT_NEAR(maxSlowdown(run, alone, quota), 2.0, 1e-9);
}

TEST(Experiment, RunAloneGivesPositiveIpc)
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    cfg.sched.algo = SchedAlgo::ParBs;
    const double ipc = runAlone(cfg, appParams("crafty"), 1500);
    EXPECT_GT(ipc, 0.3);
    EXPECT_LT(ipc, 4.0);
}

TEST(Experiment, RunBundleMeasuresEveryApp)
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    cfg.sched.algo = SchedAlgo::ParBs;
    const RunResult r = runBundle(cfg, multiprogBundles()[0], 1200);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_GT(r.ipc(i, 1200), 0.0);
}

TEST(Experiment, DefaultQuotaReadsEnvironment)
{
    ::unsetenv("CRITMEM_INSTRS");
    EXPECT_EQ(defaultQuota(1234), 1234u);
    ::setenv("CRITMEM_INSTRS", "777", 1);
    EXPECT_EQ(defaultQuota(1234), 777u);
    ::setenv("CRITMEM_INSTRS", "garbage", 1);
    EXPECT_EQ(defaultQuota(1234), 1234u);
    ::unsetenv("CRITMEM_INSTRS");
}

TEST(Experiment, NaiveForwardingRunsEndToEnd)
{
    SystemConfig cfg =
        smallParallel(SchedAlgo::CasRasCrit, CritPredictor::NaiveForward);
    const RunResult r = runParallel(cfg, appParams("scalparc"), 1500);
    EXPECT_GT(r.cycles, 0u);
    // Forwarding marks some in-flight misses critical.
    EXPECT_GT(r.critMissCount + r.nonCritMissCount, 0u);
}

TEST(Experiment, StarvationCapRarelyHit)
{
    // The paper observes the 6000-cycle cap is essentially never
    // reached; with this simulator's denser critical population a
    // handful of promotions can occur, but they must stay a tiny
    // fraction of the serviced requests (EXPERIMENTS.md discusses
    // this deviation).
    SystemConfig cfg =
        smallParallel(SchedAlgo::CasRasCrit, CritPredictor::CbpMaxStall);
    System sys(cfg, appParams("mg"));
    sys.prewarmCaches();
    sys.run(3000);
    auto *sched =
        dynamic_cast<CritFrFcfsScheduler *>(&sys.scheduler());
    ASSERT_NE(sched, nullptr);
    std::uint64_t cas = 0;
    for (std::uint32_t c = 0; c < sys.dram().numChannels(); ++c) {
        const auto &ds = sys.dram().channel(c).channelStats();
        cas += ds.reads.value() + ds.writes.value();
    }
    // Row-miss writebacks do starve under the unified queue (our
    // traffic is writeback-heavier than the paper's; see
    // EXPERIMENTS.md), but promotions must stay a small fraction.
    EXPECT_LT(sched->starvationPromotions(), cas / 20 + 5);
}

TEST(Experiment, WeightedSpeedupWithinSaneBounds)
{
    // End-to-end: a real bundle's weighted speedup normalized to
    // itself must be exactly 1; against alone-IPCs it lies in (0, 4].
    SystemConfig cfg = SystemConfig::multiprogDefault();
    cfg.sched.algo = SchedAlgo::ParBs;
    const std::uint64_t quota = 1500;
    const Bundle &bundle = multiprogBundles()[0];
    std::array<double, 4> alone{};
    for (std::size_t i = 0; i < 4; ++i)
        alone[i] = runAlone(cfg, appParams(bundle.apps[i]), quota);
    const RunResult run = runBundle(cfg, bundle, quota);
    const double ws = weightedSpeedup(run, alone, quota);
    EXPECT_GT(ws, 0.5);
    EXPECT_LE(ws, 4.0); // each app can at best match running alone
    EXPECT_GE(maxSlowdown(run, alone, quota), 1.0 - 1e-6);
}

TEST(Experiment, TcmHybridRunsOnBundles)
{
    SystemConfig cfg = SystemConfig::multiprogDefault();
    cfg.sched.algo = SchedAlgo::TcmCrit;
    cfg.crit.predictor = CritPredictor::CbpMaxStall;
    cfg.crit.tableEntries = 64;
    const RunResult run =
        runBundle(cfg, multiprogBundles()[5], 1200); // RFEV
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_GT(run.ipc(i, 1200), 0.0);
}

TEST(Experiment, CriticalityHelpsTheProbeAppEndToEnd)
{
    // The repository's one-line acceptance check: the paper's
    // mechanism produces a real speedup on a chase-heavy app.
    const std::uint64_t quota = 6000;
    const RunResult base = runParallel(
        smallParallel(), appParams("scalparc"), quota);
    const RunResult crit = runParallel(
        smallParallel(SchedAlgo::CasRasCrit, CritPredictor::CbpMaxStall),
        appParams("scalparc"), quota);
    EXPECT_GT(speedup(base, crit), 1.01);
}

/**
 * @file
 * Regression tests for trace-file hardening: every class of mangled
 * input must raise a TraceError carrying the byte offset of the
 * corruption, never crash, abort, or over-allocate.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "trace/trace_file.hh"

using namespace critmem;

namespace
{

class TraceErrorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
            "critmem_trace_error_test.bin";
    }

    void TearDown() override { std::filesystem::remove(path_); }

    /** Write raw bytes as the trace file. */
    void
    writeRaw(const std::vector<std::uint8_t> &bytes)
    {
        std::FILE *f = std::fopen(path_.string().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (!bytes.empty()) {
            ASSERT_EQ(
                std::fwrite(bytes.data(), 1, bytes.size(), f),
                bytes.size());
        }
        std::fclose(f);
    }

    /** A structurally valid file: header + @p records zeroed records. */
    std::vector<std::uint8_t>
    validBytes(std::uint64_t records)
    {
        std::vector<std::uint8_t> bytes(16 + records * 24, 0);
        const std::uint32_t magic = TraceWriter::kMagic;
        const std::uint32_t version = TraceWriter::kVersion;
        std::memcpy(bytes.data(), &magic, 4);
        std::memcpy(bytes.data() + 4, &version, 4);
        std::memcpy(bytes.data() + 8, &records, 8);
        return bytes;
    }

    /** Open the file and return the TraceError it must throw. */
    TraceError
    mustThrow()
    {
        try {
            TraceReader reader(path_.string());
        } catch (const TraceError &err) {
            return err;
        }
        ADD_FAILURE() << "TraceReader accepted a mangled file";
        return TraceError("unreachable", 0);
    }

    std::filesystem::path path_;
};

} // namespace

TEST_F(TraceErrorTest, MissingFileThrowsAtOffsetZero)
{
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 0u);
    EXPECT_NE(std::string(err.what()).find("cannot open"),
              std::string::npos);
}

TEST_F(TraceErrorTest, EmptyFileIsShorterThanHeader)
{
    writeRaw({});
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 0u);
    EXPECT_NE(std::string(err.what()).find("shorter than"),
              std::string::npos);
}

TEST_F(TraceErrorTest, TruncatedHeaderReportsFileSize)
{
    writeRaw({0x54, 0x4d, 0x54, 0x43, 1, 0, 0}); // 7 bytes
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 7u);
    EXPECT_NE(std::string(err.what()).find("byte offset 7"),
              std::string::npos);
}

TEST_F(TraceErrorTest, BadMagicThrowsAtOffsetZero)
{
    auto bytes = validBytes(1);
    bytes[0] ^= 0xff;
    writeRaw(bytes);
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 0u);
    EXPECT_NE(std::string(err.what()).find("bad magic"),
              std::string::npos);
}

TEST_F(TraceErrorTest, UnsupportedVersionThrowsAtOffsetFour)
{
    auto bytes = validBytes(1);
    bytes[4] = 99;
    writeRaw(bytes);
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 4u);
    EXPECT_NE(std::string(err.what()).find("version"),
              std::string::npos);
}

TEST_F(TraceErrorTest, ZeroRecordCountThrowsAtOffsetEight)
{
    auto bytes = validBytes(1);
    std::memset(bytes.data() + 8, 0, 8); // count = 0, body present
    writeRaw(bytes);
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 8u);
    EXPECT_NE(std::string(err.what()).find("empty"),
              std::string::npos);
}

TEST_F(TraceErrorTest, CorruptCountCannotDriveHugeAllocation)
{
    // Two real records but a count claiming ~768 exabytes; the reader
    // must reject it from the file size instead of calling resize().
    auto bytes = validBytes(2);
    const std::uint64_t absurd = ~std::uint64_t{0} / 24;
    std::memcpy(bytes.data() + 8, &absurd, 8);
    writeRaw(bytes);
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 8u);
    EXPECT_NE(std::string(err.what()).find("fit in the file"),
              std::string::npos);
}

TEST_F(TraceErrorTest, TruncatedRecordIsRejected)
{
    auto bytes = validBytes(2);
    bytes.resize(bytes.size() - 10); // last record loses 10 bytes
    writeRaw(bytes);
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 8u); // count no longer fits the body
}

TEST_F(TraceErrorTest, TrailingBytesAreRejectedWithTheirOffset)
{
    auto bytes = validBytes(2);
    bytes.push_back(0xab); // one byte of junk after the last record
    writeRaw(bytes);
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 16u + 2 * 24u);
    EXPECT_NE(std::string(err.what()).find("trailing"),
              std::string::npos);
}

TEST_F(TraceErrorTest, InvalidOpClassNamesTheRecordOffset)
{
    auto bytes = validBytes(3);
    bytes[16 + 1 * 24 + 16] = 250; // record 1's class byte
    writeRaw(bytes);
    const TraceError err = mustThrow();
    EXPECT_EQ(err.byteOffset(), 16u + 1 * 24u + 16u);
    EXPECT_NE(std::string(err.what()).find("invalid op class 250"),
              std::string::npos);
}

TEST_F(TraceErrorTest, ValidFileStillLoads)
{
    auto bytes = validBytes(2);
    // Give record 0 a recognizable payload.
    const std::uint64_t pc = 0x1234;
    std::memcpy(bytes.data() + 16, &pc, 8);
    bytes[16 + 16] = 2; // a legal op class
    writeRaw(bytes);
    TraceReader reader(path_.string());
    ASSERT_EQ(reader.size(), 2u);
    MicroOp op;
    reader.next(op);
    EXPECT_EQ(op.pc, 0x1234u);
    EXPECT_EQ(op.cls, static_cast<OpClass>(2));
}

/** @file Acceptance tests for the paper's directional findings.
 *
 *  Each test asserts a *relationship* the evaluation section reports
 *  (who wins, which knob matters), at small deterministic quotas —
 *  the repository-level guarantee that the reproduction keeps telling
 *  the paper's story. Absolute magnitudes live in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "system/experiment.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

constexpr std::uint64_t kQuota = 8000;

SystemConfig
base()
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = SchedAlgo::FrFcfs;
    cfg.crit.predictor = CritPredictor::None;
    return cfg;
}

SystemConfig
cbp(CritPredictor pred, std::uint32_t entries = 64,
    SchedAlgo algo = SchedAlgo::CasRasCrit)
{
    SystemConfig cfg = base();
    cfg.sched.algo = algo;
    cfg.crit.predictor = pred;
    cfg.crit.tableEntries = entries;
    return cfg;
}

double
suiteSpeedup(const SystemConfig &cfg,
             const std::vector<std::string> &apps)
{
    double sum = 0.0;
    for (const std::string &name : apps) {
        const RunResult b = runParallel(base(), appParams(name), kQuota);
        const RunResult r = runParallel(cfg, appParams(name), kQuota);
        sum += speedup(b, r);
    }
    return sum / static_cast<double>(apps.size());
}

const std::vector<std::string> kProbe = {"art", "fft", "radix",
                                         "scalparc"};

} // namespace

TEST(PaperShape, Fig1_MinorityOfLoadsBlockMajorityOfTime)
{
    // Figure 1's core observation: blocking loads are a small slice
    // of dynamic loads yet the head is blocked a large share of time.
    double loadFrac = 0.0, timeFrac = 0.0;
    int count = 0;
    for (const AppParams &app : parallelApps()) {
        const RunResult r = runParallel(base(), app, kQuota);
        loadFrac += static_cast<double>(r.blockingLoads) /
            static_cast<double>(r.dynamicLoads);
        timeFrac += static_cast<double>(r.robBlockedCycles) /
            static_cast<double>(r.coreCycles);
        ++count;
    }
    loadFrac /= count;
    timeFrac /= count;
    EXPECT_LT(loadFrac, 0.12);  // paper: 6.1%
    EXPECT_GT(timeFrac, 0.30);  // paper: 48.6%
    EXPECT_GT(timeFrac, 5.0 * loadFrac);
}

TEST(PaperShape, Fig3_BinaryCbpBeatsFrFcfs)
{
    EXPECT_GT(suiteSpeedup(cbp(CritPredictor::CbpBinary), kProbe),
              1.03);
}

TEST(PaperShape, Fig3_BothArbitrationOrdersComparable)
{
    const double casras =
        suiteSpeedup(cbp(CritPredictor::CbpBinary, 64,
                         SchedAlgo::CasRasCrit),
                     kProbe);
    const double critFirst =
        suiteSpeedup(cbp(CritPredictor::CbpBinary, 64,
                         SchedAlgo::CritCasRas),
                     kProbe);
    EXPECT_NEAR(casras, critFirst, 0.05);
}

TEST(PaperShape, Fig3_SmallTableCompetitiveWithUnlimited)
{
    const double small =
        suiteSpeedup(cbp(CritPredictor::CbpMaxStall, 64), kProbe);
    const double unlimited =
        suiteSpeedup(cbp(CritPredictor::CbpMaxStall, 0), kProbe);
    // Section 5.3.1: 64 entries loses nothing; at small quotas the
    // aliased table can even win (the art anomaly), so assert it is
    // no *worse* than the unlimited table beyond noise.
    EXPECT_GT(small, unlimited - 0.05);
}

TEST(PaperShape, Fig4_ClptDoesNotHelpTheScheduler)
{
    // Section 5.3.3: consumer-count criticality is essentially flat.
    const double clpt =
        suiteSpeedup(cbp(CritPredictor::ClptConsumers, 1024), kProbe);
    const double maxStall =
        suiteSpeedup(cbp(CritPredictor::CbpMaxStall), kProbe);
    EXPECT_LT(clpt, 1.05);
    EXPECT_GT(maxStall, clpt + 0.02);
}

TEST(PaperShape, Sec51_NaiveForwardingWeakerThanPredictor)
{
    const double naive =
        suiteSpeedup(cbp(CritPredictor::NaiveForward), kProbe);
    const double predicted =
        suiteSpeedup(cbp(CritPredictor::CbpMaxStall), kProbe);
    EXPECT_GT(predicted, naive);
}

TEST(PaperShape, Fig6_SchedulerShiftsLatencyTowardCriticals)
{
    // Critical misses get faster, non-critical slack is consumed.
    const AppParams &app = appParams("radix");
    const RunResult passive = runParallel(
        cbp(CritPredictor::CbpMaxStall, 64, SchedAlgo::FrFcfs), app,
        kQuota);
    const RunResult active = runParallel(
        cbp(CritPredictor::CbpMaxStall), app, kQuota);
    EXPECT_LT(active.l2MissLatCrit, passive.l2MissLatCrit * 1.02);
    EXPECT_GT(active.l2MissLatNonCrit, active.l2MissLatCrit);
}

TEST(PaperShape, Fig8_FewerRanksLargerBenefit)
{
    // Contention amplifies criticality benefit (Section 5.6).
    auto withRanks = [&](std::uint32_t ranks, bool crit) {
        SystemConfig cfg =
            crit ? cbp(CritPredictor::CbpMaxStall) : base();
        cfg.dram.ranksPerChannel = ranks;
        return cfg;
    };
    double benefit1 = 0.0, benefit4 = 0.0;
    for (const std::string &name : kProbe) {
        const AppParams &app = appParams(name);
        benefit1 += speedup(runParallel(withRanks(1, false), app, kQuota),
                            runParallel(withRanks(1, true), app, kQuota));
        benefit4 += speedup(runParallel(withRanks(4, false), app, kQuota),
                            runParallel(withRanks(4, true), app, kQuota));
    }
    EXPECT_GT(benefit1, benefit4 - 0.02);
}

TEST(PaperShape, Fig9_SpeedupSurvivesLargerLoadQueue)
{
    // Section 5.6: the benefit is not just LQ capacity relief.
    SystemConfig bigLq = cbp(CritPredictor::CbpMaxStall);
    bigLq.core.lqEntries = 64;
    SystemConfig bigLqBase = base();
    bigLqBase.core.lqEntries = 64;
    double sum = 0.0;
    for (const std::string &name : kProbe) {
        sum += speedup(
            runParallel(bigLqBase, appParams(name), kQuota),
            runParallel(bigLq, appParams(name), kQuota));
    }
    EXPECT_GT(sum / kProbe.size(), 1.02);
}

TEST(PaperShape, Fig10_AhbBarelyHelpsOnHighSpeedDram)
{
    SystemConfig ahb = base();
    ahb.sched.algo = SchedAlgo::Ahb;
    const double sp = suiteSpeedup(ahb, kProbe);
    EXPECT_GT(sp, 0.95);
    EXPECT_LT(sp, 1.06); // paper: 1.6%
}

TEST(PaperShape, Table7_ParBsTrailsCriticalityOnParallel)
{
    // Footnote 1 reports PAR-BS *losing* to FR-FCFS on parallel
    // workloads. In this reproduction PAR-BS picks up some benefit
    // from demoting unmarked writebacks in the unified transaction
    // queue (EXPERIMENTS.md), so the transferable claim is the
    // ordering: fairness-oriented batching cannot match
    // processor-side criticality on homogeneous parallel threads.
    SystemConfig parbs = base();
    parbs.sched.algo = SchedAlgo::ParBs;
    const double parbsSp = suiteSpeedup(parbs, kProbe);
    const double critSp =
        suiteSpeedup(cbp(CritPredictor::CbpMaxStall), kProbe);
    EXPECT_LT(parbsSp, critSp);
}

TEST(PaperShape, Table5_StallCountersFitPublishedWidths)
{
    // Stall-time magnitudes stay within the paper's 14-bit budget at
    // these run lengths.
    std::uint64_t maxObserved = 0;
    for (const std::string &name : kProbe) {
        const RunResult r = runParallel(
            cbp(CritPredictor::CbpMaxStall), appParams(name), kQuota);
        maxObserved = std::max(maxObserved, r.maxCbpValue);
    }
    EXPECT_LE(maxObserved, 16383u); // 14 bits (paper: 13,475 max)
    EXPECT_GT(maxObserved, 256u);   // and they are real stalls
}

/** @file Tests for configuration presets (Tables 1 and 3). */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace critmem;

TEST(Config, Ddr3_2133TimingsMatchTable3)
{
    const DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_2133);
    EXPECT_EQ(cfg.busMHz, 1066u);
    EXPECT_EQ(cfg.t.tRCD, 14u);
    EXPECT_EQ(cfg.t.tCL, 14u);
    EXPECT_EQ(cfg.t.tWL, 7u);
    EXPECT_EQ(cfg.t.tCCD, 4u);
    EXPECT_EQ(cfg.t.tWTR, 8u);
    EXPECT_EQ(cfg.t.tWR, 16u);
    EXPECT_EQ(cfg.t.tRTP, 8u);
    EXPECT_EQ(cfg.t.tRP, 14u);
    EXPECT_EQ(cfg.t.tRRD, 6u);
    EXPECT_EQ(cfg.t.tRTRS, 2u);
    EXPECT_EQ(cfg.t.tRAS, 36u);
    EXPECT_EQ(cfg.t.tRC, 50u);
    EXPECT_EQ(cfg.t.tRFC, 118u);
    EXPECT_EQ(cfg.t.burstLength, 8u);
}

TEST(Config, Table3Organization)
{
    const DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_2133);
    EXPECT_EQ(cfg.channels, 4u);
    EXPECT_EQ(cfg.ranksPerChannel, 4u);
    EXPECT_EQ(cfg.banksPerRank, 8u);
    EXPECT_EQ(cfg.rowBytes, 1024u);
    EXPECT_EQ(cfg.queueEntries, 64u);
}

TEST(Config, SlowerGradesScaleToConstantNanoseconds)
{
    const DramConfig slow = DramConfig::preset(DramSpeed::DDR3_1066);
    // Half the clock: cycle counts should halve (rounded up).
    EXPECT_EQ(slow.busMHz, 533u);
    EXPECT_EQ(slow.t.tRCD, 7u);
    EXPECT_EQ(slow.t.tCL, 7u);
    EXPECT_EQ(slow.t.tRC, 25u);
    EXPECT_EQ(slow.t.tRFC, 59u);
}

TEST(Config, Ddr3_1600Scaling)
{
    const DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_1600);
    EXPECT_EQ(cfg.busMHz, 800u);
    // 14 cycles @1066 = 13.13ns -> ceil(10.5) = 11 cycles @800.
    EXPECT_EQ(cfg.t.tRCD, 11u);
    // tCCD is clamped at BL/2 = 4 cycles minimum.
    EXPECT_GE(cfg.t.tCCD, 4u);
}

TEST(Config, RefreshIntervalCoversAllRowsIn64ms)
{
    const DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_2133);
    // 8192 refreshes per 64 ms: tREFI ~= 64ms/8192 at 1066 MHz.
    const double expected = 0.064 / 8192.0 * 1066.0e6;
    EXPECT_NEAR(cfg.t.tREFI, expected, 5.0);
}

TEST(Config, CpuPerDramCycleIsFourAt2133)
{
    const SystemConfig cfg = SystemConfig::parallelDefault();
    EXPECT_EQ(cfg.cpuPerDramCycle(), 4u);
}

TEST(Config, ParallelDefaultMatchesTables)
{
    const SystemConfig cfg = SystemConfig::parallelDefault();
    EXPECT_EQ(cfg.numCores, 8u);
    EXPECT_EQ(cfg.core.robEntries, 128u);
    EXPECT_EQ(cfg.core.lqEntries, 32u);
    EXPECT_EQ(cfg.core.maxUnresolvedBranches, 24u);
    EXPECT_EQ(cfg.core.mispredictPenalty, 9u);
    EXPECT_EQ(cfg.il1.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.il1.ways, 1u);
    EXPECT_EQ(cfg.dl1.ways, 4u);
    EXPECT_EQ(cfg.dl1.blockBytes, 32u);
    EXPECT_EQ(cfg.dl1.latency, 3u);
    EXPECT_EQ(cfg.l2.sizeBytes, 4u * 1024 * 1024);
    EXPECT_EQ(cfg.l2.ways, 8u);
    EXPECT_EQ(cfg.l2.blockBytes, 64u);
    EXPECT_EQ(cfg.l2.latency, 32u);
    EXPECT_EQ(cfg.l2.mshrs, 64u);
}

TEST(Config, MultiprogDefaultHalvesChannelsAndMshrs)
{
    const SystemConfig cfg = SystemConfig::multiprogDefault();
    EXPECT_EQ(cfg.numCores, 4u);
    EXPECT_EQ(cfg.dram.channels, 2u);
    EXPECT_EQ(cfg.l2.mshrs, 32u);
}

TEST(Config, CacheSetsComputation)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.blockBytes = 32;
    cfg.ways = 4;
    EXPECT_EQ(cfg.sets(), 256u);
}

TEST(Config, ToStringCoverage)
{
    EXPECT_STREQ(toString(DramSpeed::DDR3_2133), "DDR3-2133");
    EXPECT_STREQ(toString(CritPredictor::CbpMaxStall), "MaxStallTime");
    EXPECT_STREQ(toString(CritPredictor::ClptConsumers),
                 "CLPT-Consumers");
    EXPECT_STREQ(toString(SchedAlgo::CasRasCrit), "CASRAS-Crit");
    EXPECT_STREQ(toString(SchedAlgo::Morse), "MORSE-P");
}

TEST(Config, IsCbpClassification)
{
    EXPECT_TRUE(isCbp(CritPredictor::CbpBinary));
    EXPECT_TRUE(isCbp(CritPredictor::CbpTotalStall));
    EXPECT_FALSE(isCbp(CritPredictor::None));
    EXPECT_FALSE(isCbp(CritPredictor::ClptBinary));
    EXPECT_FALSE(isCbp(CritPredictor::NaiveForward));
}

// ---------------------------------------------------------------------
// Structured validation (SystemConfig::validate).
// ---------------------------------------------------------------------

namespace
{

/** True when some error names @p field. */
bool
hasField(const ConfigErrors &errors, const std::string &field)
{
    for (const ConfigError &error : errors) {
        if (error.field == field)
            return true;
    }
    return false;
}

} // namespace

TEST(ConfigValidate, DefaultsAreValid)
{
    EXPECT_TRUE(SystemConfig::parallelDefault().validate().empty());
    EXPECT_TRUE(SystemConfig::multiprogDefault().validate().empty());
}

TEST(ConfigValidate, AllPresetsAndCheckModesAreValid)
{
    for (const DramSpeed speed :
         {DramSpeed::DDR3_1066, DramSpeed::DDR3_1600,
          DramSpeed::DDR3_2133}) {
        SystemConfig cfg = SystemConfig::parallelDefault();
        cfg.dram = DramConfig::preset(speed);
        cfg.check.enabled = true;
        cfg.check.fault = FaultKind::EarlyCas;
        EXPECT_TRUE(cfg.validate().empty()) << toString(speed);
    }
}

TEST(ConfigValidate, ZeroFieldsAreEachReported)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.numCores = 0;
    cfg.core.robEntries = 0;
    cfg.dram.channels = 0;
    cfg.dram.t.tRCD = 0;
    cfg.l2.mshrs = 0;
    const ConfigErrors errors = cfg.validate();
    EXPECT_TRUE(hasField(errors, "numCores"));
    EXPECT_TRUE(hasField(errors, "core.robEntries"));
    EXPECT_TRUE(hasField(errors, "dram.channels"));
    EXPECT_TRUE(hasField(errors, "dram.t.tRCD"));
    EXPECT_TRUE(hasField(errors, "l2.mshrs"));
    EXPECT_GE(errors.size(), 5u);
}

TEST(ConfigValidate, TimingRelationsAreEnforced)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.dram.t.tRAS = 5; // below tRCD + tCCD
    cfg.dram.t.tRC = 10; // below tRAS + tRP
    cfg.dram.t.tFAW = 2; // below tRRD
    cfg.dram.t.tREFI = cfg.dram.t.tRFC; // not past the refresh time
    const ConfigErrors errors = cfg.validate();
    EXPECT_TRUE(hasField(errors, "dram.t.tRAS"));
    EXPECT_TRUE(hasField(errors, "dram.t.tRC"));
    EXPECT_TRUE(hasField(errors, "dram.t.tFAW"));
    EXPECT_TRUE(hasField(errors, "dram.t.tREFI"));
}

TEST(ConfigValidate, GeometryMustBePowerOfTwoWhereRequired)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.dram.rowBytes = 1000;  // not a power of two
    cfg.dl1.blockBytes = 48;   // not a power of two
    cfg.l2.sizeBytes = 3u * 1024 * 1024 + 5; // non-pow2 set count
    const ConfigErrors errors = cfg.validate();
    EXPECT_TRUE(hasField(errors, "dram.rowBytes"));
    EXPECT_TRUE(hasField(errors, "dl1.blockBytes"));
    EXPECT_TRUE(hasField(errors, "l2.sizeBytes"));
}

TEST(ConfigValidate, ClockRelationIsEnforced)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.core.freqMHz = cfg.dram.busMHz / 2;
    EXPECT_TRUE(hasField(cfg.validate(), "core.freqMHz"));
}

TEST(ConfigValidate, CheckBlockIsValidated)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.check.enabled = true;
    cfg.check.watchdogCycles = 0;
    cfg.check.starvationCycles = 0;
    ConfigErrors errors = cfg.validate();
    EXPECT_TRUE(hasField(errors, "check.watchdogCycles"));
    EXPECT_TRUE(hasField(errors, "check.starvationCycles"));

    cfg = SystemConfig::parallelDefault();
    cfg.check.fault = FaultKind::StarveCore;
    cfg.check.faultVictim = cfg.numCores; // out of range
    EXPECT_TRUE(hasField(cfg.validate(), "check.faultVictim"));

    cfg.check.faultVictim = 0;
    cfg.check.faultPeriod = 0;
    EXPECT_TRUE(hasField(cfg.validate(), "check.faultPeriod"));
}

TEST(ConfigValidate, SchedulerKnobsAreValidated)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.starvationCap = 0;
    cfg.sched.tcmClusterThresh = 1.5;
    const ConfigErrors errors = cfg.validate();
    EXPECT_TRUE(hasField(errors, "sched.starvationCap"));
    EXPECT_TRUE(hasField(errors, "sched.tcmClusterThresh"));
}

/** @file Unit and property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace critmem;

TEST(Random, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Random, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Random, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, RangeInclusive)
{
    Rng rng(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Random, GeometricCapped)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(rng.geometric(0.01, 5), 5u);
}

TEST(Random, GeometricMeanRoughlyMatches)
{
    // Mean of failures-before-success at p=0.5 capped high is ~1.
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(0.5, 100);
    EXPECT_NEAR(sum / n, 1.0, 0.1);
}

/** Property sweep: below(bound) stays in range for many bounds. */
class RandomBoundTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomBoundTest, BelowStaysInRange)
{
    Rng rng(GetParam() * 31 + 7);
    const std::uint64_t bound = GetParam();
    for (int i = 0; i < 500; ++i)
        EXPECT_LT(rng.below(bound), bound);
}

TEST_P(RandomBoundTest, BelowCoversSmallRanges)
{
    const std::uint64_t bound = GetParam();
    if (bound > 16)
        GTEST_SKIP() << "coverage check only for small bounds";
    Rng rng(GetParam() + 100);
    std::vector<bool> seen(bound, false);
    for (int i = 0; i < 5000; ++i)
        seen[rng.below(bound)] = true;
    for (std::uint64_t v = 0; v < bound; ++v)
        EXPECT_TRUE(seen[v]) << "never drew " << v;
}

INSTANTIATE_TEST_SUITE_P(Bounds, RandomBoundTest,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 1023,
                                           1ull << 32, 1ull << 50));

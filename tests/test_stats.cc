/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace critmem;
using namespace critmem::stats;

TEST(Stats, ScalarStartsAtZero)
{
    Group root;
    Scalar s(root, "s", "desc");
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, ScalarIncrementAndAdd)
{
    Group root;
    Scalar s(root, "s", "desc");
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
}

TEST(Stats, ScalarSetOverwrites)
{
    Group root;
    Scalar s(root, "s", "desc");
    s += 10;
    s.set(3);
    EXPECT_EQ(s.value(), 3u);
}

TEST(Stats, ScalarReset)
{
    Group root;
    Scalar s(root, "s", "desc");
    s += 7;
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, ValueGaugeSetResetAndJson)
{
    Group root;
    Value v(root, "v", "desc");
    EXPECT_DOUBLE_EQ(v.value(), 0.0);
    v.set(0.5);
    EXPECT_DOUBLE_EQ(v.value(), 0.5);
    EXPECT_EQ(root.findValue("v"), &v);
    EXPECT_EQ(root.findScalar("v"), nullptr); // wrong type

    std::ostringstream os;
    root.printJson(os);
    EXPECT_EQ(os.str(), "{\"v\":0.5}");

    v.reset();
    EXPECT_DOUBLE_EQ(v.value(), 0.0);
}

TEST(Stats, AverageMeanOfSamples)
{
    Group root;
    Average a(root, "a", "desc");
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, AverageEmptyMeanIsZero)
{
    Group root;
    Average a(root, "a", "desc");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, AverageReset)
{
    Group root;
    Average a(root, "a", "desc");
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, HistogramTracksMaxAndMean)
{
    Group root;
    Histogram h(root, "h", "desc");
    h.sample(1);
    h.sample(3);
    h.sample(100);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.mean(), 104.0 / 3.0, 1e-9);
}

TEST(Stats, HistogramBucketsAreLog2)
{
    Group root;
    Histogram h(root, "h", "desc");
    h.sample(0); // bucket 0
    h.sample(1); // bucket 1: [1,2)
    h.sample(2); // bucket 2: [2,4)
    h.sample(3); // bucket 2
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
}

TEST(Stats, HistogramReset)
{
    Group root;
    Histogram h(root, "h", "desc");
    h.sample(9);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Stats, GroupFindScalarByDottedPath)
{
    Group root;
    Group child("dram", &root);
    Scalar s(child, "reads", "desc");
    s += 5;
    const Scalar *found = root.findScalar("dram.reads");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->value(), 5u);
}

TEST(Stats, GroupFindMissingReturnsNull)
{
    Group root;
    EXPECT_EQ(root.findScalar("nope"), nullptr);
    EXPECT_EQ(root.findScalar("a.b.c"), nullptr);
}

TEST(Stats, GroupFindWrongTypeReturnsNull)
{
    Group root;
    Average a(root, "a", "desc");
    EXPECT_EQ(root.findScalar("a"), nullptr);
    EXPECT_NE(root.findAverage("a"), nullptr);
}

TEST(Stats, GroupPrintContainsNamesAndValues)
{
    Group root;
    Group child("core", &root);
    Scalar s(child, "cycles", "total cycles");
    s += 123;
    std::ostringstream os;
    root.print(os);
    EXPECT_NE(os.str().find("core.cycles 123"), std::string::npos);
    EXPECT_NE(os.str().find("total cycles"), std::string::npos);
}

TEST(Stats, GroupResetAllRecurses)
{
    Group root;
    Group child("c", &root);
    Scalar a(root, "a", "d");
    Scalar b(child, "b", "d");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatsDeath, DuplicateNamePanics)
{
    Group root;
    Scalar a(root, "dup", "d");
    EXPECT_DEATH({ Scalar b(root, "dup", "d"); }, "duplicate stat");
}

TEST(Stats, NestedGroupPathResolution)
{
    Group root;
    Group mid("mid", &root);
    Group leaf("leaf", &mid);
    Histogram h(leaf, "h", "d");
    h.sample(4);
    const Histogram *found = root.findHistogram("mid.leaf.h");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->count(), 1u);
}

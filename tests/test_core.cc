/** @file Tests for the out-of-order core model, driven by scripted
 *  micro-op sequences. */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "sched/frfcfs.hh"

using namespace critmem;

namespace
{

/** Replays a fixed micro-op vector, repeating it forever. */
class ScriptedTrace : public TraceGenerator
{
  public:
    explicit ScriptedTrace(std::vector<MicroOp> ops)
        : ops_(std::move(ops))
    {
    }

    void
    next(MicroOp &op) override
    {
        op = ops_[pos_];
        pos_ = (pos_ + 1) % ops_.size();
    }

    const std::string &name() const override { return name_; }

  private:
    std::vector<MicroOp> ops_;
    std::size_t pos_ = 0;
    std::string name_ = "scripted";
};

MicroOp
alu(std::uint64_t pc, std::uint16_t dep = 0)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.pc = pc;
    op.latency = 1;
    op.dep1 = dep;
    return op;
}

MicroOp
ld(std::uint64_t pc, Addr addr, std::uint16_t dep = 0)
{
    MicroOp op;
    op.cls = OpClass::Load;
    op.pc = pc;
    op.addr = addr;
    op.dep1 = dep;
    return op;
}

class CoreTest : public ::testing::Test
{
  protected:
    void
    build(std::vector<MicroOp> ops,
          SystemConfig cfg = SystemConfig::parallelDefault())
    {
        cfg_ = cfg;
        gen_ = std::make_unique<ScriptedTrace>(std::move(ops));
        dram_ = std::make_unique<DramSystem>(cfg_.dram, sched_, root_);
        hier_ = std::make_unique<MemHierarchy>(cfg_, *dram_, root_);
        core_ = std::make_unique<Core>(cfg_, 0, *gen_, *hier_, root_);
    }

    /** Run until the core commits @p quota ops (or a cycle limit). */
    Cycle
    run(std::uint64_t quota, Cycle limit = 2'000'000)
    {
        core_->setQuota(quota);
        while (!core_->finished() && now_ < limit) {
            ++now_;
            hier_->tick(now_);
            core_->tick(now_);
            if (now_ % 4 == 0)
                dram_->tick(now_ / 4);
        }
        return now_;
    }

    stats::Group root_;
    FrFcfsScheduler sched_;
    SystemConfig cfg_;
    std::unique_ptr<ScriptedTrace> gen_;
    std::unique_ptr<DramSystem> dram_;
    std::unique_ptr<MemHierarchy> hier_;
    std::unique_ptr<Core> core_;
    Cycle now_ = 0;
};

} // namespace

TEST_F(CoreTest, IndependentAlusReachIssueWidth)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 16; ++i)
        ops.push_back(alu(0x400000 + i * 4));
    build(std::move(ops));
    const Cycle cycles = run(4000);
    const double ipc = 4000.0 / static_cast<double>(cycles);
    // Two IntAlus bound throughput; pipeline overheads cost a bit.
    EXPECT_GT(ipc, 1.6);
    EXPECT_LE(ipc, 2.05);
}

TEST_F(CoreTest, DependenceChainSerializes)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 16; ++i)
        ops.push_back(alu(0x400000 + i * 4, /*dep=*/1));
    build(std::move(ops));
    const Cycle cycles = run(2000);
    // One op per cycle at best: a serial chain cannot beat IPC 1.
    EXPECT_GE(cycles, 2000u);
}

TEST_F(CoreTest, MixedFuClassesAllCommit)
{
    std::vector<MicroOp> ops;
    const OpClass classes[] = {OpClass::IntAlu, OpClass::IntMul,
                               OpClass::FpAlu, OpClass::FpMul,
                               OpClass::Branch};
    for (int i = 0; i < 20; ++i) {
        MicroOp op;
        op.cls = classes[i % 5];
        op.pc = 0x400000 + i * 4;
        op.latency = op.cls == OpClass::FpMul ? 5 : 1;
        ops.push_back(op);
    }
    build(std::move(ops));
    run(1000);
    EXPECT_TRUE(core_->finished());
    EXPECT_EQ(core_->coreStats().committedBranches.value(), 200u);
}

TEST_F(CoreTest, CacheResidentLoadsAreFast)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back(ld(0x400000 + i * 4, 0x1000 + i * 8));
    build(std::move(ops));
    const Cycle cycles = run(4000);
    // After the first (cold) block fill, everything hits the dL1.
    EXPECT_LT(cycles, 4000u);
    EXPECT_EQ(core_->coreStats().committedLoads.value(), 4000u);
}

TEST_F(CoreTest, MispredictsCostCycles)
{
    std::vector<MicroOp> clean;
    std::vector<MicroOp> dirty;
    for (int i = 0; i < 16; ++i) {
        MicroOp op;
        op.cls = i % 4 == 0 ? OpClass::Branch : OpClass::IntAlu;
        op.pc = 0x400000 + i * 4;
        clean.push_back(op);
        op.mispredict = op.cls == OpClass::Branch;
        dirty.push_back(op);
    }
    build(std::move(clean));
    const Cycle fast = run(2000);

    now_ = 0;
    build(std::move(dirty));
    const Cycle slow = run(2000);
    // Every 4th op redirects the front end: at least the penalty per
    // mispredicted branch beyond the clean run.
    EXPECT_GT(slow, fast + 2000 / 4 * cfg_.core.mispredictPenalty / 2);
    // Commit may overshoot the quota by up to one commit group.
    EXPECT_GE(core_->coreStats().mispredicts.value(), 500u);
    EXPECT_LE(core_->coreStats().mispredicts.value(), 502u);
}

TEST_F(CoreTest, MissingLoadBlocksRobHead)
{
    // A serial chain of DRAM misses: every load blocks commit.
    std::vector<MicroOp> ops;
    ops.push_back(ld(0x400000, 0x100000, /*dep=*/4));
    for (int i = 1; i < 4; ++i)
        ops.push_back(alu(0x400000 + i * 4, 1));
    build(std::move(ops));
    // Pointer-chase-like: the load depends on the previous iteration.
    run(400);
    EXPECT_GT(core_->coreStats().blockingLoads.value(), 0u);
    EXPECT_GT(core_->coreStats().robHeadBlockedCycles.value(), 0u);
    EXPECT_GT(core_->coreStats().headStallLength.max(), 32u);
}

TEST_F(CoreTest, CbpLearnsBlockingPc)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.crit.predictor = CritPredictor::CbpMaxStall;
    cfg.crit.tableEntries = 64;
    std::vector<MicroOp> ops;
    // One load PC that misses to a new DRAM row every iteration.
    MicroOp chase = ld(0x400000, 0x100000, 4);
    ops.push_back(chase);
    for (int i = 1; i < 4; ++i)
        ops.push_back(alu(0x400000 + i * 4, 1));
    build(std::move(ops), cfg);
    run(400);
    ASSERT_NE(core_->cbp(), nullptr);
    EXPECT_GT(core_->cbp()->maxObserved(), 0u);
    EXPECT_GT(core_->coreStats().critLoadsIssued.value(), 0u);
}

TEST_F(CoreTest, LqCapacityStalls)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.core.lqEntries = 4;
    std::vector<MicroOp> ops;
    // Loads that miss to distinct rows pile up in the tiny LQ.
    for (int i = 0; i < 8; ++i)
        ops.push_back(ld(0x400000 + i * 4, 0x100000 + i * 131072));
    build(std::move(ops), cfg);
    run(800);
    EXPECT_GT(core_->coreStats().lqFullCycles.value(), 0u);
}

TEST_F(CoreTest, StoreForwardingShortCircuitsLoads)
{
    std::vector<MicroOp> ops;
    MicroOp st;
    st.cls = OpClass::Store;
    st.pc = 0x400000;
    st.addr = 0x55000; // cold block: the write itself would miss
    ops.push_back(st);
    ops.push_back(ld(0x400004, 0x55000));
    ops.push_back(alu(0x400008));
    ops.push_back(alu(0x40000c));
    build(std::move(ops));
    run(400);
    EXPECT_GT(core_->coreStats().loadsForwarded.value(), 0u);
}

TEST_F(CoreTest, QuotaAndFinishCycle)
{
    std::vector<MicroOp> ops = {alu(0x400000), alu(0x400004)};
    build(std::move(ops));
    const Cycle cycles = run(100);
    EXPECT_TRUE(core_->finished());
    EXPECT_EQ(core_->committed(), 100u);
    EXPECT_EQ(core_->finishCycle(), cycles);
}

TEST_F(CoreTest, InactiveCoreDoesNothing)
{
    std::vector<MicroOp> ops = {alu(0x400000)};
    build(std::move(ops));
    core_->setActive(false);
    EXPECT_TRUE(core_->finished());
    run(10);
    EXPECT_EQ(core_->committed(), 0u);
}

TEST_F(CoreTest, ResetWindowRestartsQuota)
{
    std::vector<MicroOp> ops = {alu(0x400000), alu(0x400004)};
    build(std::move(ops));
    run(50);
    EXPECT_TRUE(core_->finished());
    root_.resetAll();
    core_->resetWindow();
    EXPECT_FALSE(core_->finished());
    run(50);
    EXPECT_TRUE(core_->finished());
    EXPECT_EQ(core_->committed(), 50u);
}

TEST_F(CoreTest, ClptCountsConsumers)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.crit.predictor = CritPredictor::ClptConsumers;
    cfg.crit.tableEntries = 64;
    cfg.crit.clptThreshold = 3;
    std::vector<MicroOp> ops;
    // A cache-resident load with three direct ALU consumers.
    ops.push_back(ld(0x400000, 0x2000));
    ops.push_back(alu(0x400004, 1));
    ops.push_back(alu(0x400008, 2));
    ops.push_back(alu(0x40000c, 3));
    build(std::move(ops), cfg);
    run(400);
    ASSERT_NE(core_->clpt(), nullptr);
    // After the first iteration the CLPT marks the load critical.
    EXPECT_GE(core_->clpt()->predict(0x400000), 3u);
}

TEST_F(CoreTest, DrainedAfterRun)
{
    std::vector<MicroOp> ops = {alu(0x400000)};
    build(std::move(ops));
    run(100);
    // Let in-flight stores/ops drain.
    for (int i = 0; i < 2000; ++i) {
        ++now_;
        hier_->tick(now_);
        core_->tick(now_);
        if (now_ % 4 == 0)
            dram_->tick(now_ / 4);
    }
    EXPECT_TRUE(core_->drained());
}

/** @file Tests for the CLPT predictor and the storage calculator. */

#include <gtest/gtest.h>

#include "crit/clpt.hh"
#include "crit/overhead.hh"

using namespace critmem;

TEST(Clpt, BelowThresholdNonCritical)
{
    Clpt clpt(64, 3, false);
    clpt.recordConsumers(0x400000, 2);
    EXPECT_EQ(clpt.predict(0x400000), 0u);
}

TEST(Clpt, AtThresholdBinaryOne)
{
    Clpt clpt(64, 3, false);
    clpt.recordConsumers(0x400000, 3);
    EXPECT_EQ(clpt.predict(0x400000), 1u);
}

TEST(Clpt, ConsumersModeForwardsCount)
{
    Clpt clpt(64, 3, true);
    clpt.recordConsumers(0x400000, 7);
    EXPECT_EQ(clpt.predict(0x400000), 7u);
}

TEST(Clpt, LowerThresholdMarksMore)
{
    Clpt strict(64, 3, false);
    Clpt loose(64, 2, false);
    strict.recordConsumers(0x400000, 2);
    loose.recordConsumers(0x400000, 2);
    EXPECT_EQ(strict.predict(0x400000), 0u);
    EXPECT_EQ(loose.predict(0x400000), 1u);
}

TEST(Clpt, RecordOverwrites)
{
    Clpt clpt(64, 3, true);
    clpt.recordConsumers(0x400000, 7);
    clpt.recordConsumers(0x400000, 1);
    EXPECT_EQ(clpt.predict(0x400000), 0u);
}

TEST(ClptDeath, RejectsBadEntryCount)
{
    EXPECT_DEATH({ Clpt clpt(0, 3, false); }, "power of two");
    EXPECT_DEATH({ Clpt clpt(63, 3, false); }, "power of two");
}

TEST(Overhead, CounterWidths)
{
    EXPECT_EQ(counterWidth(0), 1u);
    EXPECT_EQ(counterWidth(1), 1u);
    EXPECT_EQ(counterWidth(2), 2u);
    EXPECT_EQ(counterWidth(13475), 14u);       // Table 5 stall times
    EXPECT_EQ(counterWidth(1975691), 21u);     // Table 5 BlockCount
    EXPECT_EQ(counterWidth(112753587), 27u);   // Table 5 TotalStall
}

TEST(Overhead, BinaryMatchesPaperSection57)
{
    // 8 cores, 4 channels, 64-entry tables, 32-entry LQ, 128-entry
    // ROB: paper reports 77-269 bits per core, 109-301 bytes total.
    const SystemConfig cfg = SystemConfig::parallelDefault();
    const OverheadReport r = storageOverhead(1, 64, cfg);
    EXPECT_EQ(r.perCoreMinBits, 77u);
    EXPECT_EQ(r.perCoreMaxBits, 269u);
    EXPECT_EQ(r.perChannelQueueBits, 64u);
    EXPECT_EQ(r.systemMinBytes, 109u);
    EXPECT_EQ(r.systemMaxBytes, 301u);
}

TEST(Overhead, MaxStallTimeMatchesPaperSection57)
{
    // 14-bit counters: 909-1357 bits per core, 1357-1805 bytes total.
    const SystemConfig cfg = SystemConfig::parallelDefault();
    const OverheadReport r = storageOverhead(14, 64, cfg);
    EXPECT_EQ(r.perCoreMinBits, 909u);
    EXPECT_EQ(r.perCoreMaxBits, 1357u);
    EXPECT_EQ(r.systemMinBytes, 1357u);
    EXPECT_EQ(r.systemMaxBytes, 1805u);
}

TEST(Overhead, TotalStallTimeMatchesPaperSection57)
{
    // 27-bit counters: 2605-3469 bytes for the whole system.
    const SystemConfig cfg = SystemConfig::parallelDefault();
    const OverheadReport r = storageOverhead(27, 64, cfg);
    EXPECT_EQ(r.systemMinBytes, 2605u);
    EXPECT_EQ(r.systemMaxBytes, 3469u);
}

TEST(Overhead, ScalesWithChannels)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    const OverheadReport four = storageOverhead(14, 64, cfg);
    cfg.dram.channels = 2;
    const OverheadReport two = storageOverhead(14, 64, cfg);
    EXPECT_LT(two.systemMinBytes, four.systemMinBytes);
    EXPECT_EQ(four.perChannelQueueBits, two.perChannelQueueBits);
}

TEST(Overhead, WidthDrivesTableCost)
{
    const SystemConfig cfg = SystemConfig::parallelDefault();
    const OverheadReport narrow = storageOverhead(1, 64, cfg);
    const OverheadReport wide = storageOverhead(27, 64, cfg);
    EXPECT_GT(wide.perCoreMinBits, narrow.perCoreMinBits);
    EXPECT_GT(wide.systemMaxBytes, narrow.systemMaxBytes);
}

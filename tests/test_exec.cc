/**
 * @file
 * Tests of the experiment-execution engine (src/exec/): deterministic
 * results independent of worker-thread count, failure isolation with
 * bounded retry, sweep-spec parsing and expansion, seed derivation,
 * JSON stats emission, and equivalence with the serial experiment
 * harness the figure benches used to call directly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exec/job_runner.hh"
#include "exec/result_sink.hh"
#include "exec/sweep.hh"
#include "sim/stats.hh"
#include "system/experiment.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

exec::JobSpec
parallelJob(const std::string &name, const std::string &app,
            SchedAlgo algo, std::uint64_t quota, std::uint64_t seed = 1)
{
    exec::JobSpec job;
    job.name = name;
    job.kind = exec::RunKind::Parallel;
    job.workload = app;
    job.cfg = SystemConfig::parallelDefault();
    job.cfg.sched.algo = algo;
    job.cfg.seed = seed;
    job.quota = quota;
    return job;
}

/** Small app × scheduler campaign used by several tests. */
std::vector<exec::JobSpec>
smallCampaign(std::uint64_t quota)
{
    std::vector<exec::JobSpec> jobs;
    for (const char *app : {"art", "mg"}) {
        for (const auto algo :
             {SchedAlgo::FrFcfs, SchedAlgo::CasRasCrit}) {
            jobs.push_back(parallelJob(
                std::string(app) + "/" + cliName(algo), app, algo,
                quota));
        }
    }
    return jobs;
}

std::string
runToJsonl(const std::vector<exec::JobSpec> &jobs, unsigned threads,
           unsigned maxAttempts = 1)
{
    std::ostringstream out;
    exec::JsonlSink sink(out);
    exec::RunnerOptions opts;
    opts.threads = threads;
    opts.maxAttempts = maxAttempts;
    exec::JobRunner runner(opts);
    runner.run(jobs, {&sink});
    return out.str();
}

TEST(ExecSeed, DerivationIsStableAndDecorrelated)
{
    // Pinned value: the derivation must never change silently, or
    // previously published campaign results stop being reproducible.
    EXPECT_EQ(exec::deriveSeed(1, "art/base"),
              exec::deriveSeed(1, "art/base"));
    EXPECT_NE(exec::deriveSeed(1, "art/base"),
              exec::deriveSeed(1, "art/maxstall"));
    EXPECT_NE(exec::deriveSeed(1, "art/base"),
              exec::deriveSeed(2, "art/base"));
}

TEST(ExecSweep, GlobMatch)
{
    EXPECT_TRUE(exec::globMatch("art/*", "art/base"));
    EXPECT_TRUE(exec::globMatch("*/morse", "swim/morse"));
    EXPECT_TRUE(exec::globMatch("*", "anything/at/all"));
    EXPECT_TRUE(exec::globMatch("a?t/base", "art/base"));
    EXPECT_FALSE(exec::globMatch("art/*", "cg/base"));
    EXPECT_FALSE(exec::globMatch("art", "art/base"));
    EXPECT_FALSE(exec::globMatch("", "x"));
}

TEST(ExecSweep, ParseAndExpand)
{
    std::istringstream in(
        "# demo spec\n"
        "mode = parallel\n"
        "workloads = art, mg\n"
        "quota = 1000\n"
        "seed = 7\n"
        "seed-mode = derived\n"
        "exclude = mg/tcm\n"
        "variant base : sched=frfcfs\n"
        "variant tcm : sched=tcm\n");
    const exec::SweepSpec spec = exec::parseSweepSpec(in);
    EXPECT_EQ(spec.quota, 1000u);
    EXPECT_EQ(spec.campaignSeed, 7u);
    ASSERT_EQ(spec.variants.size(), 2u);

    const std::vector<exec::JobSpec> jobs = spec.expand();
    std::vector<std::string> names;
    for (const exec::JobSpec &job : jobs)
        names.push_back(job.name);
    EXPECT_EQ(names, (std::vector<std::string>{
                         "art/base", "art/tcm", "mg/base"}));
    EXPECT_EQ(jobs[1].cfg.sched.algo, SchedAlgo::Tcm);
    EXPECT_EQ(jobs[0].cfg.seed, exec::deriveSeed(7, "art/base"));
    EXPECT_EQ(jobs[0].tags.at("variant"), "base");
    EXPECT_EQ(jobs[0].tags.at("workload"), "art");
}

TEST(ExecSweep, VariantSeedOverridesCampaignSeed)
{
    std::istringstream in(
        "workloads = art\n"
        "seed = 3\n"
        "variant pinned : sched=frfcfs seed=99\n");
    const std::vector<exec::JobSpec> jobs =
        exec::parseSweepSpec(in).expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].cfg.seed, 99u);
}

TEST(ExecSweep, SchedsShorthandAndMultiprogAlone)
{
    std::istringstream in(
        "mode = multiprog\n"
        "workloads = RFGI\n"
        "alone = 1\n"
        "scheds = parbs, tcm\n");
    const std::vector<exec::JobSpec> jobs =
        exec::parseSweepSpec(in).expand();
    // Four alone baselines (one per app of RFGI) then 2 bundle jobs.
    ASSERT_EQ(jobs.size(), 6u);
    EXPECT_EQ(jobs[0].name, "alone/art_st");
    EXPECT_EQ(jobs[0].kind, exec::RunKind::Alone);
    EXPECT_TRUE(jobs[0].multiprogPreset);
    EXPECT_EQ(jobs[4].name, "RFGI/parbs");
    EXPECT_EQ(jobs[4].kind, exec::RunKind::Bundle);
    EXPECT_EQ(jobs[5].cfg.sched.algo, SchedAlgo::Tcm);
}

TEST(ExecSweep, ErrorsCarryLineNumbers)
{
    std::istringstream badKey("bogus = 1\n");
    try {
        exec::parseSweepSpec(badKey);
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("line 1"),
                  std::string::npos);
    }

    std::istringstream badSched(
        "workloads = art\n"
        "variant x : sched=notasched\n");
    EXPECT_THROW(exec::parseSweepSpec(badSched).expand(),
                 std::runtime_error);
}

TEST(ExecRunner, JsonlIdenticalAcrossThreadCounts)
{
    const std::vector<exec::JobSpec> jobs = smallCampaign(600);
    const std::string serial = runToJsonl(jobs, 1);
    const std::string threaded = runToJsonl(jobs, 8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, threaded);
}

TEST(ExecRunner, ManyTinyJobsAllComplete)
{
    // More jobs than workers with very uneven sizes: exercises the
    // stealing path and the in-order aggregation.
    std::vector<exec::JobSpec> jobs;
    for (int i = 0; i < 24; ++i) {
        jobs.push_back(parallelJob(
            "job" + std::to_string(i), i % 2 ? "art" : "mg",
            SchedAlgo::FrFcfs, 150 + 40 * (i % 5), /*seed=*/i + 1));
    }
    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 8;
    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary = runner.run(jobs, {&sink});
    EXPECT_EQ(summary.total, jobs.size());
    EXPECT_EQ(summary.ok, jobs.size());
    EXPECT_EQ(summary.failed, 0u);
    ASSERT_EQ(sink.records().size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(sink.records()[i].index, i);
        EXPECT_EQ(sink.records()[i].spec.name, jobs[i].name);
        EXPECT_TRUE(sink.records()[i].ok());
    }
}

TEST(ExecRunner, FaultInjectionIsIsolatedAndRetried)
{
    std::vector<exec::JobSpec> jobs;
    jobs.push_back(parallelJob("healthy", "art", SchedAlgo::FrFcfs,
                               500));
    exec::JobSpec faulty = parallelJob("faulty", "art",
                                       SchedAlgo::FrFcfs, 500);
    faulty.cfg.check.enabled = true;
    faulty.cfg.check.fault = FaultKind::EarlyCas;
    faulty.cfg.check.faultPeriod = 1;
    jobs.push_back(faulty);

    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 2;
    opts.maxAttempts = 2;
    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary = runner.run(jobs, {&sink});

    EXPECT_EQ(summary.ok, 1u);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.retries, 1u);

    const exec::JobRecord *healthy = sink.find("healthy");
    ASSERT_NE(healthy, nullptr);
    EXPECT_TRUE(healthy->ok());

    const exec::JobRecord *failed = sink.find("faulty");
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->status, exec::JobStatus::CheckViolation);
    EXPECT_EQ(failed->attempts, 2u);
    EXPECT_FALSE(failed->error.empty());
    const std::string repro = exec::reproCommand(failed->spec);
    EXPECT_NE(repro.find("--inject early-cas"), std::string::npos);
    EXPECT_NE(repro.find("--app art"), std::string::npos);
}

TEST(ExecRunner, BadSpecsAreRecordedNotFatal)
{
    std::vector<exec::JobSpec> jobs;
    exec::JobSpec bogus = parallelJob("bogus", "no-such-app",
                                      SchedAlgo::FrFcfs, 300);
    jobs.push_back(bogus);
    jobs.push_back(parallelJob("fine", "art", SchedAlgo::FrFcfs, 300));

    exec::MemorySink sink;
    exec::JobRunner runner;
    const exec::CampaignSummary summary = runner.run(jobs, {&sink});
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.ok, 1u);
    const exec::JobRecord *failed = sink.find("bogus");
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->status, exec::JobStatus::Error);
    EXPECT_NE(failed->error.find("no-such-app"), std::string::npos);
    EXPECT_THROW(sink.result("bogus"), std::runtime_error);
}

TEST(ExecRunner, MatchesSerialExperimentHarness)
{
    const std::uint64_t q = 800;
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.sched.algo = SchedAlgo::CasRasCrit;
    cfg.crit.predictor = CritPredictor::CbpMaxStall;

    exec::JobSpec job;
    job.name = "art/maxstall";
    job.kind = exec::RunKind::Parallel;
    job.workload = "art";
    job.cfg = cfg;
    job.quota = q;

    exec::MemorySink sink;
    exec::JobRunner runner;
    runner.run({job}, {&sink});

    const RunResult serial = runParallel(cfg, appParams("art"), q);
    const RunResult &engine = sink.result("art/maxstall");
    EXPECT_EQ(engine.cycles, serial.cycles);
    EXPECT_EQ(engine.finishCycles, serial.finishCycles);
    EXPECT_EQ(engine.dynamicLoads, serial.dynamicLoads);
    EXPECT_EQ(engine.rowHits, serial.rowHits);

    // Alone runs must agree with runAlone (weighted-speedup baseline).
    exec::JobSpec alone;
    alone.name = "alone/ammp";
    alone.kind = exec::RunKind::Alone;
    alone.workload = "ammp";
    alone.cfg = SystemConfig::multiprogDefault();
    alone.quota = q;
    alone.multiprogPreset = true;
    exec::MemorySink aloneSink;
    runner.run({alone}, {&aloneSink});
    EXPECT_DOUBLE_EQ(
        aloneSink.result("alone/ammp").ipc(0, q),
        runAlone(SystemConfig::multiprogDefault(), appParams("ammp"),
                 q));
}

TEST(ExecRunner, CapturedStatsAreValidJson)
{
    exec::JobSpec job = parallelJob("stats", "art", SchedAlgo::FrFcfs,
                                    400);
    job.captureStats = true;
    std::string json;
    executeJob(job, &json);
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"dram\""), std::string::npos);
    // Balanced braces outside string literals.
    int depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
        } else if (c == '"') {
            inString = true;
        } else if (c == '{') {
            ++depth;
        } else if (c == '}') {
            --depth;
        }
    }
    EXPECT_EQ(depth, 0);
}

TEST(ExecStats, GroupPrintJsonFormat)
{
    stats::Group root("root");
    stats::Scalar counter(root, "counter", "a counter");
    stats::Average avg(root, "avg", "an average");
    stats::Group child("child", &root);
    stats::Scalar inner(child, "inner", "inner counter");

    counter += 3;
    avg.sample(1.5);
    avg.sample(2.5);
    inner += 7;

    std::ostringstream os;
    root.printJson(os);
    EXPECT_EQ(os.str(),
              "{\"counter\":3,"
              "\"avg\":{\"mean\":2,\"sum\":4,\"count\":2},"
              "\"child\":{\"inner\":7}}");
}

TEST(ExecStats, JsonHelpers)
{
    std::ostringstream escaped;
    stats::jsonEscape(escaped, "a\"b\\c\n");
    EXPECT_EQ(escaped.str(), "\"a\\\"b\\\\c\\n\"");

    std::ostringstream finite;
    stats::jsonDouble(finite, 0.1);
    EXPECT_EQ(finite.str(), "0.10000000000000001");

    std::ostringstream inf;
    stats::jsonDouble(inf, std::numeric_limits<double>::infinity());
    EXPECT_EQ(inf.str(), "null");
}

TEST(ExecReport, Fig10SweepSpecMatchesSerialBench)
{
    // The shipped fig10 spec, at a tiny quota, must reproduce the
    // serial harness numbers exactly (fixed seed, same configs).
    std::istringstream in(
        "mode = parallel\n"
        "workloads = art\n"
        "quota = 600\n"
        "seed = 1\n"
        "seed-mode = fixed\n"
        "variant base : sched=frfcfs\n"
        "variant maxstall : sched=casras-crit predictor=maxstall"
        " entries=64\n");
    const exec::SweepSpec spec = exec::parseSweepSpec(in);
    exec::MemorySink sink;
    exec::JobRunner runner;
    runner.run(spec.expand(), {&sink});

    SystemConfig base = SystemConfig::parallelDefault();
    base.sched.algo = SchedAlgo::FrFcfs;
    SystemConfig maxStall = base;
    maxStall.sched.algo = SchedAlgo::CasRasCrit;
    maxStall.crit.predictor = CritPredictor::CbpMaxStall;
    maxStall.crit.tableEntries = 64;

    const RunResult serialBase =
        runParallel(base, appParams("art"), 600);
    const RunResult serialMax =
        runParallel(maxStall, appParams("art"), 600);
    EXPECT_EQ(sink.result("art/base").cycles, serialBase.cycles);
    EXPECT_EQ(sink.result("art/maxstall").cycles, serialMax.cycles);
}

} // namespace

/**
 * @file
 * critmem-lint unit tests: every source rule proven to fire on its
 * bad fixture and stay silent on its good twin, suppression
 * mechanics, baseline round-trips, and the data rules — including
 * the canary this PR exists for: a DDR3 timing preset with
 * tRC < tRAS + tRP must fail lint.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.hh"
#include "analysis/data_rules.hh"
#include "analysis/source_file.hh"
#include "sim/config.hh"

namespace
{

using namespace critmem;
using namespace critmem::analysis;

const std::string kFixtures =
    std::string(CRITMEM_REPO_ROOT) + "/tests/analysis/fixtures/";

/** Run every source rule over one fixture file. */
std::vector<Finding>
lintFixture(const std::string &name)
{
    return analyzeFile(loadSourceFile(
        kFixtures + name, "tests/analysis/fixtures/" + name));
}

/** Findings for one rule id. */
std::size_t
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

TEST(LintWallClock, FiresOnBadFixture)
{
    const auto findings = lintFixture("wall_clock_bad.cc");
    EXPECT_GE(countRule(findings, "wall-clock"), 2u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.severity, Severity::Error);
}

TEST(LintWallClock, SilentOnGoodFixture)
{
    // Mentions of steady_clock live only in comments and string
    // literals, which the blanked-code view must hide.
    EXPECT_EQ(lintFixture("wall_clock_good.cc").size(), 0u);
}

TEST(LintUnseededRandom, FiresOnBadFixture)
{
    EXPECT_GE(countRule(lintFixture("unseeded_random_bad.cc"),
                        "unseeded-random"),
              2u);
}

TEST(LintUnseededRandom, SilentOnGoodFixture)
{
    EXPECT_EQ(lintFixture("unseeded_random_good.cc").size(), 0u);
}

TEST(LintUnorderedIter, FiresOnBadFixture)
{
    const auto findings = lintFixture("unordered_iter_bad.cc");
    // One finding per loop: the alias-declared map and the directly
    // declared set.
    EXPECT_EQ(countRule(findings, "unordered-iter"), 2u);
}

TEST(LintUnorderedIter, SilentOnGoodFixture)
{
    // Lookups in unordered containers and iteration over std::map
    // are both fine.
    EXPECT_EQ(lintFixture("unordered_iter_good.cc").size(), 0u);
}

TEST(LintNarrowCycle, FiresOnBadFixture)
{
    EXPECT_EQ(countRule(lintFixture("narrow_cycle_bad.cc"),
                        "narrow-cycle"),
              3u);
}

TEST(LintNarrowCycle, SilentOnGoodFixture)
{
    EXPECT_EQ(lintFixture("narrow_cycle_good.cc").size(), 0u);
}

TEST(LintConfigValidate, FiresOnBadFixture)
{
    const auto findings = lintFixture("config_validate_bad.cc");
    EXPECT_EQ(countRule(findings, "config-validate"), 2u);
}

TEST(LintConfigValidate, SilentWhenValidated)
{
    // Identical assembly, but validateOrFatal() is called first.
    EXPECT_EQ(countRule(lintFixture("config_validate_good.cc"),
                        "config-validate"),
              0u);
}

TEST(LintConfigValidate, ImplementingModulesAreExempt)
{
    // src/mem/ receives already-validated configs; the same code
    // reported under that path must not be flagged.
    const SourceFile file = loadSourceFile(
        kFixtures + "config_validate_bad.cc", "src/mem/fake.cc");
    EXPECT_EQ(countRule(analyzeFile(file), "config-validate"), 0u);
}

TEST(LintIncludeHygiene, FiresOnBadFixture)
{
    const auto findings = lintFixture("include_hygiene_bad.hh");
    // Bare quoted include, parent-relative include, <bits/...>,
    // missing CRITMEM_* guard, using-namespace: five findings.
    EXPECT_EQ(countRule(findings, "include-hygiene"), 5u);
}

TEST(LintIncludeHygiene, SilentOnGoodFixture)
{
    EXPECT_EQ(lintFixture("include_hygiene_good.hh").size(), 0u);
}

TEST(LintDurableWrite, FiresOnBadFixture)
{
    const auto findings = lintFixture("durable_write_bad.cc");
    // Raw ofstream, fopen "ab", fopen "r+"; the read-only fopen "rb"
    // must not count.
    EXPECT_EQ(countRule(findings, "durable-write"), 3u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.severity, Severity::Error);
}

TEST(LintDurableWrite, SilentOnGoodFixture)
{
    // AtomicFile use, read-mode fopen, a suppressed append-only log,
    // and comment/string mentions: all clean.
    EXPECT_EQ(lintFixture("durable_write_good.cc").size(), 0u);
}

TEST(LintDurableWrite, AtomicFileHelperIsExempt)
{
    // The helper is the one legitimate raw writer; the same code
    // reported under its path must pass.
    const SourceFile file = makeSourceFile(
        "src/sim/atomic_file.hh",
        "#include <fstream>\nstd::ofstream out_;\n");
    EXPECT_EQ(countRule(analyzeFile(file), "durable-write"), 0u);
}

TEST(LintHotPathAlloc, FiresOnBadFixture)
{
    const auto findings = lintFixture("hot_path_alloc_bad.cc");
    // tick(): local vector + make_unique; refreshTick():
    // std::function construction + naked new.
    EXPECT_EQ(countRule(findings, "hot-path-alloc"), 4u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.severity, Severity::Error);
}

TEST(LintHotPathAlloc, SilentOnGoodFixture)
{
    // Member-scratch reuse inside tick(), construction-time
    // allocation outside it, and a justified lint:allow: all clean.
    EXPECT_EQ(lintFixture("hot_path_alloc_good.cc").size(), 0u);
}

TEST(LintHotPathAlloc, IgnoresNonTickFunctions)
{
    const SourceFile file = makeSourceFile(
        "src/x/y.cc",
        "#include <vector>\n"
        "void build() { std::vector<int> v; v.push_back(1); }\n");
    EXPECT_EQ(countRule(analyzeFile(file), "hot-path-alloc"), 0u);
}

TEST(LintNoTerminate, FiresOnBadFixture)
{
    const auto findings = lintFixture("no_terminate_bad.cc");
    // std::abort, std::exit, ::_exit, _Exit, quick_exit: five calls.
    EXPECT_EQ(countRule(findings, "no-terminate"), 5u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.severity, Severity::Error);
}

TEST(LintNoTerminate, SilentOnGoodFixture)
{
    // Thrown failures, exit/abort member functions, other-namespace
    // qualification, atexit(), a justified lint:allow, and mentions
    // in comments / string literals: all clean.
    EXPECT_EQ(lintFixture("no_terminate_good.cc").size(), 0u);
}

TEST(LintNoTerminate, ToolsAreExempt)
{
    // The same terminating code reported under tools/ must pass:
    // process exit is the CLI layer's prerogative (usage(), fatal
    // argument errors).
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "#include <cstdlib>\n"
        "void usage() { std::exit(1); }\n");
    EXPECT_EQ(countRule(analyzeFile(file), "no-terminate"), 0u);
}

TEST(LintSuppression, TrailingCommentGuardsItsLine)
{
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "#include <random>\n"
        "std::mt19937 gen; // lint:allow(unseeded-random): fixture\n");
    EXPECT_EQ(analyzeFile(file).size(), 0u);
}

TEST(LintSuppression, StandaloneCommentCarriesForward)
{
    // The suppression comment sits on its own line (possibly spanning
    // several comment-only lines) and must guard the next code line.
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "// lint:allow(unseeded-random): reproducing a published\n"
        "// stream requires the reference engine here\n"
        "std::mt19937 gen;\n");
    EXPECT_EQ(analyzeFile(file).size(), 0u);
}

TEST(LintSuppression, WholeFileAllow)
{
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "// lint:allow-file(unseeded-random)\n"
        "std::mt19937 a;\n"
        "std::mt19937 b;\n");
    EXPECT_EQ(analyzeFile(file).size(), 0u);
}

TEST(LintSuppression, OtherRulesStillFire)
{
    // Allowing one rule must not silence another on the same line.
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "std::mt19937 gen; // lint:allow(wall-clock): wrong rule\n");
    EXPECT_EQ(countRule(analyzeFile(file), "unseeded-random"), 1u);
}

TEST(LintBaseline, RoundTripAndCoverage)
{
    Finding finding{"wall-clock", Severity::Error, "tools/x.cc", 7,
                    "'steady_clock' reads host time"};
    const std::string path = testing::TempDir() + "lint_baseline_rt.txt";
    {
        std::ofstream out(path);
        out << formatBaseline({finding});
    }
    const Baseline baseline = loadBaseline(path);
    EXPECT_EQ(baseline.keys.size(), 1u);
    EXPECT_TRUE(baseline.covers(finding));

    // Identity is (rule, path, message) — the line number is free to
    // move without resurrecting the finding...
    finding.line = 99;
    EXPECT_TRUE(baseline.covers(finding));
    // ...but a different message is a different finding.
    finding.message = "something else";
    EXPECT_FALSE(baseline.covers(finding));
}

TEST(LintBaseline, ShippedBaselineIsEmpty)
{
    const Baseline baseline =
        loadBaseline(std::string(CRITMEM_REPO_ROOT) +
                     "/lint-baseline.txt");
    EXPECT_TRUE(baseline.keys.empty())
        << "lint-baseline.txt must stay empty: fix or suppress "
           "findings at the source";
}

// The acceptance canary: corrupting a timing preset so tRC < tRAS +
// tRP must produce a preset-timing finding.
TEST(LintPresetTiming, CatchesCorruptedTRC)
{
    DramTiming t; // Table 3 defaults (consistent)
    t.tRC = t.tRAS + t.tRP - 1;
    std::vector<Finding> findings;
    checkDramTiming(t, 1066, "corrupted", findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "preset-timing");
    EXPECT_NE(findings[0].message.find("tRC"), std::string::npos);
}

TEST(LintPresetTiming, CatchesFourActivateWindowViolation)
{
    DramTiming t;
    t.tFAW = 4 * t.tRRD - 1;
    std::vector<Finding> findings;
    checkDramTiming(t, 1066, "corrupted", findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("tFAW"), std::string::npos);
}

TEST(LintPresetTiming, CatchesRefreshWindowDrift)
{
    DramTiming t;
    t.tREFI = t.tREFI * 2; // refresh window doubles to ~128 ms
    std::vector<Finding> findings;
    checkDramTiming(t, 1066, "corrupted", findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("64 ms"), std::string::npos);
}

TEST(LintPresetTiming, ShippedPresetsAreClean)
{
    for (const DramSpeed speed :
         {DramSpeed::DDR3_1066, DramSpeed::DDR3_1600,
          DramSpeed::DDR3_2133}) {
        const DramConfig cfg = DramConfig::preset(speed);
        std::vector<Finding> findings;
        checkDramTiming(cfg.t, cfg.busMHz, toString(speed), findings);
        EXPECT_TRUE(findings.empty())
            << toString(speed) << ": " << findings.front().message;
    }
}

TEST(LintSweepSpec, GoodFixtureIsClean)
{
    std::vector<Finding> findings;
    checkSweepFile(kFixtures + "good.sweep", "good.sweep", findings);
    EXPECT_TRUE(findings.empty())
        << (findings.empty() ? "" : findings.front().message);
}

TEST(LintSweepSpec, FlagsUnknownWorkload)
{
    std::vector<Finding> findings;
    checkSweepFile(kFixtures + "bad_unknown_workload.sweep",
                   "bad_unknown_workload.sweep", findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "sweep-spec");
    EXPECT_NE(findings[0].message.find("nosuchapp"), std::string::npos);
}

TEST(LintSweepSpec, FlagsUnsatisfiableExclude)
{
    std::vector<Finding> findings;
    checkSweepFile(kFixtures + "bad_exclude.sweep",
                   "bad_exclude.sweep", findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("matches no"), std::string::npos);
}

TEST(LintSweepSpec, ShippedCampaignsAreClean)
{
    namespace fs = std::filesystem;
    const fs::path specs = fs::path(CRITMEM_REPO_ROOT) / "specs";
    ASSERT_TRUE(fs::is_directory(specs));
    for (const auto &entry : fs::directory_iterator(specs)) {
        if (entry.path().extension() != ".sweep")
            continue;
        std::vector<Finding> findings;
        checkSweepFile(entry.path().string(),
                       entry.path().filename().string(), findings);
        EXPECT_TRUE(findings.empty())
            << entry.path() << ": "
            << (findings.empty() ? "" : findings.front().message);
    }
}

TEST(LintArenaCoverage, GoodFixtureIsClean)
{
    std::vector<Finding> findings;
    checkArenaCoverage(kFixtures + "arena_good.sweep",
                       "arena_good.sweep", findings);
    EXPECT_TRUE(findings.empty())
        << (findings.empty() ? "" : findings.front().message);
}

TEST(LintArenaCoverage, FlagsMissingScheduler)
{
    std::vector<Finding> findings;
    checkArenaCoverage(kFixtures + "arena_bad_missing.sweep",
                       "arena_bad_missing.sweep", findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "arena-coverage");
    EXPECT_NE(findings[0].message.find("'bliss'"), std::string::npos);
}

TEST(LintArenaCoverage, ShippedArenaCoversRegistry)
{
    const std::string spec =
        std::string(CRITMEM_REPO_ROOT) + "/specs/arena.sweep";
    std::vector<Finding> findings;
    checkArenaCoverage(spec, "specs/arena.sweep", findings);
    EXPECT_TRUE(findings.empty())
        << (findings.empty() ? "" : findings.front().message);
}

TEST(LintStaleSuppression, FlagsAllowThatSuppressesNothing)
{
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "int clean() { return 0; } "
        "// lint:allow(wall-clock): nothing here reads a clock\n");
    const auto findings = analyzeFile(file);
    ASSERT_EQ(countRule(findings, "stale-suppression"), 1u);
    const Finding &f = findings.front();
    EXPECT_EQ(f.line, 1);
    EXPECT_NE(f.message.find("lint:allow(wall-clock)"),
              std::string::npos);
    EXPECT_NE(f.message.find("suppresses nothing"),
              std::string::npos);
}

TEST(LintStaleSuppression, FlagsStaleWholeFileAllow)
{
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "// lint:allow-file(unseeded-random)\n"
        "int clean() { return 0; }\n");
    const auto findings = analyzeFile(file);
    ASSERT_EQ(countRule(findings, "stale-suppression"), 1u);
    EXPECT_NE(findings.front().message.find("lint:allow-file"),
              std::string::npos);
}

TEST(LintStaleSuppression, UsedAllowIsNotStale)
{
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "#include <random>\n"
        "std::mt19937 gen; // lint:allow(unseeded-random): fixture\n");
    EXPECT_EQ(countRule(analyzeFile(file), "stale-suppression"), 0u);
}

TEST(LintStaleSuppression, ItselfSuppressible)
{
    // A knowingly-dormant allow can be kept with an explicit
    // stale-suppression allow on the same line.
    const SourceFile file = makeSourceFile(
        "tools/x.cc",
        "int clean() { return 0; } "
        "// lint:allow(wall-clock): future use "
        "lint:allow(stale-suppression): kept on purpose\n");
    EXPECT_EQ(countRule(analyzeFile(file), "stale-suppression"), 0u);
}

TEST(LintJson, DeterministicEscapedOutput)
{
    Report report;
    report.filesScanned = 2;
    Finding f{"wall-clock", Severity::Error, "a.cc", 3,
              "'steady_clock' reads \"host\" time\tnow"};
    f.chain.push_back({"Sched::pick", "a.cc", 10});
    report.findings.push_back(f);
    report.baselined.push_back(
        {"narrow-cycle", Severity::Error, "b.cc", 1, "m"});

    const std::string once = formatJson(report);
    EXPECT_EQ(once, formatJson(report));
    EXPECT_NE(once.find("\"filesScanned\": 2"), std::string::npos);
    EXPECT_NE(once.find("\"clean\": false"), std::string::npos);
    // Quotes and tabs inside messages must round-trip escaped.
    EXPECT_NE(once.find("\\\"host\\\" time\\tnow"),
              std::string::npos);
    EXPECT_NE(once.find("\"symbol\": \"Sched::pick\""),
              std::string::npos);
    EXPECT_NE(once.find("\"baselined\""), std::string::npos);
    EXPECT_EQ(once.back(), '\n');
}

TEST(LintJson, EmptyReportIsClean)
{
    Report report;
    report.filesScanned = 1;
    const std::string json = formatJson(report);
    EXPECT_NE(json.find("\"clean\": true"), std::string::npos);
    EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

TEST(LintReport, FindingRenderAndOrder)
{
    const Finding a{"wall-clock", Severity::Error, "a.cc", 3, "m"};
    const Finding b{"wall-clock", Severity::Error, "a.cc", 9, "m"};
    const Finding c{"narrow-cycle", Severity::Error, "b.cc", 1, "m"};
    EXPECT_TRUE(findingLess(a, b));
    EXPECT_TRUE(findingLess(b, c));
    std::ostringstream os;
    os << a;
    EXPECT_EQ(os.str(), "a.cc:3: error: [wall-clock] m");
}

} // namespace

/** @file Tests for the extension features: ATLAS / Minimalist / FCFS
 *  scheduling, the closed-page row policy, trace record/replay, and
 *  the saturating/probabilistic CBP counters. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "crit/cbp.hh"
#include "dram/dram.hh"
#include "sched/atlas.hh"
#include "sched/frfcfs.hh"
#include "sched/minimalist.hh"
#include "system/experiment.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

SchedCandidate
cand(DramCmd cmd, std::uint64_t seq, CoreId core = 0,
     bool prefetch = false)
{
    SchedCandidate c;
    c.cmd = cmd;
    c.rowHit = cmd == DramCmd::Read || cmd == DramCmd::Write;
    c.seq = seq;
    c.core = core;
    c.isPrefetch = prefetch;
    c.arrival = 10;
    return c;
}

} // namespace

TEST(Fcfs, IgnoresRowBufferState)
{
    FcfsScheduler sched;
    // An older ACT beats a younger row hit: strict age order.
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 9), cand(DramCmd::Act, 1)};
    EXPECT_EQ(sched.pick(0, cands, 100), 1);
}

TEST(Atlas, LeastAttainedServiceRankedFirst)
{
    AtlasScheduler sched(2, /*quantum=*/100);
    // Core 1 receives lots of service in quantum 0.
    for (int i = 0; i < 50; ++i)
        sched.onIssue(0, cand(DramCmd::Read, i, 1), 10);
    sched.onIssue(0, cand(DramCmd::Read, 60, 0), 10);
    sched.tick(100);
    EXPECT_LT(sched.attained(0), sched.attained(1));
    // The light thread's row miss beats the hog's row hit.
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 1, 1), cand(DramCmd::Act, 5, 0)};
    EXPECT_EQ(sched.pick(0, cands, 120), 1);
}

TEST(Atlas, ServiceDecaysAcrossQuanta)
{
    AtlasScheduler sched(2, 100, /*decay=*/0.5);
    for (int i = 0; i < 64; ++i)
        sched.onIssue(0, cand(DramCmd::Read, i, 0), 10);
    sched.tick(100);
    const double after1 = sched.attained(0);
    sched.tick(200); // idle quantum: service decays
    EXPECT_LT(sched.attained(0), after1);
}

TEST(Minimalist, LowMlpThreadWins)
{
    MinimalistScheduler sched(1, 2, 8);
    // Thread 0 has 4 outstanding reads, thread 1 has 1.
    for (std::uint64_t i = 0; i < 4; ++i) {
        MemRequest req;
        req.id = i;
        req.core = 0;
        sched.onEnqueue(0, req, DramCoord{}, 10);
    }
    MemRequest req;
    req.id = 4;
    req.core = 1;
    sched.onEnqueue(0, req, DramCoord{}, 10);
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 0, 0), cand(DramCmd::Read, 4, 1)};
    EXPECT_EQ(sched.pick(0, cands, 100), 1);
}

TEST(Minimalist, PrefetchesAlwaysLast)
{
    MinimalistScheduler sched(1, 2, 8);
    const std::vector<SchedCandidate> cands = {
        cand(DramCmd::Read, 1, 0, /*prefetch=*/true),
        cand(DramCmd::Act, 9, 0)};
    EXPECT_EQ(sched.pick(0, cands, 100), 1);
}

TEST(ClosedPage, AutoPrechargesIdleRows)
{
    stats::Group root;
    FrFcfsScheduler sched;
    DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_2133);
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.closedPage = true;
    DramSystem dram(cfg, sched, root);
    MemRequest req;
    req.addr = 0x4000;
    req.type = ReqType::Read;
    ASSERT_TRUE(dram.enqueue(std::move(req)));
    for (DramCycle now = 1; now < 200; ++now)
        dram.tick(now);
    EXPECT_EQ(dram.channel(0).channelStats().autoPrecharges.value(),
              1u);
}

TEST(ClosedPage, KeepsRowOpenForPendingHit)
{
    stats::Group root;
    FrFcfsScheduler sched;
    DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_2133);
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.closedPage = true;
    DramSystem dram(cfg, sched, root);
    // Two reads to the same row: the first CAS must not close the
    // row under the second's feet.
    for (const Addr addr : {Addr{0x4000}, Addr{0x4040}}) {
        MemRequest req;
        req.addr = addr;
        req.type = ReqType::Read;
        ASSERT_TRUE(dram.enqueue(std::move(req)));
    }
    for (DramCycle now = 1; now < 300; ++now)
        dram.tick(now);
    const auto &ds = dram.channel(0).channelStats();
    EXPECT_EQ(ds.reads.value(), 2u);
    EXPECT_EQ(ds.activates.value(), 1u); // second read was a row hit
    EXPECT_EQ(ds.autoPrecharges.value(), 1u);
}

TEST(ClosedPage, EndToEndRunStillCorrect)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.dram.closedPage = true;
    System sys(cfg, appParams("mg"));
    const Cycle cycles = sys.run(1500);
    EXPECT_GT(cycles, 0u);
    for (std::uint32_t i = 0; i < sys.numCores(); ++i)
        EXPECT_TRUE(sys.core(i).finished());
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
            "critmem_trace_test.bin";
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::filesystem::path path_;
};

TEST_F(TraceFileTest, RoundTripPreservesEveryField)
{
    {
        TraceWriter writer(path_.string());
        MicroOp op;
        op.cls = OpClass::Load;
        op.pc = 0x400123;
        op.addr = 0xdeadbeef00;
        op.latency = 3;
        op.dep1 = 7;
        op.dep2 = 999;
        op.mispredict = false;
        writer.append(op);
        op.cls = OpClass::Branch;
        op.mispredict = true;
        op.addr = 0;
        writer.append(op);
        EXPECT_EQ(writer.written(), 2u);
    }
    TraceReader reader(path_.string());
    ASSERT_EQ(reader.size(), 2u);
    MicroOp op;
    reader.next(op);
    EXPECT_EQ(op.cls, OpClass::Load);
    EXPECT_EQ(op.pc, 0x400123u);
    EXPECT_EQ(op.addr, 0xdeadbeef00u);
    EXPECT_EQ(op.dep1, 7u);
    EXPECT_EQ(op.dep2, 999u);
    EXPECT_FALSE(op.mispredict);
    reader.next(op);
    EXPECT_EQ(op.cls, OpClass::Branch);
    EXPECT_TRUE(op.mispredict);
}

TEST_F(TraceFileTest, ReaderWrapsAround)
{
    {
        TraceWriter writer(path_.string());
        MicroOp op;
        op.pc = 1;
        writer.append(op);
        op.pc = 2;
        writer.append(op);
    }
    TraceReader reader(path_.string());
    MicroOp op;
    reader.next(op);
    reader.next(op);
    reader.next(op); // wrapped
    EXPECT_EQ(op.pc, 1u);
}

TEST_F(TraceFileTest, RecordThenReplayMatchesGenerator)
{
    const AppParams &app = appParams("fft");
    SyntheticApp original(app, 0, 8, 0, 77);
    {
        SyntheticApp source(app, 0, 8, 0, 77);
        TraceWriter writer(path_.string());
        RecordingGenerator recorder(source, writer);
        MicroOp op;
        for (int i = 0; i < 500; ++i)
            recorder.next(op);
    }
    TraceReader replay(path_.string());
    ASSERT_EQ(replay.size(), 500u);
    for (int i = 0; i < 500; ++i) {
        MicroOp a, b;
        original.next(a);
        replay.next(b);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_EQ(a.dep1, b.dep1);
    }
}

TEST_F(TraceFileTest, RejectsGarbage)
{
    {
        std::FILE *f = std::fopen(path_.string().c_str(), "wb");
        std::fputs("this is not a trace!", f);
        std::fclose(f);
    }
    EXPECT_THROW({ TraceReader reader(path_.string()); }, TraceError);
}

TEST(CbpExt, SaturatingCounterCapsAtWidth)
{
    CommitBlockPredictor cbp(CritPredictor::CbpTotalStall, 64, 0,
                             /*counterWidth=*/4);
    cbp.update(0x400000, 1000);
    EXPECT_EQ(cbp.predict(0x400000), 15u);
    cbp.update(0x400000, 1000);
    EXPECT_EQ(cbp.predict(0x400000), 15u); // stays saturated
    EXPECT_EQ(cbp.maxObserved(), 15u);
}

TEST(CbpExt, SaturationAppliesToMaxStallToo)
{
    CommitBlockPredictor cbp(CritPredictor::CbpMaxStall, 64, 0, 6);
    cbp.update(0x400000, 500);
    EXPECT_EQ(cbp.predict(0x400000), 63u);
}

TEST(CbpExt, ProbabilisticUpdatesAreUnbiased)
{
    // With shift s, each update lands with probability 2^-s scaled by
    // 2^s: over many updates the total converges to the exact sum.
    CommitBlockPredictor exact(CritPredictor::CbpBlockCount, 64, 0);
    CommitBlockPredictor prob(CritPredictor::CbpBlockCount, 64, 0, 0,
                              /*probShift=*/3);
    for (int i = 0; i < 8000; ++i) {
        exact.update(0x400000, 1);
        prob.update(0x400000, 1);
    }
    const double exactVal =
        static_cast<double>(exact.predict(0x400000));
    const double probVal = static_cast<double>(prob.predict(0x400000));
    EXPECT_NEAR(probVal / exactVal, 1.0, 0.15);
}

TEST(CbpExt, ProbabilisticDoesNotAffectMaxStall)
{
    // Only the accumulating annotations use probabilistic updates.
    CommitBlockPredictor cbp(CritPredictor::CbpMaxStall, 64, 0, 0, 4);
    cbp.update(0x400000, 123);
    EXPECT_EQ(cbp.predict(0x400000), 123u);
}

TEST(ExtSchedulers, EndToEndRuns)
{
    for (const SchedAlgo algo :
         {SchedAlgo::Fcfs, SchedAlgo::Atlas, SchedAlgo::Minimalist}) {
        SystemConfig cfg = SystemConfig::parallelDefault();
        cfg.sched.algo = algo;
        System sys(cfg, appParams("cg"));
        sys.run(1200);
        for (std::uint32_t i = 0; i < sys.numCores(); ++i)
            EXPECT_TRUE(sys.core(i).finished()) << toString(algo);
    }
}

TEST(ExtSchedulers, FcfsLosesToFrFcfs)
{
    SystemConfig frf = SystemConfig::parallelDefault();
    System a(frf, appParams("swim"));
    a.prewarmCaches();
    const Cycle frfCycles = a.run(3000);

    SystemConfig fcfs = frf;
    fcfs.sched.algo = SchedAlgo::Fcfs;
    System b(fcfs, appParams("swim"));
    b.prewarmCaches();
    const Cycle fcfsCycles = b.run(3000);
    // Ignoring row hits must cost real performance on a streaming app.
    EXPECT_GT(fcfsCycles, frfCycles);
}

/** @file Tests for the page-interleaved DRAM address mapping. */

#include <gtest/gtest.h>

#include "dram/address_map.hh"

using namespace critmem;

namespace
{

DramConfig
org(std::uint32_t channels, std::uint32_t ranks, std::uint32_t banks,
    std::uint32_t rowBytes = 1024)
{
    DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_2133);
    cfg.channels = channels;
    cfg.ranksPerChannel = ranks;
    cfg.banksPerRank = banks;
    cfg.rowBytes = rowBytes;
    return cfg;
}

} // namespace

TEST(AddressMap, SameRowSameCoordinates)
{
    const AddressMap map(org(4, 4, 8));
    const DramCoord a = map.decode(0x100000);
    const DramCoord b = map.decode(0x100000 + 1023);
    EXPECT_EQ(a, b);
}

TEST(AddressMap, ConsecutiveRowsRotateChannels)
{
    const AddressMap map(org(4, 4, 8));
    const DramCoord a = map.decode(0);
    const DramCoord b = map.decode(1024);
    EXPECT_EQ(b.channel, (a.channel + 1) % 4);
}

TEST(AddressMap, ChannelsWrapThenBankAdvances)
{
    const AddressMap map(org(4, 4, 8));
    const DramCoord a = map.decode(0);
    const DramCoord b = map.decode(1024ull * 4); // one full channel turn
    EXPECT_EQ(b.channel, a.channel);
    EXPECT_EQ(b.bank, (a.bank + 1) % 8);
}

TEST(AddressMap, RowIsHighBits)
{
    const AddressMap map(org(4, 4, 8));
    // 1024 B row * 4 channels * 8 banks * 4 ranks = 128 KB per row
    // increment.
    const DramCoord a = map.decode(0);
    const DramCoord b = map.decode(128 * 1024);
    EXPECT_EQ(b.row, a.row + 1);
    EXPECT_EQ(b.channel, a.channel);
    EXPECT_EQ(b.bank, a.bank);
    EXPECT_EQ(b.rank, a.rank);
}

TEST(AddressMapDeath, RejectsNonPowerOfTwo)
{
    DramConfig bad = org(3, 4, 8);
    EXPECT_DEATH({ AddressMap map(bad); }, "power of two");
}

/** Property sweep over organizations. */
struct OrgParam
{
    std::uint32_t channels;
    std::uint32_t ranks;
    std::uint32_t banks;
};

class AddressMapOrgTest : public ::testing::TestWithParam<OrgParam>
{
};

TEST_P(AddressMapOrgTest, CoordinatesInRange)
{
    const OrgParam p = GetParam();
    const AddressMap map(org(p.channels, p.ranks, p.banks));
    std::uint64_t addr = 0x12345;
    for (int i = 0; i < 2000; ++i) {
        const DramCoord c = map.decode(addr);
        EXPECT_LT(c.channel, p.channels);
        EXPECT_LT(c.rank, p.ranks);
        EXPECT_LT(c.bank, p.banks);
        addr = addr * 2862933555777941757ull + 3037000493ull;
    }
}

TEST_P(AddressMapOrgTest, DecodeIsDeterministicAndBlockStable)
{
    const OrgParam p = GetParam();
    const AddressMap map(org(p.channels, p.ranks, p.banks));
    // All addresses within one 64 B block share coordinates.
    for (Addr base = 0; base < 1u << 20; base += 77777) {
        const Addr block = base & ~Addr{63};
        const DramCoord a = map.decode(block);
        const DramCoord b = map.decode(block + 63);
        EXPECT_EQ(a, b);
    }
}

TEST_P(AddressMapOrgTest, UniformChannelSpread)
{
    const OrgParam p = GetParam();
    const AddressMap map(org(p.channels, p.ranks, p.banks));
    std::vector<std::uint64_t> counts(p.channels, 0);
    // Sequential rows must hit channels perfectly uniformly.
    for (std::uint64_t row = 0; row < 4096; ++row)
        ++counts[map.decode(row * 1024).channel];
    for (const std::uint64_t count : counts)
        EXPECT_EQ(count, 4096u / p.channels);
}

TEST(AddressMapBlock, ConsecutiveBlocksRotateChannels)
{
    DramConfig cfg = org(4, 4, 8);
    cfg.mapKind = AddressMapKind::BlockInterleave;
    const AddressMap map(cfg);
    const DramCoord a = map.decode(0);
    const DramCoord b = map.decode(64);
    EXPECT_EQ(b.channel, (a.channel + 1) % 4);
}

TEST(AddressMapBlock, SameRowSameRowIdAcrossColumns)
{
    DramConfig cfg = org(4, 4, 8);
    cfg.mapKind = AddressMapKind::BlockInterleave;
    const AddressMap map(cfg);
    // Blocks 0 and 4 are the same channel (4 channels) and must share
    // bank/rank/row (adjacent columns of the same physical row).
    const DramCoord a = map.decode(0);
    const DramCoord b = map.decode(4 * 64);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.row, b.row);
}

TEST(AddressMapBlock, CoordinatesInRange)
{
    DramConfig cfg = org(4, 4, 8);
    cfg.mapKind = AddressMapKind::BlockInterleave;
    const AddressMap map(cfg);
    std::uint64_t addr = 0xabcdef;
    for (int i = 0; i < 2000; ++i) {
        const DramCoord c = map.decode(addr);
        EXPECT_LT(c.channel, 4u);
        EXPECT_LT(c.rank, 4u);
        EXPECT_LT(c.bank, 8u);
        addr = addr * 2862933555777941757ull + 3037000493ull;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Orgs, AddressMapOrgTest,
    ::testing::Values(OrgParam{1, 1, 8}, OrgParam{2, 1, 8},
                      OrgParam{2, 2, 8}, OrgParam{4, 1, 8},
                      OrgParam{4, 2, 8}, OrgParam{4, 4, 8},
                      OrgParam{8, 4, 16}));

// Fixture: durable writers that must NOT trip the durable-write
// rule — the AtomicFile recipe, a read-only fopen, an ofstream that
// carries an inline suppression with its durability story, and
// ofstream/fopen mentions hidden in comments and string literals.
#include <cstdio>
#include <string>

#include "sim/atomic_file.hh"

void
dumpResults(const std::string &path)
{
    critmem::AtomicFile out(path); // temp + fsync + rename
    out.stream() << "cycles = 42\n";
    out.commit();
}

long
readBack(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    std::fclose(f);
    return 0;
}

void
appendJournal(const char *path)
{
    // lint:allow(durable-write): append-only log; every record is
    // fsync'd before the result becomes visible.
    std::FILE *f = std::fopen(path, "ab");
    std::fclose(f);
}

// A std::ofstream mention in a comment is fine, as is one in a
// string literal:
std::string
describe()
{
    return "ofstream and fopen(path, \"wb\") are banned";
}

// Fixture: the same direct assembly, but the config goes through
// validateOrFatal() first — which satisfies the config-validate rule.
#include "mem/hierarchy.hh"
#include "sim/stats.hh"

void
assemble(const critmem::SystemConfig &cfg,
         critmem::Scheduler &sched)
{
    critmem::validateOrFatal(cfg);
    critmem::stats::Group root("sys");
    critmem::DramSystem dram(cfg.dram, sched, root);
    critmem::MemHierarchy hier(cfg, dram, root);
    (void)hier;
}

// Fixture: deliberately reads host time. critmem-lint's wall-clock
// rule must flag the steady_clock use on the marked line.
#include <chrono>

long
elapsedMs()
{
    const auto start = std::chrono::steady_clock::now(); // BAD
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// Fixture: naked 32-bit declarations of cycle quantities, which wrap
// after ~4e9 cycles. The narrow-cycle rule must flag all three.
#include <cstdint>

std::uint64_t
drain()
{
    std::uint32_t startCycle = 0; // BAD
    unsigned busCycles = 0;       // BAD
    int cycleDelta = 0;           // BAD
    return startCycle + busCycles + static_cast<unsigned>(cycleDelta);
}

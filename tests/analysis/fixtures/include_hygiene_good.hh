// Fixture header satisfying include-hygiene: guarded, project-
// relative includes only, no namespace leak.
#ifndef CRITMEM_TESTS_FIXTURE_INCLUDE_HYGIENE_GOOD_HH
#define CRITMEM_TESTS_FIXTURE_INCLUDE_HYGIENE_GOOD_HH

#include <vector>

#include "sim/types.hh"

namespace critmem
{
std::vector<Cycle> fixtureCycles();
} // namespace critmem

#endif // CRITMEM_TESTS_FIXTURE_INCLUDE_HYGIENE_GOOD_HH

// Fixture: library code that terminates the process. critmem-lint's
// no-terminate rule must flag every call of the exit()/abort()
// family here — qualified or not — because each one turns a
// recoverable per-job failure into a dead campaign.
#include <cstdlib>

void
giveUp()
{
    std::abort(); // BAD: kills the whole campaign
}

void
bailOut(int rc)
{
    std::exit(rc); // BAD: library code must throw instead
}

void
hardStop()
{
    ::_exit(2); // BAD: POSIX-qualified form
}

void
fastStop()
{
    _Exit(3); // BAD: unqualified form
}

void
quickStop()
{
    quick_exit(4); // BAD: quick_exit is still termination
}

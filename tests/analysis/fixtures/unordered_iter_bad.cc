// Fixture: range-for over unordered containers — declared directly
// and via a using-alias. Both loops must be flagged by the
// unordered-iter rule.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

using TagMap = std::unordered_map<std::string, std::uint64_t>;

std::uint64_t
total()
{
    TagMap tags = {{"a", 1}, {"b", 2}};
    std::uint64_t sum = 0;
    for (const auto &kv : tags) // BAD: alias-declared unordered_map
        sum += kv.second;
    std::unordered_set<std::uint64_t> seen{sum};
    for (std::uint64_t v : seen) // BAD: declared unordered_set
        sum += v;
    return sum;
}

// Fixture: the clean patterns — scratch members reused across ticks,
// allocation outside tick-named functions, and a justified inline
// suppression — must all stay silent.
#include <memory>
#include <vector>

struct Widget
{
    int x = 0;
};

struct Component
{
    void
    tick(unsigned long now)
    {
        // Swap into persistent scratch: no per-cycle heap traffic.
        scratch_.clear();
        scratch_.swap(retry_);
        for (const int v : scratch_)
            sink_ += v + static_cast<int>(now);
        // lint:allow(hot-path-alloc): grows only on the first tick
        // after a resize, then reuses capacity forever.
        std::vector<int> once(4, 0);
        sink_ += once.size();
    }

    void
    build()
    {
        // Construction-time allocation is not a hot path.
        widget_ = std::make_unique<Widget>();
        std::vector<int> setup(128, 0);
        retry_ = setup;
    }

    std::vector<int> retry_;
    std::vector<int> scratch_;
    std::unique_ptr<Widget> widget_;
    long sink_ = 0;
};

// Transitive-determinism bad fixture: the forbidden wall-clock read
// sits TWO call hops away from the Scheduler entry point, so only
// the call-graph rule (not the per-file lexical rule alone) can tie
// it back to the scheduler. Never compiled; lint input only.
#include <chrono>

namespace fixture
{

class HelperB
{
  public:
    long
    stamp() const
    {
        return std::chrono::steady_clock::now()
            .time_since_epoch()
            .count();
    }
};

class HelperA
{
  public:
    long
    viaB() const
    {
        HelperB b;
        return b.stamp();
    }
};

class BadSched : public Scheduler
{
  public:
    long
    pick()
    {
        HelperA a;
        return a.viaB();
    }
};

} // namespace fixture

// Fixture: mentions clocks only in comments and string literals,
// which the blanked-code view must hide from the wall-clock rule.
#include <string>

// A steady_clock reference in a comment is fine.
std::string
describe()
{
    return "steady_clock is banned; gettimeofday too";
}

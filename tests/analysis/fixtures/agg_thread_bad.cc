// Aggregation-thread-only bad fixture: a function marked as
// worker-side reaches ResultSink::consume through an intermediate
// helper. Never compiled; lint input only.

namespace fixture
{

class ResultSink
{
  public:
    void
    consume(int value)
    {
        total_ += value;
    }

  private:
    int total_ = 0;
};

class Pool
{
  public:
    // lint:thread(worker): runs on a pool thread.
    void
    workerLoop()
    {
        finishJob(3);
    }

    void
    finishJob(int value)
    {
        sink_.consume(value);
    }

  private:
    ResultSink sink_;
};

} // namespace fixture

// Fixture: unordered containers used for lookups only, plus a
// range-for over an ordered std::map. No unordered-iter findings.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

std::uint64_t
lookup(const std::unordered_map<std::string, std::uint64_t> &index,
       const std::map<std::string, std::uint64_t> &ordered)
{
    std::uint64_t sum = 0;
    const auto it = index.find("total"); // lookup, not iteration
    if (it != index.end())
        sum += it->second;
    for (const auto &kv : ordered) // ordered: fine
        sum += kv.second;
    return sum;
}

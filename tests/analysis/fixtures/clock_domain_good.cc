// Clock-domain good fixture: every cross-domain interaction goes
// through a named converter, a lint:domain marker, or stays within
// one domain. Never compiled; lint input only.

namespace fixture
{

class Clean
{
  public:
    Cycle
    skew() const
    {
        return cpuNow_ - toCpuCycles(dramNow_);
    }

    std::uint64_t
    markedSkew() const
    {
        // lint:domain(convert): ratio of the two clocks, unitless.
        return cpuNow_ * 1000 / (dramNow_ + 1);
    }

    void
    feed()
    {
        advance(dramNow_);
    }

    void
    advance(DramCycle now)
    {
        dramNow_ = now;
    }

    Cycle
    toCpuCycles(DramCycle dc) const
    {
        return dc * ratio_;
    }

  private:
    Cycle cpuNow_ = 0;
    DramCycle dramNow_ = 0;
    Cycle ratio_ = 2;
};

} // namespace fixture

// Aggregation-thread-only good fixture: the worker does its own
// bookkeeping; only the aggregation-marked function touches the
// sink. Never compiled; lint input only.

namespace fixture
{

class ResultSink
{
  public:
    void
    consume(int value)
    {
        total_ += value;
    }

  private:
    int total_ = 0;
};

class Pool
{
  public:
    // lint:thread(worker): runs on a pool thread.
    void
    workerLoop()
    {
        local_ += 1;
    }

    // lint:thread(aggregation): sole consumer of the sink.
    void
    aggregate()
    {
        sink_.consume(local_);
    }

  private:
    ResultSink sink_;
    int local_ = 0;
};

} // namespace fixture

// Fixture: irreproducible randomness sources the unseeded-random
// rule must flag.
#include <random>

unsigned
roll()
{
    std::random_device dev; // BAD
    std::mt19937 gen(dev()); // BAD
    return static_cast<unsigned>(gen());
}

// Clock-domain bad fixture: CPU-cycle and DRAM-cycle quantities mix
// in one expression and cross a call boundary without a conversion.
// Never compiled; lint input only.

namespace fixture
{

class Mixer
{
  public:
    std::uint64_t
    skew() const
    {
        return cpuNow_ + dramNow_;
    }

    void
    feed()
    {
        advance(cpuNow_);
    }

    void
    advance(DramCycle now)
    {
        dramNow_ = now;
    }

    std::uint64_t
    conventionSkew() const
    {
        return cpuCycleEstimate_ - dramCycleEstimate_;
    }

  private:
    Cycle cpuNow_ = 0;
    DramCycle dramNow_ = 0;
    std::uint64_t cpuCycleEstimate_ = 0;
    std::uint64_t dramCycleEstimate_ = 0;
};

} // namespace fixture

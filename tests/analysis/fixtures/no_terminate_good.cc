// Fixture: code the no-terminate rule must stay silent on — thrown
// failures, member functions that merely *look* like the exit
// family, other-namespace qualification, an allowed terminator with
// its justification, and exit mentions in comments / string literals.
#include <cstdlib>
#include <stdexcept>
#include <string>

struct Session
{
    void exit() {}
    void abort() {}
};

namespace shell
{
void exit(int);
}

void
failProperly(bool broken)
{
    if (broken)
        throw std::runtime_error("job failed"); // OK: recoverable
}

void
leaveSession(Session &s, Session *p)
{
    s.exit();   // OK: member call, not process termination
    p->abort(); // OK: member call through a pointer
    shell::exit(0); // OK: other-namespace function
    std::atexit(nullptr); // OK: registers a handler, does not exit
}

[[noreturn]] void
workerChildDone()
{
    // lint:allow(no-terminate): post-fork worker child; returning
    // would run the supervisor's stack a second time.
    ::_exit(0);
}

// "call exit(1)" in a comment is fine, as is one in a literal:
std::string
describe()
{
    return "exit(1) and abort() are banned in library code";
}

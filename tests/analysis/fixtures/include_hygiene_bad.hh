// Fixture header violating every include-hygiene clause: bare quoted
// include, parent-relative include, libstdc++ internal, no CRITMEM_*
// guard, and a file-scope using-namespace.
#include "config.hh"
#include "../sim/types.hh"
#include <bits/stl_vector.h>

using namespace std;

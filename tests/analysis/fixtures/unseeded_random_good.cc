// Fixture: the sanctioned randomness source — an explicitly seeded
// critmem::Rng. Must produce no unseeded-random findings.
#include "sim/random.hh"

std::uint64_t
roll(std::uint64_t seed)
{
    critmem::Rng rng(seed);
    return rng.next();
}

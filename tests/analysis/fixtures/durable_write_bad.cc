// Fixture: deliberately writes result files without crash atomicity.
// critmem-lint's durable-write rule must flag the raw ofstream and
// both write-mode fopen calls, but not the read-mode fopen.
#include <cstdio>
#include <fstream>

void
dumpResults(const char *path)
{
    std::ofstream out(path); // BAD: torn file on crash
    out << "cycles = 42\n";
}

void
appendLog(const char *path)
{
    std::FILE *f = std::fopen(path, "ab"); // BAD: write mode
    std::fclose(f);
}

void
rewrite(const char *path)
{
    std::FILE *f = std::fopen(path, "r+"); // BAD: update mode
    std::fclose(f);
}

long
readBack(const char *path)
{
    std::FILE *f = std::fopen(path, "rb"); // OK: read-only
    std::fclose(f);
    return 0;
}

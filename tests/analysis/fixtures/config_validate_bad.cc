// Fixture: assembles DramSystem and MemHierarchy directly without
// ever validating the config — the exact bypass the config-validate
// rule exists to catch (System's constructor is never involved).
#include "mem/hierarchy.hh"
#include "sim/stats.hh"

void
assemble(const critmem::SystemConfig &cfg,
         critmem::Scheduler &sched)
{
    critmem::stats::Group root("sys");
    critmem::DramSystem dram(cfg.dram, sched, root); // BAD
    critmem::MemHierarchy hier(cfg, dram, root);     // BAD
    (void)hier;
}

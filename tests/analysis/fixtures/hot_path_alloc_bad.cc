// Fixture: per-cycle heap traffic inside tick()-named hot paths. The
// hot-path-alloc rule must flag each marked line.
#include <functional>
#include <memory>
#include <vector>

struct Widget
{
    int x = 0;
};

struct Component
{
    void
    tick(unsigned long now)
    {
        std::vector<int> retry; // BAD: per-cycle container
        retry.push_back(static_cast<int>(now));
        auto w = std::make_unique<Widget>(); // BAD: per-cycle alloc
        w->x = retry.back();
    }

    void
    refreshTick(unsigned long now)
    {
        std::function<void()> cb = [now] { (void)now; }; // BAD
        cb();
        Widget *raw = new Widget; // BAD: naked new
        raw->x = static_cast<int>(now);
        delete raw;
    }
};

// Transitive-determinism good fixture: the scheduler's call chain
// reaches a wall-clock read that carries an inline allow with a
// stated reason — a reviewed suppression is trusted transitively,
// so the semantic rule stays silent. Never compiled; lint input.
#include <chrono>

namespace fixture
{

class Telemetry
{
  public:
    long
    etaMs() const
    {
        // lint:allow(wall-clock): stderr progress display only,
        // never enters any simulated result.
        return std::chrono::steady_clock::now()
            .time_since_epoch()
            .count();
    }
};

class GoodSched : public Scheduler
{
  public:
    long
    pick()
    {
        Telemetry t;
        return t.etaMs() & 1;
    }
};

} // namespace fixture

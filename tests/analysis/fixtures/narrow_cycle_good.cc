// Fixture: cycle quantities carried in 64-bit types, plus a 32-bit
// variable whose name says nothing about cycles. No findings.
#include <cstdint>

using Cycle = std::uint64_t;

Cycle
drain()
{
    Cycle startCycle = 0;
    std::uint64_t busCycles = 0;
    std::uint32_t retries = 0; // 32-bit, but not a cycle count
    return startCycle + busCycles + retries;
}

// Symbol-indexer stress fixture: overloads, templates, out-of-line
// members, nested namespaces, member-initializer lists, macro-like
// calls, anonymous namespaces. The indexer tests assert that the
// call graph built from this file has NO false edge and that
// indexing never crashes. Never compiled; lint input only.
#include <string>

#define LOG_THING(x) record(x)

namespace outer
{
namespace inner
{

template <typename T>
class Box
{
  public:
    T
    get() const
    {
        return value_;
    }

  private:
    T value_;
};

class Gnarly
{
  public:
    Gnarly() : value_(0), label_("gnarly") {}

    int run(int a);
    int run(double b);
    int helper() const;

  private:
    int value_;
    std::string label_;
};

} // namespace inner
} // namespace outer

int
outer::inner::Gnarly::run(int a)
{
    return helper() + a;
}

int
outer::inner::Gnarly::run(double b)
{
    LOG_THING(b);
    return helper() + static_cast<int>(b);
}

int
outer::inner::Gnarly::helper() const
{
    std::string copy = label_;
    copy.clear();
    return value_ + static_cast<int>(copy.size());
}

namespace
{

int
fileLocal()
{
    return 7;
}

} // namespace

int
useAnon()
{
    return fileLocal();
}

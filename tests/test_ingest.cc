/**
 * @file
 * Tests for the external-trace ingestion frontend (src/trace/ingest):
 * byte-offset accuracy of every TraceError class in both the text and
 * binary formats, the recovery policies and their budgets, the
 * resource caps, gzip transport, the loop-replay TraceGenerator
 * adapter, the trace-workload registry, and the execution-engine
 * integration (sweep specs, job execution, campaign hashing).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#ifdef CRITMEM_HAVE_ZLIB
#include <zlib.h>
#endif

#include "exec/campaign.hh"
#include "exec/job.hh"
#include "exec/sweep.hh"
#include "sim/stats.hh"
#include "system/experiment.hh"
#include "trace/ingest/ingest.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

class IngestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Per-process dir: ctest -jN runs each test in its own
        // process, and a shared path would race TearDown's
        // remove_all against a sibling's file creation.
        dir_ = std::filesystem::temp_directory_path() /
            ("critmem_ingest_test." + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
        clearTraceWorkloads();
    }

    void
    TearDown() override
    {
        clearTraceWorkloads();
        std::filesystem::remove_all(dir_);
    }

    /** Write @p bytes as file @p name under the test dir. */
    std::string
    spill(const std::string &name, const std::string &bytes)
    {
        const std::string path = (dir_ / name).string();
        std::FILE *f = std::fopen(path.c_str(), "wb");
        EXPECT_NE(f, nullptr);
        if (!bytes.empty()) {
            EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                      bytes.size());
        }
        std::fclose(f);
        return path;
    }

    /** Decode @p path and return the TraceError it must throw. */
    TraceError
    mustThrow(const std::string &path,
              const ingest::IngestOptions &opts = {})
    {
        try {
            ingest::TraceDecoder decoder(path, opts);
            ingest::TraceRecord rec;
            while (decoder.next(rec)) {
            }
        } catch (const TraceError &err) {
            return err;
        }
        ADD_FAILURE() << "decoder accepted " << path;
        return TraceError("unreachable", 0);
    }

    std::filesystem::path dir_;
};

/** A minimal valid binary record for core @p core. */
std::string
binRecord(std::uint8_t core, std::uint8_t cls, std::uint64_t pc,
          std::uint64_t addr, std::uint8_t latency = 1,
          std::uint16_t len = 24)
{
    std::string out;
    out.push_back(static_cast<char>(len & 0xff));
    out.push_back(static_cast<char>(len >> 8));
    out.push_back(static_cast<char>(core));
    out.push_back(static_cast<char>(cls));
    out.push_back(static_cast<char>(latency));
    out.push_back(0); // flags
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((pc >> (8 * i)) & 0xff));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((addr >> (8 * i)) & 0xff));
    out.append(4, '\0'); // dep1, dep2
    for (std::uint16_t i = 24; i < len; ++i)
        out.push_back('\x5a'); // extension bytes, must be ignored
    return out;
}

/** The 8-byte binary header declaring @p cores cores. */
std::string
binHeader(std::uint8_t cores)
{
    std::string out = "CTIB";
    out.push_back(1);
    out.push_back(static_cast<char>(cores));
    out.push_back(0);
    out.push_back(0);
    return out;
}

// ---------------------------------------------------------------
// Text format
// ---------------------------------------------------------------

TEST_F(IngestTest, TextRoundTrip)
{
    const std::string path = spill("round.ctext",
                                   "ctrace text 1 2\n"
                                   "# a comment\n"
                                   "\n"
                                   "0 L 0x400 0x10040 3 2 1\r\n"
                                   "1 B 1024 0 1 0 0 1\n"
                                   "0 S 0x408 66624\n");
    ingest::TraceDecoder decoder(path, {});
    EXPECT_EQ(decoder.numCores(), 2u);
    EXPECT_EQ(decoder.format(), ingest::TraceFormat::Text);

    ingest::TraceRecord rec;
    ASSERT_TRUE(decoder.next(rec));
    EXPECT_EQ(rec.core, 0u);
    EXPECT_EQ(rec.op.cls, OpClass::Load);
    EXPECT_EQ(rec.op.pc, 0x400u);
    EXPECT_EQ(rec.op.addr, 0x10040u);
    EXPECT_EQ(rec.op.latency, 3);
    EXPECT_EQ(rec.op.dep1, 2);
    EXPECT_EQ(rec.op.dep2, 1);
    EXPECT_FALSE(rec.op.mispredict);

    ASSERT_TRUE(decoder.next(rec));
    EXPECT_EQ(rec.core, 1u);
    EXPECT_EQ(rec.op.cls, OpClass::Branch);
    EXPECT_EQ(rec.op.pc, 1024u);
    EXPECT_TRUE(rec.op.mispredict);

    ASSERT_TRUE(decoder.next(rec));
    EXPECT_EQ(rec.op.cls, OpClass::Store);
    EXPECT_EQ(rec.op.addr, 66624u); // decimal == 0x10440

    EXPECT_FALSE(decoder.next(rec));
    EXPECT_EQ(decoder.passStats().records, 3u);

    // rewind() replays the stream identically.
    decoder.rewind();
    ASSERT_TRUE(decoder.next(rec));
    EXPECT_EQ(rec.op.pc, 0x400u);
}

TEST_F(IngestTest, TextTruncatedHeaderGoldens)
{
    ingest::IngestOptions text;
    text.format = ingest::TraceFormat::Text;

    // Empty file.
    EXPECT_EQ(mustThrow(spill("a.ctext", ""), text).byteOffset(), 0u);
    // Header cut mid-token (no newline): too few tokens, reported at
    // the start of the header line.
    EXPECT_EQ(mustThrow(spill("b.ctext", "ctrace te"), text)
                  .byteOffset(),
              0u);
    // Missing the core count.
    EXPECT_EQ(mustThrow(spill("c.ctext", "ctrace text 1\n"), text)
                  .byteOffset(),
              0u);
    // Bad version: third token, at byte 7 + 5 = 12.
    EXPECT_EQ(mustThrow(spill("d.ctext", "ctrace text 9 2\n"), text)
                  .byteOffset(),
              12u);
    // Zero cores: fourth token at byte 14.
    EXPECT_EQ(mustThrow(spill("e.ctext", "ctrace text 1 0\n"), text)
                  .byteOffset(),
              14u);
    // Core count over the cap, same token.
    EXPECT_EQ(
        mustThrow(spill("f.ctext", "ctrace text 1 9999\n"), text)
            .byteOffset(),
        14u);
}

TEST_F(IngestTest, TextMidFileCorruptionOffset)
{
    // Header is 16 bytes, the first record 14; the bad op class
    // letter sits at 16 + 14 + 2 = 32.
    const std::string path = spill("mid.ctext",
                                   "ctrace text 1 2\n"
                                   "0 L 0x10 0x20\n"
                                   "1 X 0x10 0x20\n"
                                   "0 S 0x10 0x20\n");
    const TraceError err = mustThrow(path);
    EXPECT_EQ(err.byteOffset(), 32u);
    EXPECT_NE(std::string(err.what()).find("op class"),
              std::string::npos);
}

TEST_F(IngestTest, TextTornFinalRecordOffset)
{
    // The final line is cut after three fields and has no newline;
    // the error points at the start of that line (byte 16 + 14 = 30).
    const std::string path = spill("torn.ctext",
                                   "ctrace text 1 2\n"
                                   "0 L 0x10 0x20\n"
                                   "1 L 0x10");
    const TraceError err = mustThrow(path);
    EXPECT_EQ(err.byteOffset(), 30u);
    EXPECT_NE(std::string(err.what()).find("fields"),
              std::string::npos);
}

TEST_F(IngestTest, TextFieldValidationOffsets)
{
    // Offsets inside the record line at byte 16.
    struct Case
    {
        const char *line;
        std::uint64_t off;
    };
    const std::vector<Case> cases = {
        {"7 L 0x10 0x20\n", 16},      // core out of range
        {"x L 0x10 0x20\n", 16},      // core not a number
        {"0 L 0x1g 0x20\n", 20},      // pc not a number
        {"0 L 0x10 zz\n", 25},        // addr not a number
        {"0 L 0x10 0x20 0\n", 30},    // latency 0
        {"0 L 0x10 0x20 1 70000\n", 32}, // dep1 too big
        {"0 L 0x10 0x20 1 0 0 2\n", 36}, // mispredict not 0/1
        {"0 L 0x10 0x20 1 0 0 1 9\n", 38}, // too many fields
    };
    for (const Case &c : cases) {
        const std::string path =
            spill("field.ctext",
                  std::string("ctrace text 1 2\n") + c.line);
        EXPECT_EQ(mustThrow(path).byteOffset(), c.off) << c.line;
    }
}

TEST_F(IngestTest, TextLineCapIsStructural)
{
    ingest::IngestOptions opts;
    opts.limits.maxLineBytes = 64;
    const std::string path =
        spill("long.ctext", "ctrace text 1 1\n0 L 0x10 0x20\n"
                            "0 L 0x10 " + std::string(100, '1') +
                  "\n0 S 0x10 0x20\n");
    // Structural: not recoverable by skipping records.
    opts.policy = ingest::RecoveryPolicy::SkipRecord;
    EXPECT_THROW(ingest::scanTrace(path, opts), TraceError);
    // Truncate ends the stream instead.
    opts.policy = ingest::RecoveryPolicy::Truncate;
    const ingest::ScanSummary scan = ingest::scanTrace(path, opts);
    EXPECT_TRUE(scan.truncated);
    EXPECT_EQ(scan.records, 1u);
}

TEST_F(IngestTest, SkipRecordPolicyAndBudget)
{
    const std::string path = spill("skip.ctext",
                                   "ctrace text 1 1\n"
                                   "0 L 0x10 0x40\n"
                                   "0 X 0x10 0x40\n"
                                   "0 S 0x14 0x80\n"
                                   "0 Y 0x10 0x40\n"
                                   "0 A 0x18 0\n");
    ingest::IngestOptions opts;
    opts.policy = ingest::RecoveryPolicy::SkipRecord;
    opts.skipBudget = 2;
    const ingest::ScanSummary scan = ingest::scanTrace(path, opts);
    EXPECT_EQ(scan.records, 3u);
    EXPECT_EQ(scan.dropped, 2u);

    // One damaged record over budget: the throw carries the offset
    // of the record that exhausted it.
    opts.skipBudget = 1;
    const TraceError err = mustThrow(path, opts);
    EXPECT_NE(std::string(err.what()).find("skip budget"),
              std::string::npos);
    // Records are 14 bytes; the second bad line starts at
    // 16 + 3*14 = 58, its class letter at 60.
    EXPECT_EQ(err.byteOffset(), 60u);
}

TEST_F(IngestTest, TruncatePolicyRecordsCut)
{
    const std::string path = spill("trunc.ctext",
                                   "ctrace text 1 1\n"
                                   "0 L 0x10 0x40\n"
                                   "0 X 0x10 0x40\n"
                                   "0 S 0x14 0x80\n");
    ingest::IngestOptions opts;
    opts.policy = ingest::RecoveryPolicy::Truncate;
    const ingest::ScanSummary scan = ingest::scanTrace(path, opts);
    EXPECT_EQ(scan.records, 1u);
    EXPECT_TRUE(scan.truncated);
    EXPECT_EQ(scan.truncatedAtByte, 32u); // the bad class letter
}

TEST_F(IngestTest, DropCounterSurvivesRewind)
{
    const std::string path = spill("drops.ctext",
                                   "ctrace text 1 1\n"
                                   "0 L 0x10 0x40\n"
                                   "0 X 0x10 0x40\n"
                                   "0 S 0x14 0x80\n");
    ingest::IngestOptions opts;
    opts.policy = ingest::RecoveryPolicy::SkipRecord;

    stats::Group group("test", nullptr);
    stats::Scalar dropped(group, "dropped", "cumulative drops");

    ingest::TraceDecoder decoder(path, opts);
    decoder.setDropCounter(&dropped);
    ingest::TraceRecord rec;
    while (decoder.next(rec)) {
    }
    EXPECT_EQ(decoder.passStats().dropped, 1u);
    decoder.rewind();
    EXPECT_EQ(decoder.passStats().dropped, 0u); // per-pass reset
    while (decoder.next(rec)) {
    }
    EXPECT_EQ(decoder.passStats().dropped, 1u);
    EXPECT_EQ(dropped.value(), 2u); // cumulative across passes
}

// ---------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------

TEST_F(IngestTest, BinaryRoundTrip)
{
    std::string bytes = binHeader(2);
    bytes += binRecord(0, 4, 0x400, 0x10040, 3);
    bytes += binRecord(1, 6, 0x404, 0, 1, 30); // extended record
    const std::string path = spill("round.cbin", bytes);

    ingest::TraceDecoder decoder(path, {});
    EXPECT_EQ(decoder.numCores(), 2u);
    EXPECT_EQ(decoder.format(), ingest::TraceFormat::Binary);

    ingest::TraceRecord rec;
    ASSERT_TRUE(decoder.next(rec));
    EXPECT_EQ(rec.core, 0u);
    EXPECT_EQ(rec.op.cls, OpClass::Load);
    EXPECT_EQ(rec.op.pc, 0x400u);
    EXPECT_EQ(rec.op.addr, 0x10040u);
    EXPECT_EQ(rec.op.latency, 3);
    ASSERT_TRUE(decoder.next(rec));
    EXPECT_EQ(rec.core, 1u);
    EXPECT_EQ(rec.op.cls, OpClass::Branch);
    EXPECT_FALSE(decoder.next(rec));
}

TEST_F(IngestTest, BinaryHeaderGoldens)
{
    // Header cut after five bytes.
    EXPECT_EQ(mustThrow(spill("a.cbin", binHeader(2).substr(0, 5)))
                  .byteOffset(),
              5u);
    // Magic wrong at its third byte. Forcing the format bypasses
    // auto-detection (which would not recognize the file at all).
    ingest::IngestOptions bin;
    bin.format = ingest::TraceFormat::Binary;
    std::string bad = binHeader(2);
    bad[2] = 'X';
    EXPECT_EQ(mustThrow(spill("b.cbin", bad), bin).byteOffset(), 2u);
    // Unsupported version.
    bad = binHeader(2);
    bad[4] = 9;
    EXPECT_EQ(mustThrow(spill("c.cbin", bad)).byteOffset(), 4u);
    // Zero cores.
    EXPECT_EQ(mustThrow(spill("d.cbin", binHeader(0))).byteOffset(),
              5u);
    // Core count over the cap.
    ingest::IngestOptions capped;
    capped.limits.maxCores = 4;
    EXPECT_EQ(mustThrow(spill("e.cbin", binHeader(200)), capped)
                  .byteOffset(),
              5u);
    // Reserved header bytes must be zero.
    bad = binHeader(2);
    bad[7] = 1;
    EXPECT_EQ(mustThrow(spill("f.cbin", bad)).byteOffset(), 7u);
}

TEST_F(IngestTest, BinaryTornFinalRecordOffset)
{
    // One full record (8..33), then a second whose 24-byte payload is
    // cut after 10 bytes: the tear is at 34 + 2 + 10 = 46.
    std::string bytes = binHeader(2);
    bytes += binRecord(0, 4, 0x400, 0x10040);
    const std::string second = binRecord(1, 5, 0x404, 0x10080);
    bytes += second.substr(0, 12);
    const TraceError err = mustThrow(spill("torn.cbin", bytes));
    EXPECT_EQ(err.byteOffset(), 46u);
    EXPECT_NE(std::string(err.what()).find("torn"),
              std::string::npos);

    // A lone length-prefix byte at the very end: structural, at the
    // offset where the file ends.
    bytes = binHeader(2);
    bytes += binRecord(0, 4, 0x400, 0x10040);
    bytes += '\x18';
    EXPECT_EQ(mustThrow(spill("torn2.cbin", bytes)).byteOffset(),
              35u);
}

TEST_F(IngestTest, BinaryMidFileCorruptionOffset)
{
    // Second record (at byte 34) carries op class 9: content error
    // at 34 + 3 = 37.
    std::string bytes = binHeader(2);
    bytes += binRecord(0, 4, 0x400, 0x10040);
    bytes += binRecord(1, 9, 0x404, 0x10080);
    bytes += binRecord(0, 5, 0x408, 0x100c0);
    const std::string path = spill("mid.cbin", bytes);
    EXPECT_EQ(mustThrow(path).byteOffset(), 37u);

    // The same damage is skippable: SkipRecord resynchronizes on the
    // length prefix and keeps the good records.
    ingest::IngestOptions opts;
    opts.policy = ingest::RecoveryPolicy::SkipRecord;
    const ingest::ScanSummary scan = ingest::scanTrace(path, opts);
    EXPECT_EQ(scan.records, 2u);
    EXPECT_EQ(scan.dropped, 1u);
}

TEST_F(IngestTest, BinaryLengthCapsAreStructural)
{
    // Payload length below the 24-byte minimum.
    std::string bytes = binHeader(2);
    bytes += binRecord(0, 4, 0x400, 0x10040);
    bytes += binRecord(1, 4, 0x404, 0x10080, 1, 30);
    bytes[8 + 26] = 10; // rewrite the second record's length to 10
    bytes[8 + 27] = 0;
    const std::string path = spill("len.cbin", bytes);
    EXPECT_EQ(mustThrow(path).byteOffset(), 34u);

    // Structural framing damage cannot be skipped...
    ingest::IngestOptions opts;
    opts.policy = ingest::RecoveryPolicy::SkipRecord;
    EXPECT_THROW(ingest::scanTrace(path, opts), TraceError);
    // ...but Truncate keeps everything before it.
    opts.policy = ingest::RecoveryPolicy::Truncate;
    const ingest::ScanSummary scan = ingest::scanTrace(path, opts);
    EXPECT_EQ(scan.records, 1u);
    EXPECT_TRUE(scan.truncated);
    EXPECT_EQ(scan.truncatedAtByte, 34u);

    // A length above limits.maxRecordBytes is equally structural.
    ingest::IngestOptions small;
    small.limits.maxRecordBytes = 64;
    bytes = binHeader(2);
    bytes += binRecord(0, 4, 0x400, 0x10040, 1, 200);
    EXPECT_EQ(mustThrow(spill("big.cbin", bytes), small).byteOffset(),
              8u);
}

TEST_F(IngestTest, AutoDetectGoldens)
{
    // Unknown leading bytes.
    EXPECT_EQ(mustThrow(spill("x.trace", "hello world\n"))
                  .byteOffset(),
              0u);
    // Legacy CTMT replay traces are recognized and redirected.
    std::string ctmt;
    const std::uint32_t magic = 0x43544d54;
    ctmt.resize(4);
    std::memcpy(ctmt.data(), &magic, 4);
    ctmt += std::string(12, '\0');
    const TraceError err = mustThrow(spill("y.bin", ctmt));
    EXPECT_EQ(err.byteOffset(), 0u);
    EXPECT_NE(std::string(err.what()).find("CTMT"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Gzip transport
// ---------------------------------------------------------------

#ifdef CRITMEM_HAVE_ZLIB
std::string
gzipCompress(const std::string &raw)
{
    z_stream strm{};
    EXPECT_EQ(deflateInit2(&strm, Z_BEST_COMPRESSION, Z_DEFLATED,
                           16 + MAX_WBITS, 8, Z_DEFAULT_STRATEGY),
              Z_OK);
    std::string out;
    out.resize(deflateBound(&strm, raw.size()));
    strm.next_in =
        reinterpret_cast<Bytef *>(const_cast<char *>(raw.data()));
    strm.avail_in = static_cast<uInt>(raw.size());
    strm.next_out = reinterpret_cast<Bytef *>(out.data());
    strm.avail_out = static_cast<uInt>(out.size());
    EXPECT_EQ(deflate(&strm, Z_FINISH), Z_STREAM_END);
    out.resize(out.size() - strm.avail_out);
    deflateEnd(&strm);
    return out;
}

TEST_F(IngestTest, GzipRoundTrip)
{
    EXPECT_TRUE(ingest::haveGzip());
    const std::string raw = "ctrace text 1 2\n"
                            "0 L 0x400 0x10040\n"
                            "1 S 0x404 0x20040\n"
                            "0 A 0x408 0\n";
    const std::string rawPath = spill("plain.ctext", raw);
    const std::string gzPath =
        spill("plain.ctext.gz", gzipCompress(raw));

    const ingest::ScanSummary a = ingest::scanTrace(rawPath, {});
    const ingest::ScanSummary b = ingest::scanTrace(gzPath, {});
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.numCores, b.numCores);
    EXPECT_EQ(a.format, b.format);
    EXPECT_EQ(a.perCoreRecords, b.perCoreRecords);
    EXPECT_EQ(a.coreRegions, b.coreRegions);
    // Identity covers the raw (compressed) bytes, so the two files
    // hash differently.
    EXPECT_NE(a.contentHash, b.contentHash);
}

TEST_F(IngestTest, GzipCorruptionIsTraceError)
{
    const std::string raw = "ctrace text 1 1\n0 L 0x400 0x10040\n";
    std::string gz = gzipCompress(raw);
    gz[gz.size() / 2] ^= 0x40; // damage the deflate stream
    const std::string path = spill("bad.ctext.gz", gz);
    EXPECT_THROW(ingest::scanTrace(path, {}), TraceError);

    // Truncation of the compressed stream is also a TraceError, not
    // a silent short read.
    const std::string cut =
        spill("cut.ctext.gz",
              gzipCompress(raw).substr(0, gz.size() - 6));
    EXPECT_THROW(ingest::scanTrace(cut, {}), TraceError);
}
#endif // CRITMEM_HAVE_ZLIB

// ---------------------------------------------------------------
// Loop-replay adapter and registry
// ---------------------------------------------------------------

TEST_F(IngestTest, ExternalTraceReaderLoops)
{
    const std::string path = spill("loop.ctext",
                                   "ctrace text 1 2\n"
                                   "0 L 0x10 0x40\n"
                                   "1 S 0x20 0x80\n"
                                   "0 A 0x14 0\n");
    ingest::ExternalTraceReader reader("loop", path, {}, 0);
    MicroOp op;
    for (int pass = 0; pass < 3; ++pass) {
        reader.next(op);
        EXPECT_EQ(op.pc, 0x10u) << "pass " << pass;
        EXPECT_EQ(op.cls, OpClass::Load);
        reader.next(op);
        EXPECT_EQ(op.pc, 0x14u) << "pass " << pass;
        EXPECT_EQ(op.cls, OpClass::IntAlu);
    }
}

TEST_F(IngestTest, ExternalTraceReaderStarvedCoreThrows)
{
    const std::string path = spill("starve.ctext",
                                   "ctrace text 1 2\n"
                                   "0 L 0x10 0x40\n");
    ingest::ExternalTraceReader reader("starve", path, {}, 1);
    MicroOp op;
    EXPECT_THROW(reader.next(op), TraceError);
}

TEST_F(IngestTest, RegistryValidatesAndRefreshes)
{
    const std::string path = spill("reg.ctext",
                                   "ctrace text 1 2\n"
                                   "0 L 0x10 0x40\n"
                                   "1 S 0x20 0x80\n");
    const TraceWorkload &wl =
        registerTraceWorkload("regt", path, {});
    EXPECT_EQ(wl.numCores, 2u);
    EXPECT_EQ(wl.records, 2u);
    EXPECT_NE(wl.contentHash, 0u);
    ASSERT_EQ(wl.coreRegions.size(), 2u);
    EXPECT_EQ(wl.coreRegions[0].first, 0x40u);
    EXPECT_NE(findTraceWorkload("regt"), nullptr);

    // Misuse: bad names, collisions with the built-in registries,
    // and renaming a path out from under a workload.
    EXPECT_THROW(registerTraceWorkload("", path, {}),
                 std::runtime_error);
    EXPECT_THROW(registerTraceWorkload("has space", path, {}),
                 std::runtime_error);
    EXPECT_THROW(registerTraceWorkload("a/b", path, {}),
                 std::runtime_error);
    EXPECT_THROW(registerTraceWorkload("art", path, {}),
                 std::runtime_error);
    const std::string other = spill("reg2.ctext",
                                    "ctrace text 1 1\n"
                                    "0 L 0x10 0x40\n");
    EXPECT_THROW(registerTraceWorkload("regt", other, {}),
                 std::runtime_error);

    // Same name + same path refreshes (file may have changed).
    const std::uint64_t before = wl.contentHash;
    spill("reg.ctext",
          "ctrace text 1 2\n"
          "0 L 0x10 0x40\n"
          "1 S 0x20 0x80\n"
          "1 A 0x24 0\n");
    const TraceWorkload &fresh =
        registerTraceWorkload("regt", path, {});
    EXPECT_EQ(fresh.records, 3u);
    EXPECT_NE(fresh.contentHash, before);
    EXPECT_EQ(traceWorkloads().size(), 1u);

    // Invalid ingest options are rejected as misuse, not TraceError.
    ingest::IngestOptions bad;
    bad.limits.maxCores = 0;
    EXPECT_THROW(registerTraceWorkload("regb", path, bad),
                 std::runtime_error);
}

TEST_F(IngestTest, RegistryRejectsStarvedCores)
{
    const std::string path = spill("starved.ctext",
                                   "ctrace text 1 3\n"
                                   "0 L 0x10 0x40\n"
                                   "1 S 0x20 0x80\n");
    try {
        registerTraceWorkload("starved", path, {});
        FAIL() << "registered a trace with a record-less core";
    } catch (const TraceError &err) {
        EXPECT_NE(std::string(err.what()).find("core 2"),
                  std::string::npos);
    }
}

TEST_F(IngestTest, RegistryRejectsEmptyTraces)
{
    const std::string path =
        spill("empty.ctext", "ctrace text 1 1\n# nothing\n");
    EXPECT_THROW(registerTraceWorkload("empty", path, {}),
                 TraceError);
}

// ---------------------------------------------------------------
// System / exec integration
// ---------------------------------------------------------------

/** A 2-core trace with enough memory traffic to exercise DRAM. */
std::string
twoCoreTrace()
{
    std::string out = "ctrace text 1 2\n";
    char line[64];
    for (int i = 0; i < 64; ++i) {
        std::snprintf(line, sizeof(line), "%d %c 0x%x 0x%x %d\n",
                      i % 2, i % 3 == 0 ? 'L' : i % 3 == 1 ? 'S'
                                                           : 'A',
                      0x400 + i * 4,
                      0x100000 + (i % 2) * 0x40000 + i * 4096, 1);
        out += line;
    }
    return out;
}

TEST_F(IngestTest, SystemFromTraceIsDeterministic)
{
    const std::string path = spill("sys.ctext", twoCoreTrace());
    const TraceWorkload &wl =
        registerTraceWorkload("syst", path, {});

    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.numCores = wl.numCores;
    ASSERT_TRUE(cfg.validate().empty());

    std::uint64_t cycles[2] = {};
    for (int run = 0; run < 2; ++run) {
        System sys(cfg, wl);
        const RunResult r = runSystem(sys, 2000, 500, true);
        cycles[run] = r.cycles;
        EXPECT_GT(r.cycles, 0u);
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST_F(IngestTest, SweepSpecParsesTraceLines)
{
    std::istringstream in(
        "mode = parallel\n"
        "workloads = tr1\n"
        "trace tr1 : path=/tmp/x.ctext policy=skip-record "
        "skip-budget=5 format=text max-line=256\n"
        "variant base : sched=frfcfs\n");
    const exec::SweepSpec spec = exec::parseSweepSpec(in);
    ASSERT_EQ(spec.traces.size(), 1u);
    EXPECT_EQ(spec.traces[0].name, "tr1");
    EXPECT_EQ(spec.traces[0].path, "/tmp/x.ctext");
    EXPECT_EQ(spec.traces[0].options.policy,
              ingest::RecoveryPolicy::SkipRecord);
    EXPECT_EQ(spec.traces[0].options.skipBudget, 5u);
    EXPECT_EQ(spec.traces[0].options.format,
              ingest::TraceFormat::Text);
    EXPECT_EQ(spec.traces[0].options.limits.maxLineBytes, 256u);

    // Malformed trace lines carry SweepError line info.
    const std::vector<std::string> bad = {
        "trace t :\n",                       // missing path
        "trace t : policy=bogus path=/x\n",  // unknown policy
        "trace t : path=/x nope=1\n",        // unknown key
        "trace t : path=/x max-cores=0\n",   // cap out of range
        "trace a : path=/x\ntrace a : path=/y\n", // duplicate
    };
    for (const std::string &body : bad) {
        std::istringstream is("mode = parallel\n" + body +
                              "variant base : sched=frfcfs\n");
        EXPECT_THROW(exec::parseSweepSpec(is), exec::SweepError)
            << body;
    }
}

TEST_F(IngestTest, SweepExpandsTraceJobs)
{
    const std::string path = spill("sweep.ctext", twoCoreTrace());

    exec::SweepSpec spec;
    spec.traces.push_back({"swt", path, {}});
    spec.variants.push_back(
        {"base", {{"sched", "frfcfs"}, {"cores", "8"}}});
    // Empty workload list: every parallel app plus the trace.
    const std::vector<exec::JobSpec> all = spec.expand();
    bool sawTrace = false;
    for (const exec::JobSpec &job : all) {
        if (job.workload != "swt")
            continue;
        sawTrace = true;
        EXPECT_EQ(job.kind, exec::RunKind::Trace);
        // The trace dictates the core count over the cores= setting.
        EXPECT_EQ(job.cfg.numCores, 2u);
    }
    EXPECT_TRUE(sawTrace);

    // Explicit selection by trace name and job execution.
    spec.workloads = {"swt"};
    spec.quota = 500;
    const std::vector<exec::JobSpec> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    const RunResult r = exec::executeJob(jobs[0]);
    EXPECT_GT(r.cycles, 0u);

    // The repro command round-trips the trace registration.
    const std::string repro = exec::reproCommand(jobs[0]);
    EXPECT_NE(repro.find("--trace swt=" + path), std::string::npos);

    // A spec declaring a missing trace file fails to expand with the
    // underlying TraceError.
    exec::SweepSpec missing = spec;
    missing.traces[0].name = "swm";
    missing.traces[0].path = (dir_ / "nope.ctext").string();
    missing.workloads = {"swm"};
    EXPECT_THROW(missing.expand(), TraceError);
}

TEST_F(IngestTest, CampaignHashTracksTraceContent)
{
    const std::string path = spill("hash.ctext", twoCoreTrace());

    exec::SweepSpec spec;
    spec.traces.push_back({"hsh", path, {}});
    spec.workloads = {"hsh"};
    spec.variants.push_back({"base", {{"sched", "frfcfs"}}});

    const std::vector<exec::JobSpec> jobs = spec.expand();
    const std::uint64_t h1 = exec::campaignHash(jobs);
    // Re-expanding over unchanged bytes is stable.
    EXPECT_EQ(exec::campaignHash(spec.expand()), h1);

    // Appending one record changes the campaign identity even though
    // the job list itself is unchanged.
    spill("hash.ctext", twoCoreTrace() + "0 L 0x900 0x900000\n");
    const std::vector<exec::JobSpec> jobs2 = spec.expand();
    EXPECT_NE(exec::campaignHash(jobs2), h1);
}

} // namespace

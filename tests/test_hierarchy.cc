/** @file Tests for the cache hierarchy: latencies, MSHRs, coherence. */

#include <gtest/gtest.h>

#include <memory>

#include "mem/hierarchy.hh"
#include "sched/frfcfs.hh"

using namespace critmem;

namespace
{

class HierarchyTest : public ::testing::Test
{
  protected:
    void
    build(SystemConfig cfg = SystemConfig::parallelDefault())
    {
        cfg_ = cfg;
        dram_ = std::make_unique<DramSystem>(cfg_.dram, sched_, root_);
        hier_ = std::make_unique<MemHierarchy>(cfg_, *dram_, root_);
    }

    /** Advance the CPU clock, crossing to DRAM every 4th cycle. */
    void
    tick(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            ++now_;
            hier_->tick(now_);
            if (now_ % 4 == 0)
                dram_->tick(now_ / 4);
        }
    }

    /** Issue a load; the returned handle records completion time. */
    std::shared_ptr<Cycle>
    load(CoreId core, Addr addr, CritLevel crit = 0)
    {
        auto done = std::make_shared<Cycle>(kNoCycle);
        EXPECT_TRUE(hier_->load(core, addr, crit,
                                [this, done] { *done = now_; }));
        return done;
    }

    stats::Group root_;
    FrFcfsScheduler sched_;
    SystemConfig cfg_;
    std::unique_ptr<DramSystem> dram_;
    std::unique_ptr<MemHierarchy> hier_;
    Cycle now_ = 0;
};

} // namespace

TEST_F(HierarchyTest, L1HitLatency)
{
    build();
    hier_->dl1(0).insert(0x1000, LineState::Exclusive);
    const auto done = load(0, 0x1008);
    tick(10);
    EXPECT_EQ(*done, cfg_.dl1.latency);
}

TEST_F(HierarchyTest, L2HitLatency)
{
    build();
    hier_->l2().insert(0x2000, LineState::Exclusive);
    const auto done = load(0, 0x2000);
    tick(100);
    EXPECT_EQ(*done, cfg_.dl1.latency + cfg_.l2.latency);
}

TEST_F(HierarchyTest, L2MissGoesToDramAndCompletes)
{
    build();
    const auto done = load(0, 0x3000);
    tick(1000);
    EXPECT_NE(*done, kNoCycle);
    EXPECT_GT(*done, cfg_.dl1.latency + cfg_.l2.latency);
    EXPECT_EQ(hier_->memStats().demandMisses.value(), 1u);
    EXPECT_EQ(dram_->channel(dram_->addressMap().decode(0x3000).channel)
                  .channelStats()
                  .reads.value(),
              1u);
}

TEST_F(HierarchyTest, MissFillsBothLevels)
{
    build();
    const auto done = load(0, 0x3000);
    tick(1000);
    ASSERT_NE(*done, kNoCycle);
    EXPECT_NE(hier_->dl1(0).probe(0x3000), LineState::Invalid);
    EXPECT_NE(hier_->l2().probe(0x3000), LineState::Invalid);
}

TEST_F(HierarchyTest, SameBlockLoadsCoalesceInL1Mshr)
{
    build();
    const auto a = load(0, 0x5000);
    const auto b = load(0, 0x5010); // same 32B L1 block
    tick(1000);
    EXPECT_NE(*a, kNoCycle);
    EXPECT_NE(*b, kNoCycle);
    EXPECT_EQ(hier_->memStats().demandMisses.value(), 1u);
}

TEST_F(HierarchyTest, CrossCoreLoadsCoalesceInL2Mshr)
{
    build();
    const auto a = load(0, 0x5000);
    const auto b = load(1, 0x5020); // other L1 block, same 64B L2 block
    tick(1000);
    EXPECT_NE(*a, kNoCycle);
    EXPECT_NE(*b, kNoCycle);
    EXPECT_EQ(hier_->memStats().demandMisses.value(), 1u);
}

TEST_F(HierarchyTest, L1MshrCapacityRejects)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.dl1.mshrs = 2;
    build(cfg);
    EXPECT_TRUE(hier_->load(0, 0x10000, 0, [] {}));
    EXPECT_TRUE(hier_->load(0, 0x20000, 0, [] {}));
    EXPECT_FALSE(hier_->load(0, 0x30000, 0, [] {}));
    EXPECT_EQ(hier_->memStats().l1MshrFull.value(), 1u);
}

TEST_F(HierarchyTest, StoreMakesLineModified)
{
    build();
    bool done = false;
    EXPECT_TRUE(hier_->store(0, 0x6000, [&done] { done = true; }));
    tick(1000);
    EXPECT_TRUE(done);
    EXPECT_EQ(hier_->dl1(0).probe(0x6000), LineState::Modified);
}

TEST_F(HierarchyTest, StoreInvalidatesOtherSharers)
{
    build();
    const auto a = load(0, 0x7000);
    tick(1000);
    const auto b = load(1, 0x7000);
    tick(1000);
    // Both cores share the line now.
    EXPECT_EQ(hier_->dl1(0).probe(0x7000), LineState::Shared);
    bool done = false;
    hier_->store(1, 0x7000, [&done] { done = true; });
    tick(100);
    EXPECT_TRUE(done);
    EXPECT_EQ(hier_->dl1(0).probe(0x7000), LineState::Invalid);
    EXPECT_EQ(hier_->dl1(1).probe(0x7000), LineState::Modified);
}

TEST_F(HierarchyTest, DirtyTransferServedByOwner)
{
    build();
    bool stored = false;
    hier_->store(0, 0x8000, [&stored] { stored = true; });
    tick(1000);
    ASSERT_TRUE(stored);
    ASSERT_EQ(hier_->dl1(0).probe(0x8000), LineState::Modified);
    const auto done = load(1, 0x8000);
    tick(200);
    ASSERT_NE(*done, kNoCycle);
    EXPECT_EQ(hier_->memStats().coherenceTransfers.value(), 1u);
    // Owner downgraded, dirty data absorbed by the L2.
    EXPECT_EQ(hier_->dl1(0).probe(0x8000), LineState::Shared);
    EXPECT_EQ(hier_->l2().probe(hier_->l2().blockAlign(0x8000)),
              LineState::Modified);
}

TEST_F(HierarchyTest, ExclusiveThenSharedOnSecondReader)
{
    build();
    const auto a = load(0, 0x9000);
    tick(1000);
    EXPECT_EQ(hier_->dl1(0).probe(0x9000), LineState::Exclusive);
    const auto b = load(1, 0x9000);
    tick(1000);
    EXPECT_EQ(hier_->dl1(0).probe(0x9000), LineState::Shared);
    EXPECT_EQ(hier_->dl1(1).probe(0x9000), LineState::Shared);
}

TEST_F(HierarchyTest, FetchPathFillsIl1)
{
    build();
    EXPECT_FALSE(hier_->fetchProbe(0, 0x400000));
    bool done = false;
    EXPECT_TRUE(hier_->fetch(0, 0x400000, [&done] { done = true; }));
    tick(1000);
    EXPECT_TRUE(done);
    EXPECT_TRUE(hier_->fetchProbe(0, 0x400000));
}

TEST_F(HierarchyTest, PromoteRaisesInFlightMissCriticality)
{
    build();
    const auto done = load(0, 0xa000, 0);
    tick(2); // miss registered, DRAM enqueue pending/queued
    hier_->promote(0, 0xa000, 9);
    tick(1000);
    EXPECT_NE(*done, kNoCycle);
    // The request completed through the critical-latency stat path.
    EXPECT_EQ(hier_->memStats().l2MissLatCrit.count() +
                  hier_->memStats().l2MissLatNonCrit.count(),
              1u);
}

TEST_F(HierarchyTest, QuiescentLifecycle)
{
    build();
    EXPECT_TRUE(hier_->quiescent());
    const auto done = load(0, 0xb000);
    EXPECT_FALSE(hier_->quiescent());
    tick(1000);
    EXPECT_NE(*done, kNoCycle);
    EXPECT_TRUE(hier_->quiescent());
}

TEST_F(HierarchyTest, CriticalLatencyStatSplitsByFlag)
{
    build();
    const auto a = load(0, 0xc000, 5);
    const auto b = load(0, 0xd000, 0);
    tick(2000);
    EXPECT_NE(*a, kNoCycle);
    EXPECT_NE(*b, kNoCycle);
    EXPECT_EQ(hier_->memStats().l2MissLatCrit.count(), 1u);
    EXPECT_EQ(hier_->memStats().l2MissLatNonCrit.count(), 1u);
}

TEST_F(HierarchyTest, InclusionVictimPurgesL1)
{
    // A tiny L2 forces an inclusion eviction that must invalidate the
    // corresponding L1 line.
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.l2.sizeBytes = 8 * 1024; // 2 sets x 8 ways? keep assoc, shrink
    build(cfg);
    const std::uint32_t sets = cfg.l2.sets();
    const Addr stride =
        static_cast<Addr>(sets) * cfg.l2.blockBytes;
    // Fill one set beyond capacity with demand loads.
    std::vector<std::shared_ptr<Cycle>> handles;
    for (std::uint32_t i = 0; i <= cfg.l2.ways; ++i) {
        handles.push_back(load(0, stride * i));
        tick(1500);
    }
    EXPECT_GT(hier_->l2().cacheStats().evictions.value(), 0u);
    // The first block was evicted from L2; inclusion requires its L1
    // copy to be gone too.
    EXPECT_EQ(hier_->dl1(0).probe(0), LineState::Invalid);
}

TEST_F(HierarchyTest, DirtyL2EvictionWritesBack)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.l2.sizeBytes = 8 * 1024;
    build(cfg);
    const std::uint32_t sets = cfg.l2.sets();
    const Addr stride = static_cast<Addr>(sets) * cfg.l2.blockBytes;
    bool stored = false;
    hier_->store(0, 0, [&stored] { stored = true; });
    tick(1500);
    ASSERT_TRUE(stored);
    for (std::uint32_t i = 1; i <= cfg.l2.ways + 1; ++i) {
        load(0, stride * i);
        tick(1500);
    }
    std::uint64_t writes = 0;
    for (std::uint32_t c = 0; c < dram_->numChannels(); ++c)
        writes += dram_->channel(c).channelStats().writes.value();
    EXPECT_GT(writes, 0u);
}

TEST_F(HierarchyTest, PrefetcherFillsAheadOfStream)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.prefetch.enabled = true;
    cfg.prefetch.distance = 4;
    cfg.prefetch.degree = 2;
    build(cfg);
    // A clean ascending block stream of demand misses.
    for (int i = 0; i < 8; ++i) {
        load(0, 0x100000 + static_cast<Addr>(i) * 64);
        tick(1500);
    }
    auto *issued =
        root_.findScalar("hier.prefetcher.issued");
    ASSERT_NE(issued, nullptr);
    EXPECT_GT(issued->value(), 0u);
    // A block ahead of the stream is already resident.
    EXPECT_NE(hier_->l2().probe(0x100000 + 11 * 64),
              LineState::Invalid);
}

TEST_F(HierarchyTest, PrefetchedLinesMarkedAndConsumed)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.prefetch.enabled = true;
    cfg.prefetch.distance = 2;
    cfg.prefetch.degree = 2;
    build(cfg);
    for (int i = 0; i < 12; ++i) {
        load(0, 0x200000 + static_cast<Addr>(i) * 64);
        tick(1500);
    }
    EXPECT_GT(hier_->memStats().prefetchUseful.value(), 0u);
}

TEST_F(HierarchyTest, InstructionAndDataMshrsIndependent)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.dl1.mshrs = 1;
    build(cfg);
    // Exhaust the single data MSHR; a fetch must still be accepted.
    EXPECT_TRUE(hier_->load(0, 0x30000, 0, [] {}));
    EXPECT_FALSE(hier_->load(0, 0x40000, 0, [] {}));
    EXPECT_TRUE(hier_->fetch(0, 0x400000, [] {}));
    tick(2000);
}

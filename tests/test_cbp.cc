/** @file Unit and property tests for the Commit Block Predictor. */

#include <gtest/gtest.h>

#include "crit/cbp.hh"

using namespace critmem;

TEST(Cbp, ColdTablePredictsNonCritical)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 64, 0);
    EXPECT_EQ(cbp.predict(0x400000), 0u);
}

TEST(Cbp, BinarySetsSaturatingBit)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 64, 0);
    cbp.update(0x400000, 500);
    EXPECT_EQ(cbp.predict(0x400000), 1u);
    cbp.update(0x400000, 9000);
    EXPECT_EQ(cbp.predict(0x400000), 1u); // stays 1, no magnitude
}

TEST(Cbp, BlockCountAccumulatesEpisodes)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBlockCount, 64, 0);
    cbp.update(0x400000, 500);
    cbp.update(0x400000, 5);
    cbp.update(0x400000, 50);
    EXPECT_EQ(cbp.predict(0x400000), 3u);
}

TEST(Cbp, LastStallKeepsMostRecent)
{
    CommitBlockPredictor cbp(CritPredictor::CbpLastStall, 64, 0);
    cbp.update(0x400000, 500);
    cbp.update(0x400000, 5);
    EXPECT_EQ(cbp.predict(0x400000), 5u);
}

TEST(Cbp, MaxStallKeepsLargest)
{
    CommitBlockPredictor cbp(CritPredictor::CbpMaxStall, 64, 0);
    cbp.update(0x400000, 500);
    cbp.update(0x400000, 5);
    EXPECT_EQ(cbp.predict(0x400000), 500u);
    cbp.update(0x400000, 900);
    EXPECT_EQ(cbp.predict(0x400000), 900u);
}

TEST(Cbp, TotalStallSums)
{
    CommitBlockPredictor cbp(CritPredictor::CbpTotalStall, 64, 0);
    cbp.update(0x400000, 500);
    cbp.update(0x400000, 5);
    EXPECT_EQ(cbp.predict(0x400000), 505u);
}

TEST(Cbp, TaglessTableAliases)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 64, 0);
    // PCs 64 words apart share an entry: (pc >> 2) & 63.
    cbp.update(0x400000, 100);
    EXPECT_EQ(cbp.predict(0x400000 + 64 * 4), 1u);
}

TEST(Cbp, UnlimitedTableDoesNotAlias)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 0, 0);
    cbp.update(0x400000, 100);
    EXPECT_EQ(cbp.predict(0x400000 + 64 * 4), 0u);
    EXPECT_EQ(cbp.predict(0x400000), 1u);
}

TEST(Cbp, MaxObservedTracksRawValues)
{
    CommitBlockPredictor cbp(CritPredictor::CbpTotalStall, 64, 0);
    cbp.update(0x400000, 500);
    cbp.update(0x400004, 900);
    cbp.update(0x400000, 700); // entry now 1200: the new maximum
    EXPECT_EQ(cbp.maxObserved(), 1200u);
}

TEST(Cbp, PeriodicResetClearsEntries)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 64, 1000);
    cbp.update(0x400000, 50);
    cbp.maybeReset(999);
    EXPECT_EQ(cbp.predict(0x400000), 1u); // interval not yet elapsed
    cbp.maybeReset(1000);
    EXPECT_EQ(cbp.predict(0x400000), 0u);
}

TEST(Cbp, ResetRearmsForNextInterval)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 64, 1000);
    cbp.maybeReset(1000);
    cbp.update(0x400000, 50);
    cbp.maybeReset(1500);
    EXPECT_EQ(cbp.predict(0x400000), 1u); // next reset at 2000
    cbp.maybeReset(2000);
    EXPECT_EQ(cbp.predict(0x400000), 0u);
}

TEST(Cbp, ZeroIntervalNeverResets)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 64, 0);
    cbp.update(0x400000, 50);
    cbp.maybeReset(1u << 30);
    EXPECT_EQ(cbp.predict(0x400000), 1u);
}

TEST(Cbp, PopulatedEntriesCountsFlagged)
{
    CommitBlockPredictor cbp(CritPredictor::CbpBinary, 64, 0);
    EXPECT_EQ(cbp.populatedEntries(), 0u);
    cbp.update(0x400000, 1);
    cbp.update(0x400004, 1);
    cbp.update(0x400000, 1); // same entry
    EXPECT_EQ(cbp.populatedEntries(), 2u);
}

TEST(CbpDeath, RejectsNonCbpKind)
{
    EXPECT_DEATH(
        { CommitBlockPredictor cbp(CritPredictor::ClptBinary, 64, 0); },
        "non-CBP");
}

TEST(CbpDeath, RejectsNonPowerOfTwoEntries)
{
    EXPECT_DEATH(
        { CommitBlockPredictor cbp(CritPredictor::CbpBinary, 65, 0); },
        "power of two");
}

/** Property sweep over table sizes: finite tables mirror the
 *  unlimited table whenever no aliasing occurs. */
class CbpSizeTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CbpSizeTest, MatchesUnlimitedWithoutAliasing)
{
    const std::uint32_t entries = GetParam();
    CommitBlockPredictor finite(CritPredictor::CbpMaxStall, entries, 0);
    CommitBlockPredictor unlimited(CritPredictor::CbpMaxStall, 0, 0);
    // Touch fewer distinct word-spaced PCs than there are entries.
    for (std::uint32_t i = 0; i < entries / 2; ++i) {
        const std::uint64_t pc = 0x400000 + i * 4;
        finite.update(pc, 10 * i + 3);
        unlimited.update(pc, 10 * i + 3);
    }
    for (std::uint32_t i = 0; i < entries / 2; ++i) {
        const std::uint64_t pc = 0x400000 + i * 4;
        EXPECT_EQ(finite.predict(pc), unlimited.predict(pc));
    }
}

TEST_P(CbpSizeTest, IndexStaysInTable)
{
    const std::uint32_t entries = GetParam();
    CommitBlockPredictor cbp(CritPredictor::CbpBlockCount, entries, 0);
    std::uint64_t pc = 1;
    for (int i = 0; i < 5000; ++i) {
        cbp.update(pc, 1);
        cbp.predict(pc); // must not crash for arbitrary PCs
        pc = pc * 2862933555777941757ull + 13;
    }
    EXPECT_LE(cbp.populatedEntries(), entries);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CbpSizeTest,
                         ::testing::Values(2, 64, 256, 1024));

/**
 * @file
 * Tests of the crash-safe campaign machinery (exec/campaign.*,
 * sim/atomic_file.*, and the JobRunner's CampaignLog/stop/timeout
 * paths): atomic publication semantics, journal round-trips with
 * bit-exact doubles, torn-tail recovery, malformed-input fuzzing
 * with byte-offset errors (mirroring the trace-error tests), and
 * replay byte-identity — a resumed campaign's sink output must equal
 * an uninterrupted run's.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/campaign.hh"
#include "exec/job_runner.hh"
#include "exec/result_sink.hh"
#include "exec/sweep.hh"
#include "sim/atomic_file.hh"

using namespace critmem;

namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory per test, removed on teardown. */
class CampaignTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
            ("critmem_campaign_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::string
    slurp(const std::string &file) const
    {
        std::ifstream in(file, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

    void
    spill(const std::string &file, const std::string &content) const
    {
        std::ofstream out(file, std::ios::binary);
        out << content;
    }

    fs::path dir_;
};

exec::JobSpec
parallelJob(const std::string &name, const std::string &app,
            std::uint64_t quota, std::uint64_t seed = 1)
{
    exec::JobSpec job;
    job.name = name;
    job.kind = exec::RunKind::Parallel;
    job.workload = app;
    job.cfg = SystemConfig::parallelDefault();
    job.cfg.seed = seed;
    job.quota = quota;
    return job;
}

std::vector<exec::JobSpec>
smallCampaign(std::uint64_t quota)
{
    std::vector<exec::JobSpec> jobs;
    for (const char *app : {"art", "mg"}) {
        jobs.push_back(parallelJob(std::string(app) + "/base", app,
                                   quota, 1));
        jobs.push_back(parallelJob(std::string(app) + "/alt", app,
                                   quota, 2));
    }
    return jobs;
}

/** A fully populated record (awkward strings, fractional doubles). */
exec::JobRecord
sampleRecord(std::size_t index)
{
    exec::JobRecord rec;
    rec.index = index;
    rec.spec = parallelJob("art/tab\tnew\nline\\slash", "art", 600,
                           7 + index);
    rec.status = exec::JobStatus::Ok;
    rec.attempts = 3;
    rec.warmupUsed = 150;
    rec.result.cycles = 123456789 + index;
    rec.result.finishCycles = {100, 200, 300, 400};
    rec.result.committed = {600, 601, 602, 603};
    rec.result.dynamicLoads = 11;
    rec.result.blockingLoads = 12;
    rec.result.robBlockedCycles = 13;
    rec.result.coreCycles = 14;
    rec.result.loadsIssued = 15;
    rec.result.critLoadsIssued = 16;
    rec.result.lqFullCycles = 17;
    rec.result.l2MissLatCrit = 123.456789e-3;
    rec.result.l2MissLatNonCrit = -0.1; // not representable in binary
    rec.result.demandMisses = 18;
    rec.result.critMissCount = 19;
    rec.result.nonCritMissCount = 20;
    rec.result.rowHits = 21;
    rec.result.rowMisses = 22;
    rec.result.dramReads = 23;
    rec.result.maxCbpValue = 24;
    rec.result.cbpPopulated = 25;
    rec.error = "boom\twith\nnewline";
    rec.statsJson = "{\"a\":\t1}";
    return rec;
}

void
expectRecordsEqual(const exec::JobRecord &a, const exec::JobRecord &b)
{
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.spec.name, b.spec.name);
    EXPECT_EQ(a.spec.cfg.seed, b.spec.cfg.seed);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.warmupUsed, b.warmupUsed);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.finishCycles, b.result.finishCycles);
    EXPECT_EQ(a.result.committed, b.result.committed);
    EXPECT_EQ(a.result.critLoadsIssued, b.result.critLoadsIssued);
    EXPECT_EQ(a.result.cbpPopulated, b.result.cbpPopulated);
    // Bit-exact, not approximately-equal: the replay path must
    // reproduce sink output byte-for-byte.
    EXPECT_EQ(a.result.l2MissLatCrit, b.result.l2MissLatCrit);
    EXPECT_EQ(a.result.l2MissLatNonCrit, b.result.l2MissLatNonCrit);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

/** FNV-1a-64 (the journal's checksum), reimplemented so fuzz cases
 *  can forge structurally valid lines with corrupt payloads. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
forgeLine(const std::string &payload)
{
    return "r1 " + exec::hashHex(fnv1a(payload)) + ' ' + payload +
        '\n';
}

// ---------------------------------------------------------------
// AtomicFile
// ---------------------------------------------------------------

TEST_F(CampaignTest, AtomicFileCommitPublishes)
{
    const std::string target = path("out.txt");
    {
        AtomicFile file(target);
        file.stream() << "hello\n";
        EXPECT_FALSE(fs::exists(target)) <<
            "content visible before commit";
        file.commit();
        EXPECT_TRUE(file.committed());
    }
    EXPECT_EQ(slurp(target), "hello\n");
    EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(CampaignTest, AtomicFileAbandonedWriteLeavesOldContent)
{
    const std::string target = path("out.txt");
    spill(target, "old\n");
    {
        AtomicFile file(target);
        file.stream() << "half-written new conte";
        // destroyed without commit(): the error/crash path
    }
    EXPECT_EQ(slurp(target), "old\n");
    EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(CampaignTest, AtomicFileWriteAllReplaces)
{
    const std::string target = path("out.txt");
    spill(target, "old\n");
    AtomicFile::writeAll(target, "new\n");
    EXPECT_EQ(slurp(target), "new\n");
}

// ---------------------------------------------------------------
// Journal round-trip and recovery
// ---------------------------------------------------------------

TEST_F(CampaignTest, JournalRoundTripIsBitExact)
{
    const std::string journal = path("journal.txt");
    {
        auto log = exec::CampaignJournal::create(journal);
        log->record(sampleRecord(0));
        log->record(sampleRecord(5));
    }
    const exec::JournalLoad load = exec::loadJournal(journal, true);
    EXPECT_FALSE(load.tornTail);
    ASSERT_EQ(load.records.size(), 2u);
    expectRecordsEqual(load.records[0], sampleRecord(0));
    expectRecordsEqual(load.records[1], sampleRecord(5));
    EXPECT_EQ(load.validBytes, fs::file_size(journal));
    EXPECT_EQ(load.offsets[0], 0u);
}

TEST_F(CampaignTest, JournalTornTailDetectedAndTruncated)
{
    const std::string journal = path("journal.txt");
    {
        auto log = exec::CampaignJournal::create(journal);
        log->record(sampleRecord(0));
        log->record(sampleRecord(1));
    }
    const std::uint64_t intact = fs::file_size(journal);
    // A crash mid-append leaves a partial final line.
    std::ofstream(journal, std::ios::app | std::ios::binary)
        << "r1 0123456789abcdef partial-record-without-newl";

    const exec::JournalLoad load = exec::loadJournal(journal, false);
    EXPECT_TRUE(load.tornTail);
    EXPECT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.validBytes, intact);

    // Strict mode (anything but the --resume path) must refuse.
    EXPECT_THROW(exec::loadJournal(journal, true),
                 exec::CampaignError);

    // resume() truncates the torn tail on disk.
    auto log = exec::CampaignJournal::resume(journal);
    EXPECT_TRUE(log->tornTailTruncated());
    EXPECT_EQ(log->loadedCount(), 2u);
    EXPECT_EQ(fs::file_size(journal), intact);
}

TEST_F(CampaignTest, JournalFuzzMalformedRecords)
{
    const std::string good0 =
        exec::encodeJournalRecord(sampleRecord(0));
    const std::string good1 =
        exec::encodeJournalRecord(sampleRecord(1));

    struct Case
    {
        const char *label;
        std::string content;
        std::uint64_t offset; ///< expected CampaignError offset
    };
    // Mid-file damage is never recoverable: every case must throw
    // even in the forgiving (non-strict) resume mode, carrying the
    // byte offset of the bad line.
    std::string badCrc = good0;
    badCrc[3] = badCrc[3] == '0' ? '1' : '0'; // corrupt the checksum
    const std::vector<Case> cases = {
        {"bad checksum mid-file", badCrc + good1, 0},
        {"bad magic mid-file", "x9 " + good0.substr(3) + good1, 0},
        {"short line mid-file", std::string("r1 12\n") + good1, 0},
        {"duplicate job index", good0 + good1 + good0,
         static_cast<std::uint64_t>(good0.size() + good1.size())},
        {"wrong field count", good0 + forgeLine("1\tname\t2"),
         static_cast<std::uint64_t>(good0.size())},
        {"unknown status", good0 +
             forgeLine("9\tj\t1\tnot-a-status\t1\t0\t0\t\t\t0\t0\t0"
                       "\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0\t"
                       "0000000000000000\t0000000000000000\t\t"),
         static_cast<std::uint64_t>(good0.size())},
        {"non-numeric index", good0 + forgeLine(
             "x\tj\t1\tok\t1\t0\t0\t\t\t0\t0\t0\t0\t0\t0\t0\t0\t0"
             "\t0\t0\t0\t0\t0\t0\t0000000000000000"
             "\t0000000000000000\t\t"),
         static_cast<std::uint64_t>(good0.size())},
    };

    for (const Case &fuzz : cases) {
        const std::string journal = path("fuzz.txt");
        spill(journal, fuzz.content);
        for (const bool strict : {false, true}) {
            try {
                exec::loadJournal(journal, strict);
                FAIL() << fuzz.label << " (strict=" << strict
                       << ") did not throw";
            } catch (const exec::CampaignError &err) {
                EXPECT_EQ(err.byteOffset(), fuzz.offset)
                    << fuzz.label;
                EXPECT_NE(std::string(err.what()).find("byte offset"),
                          std::string::npos)
                    << fuzz.label;
            }
        }
    }
}

TEST_F(CampaignTest, JournalAttachRejectsForeignRecords)
{
    const std::string journal = path("journal.txt");
    {
        auto log = exec::CampaignJournal::create(journal);
        exec::JobRecord rec = sampleRecord(0);
        rec.spec.name = "art/base";
        rec.spec.cfg.seed = 1;
        log->record(rec);
    }
    auto log = exec::CampaignJournal::resume(journal);

    // Same slot, different job: the journal belongs to another
    // campaign and must be rejected, not silently replayed.
    std::vector<exec::JobSpec> renamed = {
        parallelJob("art/other", "art", 600, 1)};
    EXPECT_THROW(log->attach(renamed), exec::CampaignError);

    std::vector<exec::JobSpec> reseeded = {
        parallelJob("art/base", "art", 600, 99)};
    EXPECT_THROW(log->attach(reseeded), exec::CampaignError);

    // Index past the end of the expanded list.
    std::vector<exec::JobSpec> empty;
    EXPECT_THROW(log->attach(empty), exec::CampaignError);

    std::vector<exec::JobSpec> match = {
        parallelJob("art/base", "art", 600, 1)};
    log->attach(match);
    ASSERT_NE(log->replay(0), nullptr);
    EXPECT_EQ(log->replay(0)->spec.workload, "art");
}

// ---------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------

TEST_F(CampaignTest, ManifestRoundTripAndVerification)
{
    const std::string manifest = path("manifest.txt");
    exec::writeManifest(manifest, {{"spec", "specs/fig10.sweep"},
                                   {"spec-hash", "00ff"},
                                   {"jobs", "45"}});
    const exec::Manifest loaded = exec::loadManifest(manifest);
    ASSERT_EQ(loaded.fields.size(), 3u);
    ASSERT_NE(loaded.find("spec"), nullptr);
    EXPECT_EQ(*loaded.find("spec"), "specs/fig10.sweep");
    EXPECT_EQ(loaded.find("nope"), nullptr);

    loaded.expectValue("jobs", "45");
    try {
        loaded.expectValue("spec-hash", "beef");
        FAIL() << "hash mismatch accepted";
    } catch (const exec::CampaignError &err) {
        // The error points at the spec-hash line, past the magic
        // line and the spec line.
        EXPECT_GT(err.byteOffset(), 0u);
        EXPECT_NE(std::string(err.what()).find("spec-hash"),
                  std::string::npos);
    }
    EXPECT_THROW(loaded.expectValue("absent-key", "x"),
                 exec::CampaignError);
}

TEST_F(CampaignTest, ManifestFuzzMalformedFiles)
{
    struct Case
    {
        const char *label;
        std::string content;
    };
    const std::vector<Case> cases = {
        {"missing magic", "spec = a.sweep\n"},
        {"wrong magic", "critmem-campaign v999\nspec = a.sweep\n"},
        {"key line without separator",
         "critmem-campaign v1\nspec a.sweep\n"},
        {"duplicate key",
         "critmem-campaign v1\nspec = a\nspec = b\n"},
        {"missing final newline", "critmem-campaign v1\nspec = a"},
        {"empty file", ""},
    };
    for (const Case &fuzz : cases) {
        const std::string manifest = path("manifest.txt");
        spill(manifest, fuzz.content);
        EXPECT_THROW(exec::loadManifest(manifest),
                     exec::CampaignError)
            << fuzz.label;
    }
}

TEST_F(CampaignTest, CampaignHashTracksJobIdentity)
{
    const std::vector<exec::JobSpec> jobs = smallCampaign(600);
    EXPECT_EQ(exec::campaignHash(jobs), exec::campaignHash(jobs));

    std::vector<exec::JobSpec> reseeded = jobs;
    reseeded[0].cfg.seed += 1;
    EXPECT_NE(exec::campaignHash(jobs), exec::campaignHash(reseeded));

    std::vector<exec::JobSpec> requota = jobs;
    requota[1].quota += 1;
    EXPECT_NE(exec::campaignHash(jobs), exec::campaignHash(requota));

    std::vector<exec::JobSpec> shorter(jobs.begin(), jobs.end() - 1);
    EXPECT_NE(exec::campaignHash(jobs), exec::campaignHash(shorter));
}

// ---------------------------------------------------------------
// Sweep-spec parse errors
// ---------------------------------------------------------------

TEST_F(CampaignTest, SweepErrorCarriesLineAndByteOffset)
{
    // Line 1 is 17 bytes ("mode = parallel\n" is 16; use explicit
    // strings so the expected offset is readable).
    const std::string line1 = "mode = parallel\n";
    const std::string line2 = "workloads = art\n";
    const std::string bad = "quota = not-a-number\n";
    std::istringstream in(line1 + line2 + bad);
    try {
        exec::parseSweepSpec(in);
        FAIL() << "malformed quota accepted";
    } catch (const exec::SweepError &err) {
        EXPECT_EQ(err.lineNo(), 3u);
        EXPECT_EQ(err.byteOffset(), line1.size() + line2.size());
        EXPECT_NE(std::string(err.what()).find("line 3"),
                  std::string::npos);
    }

    std::istringstream badLine("not a spec directive\n");
    EXPECT_THROW(exec::parseSweepSpec(badLine), exec::SweepError);
}

// ---------------------------------------------------------------
// Runner integration: replay, stop, timeout, retries
// ---------------------------------------------------------------

TEST_F(CampaignTest, ResumedCampaignIsByteIdenticalToFreshRun)
{
    const std::vector<exec::JobSpec> jobs = smallCampaign(600);
    const std::string journal = path("journal.txt");

    // Reference: uninterrupted campaign, journaling as it goes.
    std::ostringstream fresh;
    {
        exec::JsonlSink sink(fresh);
        auto log = exec::CampaignJournal::create(journal);
        exec::RunnerOptions opts;
        opts.threads = 2;
        const exec::CampaignSummary summary =
            exec::JobRunner(opts).run(jobs, {&sink}, log.get());
        EXPECT_EQ(summary.ok, jobs.size());
        EXPECT_EQ(summary.replayed, 0u);
        EXPECT_FALSE(summary.interrupted);
    }

    // Full resume: every job replays from the journal, nothing runs,
    // and the sink output is byte-identical.
    std::ostringstream resumed;
    {
        exec::JsonlSink sink(resumed);
        auto log = exec::CampaignJournal::resume(journal);
        log->attach(jobs);
        exec::RunnerOptions opts;
        opts.threads = 2;
        const exec::CampaignSummary summary =
            exec::JobRunner(opts).run(jobs, {&sink}, log.get());
        EXPECT_EQ(summary.ok, jobs.size());
        EXPECT_EQ(summary.replayed, jobs.size());
    }
    EXPECT_EQ(fresh.str(), resumed.str());

    // Partial resume: keep only the first journaled record (whatever
    // completion order produced), re-run the rest — still identical.
    const exec::JournalLoad load = exec::loadJournal(journal, true);
    ASSERT_GT(load.records.size(), 1u);
    fs::resize_file(journal, load.offsets[1]);

    std::ostringstream partial;
    {
        exec::JsonlSink sink(partial);
        auto log = exec::CampaignJournal::resume(journal);
        EXPECT_EQ(log->loadedCount(), 1u);
        log->attach(jobs);
        exec::RunnerOptions opts;
        opts.threads = 2;
        const exec::CampaignSummary summary =
            exec::JobRunner(opts).run(jobs, {&sink}, log.get());
        EXPECT_EQ(summary.ok, jobs.size());
        EXPECT_EQ(summary.replayed, 1u);
    }
    EXPECT_EQ(fresh.str(), partial.str());

    // The re-run must have re-journaled everything: a second resume
    // replays all jobs from the now-complete journal.
    auto log = exec::CampaignJournal::resume(journal);
    EXPECT_EQ(log->loadedCount(), jobs.size());
}

TEST_F(CampaignTest, StopRequestBeforeRunLeavesEverythingPending)
{
    const std::vector<exec::JobSpec> jobs = smallCampaign(600);
    std::atomic<int> stop{1};
    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 2;
    opts.stopRequested = &stop;
    const exec::CampaignSummary summary =
        exec::JobRunner(opts).run(jobs, {&sink});
    EXPECT_TRUE(summary.interrupted);
    EXPECT_EQ(summary.pending, jobs.size());
    EXPECT_EQ(summary.ok, 0u);
    EXPECT_TRUE(sink.records().empty());
}

TEST_F(CampaignTest, TimeoutCancelsWedgedJobWithoutRetry)
{
    // A quota this size takes minutes; the 150 ms budget must cancel
    // it cooperatively, mark it Timeout, and NOT retry despite
    // maxAttempts allowing two more executions.
    std::vector<exec::JobSpec> jobs = {
        parallelJob("art/wedged", "art", 50000000)};
    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 1;
    opts.maxAttempts = 3;
    opts.jobTimeoutMs = 150;
    const exec::CampaignSummary summary =
        exec::JobRunner(opts).run(jobs, {&sink});
    EXPECT_EQ(summary.failed, 1u);
    ASSERT_EQ(sink.records().size(), 1u);
    const exec::JobRecord &rec = sink.records()[0];
    EXPECT_EQ(rec.status, exec::JobStatus::Timeout);
    EXPECT_EQ(rec.attempts, 1u);
    EXPECT_FALSE(rec.error.empty());
}

TEST_F(CampaignTest, RetriesAreCountedAndBackoffIsDeterministic)
{
    std::vector<exec::JobSpec> jobs = {
        parallelJob("bogus", "no-such-app", 600)};
    exec::RunnerOptions opts;
    opts.threads = 1;
    opts.maxAttempts = 3;
    opts.backoffBaseMs = 1; // keep the test fast, exercise the path
    opts.backoffSeed = 42;

    std::ostringstream first, second;
    for (std::ostringstream *out : {&first, &second}) {
        exec::JsonlSink sink(*out);
        const exec::CampaignSummary summary =
            exec::JobRunner(opts).run(jobs, {&sink});
        EXPECT_EQ(summary.failed, 1u);
        EXPECT_EQ(summary.retries, 2u);
    }
    // Identical options ⇒ identical failure records (the jitter is
    // seeded, so nothing wall-clock-dependent leaks into results).
    EXPECT_EQ(first.str(), second.str());
    EXPECT_NE(first.str().find("\"attempts\":3"), std::string::npos);
}

} // namespace

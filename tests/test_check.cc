/**
 * @file
 * Tests of the validation harness (src/check/): the protocol invariant
 * checker stays silent on honest traffic under every scheduling
 * policy, the forward-progress watchdog converts hangs into loud
 * diagnostics, and each fault-injection mode trips the checker rule
 * it was designed to prove.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "check/fault_injector.hh"
#include "check/protocol_checker.hh"
#include "dram/dram.hh"
#include "sched/registry.hh"
#include "sched/scheduler.hh"
#include "system/system.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

/** Standalone DramSystem + checker + deterministic traffic mix. */
class CheckHarness
{
  public:
    CheckHarness(SchedAlgo algo, const CheckConfig &check,
                 const std::function<void(SystemConfig &)> &tweak = {})
    {
        sysCfg_ = SystemConfig::parallelDefault();
        sysCfg_.sched.algo = algo;
        sysCfg_.dram.channels = 2;
        sysCfg_.dram.ranksPerChannel = 2;
        if (tweak)
            tweak(sysCfg_);
        sched_ = makeScheduler(sysCfg_);
        dram_ = std::make_unique<DramSystem>(sysCfg_.dram, *sched_,
                                             root_);
        checker_ = std::make_unique<ProtocolChecker>(check,
                                                     sysCfg_.dram);
        checker_->attach(*dram_);
        if (check.fault != FaultKind::None) {
            injector_ =
                std::make_unique<ScriptedFaultInjector>(check);
            dram_->setFaultInjector(injector_.get());
        }
    }

    /** Offer bursty random read/write traffic for @p cycles. */
    void
    drive(DramCycle cycles, std::uint32_t everyN = 3)
    {
        for (DramCycle i = 0; i < cycles; ++i) {
            ++now_;
            if (rnd() % everyN == 0) {
                MemRequest req;
                req.addr = (rnd() % (1u << 22)) & ~Addr{63};
                req.type =
                    rnd() % 4 == 0 ? ReqType::Write : ReqType::Read;
                req.core = static_cast<CoreId>(rnd() % 8);
                req.crit = rnd() % 5 == 0
                    ? static_cast<CritLevel>(rnd() % 1000)
                    : 0;
                const bool isRead = req.type == ReqType::Read;
                if (isRead) {
                    req.onComplete = [this](const MemRequest &) {
                        ++completed_;
                    };
                }
                if (dram_->enqueue(std::move(req)) && isRead)
                    ++accepted_;
            }
            dram_->tick(now_);
        }
    }

    /** Tick without new traffic until idle (bounded). */
    void
    drain(DramCycle bound = 40000)
    {
        for (DramCycle i = 0; i < bound && !dram_->idle(); ++i)
            dram_->tick(++now_);
    }

    std::uint64_t
    rnd()
    {
        state_ = state_ * 6364136223846793005ull +
            1442695040888963407ull;
        return state_ >> 33;
    }

    SystemConfig sysCfg_;
    stats::Group root_;
    std::unique_ptr<Scheduler> sched_;
    std::unique_ptr<DramSystem> dram_;
    std::unique_ptr<ProtocolChecker> checker_;
    std::unique_ptr<ScriptedFaultInjector> injector_;
    DramCycle now_ = 0;
    std::uint64_t state_ = 0x5eed;
    std::uint64_t accepted_ = 0;
    std::uint64_t completed_ = 0;
};

/** Scheduler that never issues anything: guaranteed stall. */
class IdleScheduler : public Scheduler
{
  public:
    int
    pick(std::uint32_t, const std::vector<SchedCandidate> &,
         DramCycle) override
    {
        return -1;
    }

    const char *name() const override { return "idle"; }
};

} // namespace

// ---------------------------------------------------------------------
// Honest traffic: the checker must stay silent.
// ---------------------------------------------------------------------

/** All registered policy families, zero violations each. */
class CheckCleanTest : public ::testing::TestWithParam<SchedAlgo>
{
};

TEST_P(CheckCleanTest, HonestTrafficHasZeroViolations)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = true; // any violation throws and fails the test
    CheckHarness h(GetParam(), check);

    h.drive(6000);
    h.drain();
    ASSERT_TRUE(h.dram_->idle()) << toString(GetParam());
    EXPECT_EQ(h.completed_, h.accepted_);

    h.checker_->finalize(/*requireDrained=*/true);
    h.checker_->crossCheckStats(h.root_);
    EXPECT_EQ(h.checker_->totalViolations(), 0u)
        << h.checker_->report();
    EXPECT_EQ(h.checker_->outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CheckCleanTest,
    ::testing::Values(SchedAlgo::Fcfs, SchedAlgo::FrFcfs,
                      SchedAlgo::CritCasRas, SchedAlgo::CasRasCrit,
                      SchedAlgo::ParBs, SchedAlgo::Tcm,
                      SchedAlgo::TcmCrit, SchedAlgo::Ahb,
                      SchedAlgo::Morse, SchedAlgo::CritRl,
                      SchedAlgo::Atlas, SchedAlgo::Minimalist));

TEST(CheckClean, ClosedPageAndSplitQueueStayClean)
{
    CheckConfig check;
    check.enabled = true;
    for (const bool closedPage : {false, true}) {
        CheckHarness h(SchedAlgo::FrFcfs, check,
                       [closedPage](SystemConfig &cfg) {
                           cfg.dram.closedPage = closedPage;
                           cfg.dram.unifiedQueue = !closedPage;
                       });
        h.drive(4000);
        h.drain();
        h.checker_->finalize(true);
        h.checker_->crossCheckStats(h.root_);
        EXPECT_EQ(h.checker_->totalViolations(), 0u)
            << "closedPage=" << closedPage << "\n"
            << h.checker_->report();
    }
}

TEST(CheckClean, StatsResetKeepsCrossCheckConsistent)
{
    CheckConfig check;
    check.enabled = true;
    CheckHarness h(SchedAlgo::FrFcfs, check);

    h.drive(3000);
    // Close a warmup window: stats and shadow counters reset together.
    h.root_.resetAll();
    h.checker_->onStatsReset();
    h.drive(3000);
    h.drain();

    h.checker_->finalize(true);
    h.checker_->crossCheckStats(h.root_);
    EXPECT_EQ(h.checker_->totalViolations(), 0u)
        << h.checker_->report();
}

TEST(CheckClean, FullSystemRunPassesWithCheckingEnabled)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.numCores = 2;
    cfg.dram.channels = 2;
    cfg.check.enabled = true;
    System sys(cfg, appParams("art"));
    sys.run(3000);
    sys.finalizeChecks(/*requireDrained=*/false);
    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_EQ(sys.checker()->totalViolations(), 0u)
        << sys.checker()->report();
}

// ---------------------------------------------------------------------
// Refresh engine under pressure (checker as oracle).
// ---------------------------------------------------------------------

TEST(CheckClean, RefreshSurvivesFullQueuesAcrossDeadline)
{
    CheckConfig check;
    check.enabled = true;
    CheckHarness h(SchedAlgo::FrFcfs, check, [](SystemConfig &cfg) {
        cfg.dram.channels = 1;
        cfg.dram.ranksPerChannel = 2;
    });

    // Saturate the queue (offer a request nearly every cycle) across
    // more than two full tREFI deadlines; the refresh engine must
    // still hit every deadline and no timing rule may break.
    const DramCycle span = h.sysCfg_.dram.t.tREFI * 5 / 2;
    h.drive(span, /*everyN=*/1);
    h.drain();

    h.checker_->finalize(true);
    h.checker_->crossCheckStats(h.root_);
    EXPECT_EQ(h.checker_->totalViolations(), 0u)
        << h.checker_->report();
    // Both ranks refreshed at least twice over 2.5 intervals.
    EXPECT_GE(
        h.dram_->channel(0).channelStats().refreshes.value(), 4u);
}

// ---------------------------------------------------------------------
// Forward-progress watchdog.
// ---------------------------------------------------------------------

TEST(CheckWatchdog, StalledChannelThrowsWithDiagnostics)
{
    stats::Group root;
    DramConfig cfg = DramConfig::preset(DramSpeed::DDR3_2133);
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.watchdogCycles = 100;

    IdleScheduler sched;
    DramSystem dram(cfg, sched, root);
    CheckConfig check;
    check.enabled = true;
    ProtocolChecker checker(check, cfg);
    checker.attach(dram);

    MemRequest req;
    req.addr = 0xbeef00;
    req.type = ReqType::Read;
    req.core = 5;
    ASSERT_TRUE(dram.enqueue(std::move(req)));

    DramCycle now = 0;
    EXPECT_THROW(
        {
            for (int i = 0; i < 1000; ++i)
                dram.tick(++now);
        },
        CheckViolation);

    // The stall was recorded with a diagnostic snapshot naming the
    // stuck request and the idle scheduler.
    ASSERT_TRUE(checker.hasRule(RuleId::Watchdog));
    const std::string &msg = checker.violations().front().message;
    EXPECT_NE(msg.find("idle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 5"), std::string::npos) << msg;
}

TEST(CheckWatchdog, HonestChannelNeverTrips)
{
    CheckConfig check;
    check.enabled = true;
    CheckHarness h(SchedAlgo::FrFcfs, check, [](SystemConfig &cfg) {
        cfg.dram.watchdogCycles = 500;
    });
    // Tight watchdog plus long idle stretches: idling with an empty
    // queue is progress, not a stall.
    h.drive(2000);
    h.drain();
    h.drive(2000, /*everyN=*/50); // sparse traffic, long gaps
    h.drain();
    EXPECT_FALSE(h.checker_->hasRule(RuleId::Watchdog));
}

// ---------------------------------------------------------------------
// Fault injection: every mode must trip its rule.
// ---------------------------------------------------------------------

TEST(CheckFault, DropCompletionIsDetectedAsLostRequest)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = false;
    check.fault = FaultKind::DropCompletion;
    check.faultPeriod = 1; // drop every read completion
    CheckHarness h(SchedAlgo::FrFcfs, check);

    h.drive(2000);
    h.drain();
    h.checker_->finalize(/*requireDrained=*/true);

    EXPECT_GT(h.injector_->injections(), 0u);
    EXPECT_TRUE(h.checker_->hasRule(RuleId::LostRequest))
        << h.checker_->report();
    EXPECT_GT(h.checker_->outstanding(), 0u);
    EXPECT_LT(h.completed_, h.accepted_);
}

TEST(CheckFault, DropCompletionWedgesFullSystemCommitWatchdog)
{
    SystemConfig cfg = SystemConfig::parallelDefault();
    cfg.numCores = 2;
    cfg.dram.channels = 2;
    cfg.check.enabled = true;
    cfg.check.fault = FaultKind::DropCompletion;
    cfg.check.faultPeriod = 1;
    cfg.check.commitWatchdogCycles = 100000;
    System sys(cfg, appParams("art"));
    // Every read's wakeup vanishes; the cores wedge and the
    // commit-side watchdog reports it instead of spinning forever.
    EXPECT_THROW(sys.run(50000), CheckViolation);
}

TEST(CheckFault, EarlyCasViolatesShadowTiming)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = false;
    check.fault = FaultKind::EarlyCas;
    check.faultPeriod = 1; // one cycle of slack every tick
    CheckHarness h(SchedAlgo::FrFcfs, check);

    h.drive(3000);
    h.drain();

    EXPECT_GT(h.injector_->injections(), 0u);
    EXPECT_GT(h.checker_->totalViolations(), 0u);
    const bool timingRule = h.checker_->hasRule(RuleId::Trcd) ||
        h.checker_->hasRule(RuleId::Tccd) ||
        h.checker_->hasRule(RuleId::Twtr) ||
        h.checker_->hasRule(RuleId::Trtw) ||
        h.checker_->hasRule(RuleId::DataBusConflict);
    EXPECT_TRUE(timingRule) << h.checker_->report();
}

TEST(CheckFault, SkipRefreshMissesTheDeadline)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = false;
    check.fault = FaultKind::SkipRefresh;
    check.faultPeriod = 1; // every refresh silently skipped
    CheckHarness h(SchedAlgo::FrFcfs, check, [](SystemConfig &cfg) {
        cfg.dram.channels = 1;
        cfg.dram.ranksPerChannel = 1;
    });

    // Keep commands flowing well past the refresh deadline so the
    // checker can observe the rank going stale.
    h.drive(h.sysCfg_.dram.t.tREFI * 3, /*everyN=*/4);
    h.drain();
    h.checker_->finalize(/*requireDrained=*/true);

    EXPECT_GT(h.injector_->injections(), 0u);
    EXPECT_TRUE(h.checker_->hasRule(RuleId::RefreshInterval))
        << h.checker_->report();
    EXPECT_EQ(
        h.dram_->channel(0).channelStats().refreshes.value(), 0u);
}

TEST(CheckFault, StarveCoreTripsStarvationBound)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = false;
    check.fault = FaultKind::StarveCore;
    check.faultVictim = 2;
    check.starvationCycles = 2000;
    CheckHarness h(SchedAlgo::FrFcfs, check);

    h.drive(12000);
    h.drain();

    EXPECT_GT(h.injector_->injections(), 0u);
    EXPECT_TRUE(h.checker_->hasRule(RuleId::Starvation))
        << h.checker_->report();
    // The starved requests name the victim core.
    bool victimNamed = false;
    for (const Violation &v : h.checker_->violations()) {
        if (v.rule == RuleId::Starvation &&
            v.message.find("core 2") != std::string::npos)
            victimNamed = true;
    }
    EXPECT_TRUE(victimNamed) << h.checker_->report();
}

TEST(CheckFault, FlipCritViolatesPromotionMonotonicity)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = true;
    check.fault = FaultKind::FlipCrit;
    check.faultPeriod = 1;
    CheckHarness h(SchedAlgo::CasRasCrit, check);

    MemRequest req;
    req.addr = 0x8000;
    req.type = ReqType::Read;
    req.core = 3;
    ASSERT_TRUE(h.dram_->enqueue(std::move(req)));
    // The corrupted promotion zeroes the level instead of raising it.
    EXPECT_THROW(h.dram_->promote(0x8000, 3, 7), CheckViolation);
    EXPECT_TRUE(h.checker_->hasRule(RuleId::CritDecrease));
    EXPECT_GT(h.injector_->injections(), 0u);
}

// ---------------------------------------------------------------------
// Conservation bookkeeping details.
// ---------------------------------------------------------------------

TEST(CheckConservation, UnknownCompletionAndDuplicateIdAreReported)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = false;
    DramConfig dcfg = DramConfig::preset(DramSpeed::DDR3_2133);
    dcfg.channels = 1;
    ProtocolChecker checker(check, dcfg);

    MemRequest req;
    req.addr = 0x40;
    req.id = 7;
    DramCoord coord;
    checker.onEnqueue(0, req, coord, 1);
    checker.onEnqueue(0, req, coord, 2); // same id still in flight
    EXPECT_TRUE(checker.hasRule(RuleId::DuplicateId));

    MemRequest other;
    other.addr = 0x80;
    other.id = 99; // never enqueued
    checker.onComplete(0, other, 3);
    EXPECT_TRUE(checker.hasRule(RuleId::UnknownCompletion));

    checker.onComplete(0, req, 4);
    checker.finalize(/*requireDrained=*/true);
    EXPECT_FALSE(checker.hasRule(RuleId::LostRequest));
}

TEST(CheckConservation, FailFastThrowsOnFirstViolation)
{
    CheckConfig check;
    check.enabled = true;
    check.failFast = true;
    DramConfig dcfg = DramConfig::preset(DramSpeed::DDR3_2133);
    dcfg.channels = 1;
    ProtocolChecker checker(check, dcfg);

    MemRequest req;
    req.id = 1;
    DramCoord coord;
    checker.onEnqueue(0, req, coord, 1);
    EXPECT_THROW(checker.onEnqueue(0, req, coord, 2), CheckViolation);
    try {
        checker.onComplete(0, MemRequest{}, 3);
        FAIL() << "expected CheckViolation";
    } catch (const CheckViolation &err) {
        EXPECT_EQ(err.violation().rule, RuleId::UnknownCompletion);
        EXPECT_NE(std::string(err.what()).find("UnknownCompletion"),
                  std::string::npos);
    }
}

/**
 * @file
 * Semantic-lint tests: the cross-TU symbol indexer on gnarly inputs
 * (overloads, templates, out-of-line members, nested and anonymous
 * namespaces, macro-like calls — proving no false edge and no
 * crash), the three SemanticRules on their bad/good fixture twins —
 * including the acceptance canary: a wall-clock read TWO call hops
 * from a Scheduler entry point must be caught with its full chain —
 * and a deterministic mutant-fuzz loop over every C++ fixture.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.hh"
#include "analysis/symbol_index.hh"
#include "sim/random.hh"

namespace
{

using namespace critmem;
using namespace critmem::analysis;

const std::string kFixtures =
    std::string(CRITMEM_REPO_ROOT) + "/tests/analysis/fixtures/";

SourceFile
loadFixture(const std::string &name)
{
    return loadSourceFile(kFixtures + name,
                          "tests/analysis/fixtures/" + name);
}

std::vector<Finding>
lintFixture(const std::string &name)
{
    return analyzeFile(loadFixture(name));
}

std::vector<Finding>
ruleFindings(const std::vector<Finding> &findings,
             const std::string &rule)
{
    std::vector<Finding> out;
    for (const Finding &f : findings) {
        if (f.rule == rule)
            out.push_back(f);
    }
    return out;
}

int
nodeByQname(const SymbolIndex &index, const std::string &suffix)
{
    return index.byQnameSuffix(suffix);
}

// ---------------------------------------------------------------------------
// transitive-determinism

TEST(SemanticTransDet, CatchesTwoHopChainFromScheduler)
{
    const auto findings = lintFixture("trans_det_bad.cc");
    const auto hits =
        ruleFindings(findings, "transitive-determinism");
    ASSERT_EQ(hits.size(), 1u);
    const Finding &f = hits.front();
    EXPECT_NE(f.message.find("steady_clock"), std::string::npos);
    EXPECT_NE(f.message.find("BadSched::pick"), std::string::npos);
    // Full chain: entry point, intermediate hop, tainted function.
    ASSERT_EQ(f.chain.size(), 3u);
    EXPECT_NE(f.chain[0].symbol.find("BadSched::pick"),
              std::string::npos);
    EXPECT_NE(f.chain[1].symbol.find("HelperA::viaB"),
              std::string::npos);
    EXPECT_NE(f.chain[2].symbol.find("HelperB::stamp"),
              std::string::npos);
    // The direct lexical finding still fires alongside.
    EXPECT_EQ(ruleFindings(findings, "wall-clock").size(), 1u);
}

TEST(SemanticTransDet, TrustsReviewedInlineSuppression)
{
    const auto findings = lintFixture("trans_det_good.cc");
    // The allow silences the direct rule, is trusted transitively,
    // and is not stale (it suppressed a real finding).
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

TEST(SemanticTransDet, ChainRenderedInTextReport)
{
    const auto findings = lintFixture("trans_det_bad.cc");
    const auto hits =
        ruleFindings(findings, "transitive-determinism");
    ASSERT_EQ(hits.size(), 1u);
    std::ostringstream os;
    os << hits.front();
    EXPECT_NE(os.str().find("\n    via "), std::string::npos);
    EXPECT_NE(os.str().find("HelperA::viaB"), std::string::npos);
}

// ---------------------------------------------------------------------------
// clock-domain

TEST(SemanticClockDomain, FiresOnMixesAndCrossCalls)
{
    const auto findings = lintFixture("clock_domain_bad.cc");
    const auto hits = ruleFindings(findings, "clock-domain");
    ASSERT_EQ(hits.size(), 3u);
    // Typed member mixing on one line.
    EXPECT_NE(hits[0].message.find("cpuNow_"), std::string::npos);
    EXPECT_NE(hits[0].message.find("dramNow_"), std::string::npos);
    // Cross-call argument/parameter mismatch, with the callee named.
    EXPECT_NE(hits[1].message.find("Mixer::advance"),
              std::string::npos);
    // Naming-convention variables mix too.
    EXPECT_NE(hits[2].message.find("cpuCycleEstimate_"),
              std::string::npos);
}

TEST(SemanticClockDomain, SilentWithConvertersAndMarkers)
{
    const auto findings = lintFixture("clock_domain_good.cc");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

// ---------------------------------------------------------------------------
// aggregation-thread-only

TEST(SemanticAggThread, FiresWhenWorkerReachesSink)
{
    const auto findings = lintFixture("agg_thread_bad.cc");
    const auto hits =
        ruleFindings(findings, "aggregation-thread-only");
    ASSERT_EQ(hits.size(), 1u);
    const Finding &f = hits.front();
    EXPECT_NE(f.message.find("Pool::workerLoop"),
              std::string::npos);
    EXPECT_NE(f.message.find("ResultSink::consume"),
              std::string::npos);
    ASSERT_EQ(f.chain.size(), 3u);
    EXPECT_NE(f.chain[1].symbol.find("Pool::finishJob"),
              std::string::npos);
}

TEST(SemanticAggThread, SilentWhenOnlyAggregationTouchesSink)
{
    const auto findings = lintFixture("agg_thread_good.cc");
    EXPECT_TRUE(findings.empty())
        << "unexpected: " << findings.front().message;
}

// ---------------------------------------------------------------------------
// symbol indexer on gnarly inputs

TEST(SemanticIndex, GnarlyOverloadsShareOneNode)
{
    const std::vector<SourceFile> files{
        loadFixture("index_gnarly.cc")};
    const SymbolIndex index = SymbolIndex::build(files);
    const int run = nodeByQname(index, "Gnarly::run");
    ASSERT_GE(run, 0);
    const FunctionNode &node =
        index.functions()[static_cast<std::size_t>(run)];
    EXPECT_EQ(node.qname, "outer::inner::Gnarly::run");
    EXPECT_EQ(node.defs.size(), 2u);
}

TEST(SemanticIndex, GnarlyNoFalseEdges)
{
    const std::vector<SourceFile> files{
        loadFixture("index_gnarly.cc")};
    const SymbolIndex index = SymbolIndex::build(files);

    // run -> helper is the ONLY edge out of run: the macro-like
    // LOG_THING(...) call and static_cast must not produce edges.
    const int run = nodeByQname(index, "Gnarly::run");
    const int helper = nodeByQname(index, "Gnarly::helper");
    ASSERT_GE(run, 0);
    ASSERT_GE(helper, 0);
    const FunctionNode &runNode =
        index.functions()[static_cast<std::size_t>(run)];
    ASSERT_EQ(runNode.edges.size(), 1u);
    EXPECT_EQ(runNode.edges.front().callee, helper);

    // helper's std::string method calls (clear, size) must not be
    // attributed to any indexed function.
    const FunctionNode &helperNode =
        index.functions()[static_cast<std::size_t>(helper)];
    EXPECT_TRUE(helperNode.edges.empty());
}

TEST(SemanticIndex, GnarlyAnonymousNamespaceStaysFileLocal)
{
    const std::vector<SourceFile> files{
        loadFixture("index_gnarly.cc")};
    const SymbolIndex index = SymbolIndex::build(files);
    const int fileLocal = nodeByQname(index, "fileLocal");
    ASSERT_GE(fileLocal, 0);
    EXPECT_NE(index.functions()
                  [static_cast<std::size_t>(fileLocal)]
                      .qname.find("(anon@"),
              std::string::npos);
    const int useAnon = nodeByQname(index, "useAnon");
    ASSERT_GE(useAnon, 0);
    const FunctionNode &node =
        index.functions()[static_cast<std::size_t>(useAnon)];
    ASSERT_EQ(node.edges.size(), 1u);
    EXPECT_EQ(node.edges.front().callee, fileLocal);
}

TEST(SemanticIndex, GnarlyTemplatesAndCtorsIndexed)
{
    const std::vector<SourceFile> files{
        loadFixture("index_gnarly.cc")};
    const SymbolIndex index = SymbolIndex::build(files);
    EXPECT_GE(nodeByQname(index, "Box::get"), 0);
    // The member-initializer-list constructor must index as a
    // definition, not swallow the rest of the file.
    EXPECT_GE(nodeByQname(index, "Gnarly::Gnarly"), 0);
    EXPECT_GE(index.classByShortName("Gnarly"), 0);
}

TEST(SemanticIndex, EnclosingFunctionFindsTaintedBody)
{
    const std::vector<SourceFile> files{
        loadFixture("trans_det_bad.cc")};
    const SymbolIndex index = SymbolIndex::build(files);
    // Line 16 is the steady_clock read inside HelperB::stamp.
    const int fn = index.enclosingFunction(0, 16);
    ASSERT_GE(fn, 0);
    EXPECT_EQ(index.functions()[static_cast<std::size_t>(fn)]
                  .qname,
              "fixture::HelperB::stamp");
}

// ---------------------------------------------------------------------------
// mutant fuzz: indexing arbitrary mutations of real inputs must
// never crash or throw (mirrors the tracefuzz harness for traces).

TEST(SemanticFuzz, FixtureMutantsNeverCrash)
{
    const std::vector<std::string> seeds{
        "trans_det_bad.cc",    "trans_det_good.cc",
        "clock_domain_bad.cc", "clock_domain_good.cc",
        "agg_thread_bad.cc",   "agg_thread_good.cc",
        "index_gnarly.cc",     "wall_clock_bad.cc",
        "hot_path_alloc_bad.cc"};
    static const char kNoise[] = "{}();:<>,*&=\"'/\\#";
    Rng rng(0xc0ffee5eedULL);

    for (const std::string &name : seeds) {
        const SourceFile original = loadFixture(name);
        std::string text;
        for (const std::string &line : original.lines)
            text += line + "\n";

        for (int mutant = 0; mutant < 40; ++mutant) {
            std::string mutated = text;
            const int edits =
                1 + static_cast<int>(rng.below(4));
            for (int e = 0; e < edits && !mutated.empty(); ++e) {
                const std::size_t pos = static_cast<std::size_t>(
                    rng.below(mutated.size()));
                switch (rng.below(4)) {
                  case 0: // delete a span
                    mutated.erase(
                        pos, 1 + static_cast<std::size_t>(
                                     rng.below(20)));
                    break;
                  case 1: // duplicate a span
                    mutated.insert(
                        pos,
                        mutated.substr(
                            pos, 1 + static_cast<std::size_t>(
                                         rng.below(20))));
                    break;
                  case 2: // structural noise
                    mutated[pos] = kNoise[rng.below(
                        sizeof(kNoise) - 1)];
                    break;
                  default: // truncate
                    mutated.resize(pos);
                    break;
                }
            }
            EXPECT_NO_THROW({
                const SourceFile file =
                    makeSourceFile("fuzz/" + name, mutated);
                const std::vector<SourceFile> files{file};
                const SymbolIndex index =
                    SymbolIndex::build(files);
                (void)index.functions();
                (void)analyzeFile(file);
            }) << name
               << " mutant " << mutant;
        }
    }
}

} // namespace

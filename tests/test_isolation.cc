/**
 * @file
 * Tests of process-isolated job execution (exec/worker.hh): the
 * byte-identity contract between in-thread and forked execution, the
 * failure taxonomy (crashed / oom / exit / timeout) incl. the
 * waitpid-status classifier, quarantine of repeat offenders, the
 * --max-failures circuit breaker, and the journal-line wire protocol
 * the worker pipe shares with the campaign journal.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "exec/campaign.hh"
#include "exec/job_runner.hh"
#include "exec/result_sink.hh"
#include "exec/worker.hh"
#include "sim/config.hh"

using namespace critmem;

namespace
{

exec::JobSpec
parallelJob(const std::string &name, const std::string &app,
            std::uint64_t quota, std::uint64_t seed = 1)
{
    exec::JobSpec job;
    job.name = name;
    job.kind = exec::RunKind::Parallel;
    job.workload = app;
    job.cfg = SystemConfig::parallelDefault();
    job.cfg.sched.algo = SchedAlgo::FrFcfs;
    job.cfg.seed = seed;
    job.quota = quota;
    return job;
}

/** Rig @p job to fault its own process after @p period CAS issues. */
void
armFault(exec::JobSpec &job, FaultKind kind, std::uint64_t period)
{
    job.cfg.check.enabled = true;
    job.cfg.check.fault = kind;
    job.cfg.check.faultPeriod = period;
}

std::string
runToJsonl(const std::vector<exec::JobSpec> &jobs,
           exec::RunnerOptions opts,
           exec::CampaignSummary *summary = nullptr)
{
    std::ostringstream out;
    exec::JsonlSink sink(out);
    exec::JobRunner runner(opts);
    const exec::CampaignSummary s = runner.run(jobs, {&sink});
    if (summary != nullptr)
        *summary = s;
    return out.str();
}

} // namespace

TEST(Isolation, JsonlIdenticalToInThreadExecution)
{
    std::vector<exec::JobSpec> jobs;
    for (const char *app : {"art", "mg"}) {
        jobs.push_back(
            parallelJob(std::string(app) + "/base", app, 600));
        jobs.back().captureStats = true; // statsJson crosses the pipe
    }

    exec::RunnerOptions inThread;
    inThread.threads = 2;
    exec::RunnerOptions isolated = inThread;
    isolated.isolate = true;

    const std::string reference = runToJsonl(jobs, inThread);
    EXPECT_FALSE(reference.empty());
    EXPECT_EQ(reference, runToJsonl(jobs, isolated));

    isolated.threads = 1; // and independent of worker count
    EXPECT_EQ(reference, runToJsonl(jobs, isolated));
}

TEST(Isolation, CrashIsContainedAndQuarantined)
{
    std::vector<exec::JobSpec> jobs;
    jobs.push_back(parallelJob("healthy", "art", 600));
    jobs.push_back(parallelJob("doomed", "art", 600));
    armFault(jobs.back(), FaultKind::CrashWorker, 200);

    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 2;
    opts.isolate = true;
    opts.maxAttempts = 2;
    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary =
        runner.run(jobs, {&sink});

    EXPECT_EQ(summary.ok, 1u);
    EXPECT_EQ(summary.failed, 1u);
    const exec::JobRecord *healthy = sink.find("healthy");
    ASSERT_NE(healthy, nullptr);
    EXPECT_EQ(healthy->status, exec::JobStatus::Ok);

    const exec::JobRecord *doomed = sink.find("doomed");
    ASSERT_NE(doomed, nullptr);
    EXPECT_EQ(doomed->status, exec::JobStatus::Crashed);
    EXPECT_NE(doomed->error.find("SIGSEGV"), std::string::npos)
        << doomed->error;
    // Every allowed attempt died: the record carries the quarantine
    // note and the attempt count.
    EXPECT_EQ(doomed->attempts, 2u);
    EXPECT_NE(doomed->error.find("quarantined after 2"),
              std::string::npos)
        << doomed->error;
}

TEST(Isolation, MemoryHogBecomesOomUnderBudget)
{
    std::vector<exec::JobSpec> jobs;
    jobs.push_back(parallelJob("hog", "art", 600));
    armFault(jobs.back(), FaultKind::HogMemory, 200);

    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 1;
    opts.isolate = true;
    opts.jobMemMb = 512;
    exec::JobRunner runner(opts);
    runner.run(jobs, {&sink});

    const exec::JobRecord *hog = sink.find("hog");
    ASSERT_NE(hog, nullptr);
    EXPECT_EQ(hog->status, exec::JobStatus::Oom);
    EXPECT_NE(hog->error.find("--job-mem-mb"), std::string::npos)
        << hog->error;
}

TEST(Isolation, ClassifyWaitStatusTaxonomy)
{
    exec::WorkerLimits limits;
    limits.memMb = 256;
    limits.cpuSeconds = 10;
    std::string detail;

    // Plain exit(0) with no record: Exit (the record never arrived).
    EXPECT_EQ(exec::classifyWaitStatus(0 << 8, limits, detail),
              exec::JobStatus::Exit);
    // exit(35): Exit, code in the detail.
    EXPECT_EQ(exec::classifyWaitStatus(35 << 8, limits, detail),
              exec::JobStatus::Exit);
    EXPECT_NE(detail.find("35"), std::string::npos) << detail;
    // Fatal SIGSEGV: Crashed, signal named.
    EXPECT_EQ(exec::classifyWaitStatus(SIGSEGV, limits, detail),
              exec::JobStatus::Crashed);
    EXPECT_NE(detail.find("SIGSEGV"), std::string::npos) << detail;
    // SIGXCPU: the RLIMIT_CPU backstop fired -> Timeout.
    EXPECT_EQ(exec::classifyWaitStatus(SIGXCPU, limits, detail),
              exec::JobStatus::Timeout);
    // SIGKILL is still a signal death to the classifier (the
    // supervisor separately distinguishes *whose* SIGKILL it was).
    EXPECT_EQ(exec::classifyWaitStatus(SIGKILL, limits, detail),
              exec::JobStatus::Crashed);
    EXPECT_NE(detail.find("SIGKILL"), std::string::npos) << detail;
}

TEST(Isolation, CircuitBreakerStopsDispatch)
{
    // Six jobs that all fail permanently (unknown workload) with a
    // two-failure breaker: dispatch must stop early, leaving pending
    // jobs, and the summary must say why.
    std::vector<exec::JobSpec> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back(parallelJob("bogus" + std::to_string(i),
                                   "no-such-app", 600));

    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 1;
    opts.maxFailures = 2;
    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary =
        runner.run(jobs, {&sink});

    EXPECT_TRUE(summary.breakerTripped);
    EXPECT_TRUE(summary.interrupted);
    EXPECT_GT(summary.pending, 0u);
}

TEST(Isolation, PercentBreakerTripsAtThreshold)
{
    std::vector<exec::JobSpec> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back(parallelJob("bogus" + std::to_string(i),
                                   "no-such-app", 600));

    exec::MemorySink sink;
    exec::RunnerOptions opts;
    opts.threads = 1;
    opts.maxFailuresPct = 50; // 2 of 4
    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary =
        runner.run(jobs, {&sink});
    EXPECT_TRUE(summary.breakerTripped);
}

TEST(Isolation, JournalIoFailuresAreCampaignErrors)
{
    // An unwritable journal path fails loudly with a CampaignError
    // carrying the byte offset, not a silent half-campaign.
    EXPECT_THROW(exec::CampaignJournal::create(
                     "/nonexistent-dir-critmem/journal.txt"),
                 exec::CampaignError);
    try {
        exec::CampaignJournal::create(
            "/nonexistent-dir-critmem/journal.txt");
    } catch (const exec::CampaignError &err) {
        EXPECT_EQ(err.byteOffset(), 0u);
        EXPECT_NE(std::string(err.what()).find("journal"),
                  std::string::npos);
    }
}

TEST(Isolation, JournalTracksAppendOffset)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/critmem_journal_offset.txt";
    std::remove(path.c_str());
    auto journal = exec::CampaignJournal::create(path);
    EXPECT_EQ(journal->appendOffset(), 0u);

    exec::JobRecord rec;
    rec.spec = parallelJob("wire", "art", 600);
    rec.index = 0;
    rec.status = exec::JobStatus::Ok;
    journal->record(rec);
    EXPECT_EQ(journal->appendOffset(),
              exec::encodeJournalRecord(rec).size());
    journal->record(rec);
    EXPECT_EQ(journal->appendOffset(),
              2 * exec::encodeJournalRecord(rec).size());
    std::remove(path.c_str());
}

TEST(Isolation, NewStatusStringsRoundTripTheWireProtocol)
{
    for (const exec::JobStatus status :
         {exec::JobStatus::Crashed, exec::JobStatus::Oom,
          exec::JobStatus::Exit}) {
        exec::JobRecord rec;
        rec.spec = parallelJob("wire", "art", 600);
        rec.index = 7;
        rec.status = status;
        rec.attempts = 2;
        rec.error = "killed by signal 11 (SIGSEGV)";
        const std::string line = exec::encodeJournalRecord(rec);
        const exec::JobRecord back =
            exec::decodeJournalRecord(line);
        EXPECT_EQ(back.status, status);
        EXPECT_EQ(back.index, rec.index);
        EXPECT_EQ(back.error, rec.error);
        EXPECT_EQ(toString(back.status), toString(status));
    }
    // And the parser rejects garbage statuses rather than guessing.
    exec::JobStatus parsed;
    EXPECT_FALSE(exec::parseJobStatus("melted", parsed));
    EXPECT_TRUE(exec::parseJobStatus("crashed", parsed));
    EXPECT_EQ(parsed, exec::JobStatus::Crashed);
    EXPECT_TRUE(exec::parseJobStatus("oom", parsed));
    EXPECT_EQ(parsed, exec::JobStatus::Oom);
}

/** @file Tests for the synthetic workload generators and registry. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/synthetic.hh"
#include "trace/workloads.hh"

using namespace critmem;

TEST(Trace, SameSeedSameStream)
{
    const AppParams app = appParams("mg");
    SyntheticApp a(app, 0, 8, 0, 42);
    SyntheticApp b(app, 0, 8, 0, 42);
    for (int i = 0; i < 2000; ++i) {
        MicroOp oa, ob;
        a.next(oa);
        b.next(ob);
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.cls, ob.cls);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.dep1, ob.dep1);
    }
}

TEST(Trace, ThreadsShareStaticProgram)
{
    // SPMD: the class at each PC is identical across threads, even
    // though the dynamic addresses differ.
    const AppParams app = appParams("cg");
    SyntheticApp t0(app, 0, 8, 0, 7);
    SyntheticApp t1(app, 5, 8, 0, 7);
    for (int i = 0; i < 1000; ++i) {
        MicroOp a, b;
        t0.next(a);
        t1.next(b);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.cls, b.cls);
    }
}

TEST(Trace, ThreadsHaveDisjointPrivateAddresses)
{
    const AppParams app = appParams("swim");
    SyntheticApp t0(app, 0, 8, 0, 7);
    SyntheticApp t1(app, 1, 8, 0, 7);
    // The shared region is common by design, so compare only below
    // the shared base: a thread's private addresses must never fall
    // in another thread's private range.
    std::set<Addr> seen0;
    MicroOp op;
    const Addr privSpan = 1ull << 36; // far beyond any private region
    (void)privSpan;
    std::uint64_t overlap = 0;
    std::set<Addr> pages0, pages1;
    for (int i = 0; i < 20000; ++i) {
        t0.next(op);
        if (op.cls == OpClass::Load || op.cls == OpClass::Store)
            pages0.insert(op.addr >> 12);
        t1.next(op);
        if (op.cls == OpClass::Load || op.cls == OpClass::Store)
            pages1.insert(op.addr >> 12);
    }
    for (const Addr page : pages0)
        overlap += pages1.contains(page);
    // Only shared-region pages may overlap; they must not be all.
    EXPECT_LT(overlap, pages0.size());
}

TEST(Trace, LoadFractionApproximatelyMatches)
{
    const AppParams app = appParams("mg");
    SyntheticApp gen(app, 0, 8, 0, 3);
    std::uint64_t loads = 0;
    const int n = 40000;
    MicroOp op;
    for (int i = 0; i < n; ++i) {
        gen.next(op);
        loads += op.cls == OpClass::Load;
    }
    EXPECT_NEAR(static_cast<double>(loads) / n, app.loadFrac, 0.05);
}

TEST(Trace, PcsWalkTheLoop)
{
    const AppParams app = appParams("fft");
    SyntheticApp gen(app, 0, 8, 0, 3);
    MicroOp first;
    gen.next(first);
    MicroOp op;
    for (std::uint32_t i = 1; i < app.loopLength; ++i)
        gen.next(op);
    gen.next(op); // wrapped
    EXPECT_EQ(op.pc, first.pc);
}

TEST(Trace, MemOpsHaveAddressesOthersDoNot)
{
    const AppParams app = appParams("equake");
    SyntheticApp gen(app, 0, 8, 0, 9);
    MicroOp op;
    for (int i = 0; i < 5000; ++i) {
        gen.next(op);
        if (op.cls == OpClass::Load || op.cls == OpClass::Store)
            EXPECT_NE(op.addr, 0u);
        else
            EXPECT_EQ(op.addr, 0u);
    }
}

TEST(Trace, ChaseLoadsFormSerialChains)
{
    // Chase loads at the same PC must carry a stable nonzero
    // dependence distance pointing at the previous chain element.
    AppParams app = appParams("art");
    SyntheticApp gen(app, 0, 8, 0, 5);
    std::map<std::uint64_t, std::uint16_t> depOfPc;
    MicroOp op;
    std::uint32_t serialLoads = 0;
    for (std::uint32_t i = 0; i < app.loopLength * 3; ++i) {
        gen.next(op);
        if (op.cls != OpClass::Load)
            continue;
        const auto it = depOfPc.find(op.pc);
        if (it != depOfPc.end()) {
            EXPECT_EQ(it->second, op.dep1) << "unstable dep at PC";
        }
        depOfPc[op.pc] = op.dep1;
        serialLoads += op.dep1 != 0;
    }
    EXPECT_GT(serialLoads, 0u);
}

TEST(Trace, MispredictRateRoughlyMatches)
{
    AppParams app = appParams("mg");
    app.mispredictRate = 0.02;
    SyntheticApp gen(app, 0, 8, 0, 11);
    std::uint64_t branches = 0, mispredicts = 0;
    MicroOp op;
    for (int i = 0; i < 200000; ++i) {
        gen.next(op);
        if (op.cls == OpClass::Branch) {
            ++branches;
            mispredicts += op.mispredict;
        }
    }
    ASSERT_GT(branches, 0u);
    EXPECT_NEAR(static_cast<double>(mispredicts) / branches, 0.02,
                0.012);
}

TEST(Trace, FarRegionsNonEmptyAndSized)
{
    const AppParams app = appParams("radix");
    SyntheticApp gen(app, 0, 8, 0, 3);
    const auto regions = gen.farRegions();
    ASSERT_FALSE(regions.empty());
    for (const auto &[base, size] : regions) {
        EXPECT_GE(size, 4096u);
        (void)base;
    }
}

TEST(Workloads, NinePaperApplications)
{
    const auto &apps = parallelApps();
    ASSERT_EQ(apps.size(), 9u);
    const std::vector<std::string> expected = {
        "art", "cg", "equake", "fft", "mg",
        "ocean", "radix", "scalparc", "swim"};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(apps[i].name, expected[i]);
}

TEST(Workloads, EightBundlesOfFour)
{
    const auto &bundles = multiprogBundles();
    ASSERT_EQ(bundles.size(), 8u);
    for (const Bundle &bundle : bundles) {
        EXPECT_EQ(bundle.apps.size(), 4u);
        for (const std::string &app : bundle.apps)
            EXPECT_NO_FATAL_FAILURE(appParams(app));
    }
}

TEST(Workloads, Table4BundleNames)
{
    const auto &bundles = multiprogBundles();
    EXPECT_EQ(bundles[0].name, "AELV");
    EXPECT_EQ(bundles[7].name, "RGTM");
    // Spot-check Table 4 contents.
    EXPECT_EQ(bundles[5].apps[1], "mcf"); // RFEV: art mcf ep vpr
    EXPECT_EQ(bundles[1].apps[3], "is");  // CMLI: crafty mesa lu is
}

TEST(Workloads, LookupByNameFindsSingles)
{
    EXPECT_EQ(appParams("mcf").name, "mcf");
    EXPECT_EQ(appParams("crafty").name, "crafty");
    EXPECT_EQ(appParams("art").name, "art");
}

TEST(WorkloadsDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH({ appParams("doom"); }, "unknown application");
}

TEST(Workloads, ClassesDifferInFootprint)
{
    // P apps must have far smaller working sets than M apps.
    EXPECT_LT(appParams("crafty").privateBytes,
              appParams("mcf").privateBytes);
    EXPECT_LT(appParams("crafty").loadFrac *
                  (1.0 - appParams("crafty").localFrac),
              appParams("mcf").loadFrac *
                  (1.0 - appParams("mcf").localFrac));
}

/** @file Timing and protocol tests for the DDR3 model. */

#include <gtest/gtest.h>

#include <memory>

#include "dram/dram.hh"
#include "sched/frfcfs.hh"
#include "sched/registry.hh"

using namespace critmem;

namespace
{

/** Single-channel, single-rank harness with manual clocking. */
class DramTest : public ::testing::Test
{
  protected:
    void
    build(std::uint32_t channels = 1, std::uint32_t ranks = 1)
    {
        cfg_ = DramConfig::preset(DramSpeed::DDR3_2133);
        cfg_.channels = channels;
        cfg_.ranksPerChannel = ranks;
        dram_ = std::make_unique<DramSystem>(cfg_, sched_, root_);
    }

    /** Enqueue a read; returns a handle to its completion cycle. */
    std::shared_ptr<DramCycle>
    read(Addr addr, CritLevel crit = 0)
    {
        auto done = std::make_shared<DramCycle>(0);
        MemRequest req;
        req.addr = addr;
        req.type = ReqType::Read;
        req.crit = crit;
        req.onComplete = [this, done](const MemRequest &) {
            *done = now_;
        };
        EXPECT_TRUE(dram_->enqueue(std::move(req)));
        return done;
    }

    void
    tick(DramCycle cycles)
    {
        for (DramCycle i = 0; i < cycles; ++i)
            dram_->tick(++now_);
    }

    stats::Group root_;
    FrFcfsScheduler sched_;
    DramConfig cfg_;
    std::unique_ptr<DramSystem> dram_;
    DramCycle now_ = 0;
};

} // namespace

TEST_F(DramTest, SingleReadLatencyIsActRcdClBurst)
{
    build();
    const auto done = read(0x10000);
    tick(100);
    // Arrival is stamped cycle 1 (lastNow+1 before any tick); the ACT
    // issues that same cycle, CAS follows at +tRCD, and the data
    // burst completes tCL + BL/2 later.
    const DramCycle expected = 1 + cfg_.t.tRCD + cfg_.t.tCL +
        cfg_.t.dataCycles();
    EXPECT_EQ(*done, expected);
}

TEST_F(DramTest, RowHitSkipsActivate)
{
    build();
    const auto first = read(0x10000);
    tick(100);
    const DramCycle t0 = now_;
    const auto second = read(0x10000 + 64); // same row
    tick(100);
    // Only CAS needed: tCL + burst (+1 arrival, +1 issue slot).
    EXPECT_LE(*second - t0, cfg_.t.tCL + cfg_.t.dataCycles() + 3);
    EXPECT_GT(*second, *first);
}

TEST_F(DramTest, BackToBackRowHitsSpacedByBurst)
{
    build();
    const auto a = read(0x20000);
    const auto b = read(0x20000 + 64);
    tick(200);
    // Both hit the same row; the second's data follows the first's
    // by at least the data-bus occupancy (tCCD >= BL/2 here).
    EXPECT_GE(*b - *a, cfg_.t.dataCycles());
    EXPECT_LE(*b - *a, cfg_.t.tCCD + 2);
}

TEST_F(DramTest, RowConflictPaysPrechargePenalty)
{
    build();
    // Same bank, different rows: row stride is rowBytes * channels *
    // banks * ranks.
    const Addr rowStride = 1024ull * 1 * 8 * 1;
    const auto a = read(0x0);
    const auto b = read(0x0 + rowStride * 8); // same bank, other row
    tick(400);
    // The second read needs PRE (after tRAS from ACT) + ACT + CAS.
    EXPECT_GE(*b - *a,
              static_cast<DramCycle>(cfg_.t.tRP + cfg_.t.tRCD));
}

TEST_F(DramTest, BankParallelismOverlapsActivates)
{
    build();
    // Two different banks: latencies overlap almost fully.
    const Addr bankStride = 1024; // next row -> next bank (1 channel)
    const auto a = read(0x0);
    const auto b = read(bankStride);
    tick(200);
    EXPECT_LT(*b - *a, cfg_.t.tRCD); // far closer than serial service
}

TEST_F(DramTest, RefreshHappensEveryTrefi)
{
    build();
    tick(cfg_.t.tREFI * 3 + 100);
    EXPECT_GE(dram_->channel(0).channelStats().refreshes.value(), 2u);
    EXPECT_LE(dram_->channel(0).channelStats().refreshes.value(), 4u);
}

TEST_F(DramTest, RefreshStaggersAcrossRanks)
{
    build(1, 4);
    tick(cfg_.t.tREFI + 200);
    // All four ranks refresh within one tREFI, staggered.
    EXPECT_EQ(dram_->channel(0).channelStats().refreshes.value(), 4u);
}

TEST_F(DramTest, QueueFullRejects)
{
    build();
    for (std::uint32_t i = 0; i < cfg_.queueEntries; ++i) {
        MemRequest req;
        req.addr = 0x100000 + static_cast<Addr>(i) * 4096 * 8;
        req.type = ReqType::Read;
        ASSERT_TRUE(dram_->enqueue(std::move(req))) << i;
    }
    MemRequest overflow;
    overflow.addr = 0x900000;
    overflow.type = ReqType::Read;
    EXPECT_FALSE(dram_->enqueue(std::move(overflow)));
    EXPECT_GT(dram_->channel(0).channelStats().enqueueRejects.value(),
              0u);
}

TEST_F(DramTest, WriteSharesUnifiedQueue)
{
    build();
    MemRequest wr;
    wr.addr = 0x4000;
    wr.type = ReqType::Write;
    EXPECT_TRUE(dram_->enqueue(std::move(wr)));
    tick(100);
    EXPECT_EQ(dram_->channel(0).channelStats().writes.value(), 1u);
    EXPECT_TRUE(dram_->idle());
}

TEST_F(DramTest, PromoteRaisesQueuedCriticality)
{
    build();
    MemRequest req;
    req.addr = 0x8000;
    req.type = ReqType::Read;
    req.core = 3;
    EXPECT_TRUE(dram_->enqueue(std::move(req)));
    EXPECT_TRUE(dram_->promote(0x8000, 3, 7));
    // Wrong core or absent address: no match.
    EXPECT_FALSE(dram_->promote(0x8000, 2, 7));
    EXPECT_FALSE(dram_->promote(0xdead000, 3, 7));
}

TEST_F(DramTest, IdleAfterDrain)
{
    build();
    read(0x1234);
    EXPECT_FALSE(dram_->idle());
    tick(200);
    EXPECT_TRUE(dram_->idle());
}

TEST_F(DramTest, MultiChannelRouting)
{
    build(4, 1);
    // Consecutive rows go to different channels.
    read(0);
    read(1024);
    read(2048);
    read(3072);
    tick(5);
    std::uint32_t nonEmpty = 0;
    for (std::uint32_t c = 0; c < 4; ++c)
        nonEmpty += dram_->channel(c).readQueueSize() > 0 ||
            !dram_->channel(c).idle();
    EXPECT_EQ(nonEmpty, 4u);
}

TEST_F(DramTest, DataBusUtilizationNeverExceedsCycles)
{
    build();
    for (int i = 0; i < 32; ++i)
        read(0x10000 + static_cast<Addr>(i) * 64);
    tick(1000);
    EXPECT_LE(dram_->channel(0).channelStats().busyDataCycles.value(),
              now_);
}

TEST_F(DramTest, ReadLatencyStatTracksCompletions)
{
    build();
    read(0x0);
    read(0x40);
    tick(200);
    EXPECT_EQ(dram_->channel(0).channelStats().readLatency.count(), 2u);
    EXPECT_GT(dram_->channel(0).channelStats().readLatency.mean(), 0.0);
}

/**
 * Conservation fuzz: under any scheduling policy and random traffic,
 * every enqueued read completes exactly once and nothing is lost.
 */
class DramConservationTest : public ::testing::TestWithParam<SchedAlgo>
{
};

TEST_P(DramConservationTest, EveryRequestCompletesOnce)
{
    stats::Group root;
    SystemConfig sysCfg = SystemConfig::parallelDefault();
    sysCfg.sched.algo = GetParam();
    sysCfg.dram.channels = 2;
    sysCfg.dram.ranksPerChannel = 2;
    const auto sched = makeScheduler(sysCfg);
    DramSystem dram(sysCfg.dram, *sched, root);

    std::uint64_t state = 0x51ab1e;
    auto rnd = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };

    std::uint64_t completed = 0;
    std::uint64_t accepted = 0;
    DramCycle now = 0;
    for (int round = 0; round < 4000; ++round) {
        ++now;
        // Bursty random offered load, reads and writes mixed.
        if (rnd() % 3 == 0) {
            MemRequest req;
            req.addr = (rnd() % (1u << 22)) & ~Addr{63};
            req.type = rnd() % 4 == 0 ? ReqType::Write : ReqType::Read;
            req.core = rnd() % 8;
            req.crit = rnd() % 5 == 0 ? rnd() % 1000 : 0;
            const bool isRead = req.type == ReqType::Read;
            if (isRead) {
                req.onComplete = [&completed](const MemRequest &) {
                    ++completed;
                };
            }
            if (dram.enqueue(std::move(req)) && isRead)
                ++accepted;
        }
        dram.tick(now);
    }
    // Drain.
    for (int i = 0; i < 20000 && !dram.idle(); ++i)
        dram.tick(++now);
    EXPECT_TRUE(dram.idle()) << toString(GetParam());
    EXPECT_EQ(completed, accepted) << toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DramConservationTest,
    ::testing::Values(SchedAlgo::Fcfs, SchedAlgo::FrFcfs,
                      SchedAlgo::CasRasCrit, SchedAlgo::ParBs,
                      SchedAlgo::Tcm, SchedAlgo::Ahb, SchedAlgo::Morse,
                      SchedAlgo::Atlas, SchedAlgo::Minimalist));

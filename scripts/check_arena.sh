#!/usr/bin/env bash
# Scheduler-arena smoke + determinism check: a tiny-quota run of the
# full tournament must produce a leaderboard that is byte-identical
# for --jobs 1 vs --jobs 4 and ranks every registered scheduler.
#
#   check_arena.sh SWEEP_BIN SPEC_FILE
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 SWEEP_BIN SPEC_FILE" >&2
    exit 2
fi
sweep=$1
spec=$2

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_arena() {
    "$sweep" --spec "$spec" --quota 400 --jobs "$1" \
        --out "$tmp/arena_$1.jsonl" --report arena \
        > "$tmp/report_$1.txt"
}
run_arena 1
run_arena 4

if ! cmp -s "$tmp/report_1.txt" "$tmp/report_4.txt"; then
    echo "FAIL: arena leaderboard depends on --jobs" >&2
    diff "$tmp/report_1.txt" "$tmp/report_4.txt" >&2 || true
    exit 1
fi
if ! cmp -s "$tmp/arena_1.jsonl" "$tmp/arena_4.jsonl"; then
    echo "FAIL: arena result records depend on --jobs" >&2
    diff "$tmp/arena_1.jsonl" "$tmp/arena_4.jsonl" >&2 || true
    exit 1
fi

# The overall table must rank at least 8 schedulers.
ranked=$(sed -n '/^== overall/,$p' "$tmp/report_1.txt" \
    | grep -cE '^ +[0-9]+ ' || true)
if [ "$ranked" -lt 8 ]; then
    echo "FAIL: overall leaderboard ranks only $ranked schedulers (< 8)" >&2
    cat "$tmp/report_1.txt" >&2
    exit 1
fi

# And the records must carry the fairness metrics.
if ! grep -q '"weightedSpeedup"' "$tmp/arena_1.jsonl"; then
    echo "FAIL: arena records carry no fairness metrics" >&2
    exit 1
fi

echo "arena: leaderboard byte-identical across --jobs, $ranked schedulers ranked"

#!/usr/bin/env bash
# Reproduce the committed micro-benchmark baseline in one command:
# build bench_micro and emit BENCH_micro.json at the repo root (the
# google-benchmark JSON format check_perf.sh consumes).
#
#   run_bench.sh [extra google-benchmark flags...]
#
# The JSON captures per-kernel times (scheduler pick, CBP, CMAC,
# bank-timing update, DRAM channel tick/ready scan) plus the
# end-to-end System::run() pair that demonstrates the event-driven
# cycle-skip speedup (BM_SystemRunSkip vs BM_SystemRunNoSkip).
set -euo pipefail
cd "$(dirname "$0")/.."

# CRITMEM_BENCH_OUT redirects the JSON (e.g. to a scratch file so
# check_perf.sh can diff a fresh run against the committed baseline).
out=${CRITMEM_BENCH_OUT:-BENCH_micro.json}

cmake -B build >/dev/null
cmake --build build -j"$(nproc)" --target bench_micro

./build/bench/bench_micro \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    "$@"

echo "wrote $out"

#!/usr/bin/env bash
# Cycle-skip equivalence check: event-driven fast-forwarding is a
# pure simulator-speed optimization, so for any workload and config
# the full --stats-json tree must be byte-identical with the skip on
# (--cycle-skip, the default) and off (--no-cycle-skip).
#
#   check_skip_equivalence.sh SIM_BIN
#
# The matrix covers the shapes that exercise different skip paths: a
# parallel app with the paper's scheduler+predictor, a multiprogrammed
# bundle, an --alone run (7 of 8 cores permanently idle, the
# best-case skip), a modern-controller config (closed page + split
# write queue + prefetcher), a checked run (the protocol checker and
# watchdogs must observe the exact same cycles), and a trace-backed
# job replaying an external trace file.
set -euo pipefail

if [ $# -ne 1 ]; then
    echo "usage: $0 SIM_BIN" >&2
    exit 2
fi
sim=$1
root="$(cd "$(dirname "$0")/.." && pwd)"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

check() {
    local name=$1
    shift
    "$sim" "$@" --cycle-skip --stats-json "$tmp/on.json" \
        --quiet >/dev/null
    "$sim" "$@" --no-cycle-skip --stats-json "$tmp/off.json" \
        --quiet >/dev/null
    if ! cmp -s "$tmp/on.json" "$tmp/off.json"; then
        echo "FAIL: $name: stats differ with cycle skipping on/off" >&2
        diff "$tmp/on.json" "$tmp/off.json" >&2 || true
        exit 1
    fi
    echo "skip-equivalence: $name byte-identical"
}

check "parallel art + casras-crit/maxstall" \
    --app art --sched casras-crit --predictor maxstall --instrs 6000
check "bundle RFGI + parbs/binary" \
    --bundle RFGI --sched parbs --predictor binary --instrs 4000
check "mcf --alone + tcm" \
    --app mcf --alone --sched tcm --instrs 4000
check "swim modern controller" \
    --app swim --sched frfcfs --closed-page --split-wq --prefetch \
    --instrs 6000
check "ocean + atlas/totalstall --check" \
    --app ocean --sched atlas --predictor totalstall --check \
    --instrs 4000
check "trace mix4 + casras-crit/maxstall" \
    --trace "$root/tests/trace/fixtures/mix4.ctext" \
    --sched casras-crit --predictor maxstall --instrs 2000

echo "cycle-skip equivalence: all configs byte-identical"

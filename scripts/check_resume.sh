#!/usr/bin/env bash
# Crash-safety regression check: a campaign that is SIGKILLed
# mid-flight and resumed must produce result files byte-identical to
# an uninterrupted run.
#
#   check_resume.sh SWEEP_BIN SPEC_FILE
#
# 1. Reference: an uninterrupted run of SPEC_FILE, JSONL + CSV.
# 2. The same run with --campaign DIR, SIGKILLed (no chance to clean
#    up) as soon as the journal holds a few completed jobs.
# 3. Assert the kill left no torn result file (AtomicFile staging
#    means the target paths must not exist yet).
# 4. --resume DIR, then byte-compare JSONL and CSV against the
#    reference.
#
# CRITMEM_RESUME_QUOTA scales the per-core quota (default 2000); the
# run must be long enough for the kill to land mid-campaign, but a
# kill after completion is also tolerated (resume then replays
# everything, which must still be byte-identical).
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 SWEEP_BIN SPEC_FILE" >&2
    exit 2
fi
sweep=$1
spec=$2
quota=${CRITMEM_RESUME_QUOTA:-2000}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# --stats embeds each job's full stats tree in the JSONL records, so
# the byte-compare below covers stats-JSON as well.
"$sweep" --spec "$spec" --quota "$quota" --jobs 4 --stats \
    --out "$tmp/ref.jsonl" --csv "$tmp/ref.csv" >/dev/null 2>&1
echo "resume: reference run complete"

camp="$tmp/campaign"
"$sweep" --spec "$spec" --quota "$quota" --jobs 4 --stats \
    --campaign "$camp" \
    --out "$tmp/run.jsonl" --csv "$tmp/run.csv" >/dev/null 2>&1 &
pid=$!

# Wait until a few jobs are journaled, then kill without warning.
journal="$camp/journal.txt"
killed=0
for _ in $(seq 1 2400); do
    if ! kill -0 "$pid" 2>/dev/null; then
        break # finished before we could kill it; resume still works
    fi
    if [ -f "$journal" ] && [ "$(wc -l < "$journal")" -ge 3 ]; then
        kill -9 "$pid" 2>/dev/null || true
        killed=1
        break
    fi
    sleep 0.05
done
wait "$pid" 2>/dev/null || true

if [ ! -f "$journal" ]; then
    echo "FAIL: campaign journal was never created" >&2
    exit 1
fi
echo "resume: killed=$killed with $(wc -l < "$journal") journaled jobs"

# AtomicFile staging: the SIGKILL must not have published a partial
# result file (a stale *.tmp is fine, a torn target is not).
if [ "$killed" = "1" ]; then
    for f in "$tmp/run.jsonl" "$tmp/run.csv"; do
        if [ -f "$f" ]; then
            echo "FAIL: $f exists after SIGKILL (torn result)" >&2
            exit 1
        fi
    done
fi

"$sweep" --resume "$camp" --jobs 4 >/dev/null 2>&1
for ext in jsonl csv; do
    if ! cmp -s "$tmp/ref.$ext" "$tmp/run.$ext"; then
        echo "FAIL: resumed $ext differs from uninterrupted run" >&2
        diff "$tmp/ref.$ext" "$tmp/run.$ext" >&2 || true
        exit 1
    fi
done
echo "resume: killed-and-resumed campaign byte-identical to reference"

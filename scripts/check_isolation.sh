#!/usr/bin/env bash
# Crash-containment regression check for `critmem-sweep --isolate`.
#
#   check_isolation.sh SWEEP_BIN FAULT_SPEC CLEAN_SPEC
#
# 1. Containment: FAULT_SPEC (specs/isolation.sweep) carries one job
#    that raises SIGSEGV mid-simulation and one that allocates
#    unboundedly. Under --isolate --job-mem-mb the campaign must
#    COMPLETE (exit 2, not a crash), recording exactly those jobs as
#    status=crashed / status=oom while every healthy job stays ok.
# 2. Byte-identity: CLEAN_SPEC results must be byte-identical between
#    in-process execution and --isolate, for --jobs 1 and --jobs 4.
# 3. Worker kill + resume: SIGKILL a live worker *child* (the
#    supervisor re-dispatches it at the same attempt number), then
#    SIGKILL the supervisor itself and --resume; the result files
#    must be byte-identical to an uninterrupted isolated run.
#
# Sanitizer interplay: ASan intercepts SIGSEGV and turns allocation
# failure into a hard error by default, which would mask the very
# containment this script proves, so both knobs are disabled for the
# fault legs (handle_segv=0, allocator_may_return_null=1). The hog
# fault itself exhausts RLIMIT_AS via raw mmap rather than the heap
# (see check/fault_injector.cc) so the bad_alloc -> status=oom path
# is identical under plain and sanitized runtimes.
set -euo pipefail

if [ $# -ne 3 ]; then
    echo "usage: $0 SWEEP_BIN FAULT_SPEC CLEAN_SPEC" >&2
    exit 2
fi
sweep=$1
fault_spec=$2
clean_spec=$3
quota=${CRITMEM_ISOLATION_QUOTA:-2000}

export ASAN_OPTIONS="handle_segv=0:allocator_may_return_null=1:detect_leaks=0:abort_on_error=0"
export UBSAN_OPTIONS="handle_segv=0"
# die_after_fork=0: forked workers stay single-threaded and _exit(),
# which TSan supports but refuses by default out of caution.
export TSAN_OPTIONS="allocator_may_return_null=1:die_after_fork=0"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# --- 1. Containment -------------------------------------------------
rc=0
"$sweep" --spec "$fault_spec" --jobs 4 --isolate --job-mem-mb 512 \
    --out "$tmp/fault.jsonl" >/dev/null 2>"$tmp/fault.log" || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "FAIL: fault campaign exited $rc (want 2: completed with" \
         "failed jobs)" >&2
    cat "$tmp/fault.log" >&2
    exit 1
fi
if ! grep -q '"status":"crashed"' "$tmp/fault.jsonl"; then
    echo "FAIL: no status=crashed record for the SIGSEGV job" >&2
    exit 1
fi
if ! grep -q '"status":"oom"' "$tmp/fault.jsonl"; then
    echo "FAIL: no status=oom record for the memory-hog job" >&2
    exit 1
fi
if ! grep -q 'SIGSEGV' "$tmp/fault.log"; then
    echo "FAIL: crashed record does not name the fatal signal" >&2
    exit 1
fi
oks=$(grep -c '"status":"ok"' "$tmp/fault.jsonl" || true)
if [ "$oks" -lt 3 ]; then
    echo "FAIL: healthy jobs did not survive the faulting ones" \
         "(ok=$oks, want 3)" >&2
    exit 1
fi
echo "isolation: faults contained (crashed + oom recorded, $oks ok)"

# --- 2. Byte-identity in-process vs --isolate -----------------------
"$sweep" --spec "$clean_spec" --quota "$quota" --jobs 4 --stats \
    --out "$tmp/ref.jsonl" --csv "$tmp/ref.csv" >/dev/null 2>&1
for j in 1 4; do
    "$sweep" --spec "$clean_spec" --quota "$quota" --jobs "$j" \
        --stats --isolate \
        --out "$tmp/iso$j.jsonl" --csv "$tmp/iso$j.csv" \
        >/dev/null 2>&1
    for ext in jsonl csv; do
        if ! cmp -s "$tmp/ref.$ext" "$tmp/iso$j.$ext"; then
            echo "FAIL: --isolate --jobs $j $ext differs from" \
                 "in-process run" >&2
            exit 1
        fi
    done
done
echo "isolation: results byte-identical with and without --isolate"

# --- 3. SIGKILL a worker child, then the supervisor, then resume ----
camp="$tmp/campaign"
"$sweep" --spec "$clean_spec" --quota "$quota" --jobs 2 --stats \
    --isolate --campaign "$camp" \
    --out "$tmp/run.jsonl" --csv "$tmp/run.csv" >/dev/null 2>&1 &
pid=$!

# First casualty: a worker child (the supervisor must absorb the
# external SIGKILL and re-dispatch the job at the same attempt).
worker_killed=0
for _ in $(seq 1 600); do
    kill -0 "$pid" 2>/dev/null || break
    child=$(ps --ppid "$pid" -o pid= 2>/dev/null |
                head -1 | tr -d ' ' || true)
    if [ -n "$child" ]; then
        kill -9 "$child" 2>/dev/null && worker_killed=1
        break
    fi
    sleep 0.02
done

# Second casualty: the supervisor itself, once some jobs are durable.
journal="$camp/journal.txt"
killed=0
for _ in $(seq 1 2400); do
    kill -0 "$pid" 2>/dev/null || break
    if [ -f "$journal" ] && [ "$(wc -l < "$journal")" -ge 2 ]; then
        kill -9 "$pid" 2>/dev/null || true
        killed=1
        break
    fi
    sleep 0.05
done
wait "$pid" 2>/dev/null || true
echo "isolation: worker_killed=$worker_killed supervisor_killed=$killed"

# No lingering orphans: a SIGKILLed supervisor cannot clean up, but a
# surviving worker hits EPIPE on its dead pipe and _exit()s as soon
# as its (tiny-quota) job finishes — within seconds, not forever.
for _ in $(seq 1 100); do
    pgrep -f -- "--campaign $camp" >/dev/null 2>&1 || break
    sleep 0.1
done
if pgrep -f -- "--campaign $camp" >/dev/null 2>&1; then
    echo "FAIL: worker processes still alive after the supervisor" \
         "died" >&2
    exit 1
fi

"$sweep" --resume "$camp" --jobs 4 --isolate >/dev/null 2>&1
for ext in jsonl csv; do
    if ! cmp -s "$tmp/ref.$ext" "$tmp/run.$ext"; then
        echo "FAIL: resumed isolated $ext differs from reference" >&2
        diff "$tmp/ref.$ext" "$tmp/run.$ext" >&2 || true
        exit 1
    fi
done
echo "isolation: kill-worker/kill-supervisor/resume byte-identical"

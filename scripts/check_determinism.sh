#!/usr/bin/env bash
# Determinism regression check: simulation results must be a pure
# function of (workload, config, seed), independent of wall-clock,
# host entropy and worker-pool interleaving.
#
#   check_determinism.sh SIM_BIN SWEEP_BIN SPEC_FILE
#
# 1. critmem-sim twice with the same seed: --stats-json output must be
#    byte-identical.
# 2. critmem-sweep over SPEC_FILE with --jobs 1 vs --jobs 4: result
#    files must be byte-identical (the scheduler hands results to the
#    sink in spec order regardless of completion order).
set -euo pipefail

if [ $# -ne 3 ]; then
    echo "usage: $0 SIM_BIN SWEEP_BIN SPEC_FILE" >&2
    exit 2
fi
sim=$1
sweep=$2
spec=$3

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_sim() {
    "$sim" --app art --sched casras-crit --instrs 20000 --seed 7 \
        --stats-json "$1" --quiet >/dev/null
}
run_sim "$tmp/sim_a.json"
run_sim "$tmp/sim_b.json"
if ! cmp -s "$tmp/sim_a.json" "$tmp/sim_b.json"; then
    echo "FAIL: critmem-sim --stats-json differs across identical runs" >&2
    diff "$tmp/sim_a.json" "$tmp/sim_b.json" >&2 || true
    exit 1
fi
echo "sim: two identical-seed runs byte-identical"

"$sweep" --spec "$spec" --quota 1000 --jobs 1 --out "$tmp/sweep_1.jsonl" \
    >/dev/null 2>&1
"$sweep" --spec "$spec" --quota 1000 --jobs 4 --out "$tmp/sweep_4.jsonl" \
    >/dev/null 2>&1
if ! cmp -s "$tmp/sweep_1.jsonl" "$tmp/sweep_4.jsonl"; then
    echo "FAIL: critmem-sweep output depends on --jobs" >&2
    diff "$tmp/sweep_1.jsonl" "$tmp/sweep_4.jsonl" >&2 || true
    exit 1
fi
echo "sweep: --jobs 1 and --jobs 4 byte-identical"

# 3. Crash safety is determinism across a process boundary: a
#    campaign SIGKILLed mid-flight and resumed must reproduce the
#    uninterrupted run's result files byte-for-byte.
"$(dirname "$0")/check_resume.sh" "$sweep" "$spec"

# 4. Simulator-speed optimizations are not allowed to change results:
#    event-driven cycle skipping on vs off must be byte-identical
#    over the representative config matrix.
"$(dirname "$0")/check_skip_equivalence.sh" "$sim"

# 5. The scheduler arena: the fairness-annotated records and the
#    ranked leaderboard must also be byte-identical for --jobs 1 vs
#    --jobs 4 (the report is built from alone-run baselines banked by
#    the aggregation thread, so this exercises that ordering too).
arena_spec=$(dirname "$spec")/arena.sweep
if [ -f "$arena_spec" ]; then
    "$(dirname "$0")/check_arena.sh" "$sweep" "$arena_spec"
fi

# 6. Process isolation is determinism across fork(): --isolate must
#    produce byte-identical result files, injected process faults
#    must be contained as classified records, and a SIGKILLed
#    worker/supervisor pair must resume byte-identically.
isolation_spec=$(dirname "$spec")/isolation.sweep
if [ -f "$isolation_spec" ]; then
    "$(dirname "$0")/check_isolation.sh" "$sweep" "$isolation_spec" \
        "$spec"
fi

# 7. The lint tool itself must be deterministic: two critmem-lint
#    --json runs over the same checkout (symbol index, call-graph
#    rules, suppression bookkeeping and all) must emit byte-identical
#    reports. The tool's own timing goes to stderr only, never into
#    the JSON.
lint=$(dirname "$sim")/critmem-lint
if [ -x "$lint" ]; then
    root=$(cd "$(dirname "$0")/.." && pwd)
    "$lint" --root "$root" --json "$tmp/lint_a.json" >/dev/null 2>&1 || true
    "$lint" --root "$root" --json "$tmp/lint_b.json" >/dev/null 2>&1 || true
    if ! cmp -s "$tmp/lint_a.json" "$tmp/lint_b.json"; then
        echo "FAIL: critmem-lint --json differs across identical runs" >&2
        diff "$tmp/lint_a.json" "$tmp/lint_b.json" >&2 || true
        exit 1
    fi
    echo "lint: two --json runs byte-identical"
fi

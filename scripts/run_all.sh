#!/usr/bin/env bash
# Regenerate every artifact: build, test suite, all benches.
# CRITMEM_INSTRS / CRITMEM_WARMUP scale simulation length.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee test_output.txt

{
    for b in $(find ./build/bench -maxdepth 1 -type f -executable | sort); do
        name=$(basename "$b")
        echo "=== $name ==="
        if [ "$name" = "bench_micro" ]; then
            "$b" --benchmark_min_time=0.05
        else
            "$b"
        fi
    done
} | tee bench_output.txt

#!/usr/bin/env bash
# Regenerate every artifact: build, test suite (plain and sanitized),
# checked bench smoke runs, then all benches.
# CRITMEM_INSTRS / CRITMEM_WARMUP scale simulation length.
# CRITMEM_SKIP_ASAN=1 / CRITMEM_SKIP_TSAN=1 skip the sanitizer passes
# (e.g. no clean rebuild budget); CRITMEM_SKIP_CHECKED=1 skips the
# checked smoke runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build
cmake --build build -j"$(nproc)"

# Static analysis first: critmem-lint over the checkout (per-file
# source rules, cross-TU semantic rules over the symbol index —
# transitive determinism, clock domains, thread discipline — stale
# suppressions, and the timing-preset/sweep-spec data rules). Cheap,
# and a violation here fails fast before any sanitizer rebuild.
cmake --build build --target lint

ctest --test-dir build --output-on-failure | tee test_output.txt

# Crash-safety smoke: SIGKILL a checkpointed campaign mid-flight,
# resume it, and demand byte-identical result files. Also a graceful
# SIGINT must exit 3 (resumable) without publishing a torn file.
./scripts/check_resume.sh ./build/examples/critmem-sweep \
    specs/fig10.sweep

# The same kill/resume contract over trace-backed jobs: external
# trace ingestion (text + binary fixtures) must survive the SIGKILL
# and resume byte-identically.
./scripts/check_resume.sh ./build/examples/critmem-sweep \
    specs/traces.sweep

# Scheduler-arena smoke (also runs as the Arena.Smoke ctest): the
# tiny-quota tournament's leaderboard must be --jobs-independent and
# rank every registered scheduler with fairness metrics.
./scripts/check_arena.sh ./build/examples/critmem-sweep \
    specs/arena.sweep

# Crash containment: --isolate must contain an injected SIGSEGV and a
# memory hog as classified records, keep results byte-identical to
# in-process execution, and survive SIGKILL of worker + supervisor
# with a byte-identical --resume.
./scripts/check_isolation.sh ./build/examples/critmem-sweep \
    specs/isolation.sweep specs/fig10.sweep

# ASan+UBSan pass: the whole suite again under the sanitizers
# (includes TraceFuzz.Corpus, so the 10k-mutant seed-1 fuzz run
# happens under ASan/UBSan too), plus a second fuzz run on a
# different seed so the sanitized pass covers mutants the plain
# ctest run never saw.
if [ "${CRITMEM_SKIP_ASAN:-0}" != "1" ]; then
    cmake -B build-asan -DCRITMEM_SANITIZE=ON
    cmake --build build-asan -j"$(nproc)"
    ctest --test-dir build-asan --output-on-failure \
        | tee test_output_asan.txt
    ./build-asan/examples/critmem-tracefuzz \
        --corpus tests/trace/fixtures --iterations 10000 --seed 2 \
        --scratch build-asan/tracefuzz.scratch --quiet
    # Crash containment under ASan as well: the script disables the
    # sanitizer's SIGSEGV interception for the fault legs so the
    # worker dies with the real signal, and allocator_may_return_null
    # turns the RLIMIT_AS hit into the std::bad_alloc the oom
    # classification expects.
    ./scripts/check_isolation.sh ./build-asan/examples/critmem-sweep \
        specs/isolation.sweep specs/fig10.sweep
fi

# TSan pass: the execution engine's worker pool and a parallel sweep
# under ThreadSanitizer.
if [ "${CRITMEM_SKIP_TSAN:-0}" != "1" ]; then
    cmake -B build-tsan -DCRITMEM_SANITIZE=thread
    cmake --build build-tsan -j"$(nproc)"
    ctest --test-dir build-tsan -R '^Exec|^Campaign' --output-on-failure \
        | tee test_output_tsan.txt
    ./build-tsan/examples/critmem-sweep --spec specs/fig10.sweep \
        --quota 1000 --jobs 4 --out /dev/null
fi

# Protocol-checked smoke runs: one figure per scheduler family with
# the invariant checker attached (CRITMEM_CHECK=1 aborts the bench on
# any violation), plus a CLI run per scheduler.
if [ "${CRITMEM_SKIP_CHECKED:-0}" != "1" ]; then
    for sched in fcfs frfcfs crit-casras casras-crit parbs tcm \
                 tcm-crit ahb morse crit-rl atlas minimalist \
                 bliss batch-cap-rr dyn-thresh-crit; do
        ./build/examples/critmem-sim --app art --sched "$sched" \
            --instrs 4000 --check --quiet >/dev/null
    done
    CRITMEM_CHECK=1 CRITMEM_INSTRS="${CRITMEM_INSTRS:-8000}" \
        ./build/bench/bench_fig10_schedulers > /dev/null
fi

{
    for b in $(find ./build/bench -maxdepth 1 -type f -executable | sort); do
        name=$(basename "$b")
        # bench_micro runs separately below through run_bench.sh so
        # its JSON feeds the perf regression gate.
        if [ "$name" = "bench_micro" ]; then
            continue
        fi
        echo "=== $name ==="
        "$b"
    done
} | tee bench_output.txt

# Micro-benchmarks + perf gate: a fresh statistical run compared
# against the committed BENCH_micro.json baseline. The cycle-skip
# speedup floor always holds (it is a same-host ratio); absolute
# per-kernel times only warn unless CRITMEM_PERF_STRICT=1 (shared
# runners have too much wall-clock noise to hard-fail on them).
CRITMEM_BENCH_OUT=build/bench_current.json ./scripts/run_bench.sh \
    | tee -a bench_output.txt
./scripts/check_perf.sh build/bench_current.json BENCH_micro.json

#!/usr/bin/env bash
# Performance regression gate over the google-benchmark JSON that
# scripts/run_bench.sh emits.
#
#   check_perf.sh CURRENT_JSON [BASELINE_JSON]
#
# Two checks:
#  1. Cycle-skip speedup floor (always enforced): within CURRENT_JSON
#     the end-to-end BM_SystemRunSkip rate must beat BM_SystemRunNoSkip
#     by at least CRITMEM_PERF_FLOOR (default 1.5x). A ratio between
#     two runs of the same binary on the same host is immune to how
#     fast the host is, so this holds even on busy CI machines.
#  2. Per-kernel comparison against BASELINE_JSON with a
#     CRITMEM_PERF_TOL slack (default 0.5 = +50%). Absolute times are
#     host-dependent and wall-clock noise on shared runners is real,
#     so by default a kernel regression only warns; set
#     CRITMEM_PERF_STRICT=1 on a quiet, pinned-frequency host to turn
#     warnings into failures.
set -euo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
    echo "usage: $0 CURRENT_JSON [BASELINE_JSON]" >&2
    exit 2
fi
current=$1
baseline=${2:-"$(cd "$(dirname "$0")/.." && pwd)/BENCH_micro.json"}

CRITMEM_PERF_FLOOR=${CRITMEM_PERF_FLOOR:-1.5} \
CRITMEM_PERF_TOL=${CRITMEM_PERF_TOL:-0.5} \
CRITMEM_PERF_STRICT=${CRITMEM_PERF_STRICT:-0} \
python3 - "$current" "$baseline" <<'EOF'
import json
import os
import sys

floor = float(os.environ["CRITMEM_PERF_FLOOR"])
tol = float(os.environ["CRITMEM_PERF_TOL"])
strict = os.environ["CRITMEM_PERF_STRICT"] == "1"


def load(path):
    """name -> cpu_time (ns), preferring the _median aggregate."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        name = b["name"]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            name = b["run_name"]
        # ns regardless of the display unit.
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[
            b.get("time_unit", "ns")]
        out[name] = {
            "cpu_ns": b["cpu_time"] * scale,
            "counters": {
                k: v for k, v in b.items()
                if isinstance(v, (int, float)) and k == "cycles_per_sec"
            },
        }
    return out


cur = load(sys.argv[1])


def rate(entries, key):
    for name, e in entries.items():
        if key in name and "cycles_per_sec" in e["counters"]:
            return e["counters"]["cycles_per_sec"]
    return None


# 1. The skip-on/skip-off ratio inside the current run.
on = rate(cur, "BM_SystemRunSkip")
off = rate(cur, "BM_SystemRunNoSkip")
if on is None or off is None:
    print("FAIL: BM_SystemRunSkip/BM_SystemRunNoSkip missing from "
          f"{sys.argv[1]}", file=sys.stderr)
    sys.exit(1)
ratio = on / off
print(f"cycle-skip speedup: {ratio:.2f}x "
      f"({on:.3g} vs {off:.3g} cycles/sec, floor {floor}x)")
if ratio < floor:
    print(f"FAIL: cycle-skip speedup {ratio:.2f}x below the "
          f"{floor}x floor", file=sys.stderr)
    sys.exit(1)

# 2. Per-kernel regression vs the committed baseline.
try:
    base = load(sys.argv[2])
except FileNotFoundError:
    print(f"no baseline at {sys.argv[2]}; skipping kernel comparison")
    sys.exit(0)

regressions = []
for name, b in sorted(base.items()):
    c = cur.get(name)
    if c is None:
        continue
    if c["cpu_ns"] > b["cpu_ns"] * (1.0 + tol):
        regressions.append(
            f"{name}: {c['cpu_ns']:.0f}ns vs baseline "
            f"{b['cpu_ns']:.0f}ns (+{c['cpu_ns'] / b['cpu_ns'] - 1:.0%},"
            f" tolerance +{tol:.0%})")

if regressions:
    label = "FAIL" if strict else "WARN (CRITMEM_PERF_STRICT=0)"
    for r in regressions:
        print(f"{label}: {r}", file=sys.stderr)
    if strict:
        sys.exit(1)
else:
    print(f"kernels: no regression beyond +{tol:.0%} "
          f"({len([n for n in base if n in cur])} compared)")
EOF

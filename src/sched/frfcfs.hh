/**
 * @file
 * First-Ready First-Come-First-Served scheduling (Rixner et al. [22]):
 * column (CAS) commands beat row (ACT/PRE) commands; ties go to the
 * oldest transaction. This is the paper's baseline.
 */

#ifndef CRITMEM_SCHED_FRFCFS_HH
#define CRITMEM_SCHED_FRFCFS_HH

#include "sched/scheduler.hh"

namespace critmem
{

/** Baseline FR-FCFS policy. */
class FrFcfsScheduler : public Scheduler
{
  public:
    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    const char *name() const override { return "FR-FCFS"; }
};

/**
 * Strict first-come-first-served: oldest transaction's next command,
 * ignoring row-buffer state entirely. The classic lower-bound baseline
 * FR-FCFS was proposed against [22].
 */
class FcfsScheduler : public Scheduler
{
  public:
    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    const char *name() const override { return "FCFS"; }
};

} // namespace critmem

#endif // CRITMEM_SCHED_FRFCFS_HH

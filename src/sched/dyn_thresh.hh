/**
 * @file
 * Dynamic-threshold criticality scheduling — a self-tuning variant of
 * the paper's Crit-CASRAS policy (cf. the dyn-thresh schedulers in
 * GPGPU-Sim's controller zoo).
 *
 * The fixed policies treat any nonzero criticality magnitude as
 * critical, so when the predictor tags most loads the "critical" class
 * stops discriminating. This variant keeps a magnitude threshold and
 * only treats candidates at or above it as critical; each epoch it
 * compares the fraction of issued CAS that were treated critical
 * against a target and doubles (too many) or halves (too few) the
 * threshold, clamped at 1. Within a class: row hits, magnitude, age.
 */

#ifndef CRITMEM_SCHED_DYN_THRESH_HH
#define CRITMEM_SCHED_DYN_THRESH_HH

#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"

namespace critmem
{

/** Criticality FR-FCFS with an adaptive magnitude threshold. */
class DynThreshCritScheduler : public Scheduler
{
  public:
    /**
     * @param epoch Threshold-adaptation period, DRAM cycles.
     * @param targetPct Target percentage of CAS issues treated
     *                  critical, in [1, 100].
     */
    DynThreshCritScheduler(DramCycle epoch, std::uint32_t targetPct);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;
    void tick(DramCycle now) override;

    DramCycle
    nextEventCycle(DramCycle now) const override
    {
        (void)now;
        return nextEpoch_; // adapt() only fires at epoch edges
    }

    const char *name() const override { return "DynThresh-Crit"; }

    /** Current criticality threshold (for tests). */
    CritLevel threshold() const { return thresh_; }
    /** CAS issued in the current epoch (for tests). */
    std::uint64_t casIssued() const { return casIssued_; }
    /** Critical-class CAS issued in the current epoch (for tests). */
    std::uint64_t critIssued() const { return critIssued_; }

  private:
    void adapt();

    const DramCycle epoch_;
    const std::uint32_t targetPct_;
    DramCycle nextEpoch_;
    CritLevel thresh_ = 1;
    std::uint64_t casIssued_ = 0;
    std::uint64_t critIssued_ = 0;
};

} // namespace critmem

#endif // CRITMEM_SCHED_DYN_THRESH_HH

#include "sched/batch_cap_rr.hh"

#include <tuple>

namespace critmem
{

BatchCapRrScheduler::BatchCapRrScheduler(std::uint32_t channels,
                                         std::uint32_t numCores,
                                         std::uint32_t cap)
    : numCores_(numCores), cap_(cap), active_(channels, 0),
      served_(channels, 0)
{
}

std::uint32_t
BatchCapRrScheduler::rrDistance(std::uint32_t channel, CoreId core) const
{
    if (core >= numCores_)
        return numCores_; // unknown cores go last
    return (core + numCores_ - active_[channel]) % numCores_;
}

void
BatchCapRrScheduler::onIssue(std::uint32_t channel,
                             const SchedCandidate &cand, DramCycle)
{
    const bool cas =
        cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write;
    if (!cas || cand.core >= numCores_)
        return;
    if (cand.core != active_[channel]) {
        // The active core had no ready CAS; the rotation moved on.
        active_[channel] = cand.core;
        served_[channel] = 1;
    } else if (++served_[channel] >= cap_) {
        active_[channel] = (active_[channel] + 1) % numCores_;
        served_[channel] = 0;
    }
}

int
BatchCapRrScheduler::pick(std::uint32_t channel,
                          const std::vector<SchedCandidate> &cands,
                          DramCycle)
{
    // Lower = better: (rotation distance, row-miss, age). The active
    // core sits at distance 0, so its batch drains first; when it has
    // nothing ready, the nearest core in id order takes over.
    using Key = std::tuple<std::uint32_t, int, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const Key key{rrDistance(channel, cand.core),
                      cand.rowHit ? 0 : 1, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

#include "sched/minimalist.hh"

#include <tuple>

namespace critmem
{

MinimalistScheduler::MinimalistScheduler(std::uint32_t channels,
                                         std::uint32_t numCores,
                                         std::uint32_t banksPerRank)
    : mirror_(channels), numCores_(numCores), banksPerRank_(banksPerRank)
{
}

void
MinimalistScheduler::onEnqueue(std::uint32_t channel,
                               const MemRequest &req,
                               const DramCoord &coord, DramCycle now)
{
    mirror_.onEnqueue(channel, req, coord, banksPerRank_, now);
}

void
MinimalistScheduler::onIssue(std::uint32_t channel,
                             const SchedCandidate &cand, DramCycle)
{
    if (cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write)
        mirror_.onCas(channel, cand.seq);
}

int
MinimalistScheduler::pick(std::uint32_t channel,
                          const std::vector<SchedCandidate> &cands,
                          DramCycle)
{
    // Current MLP per thread = outstanding reads in this channel.
    std::vector<std::uint32_t> mlp(numCores_ + 1, 0);
    for (const MirrorEntry &entry : mirror_.queue(channel)) {
        if (!entry.isWrite)
            ++mlp[entry.core < numCores_ ? entry.core : numCores_];
    }

    // Lower = better: (prefetch, thread MLP, row-miss, age).
    using Key = std::tuple<int, std::uint32_t, int, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const std::uint32_t threadMlp =
            mlp[cand.core < numCores_ ? cand.core : numCores_];
        const Key key{cand.isPrefetch ? 1 : 0, threadMlp,
                      cand.rowHit ? 0 : 1, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

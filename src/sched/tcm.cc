#include "sched/tcm.hh"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace critmem
{

TcmScheduler::TcmScheduler(std::uint32_t numCores, const SchedConfig &cfg,
                           bool critTiebreak, std::uint64_t seed)
    : numCores_(numCores), cfg_(cfg), critTiebreak_(critTiebreak),
      rng_(seed ^ 0x7c3ull), served_(numCores, 0),
      latencyCluster_(numCores, false), rank_(numCores, 0),
      nextQuantum_(cfg.tcmQuantum),
      nextShuffle_(std::max<DramCycle>(cfg.tcmQuantum / 10, 1))
{
    std::iota(rank_.begin(), rank_.end(), 0u);
}

void
TcmScheduler::onIssue(std::uint32_t, const SchedCandidate &cand, DramCycle)
{
    if ((cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write) &&
        cand.core < numCores_) {
        ++served_[cand.core];
    }
}

void
TcmScheduler::recluster()
{
    const std::uint64_t total =
        std::accumulate(served_.begin(), served_.end(), std::uint64_t{0});

    // Least intensive threads first.
    std::vector<CoreId> order(numCores_);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](CoreId a, CoreId b) {
        return std::tuple(served_[a], a) < std::tuple(served_[b], b);
    });

    const std::uint64_t budget = static_cast<std::uint64_t>(
        cfg_.tcmClusterThresh * static_cast<double>(total));
    std::uint64_t used = 0;
    std::fill(latencyCluster_.begin(), latencyCluster_.end(), false);
    for (const CoreId core : order) {
        if (used + served_[core] <= budget) {
            latencyCluster_[core] = true;
            used += served_[core];
        } else {
            break;
        }
    }

    // Rank: latency cluster members keep intensity order at the top;
    // bandwidth members follow (the shuffle re-permutes them).
    std::uint32_t pos = 0;
    for (const CoreId core : order) {
        if (latencyCluster_[core])
            rank_[core] = pos++;
    }
    for (const CoreId core : order) {
        if (!latencyCluster_[core])
            rank_[core] = pos++;
    }

    std::fill(served_.begin(), served_.end(), 0);
}

void
TcmScheduler::shuffle()
{
    // Insertion-shuffle the bandwidth-sensitive cluster's ranks.
    std::vector<CoreId> band;
    for (CoreId c = 0; c < numCores_; ++c) {
        if (!latencyCluster_[c])
            band.push_back(c);
    }
    if (band.size() < 2)
        return;
    std::vector<std::uint32_t> ranks;
    ranks.reserve(band.size());
    for (const CoreId c : band)
        ranks.push_back(rank_[c]);
    // Fisher-Yates on the rank assignment.
    for (std::size_t i = band.size() - 1; i > 0; --i) {
        const std::size_t j = rng_.below(i + 1);
        std::swap(ranks[i], ranks[j]);
    }
    for (std::size_t i = 0; i < band.size(); ++i)
        rank_[band[i]] = ranks[i];
}

void
TcmScheduler::tick(DramCycle now)
{
    if (now >= nextQuantum_) {
        recluster();
        nextQuantum_ += cfg_.tcmQuantum;
    }
    if (now >= nextShuffle_) {
        shuffle();
        nextShuffle_ += std::max<DramCycle>(cfg_.tcmQuantum / 10, 1);
    }
}

int
TcmScheduler::pick(std::uint32_t, const std::vector<SchedCandidate> &cands,
                   DramCycle)
{
    // Lower = better: (thread rank, row-miss, ~crit, age).
    using Key =
        std::tuple<std::uint32_t, int, std::uint64_t, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const std::uint32_t threadRank =
            cand.core < numCores_ ? rank_[cand.core] : numCores_;
        const std::uint64_t critKey =
            critTiebreak_ ? ~static_cast<std::uint64_t>(cand.crit)
                          : ~std::uint64_t{0};
        const Key key{threadRank, cand.rowHit ? 0 : 1, critKey, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

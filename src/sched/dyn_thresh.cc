#include "sched/dyn_thresh.hh"

#include <limits>
#include <tuple>

namespace critmem
{

DynThreshCritScheduler::DynThreshCritScheduler(DramCycle epoch,
                                               std::uint32_t targetPct)
    : epoch_(epoch), targetPct_(targetPct), nextEpoch_(epoch)
{
}

void
DynThreshCritScheduler::onIssue(std::uint32_t, const SchedCandidate &cand,
                                DramCycle)
{
    const bool cas =
        cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write;
    if (!cas)
        return;
    ++casIssued_;
    if (cand.crit >= thresh_)
        ++critIssued_;
}

void
DynThreshCritScheduler::adapt()
{
    if (casIssued_ > 0) {
        const std::uint64_t pct = critIssued_ * 100 / casIssued_;
        if (pct > targetPct_ &&
            thresh_ <= std::numeric_limits<CritLevel>::max() / 2) {
            thresh_ *= 2;
        } else if (pct < targetPct_ && thresh_ > 1) {
            thresh_ /= 2;
        }
    }
    casIssued_ = 0;
    critIssued_ = 0;
}

void
DynThreshCritScheduler::tick(DramCycle now)
{
    while (now >= nextEpoch_) {
        adapt();
        nextEpoch_ += epoch_;
    }
}

int
DynThreshCritScheduler::pick(std::uint32_t,
                             const std::vector<SchedCandidate> &cands,
                             DramCycle)
{
    // Lower = better: (class, row-miss, ~magnitude, age) with classes
    // critical CAS < plain CAS < critical RAS/PRE < plain RAS/PRE.
    using Key = std::tuple<int, int, std::uint64_t, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const bool cas =
            cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write;
        const bool crit = cand.crit >= thresh_;
        const int cls = crit ? (cas ? 0 : 2) : (cas ? 1 : 3);
        const Key key{cls, cand.rowHit ? 0 : 1,
                      ~static_cast<std::uint64_t>(cand.crit), cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

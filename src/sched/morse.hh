/**
 * @file
 * MORSE: self-optimizing (reinforcement-learning) memory scheduling
 * (Ipek et al. [9], Mukundan & Martínez [16]), performance-objective
 * variant (MORSE-P), plus the paper's Crit-RL configuration that adds
 * the CBP criticality prediction to the feature set (Table 6).
 *
 * Each DRAM cycle the controller evaluates up to `maxCommands` ready
 * commands (oldest first — the hardware restriction studied in
 * Fig. 11), estimates each one's long-term value with a CMAC
 * (tile-coded) Q function, issues the argmax, and performs an on-line
 * SARSA update with a data-bus-utilization reward (+1 whenever a CAS
 * moves data, 0 otherwise).
 */

#ifndef CRITMEM_SCHED_MORSE_HH
#define CRITMEM_SCHED_MORSE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sched/queue_mirror.hh"
#include "sched/scheduler.hh"
#include "sim/random.hh"

namespace critmem
{

/** Tile-coded linear Q-value approximator. */
class Cmac
{
  public:
    static constexpr std::uint32_t kTilings = 4;
    static constexpr std::uint32_t kTableSize = 16384;
    static constexpr std::uint32_t kMaxFeatures = 10;
    static constexpr std::uint32_t kMaxTiles =
        kTilings * kMaxFeatures;

    /** The set of tiles one (state, action) activates. */
    struct ActiveTiles
    {
        std::array<std::uint32_t, kMaxTiles> idx{};
        std::uint32_t count = 0;
    };

    Cmac() : weights_(kTilings * kTableSize, 0.0f) {}

    /**
     * Compute the tile indices activated by a feature vector: one
     * tile per (tiling, feature) pair, each feature conditioned on
     * the command-type feature (features[0]) so the learned weights
     * are action-specific. Each tiling shifts the quantization grid
     * by t/kTilings of a bucket, which is what gives CMAC its
     * generalization.
     */
    void tiles(const float *features, std::uint32_t numFeatures,
               ActiveTiles &out) const;

    /** Q value: sum of the activated tiles' weights. */
    float value(const ActiveTiles &tiles) const;

    /** Gradient step: spread delta evenly over the active tiles. */
    void update(const ActiveTiles &tiles, float delta);

  private:
    std::vector<float> weights_;
};

/** MORSE-P / Crit-RL policy. */
class MorseScheduler : public Scheduler
{
  public:
    /**
     * @param channels Number of DRAM channels (one learner each).
     * @param banksPerRank For queue mirroring.
     * @param maxCommands Ready commands evaluable per DRAM cycle.
     * @param useCriticality Add CBP criticality features (Crit-RL).
     * @param seed Exploration RNG seed.
     */
    MorseScheduler(std::uint32_t channels, std::uint32_t banksPerRank,
                   std::uint32_t maxCommands, bool useCriticality,
                   std::uint64_t seed, float alpha = 0.05f,
                   float gamma = 0.98f, float epsilon = 0.01f);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onEnqueue(std::uint32_t channel, const MemRequest &req,
                   const DramCoord &coord, DramCycle now) override;
    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;

    const char *
    name() const override
    {
        return useCriticality_ ? "Crit-RL" : "MORSE-P";
    }

  private:
    /** Per-channel SARSA bookkeeping. */
    struct Learner
    {
        Cmac cmac;
        bool hasPrev = false;
        float prevQ = 0.0f;
        Cmac::ActiveTiles prevTiles;
        float pendingReward = 0.0f;
    };

    std::uint32_t featurize(std::uint32_t channel,
                            const SchedCandidate &cand, DramCycle now,
                            float *out) const;

    QueueMirror mirror_;
    const std::uint32_t banksPerRank_;
    const std::uint32_t maxCommands_;
    const bool useCriticality_;
    Rng rng_;
    std::vector<Learner> learners_;
    std::vector<int> order_; ///< scratch: candidate indices by age

    const float alpha_;
    const float gamma_;
    const float epsilon_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_MORSE_HH

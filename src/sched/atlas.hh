/**
 * @file
 * ATLAS scheduling (Kim et al., HPCA 2010 [11]) — an extension beyond
 * the paper's comparison set, included because the paper cites it as
 * the other major fairness-oriented scheduler family.
 *
 * ATLAS ranks threads by Least-Attained-Service over long quanta:
 * a thread that has received little memory service recently is
 * prioritized over memory hogs, which (like TCM's latency cluster)
 * implicitly favors latency-sensitive threads. Attained service decays
 * geometrically across quanta. Within a rank: row hits, then age.
 */

#ifndef CRITMEM_SCHED_ATLAS_HH
#define CRITMEM_SCHED_ATLAS_HH

#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"

namespace critmem
{

/** ATLAS (adaptive per-thread least-attained-service) policy. */
class AtlasScheduler : public Scheduler
{
  public:
    /**
     * @param numCores Hardware threads to rank.
     * @param quantum Ranking quantum, DRAM cycles.
     * @param decay Geometric decay of attained service per quantum.
     */
    AtlasScheduler(std::uint32_t numCores, DramCycle quantum = 100000,
                   double decay = 0.875);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;
    void tick(DramCycle now) override;

    DramCycle
    nextEventCycle(DramCycle now) const override
    {
        (void)now;
        return nextQuantum_; // rerank() only fires at quantum edges
    }

    const char *name() const override { return "ATLAS"; }

    /** Attained service score of @p core (for tests). */
    double attained(CoreId core) const { return attained_[core]; }

  private:
    void rerank();

    const std::uint32_t numCores_;
    const DramCycle quantum_;
    const double decay_;
    DramCycle nextQuantum_;
    /** Decayed CAS-count service received per thread. */
    std::vector<double> attained_;
    /** Service accrued in the current quantum. */
    std::vector<double> current_;
    /** Smaller = higher priority (least attained service first). */
    std::vector<std::uint32_t> rank_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_ATLAS_HH

/**
 * @file
 * BLISS — the Blacklisting memory scheduler (Subramanian et al.,
 * ICCD 2014 / TPDS 2016). An extension beyond the paper's comparison
 * set, included as the standard low-complexity fairness contender.
 *
 * BLISS observes that application-aware ranking is expensive and that
 * most interference comes from streaks: an application that gets many
 * *consecutive* requests served is a hog. The controller tracks the
 * last-served application per channel and a streak counter; when the
 * streak reaches a threshold the application is blacklisted. Requests
 * from non-blacklisted applications win; within a group, row hits and
 * then age decide. All blacklists clear every clearing interval so
 * nobody is penalized forever.
 */

#ifndef CRITMEM_SCHED_BLISS_HH
#define CRITMEM_SCHED_BLISS_HH

#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"

namespace critmem
{

/** Blacklisting (BLISS) scheduling policy. */
class BlissScheduler : public Scheduler
{
  public:
    /**
     * @param channels Channels served (per-channel streak tracking).
     * @param numCores Hardware threads that can be blacklisted.
     * @param threshold Consecutive same-core CAS issues that trigger
     *                  blacklisting.
     * @param clearInterval Blacklist clearing period, DRAM cycles.
     */
    BlissScheduler(std::uint32_t channels, std::uint32_t numCores,
                   std::uint32_t threshold, DramCycle clearInterval);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;
    void tick(DramCycle now) override;

    DramCycle
    nextEventCycle(DramCycle now) const override
    {
        (void)now;
        return nextClear_; // tick() only clears at interval edges
    }

    const char *name() const override { return "BLISS"; }

    /** Whether @p core is currently blacklisted (for tests). */
    bool isBlacklisted(CoreId core) const { return blacklisted_[core]; }
    /** Current same-core streak on @p channel (for tests). */
    std::uint32_t streak(std::uint32_t channel) const
    {
        return streak_[channel];
    }
    /** Next blacklist-clearing cycle (for tests). */
    DramCycle nextClear() const { return nextClear_; }

  private:
    const std::uint32_t numCores_;
    const std::uint32_t threshold_;
    const DramCycle clearInterval_;
    DramCycle nextClear_;
    /** Per-channel core whose CAS was served last. */
    std::vector<CoreId> lastCore_;
    /** Per-channel count of consecutive CAS served to lastCore_. */
    std::vector<std::uint32_t> streak_;
    /** Per-core blacklist bit (std::uint8_t: no vector<bool> refs). */
    std::vector<std::uint8_t> blacklisted_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_BLISS_HH

/**
 * @file
 * The paper's criticality-aware FR-FCFS variants (Section 3.2).
 *
 * Crit-CASRAS orders: critical CAS > critical RAS > non-critical CAS >
 * non-critical RAS. CASRAS-Crit orders: critical CAS > non-critical
 * CAS > critical RAS > non-critical RAS — realizable by prepending the
 * criticality magnitude to the existing age comparator. Within a
 * priority class, larger criticality magnitude wins, then age.
 *
 * Starvation control: a non-critical request older than the
 * configured cap (6,000 DRAM cycles) is promoted to maximum
 * criticality. The paper observes this threshold is never reached for
 * its workloads; we count promotions in a stat the tests assert on.
 */

#ifndef CRITMEM_SCHED_CRIT_FRFCFS_HH
#define CRITMEM_SCHED_CRIT_FRFCFS_HH

#include <cstdint>
#include <limits>
#include <unordered_set>

#include "sched/scheduler.hh"

namespace critmem
{

/** Which arbitration arrangement of Section 3.2 to use. */
enum class CritOrder
{
    CritFirst,   ///< Crit-CASRAS: criticality outranks CAS-over-RAS
    CasRasFirst, ///< CASRAS-Crit: CAS-over-RAS outranks criticality
};

/** Criticality-aware FR-FCFS. */
class CritFrFcfsScheduler : public Scheduler
{
  public:
    /**
     * @param order Arbitration arrangement.
     * @param starvationCap Non-critical age cap in DRAM cycles; 0
     *        disables promotion.
     */
    explicit CritFrFcfsScheduler(CritOrder order,
                                 std::uint32_t starvationCap = 6000)
        : order_(order), starvationCap_(starvationCap)
    {
    }

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    const char *
    name() const override
    {
        return order_ == CritOrder::CritFirst ? "Crit-CASRAS"
                                              : "CASRAS-Crit";
    }

    /** Distinct non-critical requests promoted by the cap. */
    std::uint64_t starvationPromotions() const
    {
        return starvationPromotions_;
    }

  private:
    CritOrder order_;
    std::uint32_t starvationCap_;
    std::uint64_t starvationPromotions_ = 0;
    std::unordered_set<std::uint64_t> promoted_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_CRIT_FRFCFS_HH

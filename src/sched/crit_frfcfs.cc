#include "sched/crit_frfcfs.hh"

#include <tuple>

namespace critmem
{

int
CritFrFcfsScheduler::pick(std::uint32_t,
                          const std::vector<SchedCandidate> &cands,
                          DramCycle now)
{
    // Lower tuple compares better; fields are negated accordingly.
    using Key = std::tuple<int, std::uint64_t, int, std::uint64_t>;

    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const bool cas =
            cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write;

        CritLevel crit = cand.crit;
        if (starvationCap_ && crit == 0 &&
            now - cand.arrival > starvationCap_) {
            crit = std::numeric_limits<CritLevel>::max();
            if (promoted_.insert(cand.seq).second)
                ++starvationPromotions_;
        }

        // Priority class per Section 3.2.
        int cls;
        if (order_ == CritOrder::CritFirst) {
            cls = crit > 0 ? (cas ? 0 : 1) : (cas ? 2 : 3);
        } else {
            cls = cas ? (crit > 0 ? 0 : 1) : (crit > 0 ? 2 : 3);
        }

        // Magnitude is prepended to the age comparator: bigger
        // criticality first, then older (smaller seq) first.
        const Key key{cls, ~static_cast<std::uint64_t>(crit),
                      cand.isPrefetch ? 1 : 0, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

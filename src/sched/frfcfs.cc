#include "sched/frfcfs.hh"

#include <tuple>

namespace critmem
{

int
FrFcfsScheduler::pick(std::uint32_t, const std::vector<SchedCandidate> &cands,
                      DramCycle)
{
    // Lower key = better: (row-miss, prefetch, age). Demands beat
    // prefetches within a priority class.
    int best = -1;
    std::tuple<int, int, std::uint64_t> bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const bool cas =
            cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write;
        const std::tuple<int, int, std::uint64_t> key{
            cas ? 0 : 1, cand.isPrefetch ? 1 : 0, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

int
FcfsScheduler::pick(std::uint32_t,
                    const std::vector<SchedCandidate> &cands, DramCycle)
{
    int best = -1;
    std::uint64_t bestSeq = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (best < 0 || cands[i].seq < bestSeq) {
            best = static_cast<int>(i);
            bestSeq = cands[i].seq;
        }
    }
    return best;
}

} // namespace critmem

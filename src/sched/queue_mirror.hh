/**
 * @file
 * Shared bookkeeping for stateful schedulers: a mirror of every
 * channel's outstanding transactions, maintained from the
 * enqueue/issue notifications. PAR-BS uses it to form batches, TCM
 * and MORSE to compute per-thread and queue-shape features.
 */

#ifndef CRITMEM_SCHED_QUEUE_MIRROR_HH
#define CRITMEM_SCHED_QUEUE_MIRROR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dram/command.hh"
#include "mem/request.hh"
#include "sim/types.hh"

namespace critmem
{

/** One mirrored outstanding transaction. */
struct MirrorEntry
{
    std::uint64_t id = 0;
    CoreId core = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0; ///< bank index within the channel
    bool isWrite = false;
    bool marked = false;    ///< PAR-BS batch membership
    DramCycle arrival = 0;
};

/** Per-channel mirrors of the DRAM transaction queues. */
class QueueMirror
{
  public:
    explicit QueueMirror(std::uint32_t channels) : queues_(channels) {}

    void
    onEnqueue(std::uint32_t channel, const MemRequest &req,
              const DramCoord &coord, std::uint32_t banksPerRank,
              DramCycle now)
    {
        queues_[channel].push_back(MirrorEntry{
            req.id, req.core, coord.rank,
            coord.rank * banksPerRank + coord.bank,
            req.type == ReqType::Write, false, now});
    }

    /** Remove the entry once its CAS issues. */
    void
    onCas(std::uint32_t channel, std::uint64_t id)
    {
        auto &queue = queues_[channel];
        const auto it = std::find_if(
            queue.begin(), queue.end(),
            [id](const MirrorEntry &e) { return e.id == id; });
        if (it != queue.end())
            queue.erase(it);
    }

    std::vector<MirrorEntry> &queue(std::uint32_t channel)
    {
        return queues_[channel];
    }

    const std::vector<MirrorEntry> &queue(std::uint32_t channel) const
    {
        return queues_[channel];
    }

    bool
    isMarked(std::uint32_t channel, std::uint64_t id) const
    {
        for (const auto &entry : queues_[channel]) {
            if (entry.id == id)
                return entry.marked;
        }
        return false;
    }

  private:
    std::vector<std::vector<MirrorEntry>> queues_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_QUEUE_MIRROR_HH

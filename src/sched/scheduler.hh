/**
 * @file
 * Abstract memory-scheduler interface.
 *
 * Each DRAM cycle, every channel gathers the set of commands that are
 * legal to issue *right now* (one SchedCandidate per queued
 * transaction) and asks the scheduler to pick one. The scheduler also
 * receives enqueue/issue/complete notifications so that stateful
 * policies (PAR-BS batches, TCM clustering, AHB history, MORSE
 * learning) can maintain their bookkeeping.
 *
 * A single Scheduler instance serves all channels of a DramSystem,
 * which lets policies share global state (e.g. TCM's cross-channel
 * bandwidth accounting) while still making per-channel decisions.
 */

#ifndef CRITMEM_SCHED_SCHEDULER_HH
#define CRITMEM_SCHED_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "dram/command.hh"
#include "mem/request.hh"
#include "sim/types.hh"

namespace critmem
{

/** Base class of all memory scheduling policies. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Choose the command to issue on @p channel this DRAM cycle.
     *
     * @param channel Channel making the request.
     * @param cands Commands legal to issue now; never empty.
     * @param now Current DRAM cycle.
     * @return Index into @p cands, or -1 to idle the command bus.
     */
    virtual int pick(std::uint32_t channel,
                     const std::vector<SchedCandidate> &cands,
                     DramCycle now) = 0;

    /** A transaction entered @p channel's queue. */
    virtual void
    onEnqueue(std::uint32_t channel, const MemRequest &req,
              const DramCoord &coord, DramCycle now)
    {
        (void)channel; (void)req; (void)coord; (void)now;
    }

    /** The chosen command was issued. */
    virtual void
    onIssue(std::uint32_t channel, const SchedCandidate &cand,
            DramCycle now)
    {
        (void)channel; (void)cand; (void)now;
    }

    /** A read's data burst completed. */
    virtual void
    onComplete(std::uint32_t channel, const MemRequest &req,
               DramCycle now)
    {
        (void)channel; (void)req; (void)now;
    }

    /** Called once per DRAM cycle, before any channel picks. */
    virtual void tick(DramCycle now) { (void)now; }

    /**
     * Earliest DRAM cycle at which tick() would do real work again
     * (epoch/quantum bookkeeping). Policies whose tick() is a no-op
     * return kNoCycle ("no scheduled work"), which lets the system
     * fast-forward across idle gaps without missing a boundary.
     * Returning a too-early cycle is always safe; too late is not.
     */
    virtual DramCycle
    nextEventCycle(DramCycle now) const
    {
        (void)now;
        return kNoCycle;
    }

    /** @return human-readable policy name. */
    virtual const char *name() const = 0;
};

} // namespace critmem

#endif // CRITMEM_SCHED_SCHEDULER_HH

#include "sched/ahb.hh"

#include <tuple>

namespace critmem
{

void
AhbScheduler::onEnqueue(std::uint32_t, const MemRequest &req,
                        const DramCoord &, DramCycle)
{
    if (req.type == ReqType::Write)
        ++arrivedWrites_;
    else
        ++arrivedReads_;
}

void
AhbScheduler::onIssue(std::uint32_t, const SchedCandidate &cand, DramCycle)
{
    if (cand.cmd != DramCmd::Read && cand.cmd != DramCmd::Write)
        return;
    haveHistory_ = true;
    lastWasWrite_ = cand.cmd == DramCmd::Write;
    lastRank_ = cand.coord.rank;
    if (lastWasWrite_)
        ++issuedWrites_;
    else
        ++issuedReads_;
}

void
AhbScheduler::tick(DramCycle now)
{
    if (now < nextEpoch_)
        return;
    nextEpoch_ = now + epoch_;
    const std::uint64_t total = arrivedReads_ + arrivedWrites_;
    if (total > 0) {
        targetWriteFrac_ =
            static_cast<double>(arrivedWrites_) / static_cast<double>(total);
    }
    arrivedReads_ = arrivedWrites_ = 0;
    issuedReads_ = issuedWrites_ = 0;
}

int
AhbScheduler::pick(std::uint32_t, const std::vector<SchedCandidate> &cands,
                   DramCycle)
{
    const std::uint64_t issued = issuedReads_ + issuedWrites_;
    const double issuedWriteFrac =
        issued ? static_cast<double>(issuedWrites_) /
                static_cast<double>(issued)
               : 0.0;
    const bool wantWrite = issuedWriteFrac < targetWriteFrac_;

    // Lower = better: (pattern cost, age).
    using Key = std::tuple<int, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        int cost = 0;
        switch (cand.cmd) {
          case DramCmd::Read:
          case DramCmd::Write: {
            const bool isWrite = cand.cmd == DramCmd::Write;
            if (haveHistory_ && isWrite != lastWasWrite_)
                cost += 2; // bus turnaround
            if (haveHistory_ && cand.coord.rank != lastRank_)
                cost += 1; // rank switch gap
            if (isWrite != wantWrite)
                cost += 1; // fight the workload mix
            break;
          }
          case DramCmd::Act:
            cost = 6;
            break;
          case DramCmd::Pre:
            cost = 7;
            break;
          case DramCmd::Ref:
            cost = 8;
            break;
        }
        const Key key{cost, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

/**
 * @file
 * Factory mapping a SchedConfig onto a concrete Scheduler instance.
 */

#ifndef CRITMEM_SCHED_REGISTRY_HH
#define CRITMEM_SCHED_REGISTRY_HH

#include <memory>

#include "sched/scheduler.hh"
#include "sim/config.hh"

namespace critmem
{

/**
 * Build the scheduler selected by @p cfg.sched for a system with
 * @p cfg.numCores cores and @p cfg.dram channels.
 */
std::unique_ptr<Scheduler> makeScheduler(const SystemConfig &cfg);

} // namespace critmem

#endif // CRITMEM_SCHED_REGISTRY_HH

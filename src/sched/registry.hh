/**
 * @file
 * Factory mapping a SchedConfig onto a concrete Scheduler instance.
 */

#ifndef CRITMEM_SCHED_REGISTRY_HH
#define CRITMEM_SCHED_REGISTRY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/scheduler.hh"
#include "sim/config.hh"

namespace critmem
{

/**
 * Build the scheduler selected by @p cfg.sched for a system with
 * @p cfg.numCores cores and @p cfg.dram channels.
 */
std::unique_ptr<Scheduler> makeScheduler(const SystemConfig &cfg);

/** One registered scheduling algorithm. */
struct SchedInfo
{
    SchedAlgo algo;
    /** Stable lower-case name used by CLIs and sweep specs. */
    const char *cliName;
    /** Display name matching the paper (same as toString(algo)). */
    const char *displayName;
    /** One-line description for --list-schedulers. */
    const char *desc;
};

/** Every scheduler, in the SchedAlgo declaration order. */
const std::vector<SchedInfo> &schedulerRegistry();

/** CLI/spec name of @p algo (e.g. "casras-crit"). */
const char *cliName(SchedAlgo algo);

/** Look up an algorithm by CLI/spec name; nullopt when unknown. */
std::optional<SchedAlgo> findSchedAlgo(const std::string &name);

} // namespace critmem

#endif // CRITMEM_SCHED_REGISTRY_HH

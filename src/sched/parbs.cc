#include "sched/parbs.hh"

#include <map>
#include <tuple>

namespace critmem
{

ParBsScheduler::ParBsScheduler(std::uint32_t channels,
                               std::uint32_t numCores,
                               std::uint32_t banksPerRank,
                               std::uint32_t markingCap)
    : mirror_(channels), numCores_(numCores), banksPerRank_(banksPerRank),
      markingCap_(markingCap),
      rank_(channels, std::vector<std::uint32_t>(numCores, 0))
{
}

void
ParBsScheduler::onEnqueue(std::uint32_t channel, const MemRequest &req,
                          const DramCoord &coord, DramCycle now)
{
    mirror_.onEnqueue(channel, req, coord, banksPerRank_, now);
}

void
ParBsScheduler::onIssue(std::uint32_t channel, const SchedCandidate &cand,
                        DramCycle)
{
    if (cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write)
        mirror_.onCas(channel, cand.seq);
}

bool
ParBsScheduler::anyMarked(std::uint32_t channel) const
{
    for (const auto &entry : mirror_.queue(channel)) {
        if (entry.marked)
            return true;
    }
    return false;
}

void
ParBsScheduler::formBatch(std::uint32_t channel)
{
    auto &queue = mirror_.queue(channel);
    if (queue.empty())
        return;

    // Mark the markingCap oldest requests of every (thread, bank).
    // Ids grow with arrival, and the mirror preserves arrival order,
    // so a single in-order pass suffices.
    std::map<std::pair<CoreId, std::uint32_t>, std::uint32_t> perPair;
    for (auto &entry : queue) {
        if (entry.core >= numCores_) {
            // Writebacks carry no thread; they stay unmarked.
            entry.marked = false;
            continue;
        }
        auto &count = perPair[{entry.core, entry.bank}];
        entry.marked = count < markingCap_;
        ++count;
    }

    // Shortest-job-first thread ranking: primary key is the thread's
    // maximum marked load on any single bank (the "max rule"),
    // secondary its total marked requests.
    std::map<std::pair<CoreId, std::uint32_t>, std::uint32_t> markedPerBank;
    std::vector<std::uint32_t> total(numCores_, 0);
    for (const auto &entry : queue) {
        if (entry.marked) {
            ++markedPerBank[{entry.core, entry.bank}];
            ++total[entry.core];
        }
    }
    std::vector<std::uint32_t> maxLoad(numCores_, 0);
    for (const auto &[key, count] : markedPerBank)
        maxLoad[key.first] = std::max(maxLoad[key.first], count);

    std::vector<CoreId> order(numCores_);
    for (CoreId c = 0; c < numCores_; ++c)
        order[c] = c;
    std::sort(order.begin(), order.end(), [&](CoreId a, CoreId b) {
        return std::tuple(maxLoad[a], total[a], a) <
            std::tuple(maxLoad[b], total[b], b);
    });
    for (std::uint32_t pos = 0; pos < numCores_; ++pos)
        rank_[channel][order[pos]] = pos;

    ++batchesFormed_;
}

int
ParBsScheduler::pick(std::uint32_t channel,
                     const std::vector<SchedCandidate> &cands, DramCycle)
{
    if (!anyMarked(channel))
        formBatch(channel);

    // Lower tuple = better: (unmarked, row-miss, thread rank, age).
    using Key = std::tuple<int, int, std::uint32_t, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const bool marked = mirror_.isMarked(channel, cand.seq);
        const std::uint32_t threadRank =
            cand.core < numCores_ ? rank_[channel][cand.core] : numCores_;
        const Key key{marked ? 0 : 1, cand.rowHit ? 0 : 1, threadRank,
                      cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

/**
 * @file
 * Minimalist Open-page scheduling (Kaseridis et al., MICRO 2011 [10])
 * — the memory-side "criticality" comparison point the paper's
 * related-work section contrasts itself against: requests are ranked
 * by their thread's memory-level parallelism (low-MLP threads are
 * latency-sensitive and go first), with prefetches below all demand
 * traffic. Note this ranks by *memory* behavior only; the paper's
 * point is that processor-side blocking information is orthogonal.
 */

#ifndef CRITMEM_SCHED_MINIMALIST_HH
#define CRITMEM_SCHED_MINIMALIST_HH

#include <cstdint>
#include <vector>

#include "sched/queue_mirror.hh"
#include "sched/scheduler.hh"

namespace critmem
{

/** Minimalist open-page policy (MLP-ranked). */
class MinimalistScheduler : public Scheduler
{
  public:
    MinimalistScheduler(std::uint32_t channels, std::uint32_t numCores,
                        std::uint32_t banksPerRank);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onEnqueue(std::uint32_t channel, const MemRequest &req,
                   const DramCoord &coord, DramCycle now) override;
    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;

    const char *name() const override { return "Minimalist"; }

  private:
    QueueMirror mirror_;
    const std::uint32_t numCores_;
    const std::uint32_t banksPerRank_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_MINIMALIST_HH

/**
 * @file
 * Batch-cap round-robin scheduling — a GPU-controller-style fairness
 * baseline (cf. the capped FR-FCFS variants shipped with GPGPU-Sim).
 *
 * Each channel serves CAS commands for one core at a time, up to a
 * fixed batch cap, then rotates to the next core (in core-id order)
 * that has work. Within the active core's batch the policy is plain
 * FR-FCFS (row hits, then age), so row locality is preserved inside a
 * batch while no core can monopolize a channel across batches.
 */

#ifndef CRITMEM_SCHED_BATCH_CAP_RR_HH
#define CRITMEM_SCHED_BATCH_CAP_RR_HH

#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"

namespace critmem
{

/** Capped per-core batches served round-robin. */
class BatchCapRrScheduler : public Scheduler
{
  public:
    /**
     * @param channels Channels served (per-channel rotation state).
     * @param numCores Hardware threads in the rotation.
     * @param cap CAS issues served per core before rotating.
     */
    BatchCapRrScheduler(std::uint32_t channels, std::uint32_t numCores,
                        std::uint32_t cap);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;

    const char *name() const override { return "BatchCap-RR"; }

    /** Core currently holding @p channel's batch (for tests). */
    CoreId activeCore(std::uint32_t channel) const
    {
        return active_[channel];
    }
    /** CAS issues served in the current batch (for tests). */
    std::uint32_t served(std::uint32_t channel) const
    {
        return served_[channel];
    }

  private:
    /** Rotation distance from @p channel's active core to @p core. */
    std::uint32_t rrDistance(std::uint32_t channel, CoreId core) const;

    const std::uint32_t numCores_;
    const std::uint32_t cap_;
    /** Per-channel core whose batch is being served. */
    std::vector<CoreId> active_;
    /** Per-channel CAS issues served to the active core so far. */
    std::vector<std::uint32_t> served_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_BATCH_CAP_RR_HH

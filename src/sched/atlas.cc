#include "sched/atlas.hh"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace critmem
{

AtlasScheduler::AtlasScheduler(std::uint32_t numCores, DramCycle quantum,
                               double decay)
    : numCores_(numCores), quantum_(quantum), decay_(decay),
      nextQuantum_(quantum), attained_(numCores, 0.0),
      current_(numCores, 0.0), rank_(numCores, 0)
{
    std::iota(rank_.begin(), rank_.end(), 0u);
}

void
AtlasScheduler::onIssue(std::uint32_t, const SchedCandidate &cand,
                        DramCycle)
{
    if ((cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write) &&
        cand.core < numCores_) {
        current_[cand.core] += 1.0;
    }
}

void
AtlasScheduler::rerank()
{
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        attained_[c] = decay_ * attained_[c] +
            (1.0 - decay_) * current_[c];
        current_[c] = 0.0;
    }
    std::vector<CoreId> order(numCores_);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](CoreId a, CoreId b) {
        return std::tuple(attained_[a], a) <
            std::tuple(attained_[b], b);
    });
    for (std::uint32_t pos = 0; pos < numCores_; ++pos)
        rank_[order[pos]] = pos;
}

void
AtlasScheduler::tick(DramCycle now)
{
    if (now >= nextQuantum_) {
        rerank();
        nextQuantum_ += quantum_;
    }
}

int
AtlasScheduler::pick(std::uint32_t,
                     const std::vector<SchedCandidate> &cands, DramCycle)
{
    // Lower = better: (thread rank, row-miss, age).
    using Key = std::tuple<std::uint32_t, int, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const std::uint32_t threadRank =
            cand.core < numCores_ ? rank_[cand.core] : numCores_;
        const Key key{threadRank, cand.rowHit ? 0 : 1, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

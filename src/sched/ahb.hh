/**
 * @file
 * Adaptive History-Based scheduling (Hur & Lin [8]).
 *
 * The AHB arbiter scores each issuable command against the recent
 * command history, penalizing resource turnarounds (read/write
 * switches, rank switches) and deviation from the workload's observed
 * read/write mix; the adaptive layer re-estimates that mix every
 * epoch. This captures the published design's essence — a
 * pattern-matching arbiter tuned for DDR2-era turnaround costs — and,
 * as the paper reports, it buys little on a high-speed DDR3 system.
 */

#ifndef CRITMEM_SCHED_AHB_HH
#define CRITMEM_SCHED_AHB_HH

#include <cstdint>

#include "sched/scheduler.hh"

namespace critmem
{

/** Adaptive history-based policy. */
class AhbScheduler : public Scheduler
{
  public:
    /** @param epoch Adaptation epoch in DRAM cycles. */
    explicit AhbScheduler(DramCycle epoch = 10000) : epoch_(epoch) {}

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onEnqueue(std::uint32_t channel, const MemRequest &req,
                   const DramCoord &coord, DramCycle now) override;
    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;
    void tick(DramCycle now) override;

    DramCycle
    nextEventCycle(DramCycle now) const override
    {
        (void)now;
        return nextEpoch_; // tick() is a no-op before the epoch edge
    }

    const char *name() const override { return "AHB"; }

  private:
    DramCycle epoch_;
    DramCycle nextEpoch_ = 0;

    // Command history (last CAS issued, any channel is close enough
    // for the pattern heuristics; rank switches are per channel in
    // reality but the arbiter state is tiny either way).
    bool haveHistory_ = false;
    bool lastWasWrite_ = false;
    std::uint32_t lastRank_ = 0;

    // Observed arrival mix (this epoch) and the target derived from
    // the previous epoch.
    std::uint64_t arrivedReads_ = 0;
    std::uint64_t arrivedWrites_ = 0;
    double targetWriteFrac_ = 0.2;
    std::uint64_t issuedReads_ = 0;
    std::uint64_t issuedWrites_ = 0;
};

} // namespace critmem

#endif // CRITMEM_SCHED_AHB_HH

/**
 * @file
 * Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda [17]).
 *
 * Requests are grouped into batches: when no marked request remains in
 * a channel, the oldest `markingCap` requests of each (thread, bank)
 * pair are marked. Marked requests strictly outrank unmarked ones,
 * which bounds inter-thread starvation. Within a batch, threads are
 * ranked shortest-job-first by their maximum per-bank marked load
 * (the "max rule"), preserving intra-thread bank parallelism.
 * Priority: marked > row-hit > thread rank > age.
 */

#ifndef CRITMEM_SCHED_PARBS_HH
#define CRITMEM_SCHED_PARBS_HH

#include <cstdint>
#include <vector>

#include "sched/queue_mirror.hh"
#include "sched/scheduler.hh"

namespace critmem
{

/** PAR-BS policy. */
class ParBsScheduler : public Scheduler
{
  public:
    /**
     * @param channels Number of DRAM channels.
     * @param numCores Number of cores (threads).
     * @param banksPerRank Banks per rank, for bank indexing.
     * @param markingCap Requests marked per (thread, bank); paper
     *        default 5.
     */
    ParBsScheduler(std::uint32_t channels, std::uint32_t numCores,
                   std::uint32_t banksPerRank,
                   std::uint32_t markingCap = 5);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onEnqueue(std::uint32_t channel, const MemRequest &req,
                   const DramCoord &coord, DramCycle now) override;
    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;

    const char *name() const override { return "PAR-BS"; }

    /** Number of batches formed so far (all channels). */
    std::uint64_t batchesFormed() const { return batchesFormed_; }

  private:
    void formBatch(std::uint32_t channel);
    bool anyMarked(std::uint32_t channel) const;

    QueueMirror mirror_;
    const std::uint32_t numCores_;
    const std::uint32_t banksPerRank_;
    const std::uint32_t markingCap_;
    /** Thread rank per channel; smaller = higher priority. */
    std::vector<std::vector<std::uint32_t>> rank_;
    std::uint64_t batchesFormed_ = 0;
};

} // namespace critmem

#endif // CRITMEM_SCHED_PARBS_HH

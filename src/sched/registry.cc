#include "registry.hh"

#include "sched/ahb.hh"
#include "sched/atlas.hh"
#include "sched/crit_frfcfs.hh"
#include "sched/frfcfs.hh"
#include "sched/minimalist.hh"
#include "sched/morse.hh"
#include "sched/parbs.hh"
#include "sched/tcm.hh"
#include "sim/log.hh"

namespace critmem
{

std::unique_ptr<Scheduler>
makeScheduler(const SystemConfig &cfg)
{
    const SchedConfig &s = cfg.sched;
    switch (s.algo) {
      case SchedAlgo::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedAlgo::FrFcfs:
        return std::make_unique<FrFcfsScheduler>();
      case SchedAlgo::CritCasRas:
        return std::make_unique<CritFrFcfsScheduler>(
            CritOrder::CritFirst, s.starvationCap);
      case SchedAlgo::CasRasCrit:
        return std::make_unique<CritFrFcfsScheduler>(
            CritOrder::CasRasFirst, s.starvationCap);
      case SchedAlgo::ParBs:
        return std::make_unique<ParBsScheduler>(
            cfg.dram.channels, cfg.numCores, cfg.dram.banksPerRank,
            s.parbsMarkingCap);
      case SchedAlgo::Tcm:
        return std::make_unique<TcmScheduler>(cfg.numCores, s, false,
                                              cfg.seed);
      case SchedAlgo::TcmCrit:
        return std::make_unique<TcmScheduler>(cfg.numCores, s, true,
                                              cfg.seed);
      case SchedAlgo::Ahb:
        return std::make_unique<AhbScheduler>();
      case SchedAlgo::Morse:
        return std::make_unique<MorseScheduler>(
            cfg.dram.channels, cfg.dram.banksPerRank, s.morseMaxCommands,
            false, cfg.seed);
      case SchedAlgo::CritRl:
        return std::make_unique<MorseScheduler>(
            cfg.dram.channels, cfg.dram.banksPerRank, s.morseMaxCommands,
            true, cfg.seed);
      case SchedAlgo::Atlas:
        return std::make_unique<AtlasScheduler>(cfg.numCores,
                                                s.tcmQuantum);
      case SchedAlgo::Minimalist:
        return std::make_unique<MinimalistScheduler>(
            cfg.dram.channels, cfg.numCores, cfg.dram.banksPerRank);
    }
    fatal("unknown scheduler algorithm");
}

} // namespace critmem

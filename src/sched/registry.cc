#include "sched/registry.hh"

#include "sched/ahb.hh"
#include "sched/atlas.hh"
#include "sched/batch_cap_rr.hh"
#include "sched/bliss.hh"
#include "sched/crit_frfcfs.hh"
#include "sched/dyn_thresh.hh"
#include "sched/frfcfs.hh"
#include "sched/minimalist.hh"
#include "sched/morse.hh"
#include "sched/parbs.hh"
#include "sched/tcm.hh"
#include "sim/log.hh"

namespace critmem
{

std::unique_ptr<Scheduler>
makeScheduler(const SystemConfig &cfg)
{
    const SchedConfig &s = cfg.sched;
    switch (s.algo) {
      case SchedAlgo::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedAlgo::FrFcfs:
        return std::make_unique<FrFcfsScheduler>();
      case SchedAlgo::CritCasRas:
        return std::make_unique<CritFrFcfsScheduler>(
            CritOrder::CritFirst, s.starvationCap);
      case SchedAlgo::CasRasCrit:
        return std::make_unique<CritFrFcfsScheduler>(
            CritOrder::CasRasFirst, s.starvationCap);
      case SchedAlgo::ParBs:
        return std::make_unique<ParBsScheduler>(
            cfg.dram.channels, cfg.numCores, cfg.dram.banksPerRank,
            s.parbsMarkingCap);
      case SchedAlgo::Tcm:
        return std::make_unique<TcmScheduler>(cfg.numCores, s, false,
                                              cfg.seed);
      case SchedAlgo::TcmCrit:
        return std::make_unique<TcmScheduler>(cfg.numCores, s, true,
                                              cfg.seed);
      case SchedAlgo::Ahb:
        return std::make_unique<AhbScheduler>();
      case SchedAlgo::Morse:
        return std::make_unique<MorseScheduler>(
            cfg.dram.channels, cfg.dram.banksPerRank, s.morseMaxCommands,
            false, cfg.seed);
      case SchedAlgo::CritRl:
        return std::make_unique<MorseScheduler>(
            cfg.dram.channels, cfg.dram.banksPerRank, s.morseMaxCommands,
            true, cfg.seed);
      case SchedAlgo::Atlas:
        return std::make_unique<AtlasScheduler>(cfg.numCores,
                                                s.tcmQuantum);
      case SchedAlgo::Minimalist:
        return std::make_unique<MinimalistScheduler>(
            cfg.dram.channels, cfg.numCores, cfg.dram.banksPerRank);
      case SchedAlgo::Bliss:
        return std::make_unique<BlissScheduler>(
            cfg.dram.channels, cfg.numCores, s.blissThreshold,
            s.blissClearInterval);
      case SchedAlgo::BatchCapRr:
        return std::make_unique<BatchCapRrScheduler>(
            cfg.dram.channels, cfg.numCores, s.batchCap);
      case SchedAlgo::DynThreshCrit:
        return std::make_unique<DynThreshCritScheduler>(
            s.dynThreshEpoch, s.dynThreshTargetPct);
    }
    fatal("unknown scheduler algorithm");
}

const std::vector<SchedInfo> &
schedulerRegistry()
{
    static const std::vector<SchedInfo> registry = {
        {SchedAlgo::Fcfs, "fcfs", "FCFS",
         "strict oldest-first (lower-bound baseline)"},
        {SchedAlgo::FrFcfs, "frfcfs", "FR-FCFS",
         "first-ready FCFS baseline [22]"},
        {SchedAlgo::CritCasRas, "crit-casras", "Crit-CASRAS",
         "critical first, then CAS-over-RAS"},
        {SchedAlgo::CasRasCrit, "casras-crit", "CASRAS-Crit",
         "CAS-over-RAS first, criticality breaks ties (the paper's)"},
        {SchedAlgo::ParBs, "parbs", "PAR-BS",
         "parallelism-aware batch scheduling [17]"},
        {SchedAlgo::Tcm, "tcm", "TCM",
         "thread cluster memory scheduling [12]"},
        {SchedAlgo::TcmCrit, "tcm-crit", "TCM+Crit",
         "TCM + criticality-aware FR-FCFS tiebreak"},
        {SchedAlgo::Ahb, "ahb", "AHB",
         "adaptive history-based (Hur/Lin) [8]"},
        {SchedAlgo::Morse, "morse", "MORSE-P",
         "self-optimizing RL scheduler [9,16]"},
        {SchedAlgo::CritRl, "crit-rl", "Crit-RL",
         "MORSE + criticality features (Table 6)"},
        {SchedAlgo::Atlas, "atlas", "ATLAS",
         "least-attained-service ranking [11]"},
        {SchedAlgo::Minimalist, "minimalist", "Minimalist",
         "MLP-ranked minimalist open-page [10]"},
        {SchedAlgo::Bliss, "bliss", "BLISS",
         "blacklists request streaks, clears periodically"},
        {SchedAlgo::BatchCapRr, "batch-cap-rr", "BatchCap-RR",
         "capped per-core batches served round-robin"},
        {SchedAlgo::DynThreshCrit, "dyn-thresh-crit", "DynThresh-Crit",
         "criticality FR-FCFS with adaptive threshold"},
    };
    return registry;
}

const char *
cliName(SchedAlgo algo)
{
    for (const SchedInfo &info : schedulerRegistry()) {
        if (info.algo == algo)
            return info.cliName;
    }
    return "?";
}

std::optional<SchedAlgo>
findSchedAlgo(const std::string &name)
{
    for (const SchedInfo &info : schedulerRegistry()) {
        if (name == info.cliName)
            return info.algo;
    }
    return std::nullopt;
}

} // namespace critmem

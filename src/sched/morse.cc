#include "sched/morse.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace critmem
{

namespace
{

/** FNV-1a style mixing of (tiling, feature index, bucket). */
std::uint32_t
mix(std::uint32_t h, std::uint32_t v)
{
    h ^= v + 0x9e3779b9u + (h << 6) + (h >> 2);
    return h;
}

} // namespace

void
Cmac::tiles(const float *features, std::uint32_t numFeatures,
            ActiveTiles &out) const
{
    out.count = 0;
    for (std::uint32_t t = 0; t < kTilings; ++t) {
        const float offset =
            static_cast<float>(t) / static_cast<float>(kTilings);
        // One joint tile over the whole vector per tiling (the
        // shifted grids provide the generalization across buckets)...
        std::uint32_t joint = 0x811c9dc5u + t;
        for (std::uint32_t f = 0; f < numFeatures; ++f) {
            const auto bucket = static_cast<std::uint32_t>(
                std::max(0.0f, features[f] + offset));
            joint = mix(joint, (f << 8) ^ bucket);
        }
        out.idx[out.count++] = t * kTableSize + (joint % kTableSize);
    }
}

float
Cmac::value(const ActiveTiles &tiles) const
{
    float q = 0.0f;
    for (std::uint32_t i = 0; i < tiles.count; ++i)
        q += weights_[tiles.idx[i]];
    return q;
}

void
Cmac::update(const ActiveTiles &tiles, float delta)
{
    if (tiles.count == 0)
        return;
    const float step = delta / static_cast<float>(tiles.count);
    for (std::uint32_t i = 0; i < tiles.count; ++i)
        weights_[tiles.idx[i]] += step;
}

MorseScheduler::MorseScheduler(std::uint32_t channels,
                               std::uint32_t banksPerRank,
                               std::uint32_t maxCommands,
                               bool useCriticality, std::uint64_t seed,
                               float alpha, float gamma, float epsilon)
    : mirror_(channels), banksPerRank_(banksPerRank),
      maxCommands_(maxCommands), useCriticality_(useCriticality),
      rng_(seed ^ 0x4d4f525345ull), learners_(channels),
      alpha_(alpha), gamma_(gamma), epsilon_(epsilon)
{
}

void
MorseScheduler::onEnqueue(std::uint32_t channel, const MemRequest &req,
                          const DramCoord &coord, DramCycle now)
{
    mirror_.onEnqueue(channel, req, coord, banksPerRank_, now);
}

void
MorseScheduler::onIssue(std::uint32_t channel, const SchedCandidate &cand,
                        DramCycle)
{
    if (cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write) {
        mirror_.onCas(channel, cand.seq);
        // Data moved: the utilization reward credited to the decision
        // that issued this command.
        learners_[channel].pendingReward = 1.0f;
    }
}

std::uint32_t
MorseScheduler::featurize(std::uint32_t channel, const SchedCandidate &cand,
                          DramCycle now, float *out) const
{
    const auto &queue = mirror_.queue(channel);

    std::uint32_t reads = 0;
    std::uint32_t writes = 0;
    std::uint32_t readsSameRank = 0;
    std::uint32_t olderSameCore = 0;
    for (const MirrorEntry &entry : queue) {
        if (entry.isWrite) {
            ++writes;
        } else {
            ++reads;
            if (entry.rank == cand.coord.rank)
                ++readsSameRank;
        }
        if (entry.core == cand.core && entry.id < cand.seq)
            ++olderSameCore;
    }

    std::uint32_t n = 0;
    out[n++] = static_cast<float>(cand.cmd); // command type
    out[n++] = cand.rowHit ? 1.0f : 0.0f;
    out[n++] = static_cast<float>(std::min(reads / 4u, 15u));
    out[n++] = static_cast<float>(std::min(readsSameRank, 15u));
    out[n++] = static_cast<float>(std::min(writes / 4u, 15u));
    // Relative (ROB-position-like) order among same-core requests.
    out[n++] = static_cast<float>(std::min(olderSameCore, 7u));
    // Age, log2-quantized.
    const std::uint64_t age = now - cand.arrival;
    out[n++] = static_cast<float>(std::bit_width(age));
    if (useCriticality_) {
        out[n++] = cand.crit > 0 ? 1.0f : 0.0f;
        out[n++] = static_cast<float>(
            std::bit_width(static_cast<std::uint64_t>(cand.crit)));
    }
    return n;
}

int
MorseScheduler::pick(std::uint32_t channel,
                     const std::vector<SchedCandidate> &cands,
                     DramCycle now)
{
    Learner &learner = learners_[channel];

    // The hardware restriction of Fig. 11: consider only the oldest
    // maxCommands ready commands.
    order_.clear();
    for (std::size_t i = 0; i < cands.size(); ++i)
        order_.push_back(static_cast<int>(i));
    if (order_.size() > maxCommands_) {
        // Keep the oldest maxCommands; within the cap the evaluation
        // (and therefore cold-start tie-breaking) follows the queue:
        // demand reads in arrival order, then writebacks.
        std::nth_element(order_.begin(),
                         order_.begin() + maxCommands_ - 1, order_.end(),
                         [&](int a, int b) {
                             return cands[a].seq < cands[b].seq;
                         });
        order_.resize(maxCommands_);
        std::sort(order_.begin(), order_.end());
    }

    // Evaluate Q for each considered command.
    int best = -1;
    float bestQ = 0.0f;
    Cmac::ActiveTiles bestTiles;
    float feats[Cmac::kMaxFeatures];
    Cmac::ActiveTiles tiles;
    const bool explore = rng_.chance(epsilon_);
    const std::size_t randomPick = explore ? rng_.below(order_.size()) : 0;
    for (std::size_t k = 0; k < order_.size(); ++k) {
        const int i = order_[k];
        const std::uint32_t n = featurize(channel, cands[i], now, feats);
        learner.cmac.tiles(feats, n, tiles);
        // An epsilon-scale prior breaks cold-start ties the FR-FCFS
        // way (CAS > ACT > PRE, then oldest); it is far below the
        // reward scale, so learned values dominate once trained.
        const float tiebreak = cands[i].cmd == DramCmd::Read ||
                cands[i].cmd == DramCmd::Write
            ? 2e-3f
            : (cands[i].cmd == DramCmd::Act ? 1e-3f : 0.0f);
        const float q = learner.cmac.value(tiles) + tiebreak;
        const bool take = explore ? k == randomPick
                                  : (best < 0 || q > bestQ);
        if (take) {
            best = i;
            bestQ = q;
            bestTiles = tiles;
        }
    }

    // SARSA update for the previous decision on this channel:
    //   Q(s,a) += alpha * (r + gamma * Q(s',a') - Q(s,a))
    if (learner.hasPrev) {
        const float target =
            learner.pendingReward + gamma_ * bestQ - learner.prevQ;
        learner.cmac.update(learner.prevTiles, alpha_ * target);
    }
    learner.hasPrev = true;
    learner.prevQ = bestQ;
    learner.prevTiles = bestTiles;
    learner.pendingReward = 0.0f;

    return best;
}

} // namespace critmem

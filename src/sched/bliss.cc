#include "sched/bliss.hh"

#include <algorithm>
#include <tuple>

namespace critmem
{

BlissScheduler::BlissScheduler(std::uint32_t channels,
                               std::uint32_t numCores,
                               std::uint32_t threshold,
                               DramCycle clearInterval)
    : numCores_(numCores), threshold_(threshold),
      clearInterval_(clearInterval), nextClear_(clearInterval),
      lastCore_(channels, 0), streak_(channels, 0),
      blacklisted_(numCores, 0)
{
}

void
BlissScheduler::onIssue(std::uint32_t channel, const SchedCandidate &cand,
                        DramCycle)
{
    const bool cas =
        cand.cmd == DramCmd::Read || cand.cmd == DramCmd::Write;
    if (!cas || cand.core >= numCores_)
        return;
    if (streak_[channel] > 0 && lastCore_[channel] == cand.core) {
        if (++streak_[channel] >= threshold_) {
            blacklisted_[cand.core] = 1;
            streak_[channel] = 0;
        }
    } else {
        lastCore_[channel] = cand.core;
        streak_[channel] = 1;
    }
}

void
BlissScheduler::tick(DramCycle now)
{
    // Loop (not if) so that a cycle-skip landing past several clearing
    // boundaries still re-arms nextClear_ strictly beyond `now`.
    while (now >= nextClear_) {
        std::fill(blacklisted_.begin(), blacklisted_.end(),
                  std::uint8_t{0});
        nextClear_ += clearInterval_;
    }
}

int
BlissScheduler::pick(std::uint32_t,
                     const std::vector<SchedCandidate> &cands, DramCycle)
{
    // Lower = better: (blacklisted, row-miss, age).
    using Key = std::tuple<int, int, std::uint64_t>;
    int best = -1;
    Key bestKey{};
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const SchedCandidate &cand = cands[i];
        const int black =
            cand.core < numCores_ && blacklisted_[cand.core] ? 1 : 0;
        const Key key{black, cand.rowHit ? 0 : 1, cand.seq};
        if (best < 0 || key < bestKey) {
            best = static_cast<int>(i);
            bestKey = key;
        }
    }
    return best;
}

} // namespace critmem

/**
 * @file
 * Thread Cluster Memory scheduling (Kim et al. [12]).
 *
 * Every quantum, threads are split into a latency-sensitive cluster
 * (the least memory-intensive threads whose combined bandwidth share
 * stays below a threshold) and a bandwidth-sensitive cluster. Latency-
 * sensitive threads outrank everyone; inside the bandwidth cluster,
 * thread ranks are periodically shuffled for fairness. The final
 * tiebreak is FR-FCFS — or, in the paper's TCM+MaxStallTime hybrid
 * (Section 5.8.2), criticality-aware FR-FCFS.
 */

#ifndef CRITMEM_SCHED_TCM_HH
#define CRITMEM_SCHED_TCM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"
#include "sim/config.hh"
#include "sim/random.hh"

namespace critmem
{

/** TCM policy, optionally hybridized with criticality. */
class TcmScheduler : public Scheduler
{
  public:
    /**
     * @param numCores Number of hardware threads.
     * @param cfg Quantum / cluster threshold configuration.
     * @param critTiebreak Replace the FR-FCFS tiebreak with
     *        criticality-aware FR-FCFS (TCM+Crit hybrid).
     * @param seed Seed for the fairness shuffle.
     */
    TcmScheduler(std::uint32_t numCores, const SchedConfig &cfg,
                 bool critTiebreak, std::uint64_t seed);

    int pick(std::uint32_t channel,
             const std::vector<SchedCandidate> &cands,
             DramCycle now) override;

    void onIssue(std::uint32_t channel, const SchedCandidate &cand,
                 DramCycle now) override;

    void tick(DramCycle now) override;

    DramCycle
    nextEventCycle(DramCycle now) const override
    {
        (void)now;
        return std::min(nextQuantum_, nextShuffle_);
    }

    const char *
    name() const override
    {
        return critTiebreak_ ? "TCM+Crit" : "TCM";
    }

    /** @return true when @p core is in the latency-sensitive cluster. */
    bool
    inLatencyCluster(CoreId core) const
    {
        return latencyCluster_[core];
    }

  private:
    void recluster();
    void shuffle();

    const std::uint32_t numCores_;
    const SchedConfig cfg_;
    const bool critTiebreak_;
    Rng rng_;

    /** CAS commands served per core in the current quantum. */
    std::vector<std::uint64_t> served_;
    std::vector<bool> latencyCluster_;
    /** Smaller rank = higher priority. */
    std::vector<std::uint32_t> rank_;
    DramCycle nextQuantum_;
    DramCycle nextShuffle_;
};

} // namespace critmem

#endif // CRITMEM_SCHED_TCM_HH

/**
 * @file
 * Top-level simulated system: N cores driving a shared cache
 * hierarchy and the DDR3 subsystem, with the 4.27 GHz core clock and
 * the DRAM bus clock crossed through a fractional accumulator.
 */

#ifndef CRITMEM_SYSTEM_SYSTEM_HH
#define CRITMEM_SYSTEM_SYSTEM_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "check/fault_injector.hh"
#include "check/protocol_checker.hh"
#include "cpu/core.hh"
#include "dram/dram.hh"
#include "mem/hierarchy.hh"
#include "sched/registry.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace critmem
{

/** A complete CMP + memory system instance. */
class System
{
  public:
    /**
     * Parallel-workload system: every core runs one thread of @p app.
     */
    System(const SystemConfig &cfg, const AppParams &app);

    /**
     * Multiprogrammed system: core i runs @p perCore[i] alone in a
     * disjoint address space. An empty name leaves that core idle.
     */
    System(const SystemConfig &cfg,
           const std::vector<AppParams> &perCore);

    /**
     * Trace-backed system: core i replays its slice of the workload's
     * external trace file (registered via registerTraceWorkload).
     * cfg.numCores must match the trace's declared core count.
     * Dropped/delivered record counters appear under the "trace"
     * stats group. @throws TraceError when the file fails to decode.
     */
    System(const SystemConfig &cfg, const TraceWorkload &trace);

    /**
     * Run until every active core commits @p quotaPerCore micro-ops.
     *
     * @param quotaPerCore Commit quota per core.
     * @param stopAtQuota True (parallel methodology): cores stop
     *        fetching at the quota and the returned cycle count is the
     *        completion time. False (multiprogrammed methodology):
     *        cores keep running for contention until all reach the
     *        quota; per-core IPCs come from finishCycle().
     * @param maxCycles Safety limit; the run aborts with a warning.
     * @return total cycles elapsed.
     */
    Cycle run(std::uint64_t quotaPerCore, bool stopAtQuota = true,
              Cycle maxCycles = 0);

    /**
     * Prefill the shared L2 with lines drawn from the threads' far
     * regions — the steady-state resident set a long-running program
     * would have built — so that capacity evictions and dirty
     * writebacks behave realistically from the first measured cycle.
     *
     * @param fillFrac Fraction of L2 lines to populate.
     * @param dirtyFrac Probability a prefilled line is dirty.
     */
    void prewarmCaches(double fillFrac = 0.9, double dirtyFrac = 0.12);

    /**
     * Close the warmup window: zero every statistic and restart the
     * cores' commit quotas, keeping all microarchitectural state
     * (caches, predictors, row buffers) warm.
     */
    void resetStatsWindow();

    /** Cycles elapsed since the last resetStatsWindow() (or start). */
    Cycle windowCycles() const { return cycle_ - windowStart_; }

    /** First cycle of the current measurement window. */
    Cycle windowStart() const { return windowStart_; }

    Core &core(std::uint32_t i) { return *cores_[i]; }
    const Core &core(std::uint32_t i) const { return *cores_[i]; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    MemHierarchy &hierarchy() { return *hier_; }
    DramSystem &dram() { return *dram_; }
    Scheduler &scheduler() { return *sched_; }

    /** The attached checker, or nullptr when checking is disabled. */
    ProtocolChecker *checker() { return checker_.get(); }

    /** The attached injector, or nullptr when no fault is configured. */
    ScriptedFaultInjector *faultInjector() { return injector_.get(); }

    /**
     * End-of-run validation: conservation + refresh-deadline checks
     * and the stats cross-check. No-op when checking is disabled.
     * @param requireDrained Report still-outstanding requests as lost.
     */
    void finalizeChecks(bool requireDrained = true);

    /**
     * Cooperative cancellation: run() polls @p flag every 1024 cycles
     * and, when it becomes true, throws CheckViolation carrying the
     * per-channel diagnostics snapshots — the same dump the commit
     * watchdog produces, so a wall-clock-stuck job explains itself.
     * The execution engine's per-job timeout and graceful-shutdown
     * drain deadline are built on this hook. nullptr disables it.
     */
    void setAbortFlag(const std::atomic<bool> *flag)
    {
        abortFlag_ = flag;
    }
    stats::Group &statsRoot() { return root_; }
    const stats::Group &statsRoot() const { return root_; }
    const SystemConfig &config() const { return cfg_; }
    Cycle cycle() const { return cycle_; }

  private:
    void buildShared();
    void build(const std::vector<AppParams> &perCore, bool parallel);
    void buildTrace(const TraceWorkload &trace);
    void tickOnce();

    /**
     * Event-driven cycle skipping: ask every component for its next
     * event cycle and, when the earliest one is more than a cycle
     * away, bulk-advance the clocks (and per-cycle statistics) to the
     * cycle just before it. @p limit caps the skip at the run()'s
     * safety bound; @p pollBounded additionally caps it at the next
     * 1024-cycle abort/commit-watchdog poll boundary so those polls
     * fire on exactly the cycles they would have without skipping.
     */
    void fastForward(Cycle limit, bool pollBounded);

    /** The body of run(): tick/poll/fast-forward until done. */
    void runLoop(Cycle limit, bool skip, bool pollBounded,
                 bool watchCommits);

    /** Record counters for trace-backed systems ("trace" group). */
    struct TraceStats
    {
        explicit TraceStats(stats::Group &parent)
            : group("trace", &parent),
              records(group, "records",
                      "micro-ops delivered from the trace file"),
              dropped(group, "dropped",
                      "damaged records skipped by the recovery "
                      "policy")
        {
        }

        stats::Group group;
        stats::Scalar records;
        stats::Scalar dropped;
    };

    SystemConfig cfg_;
    stats::Group root_;
    std::unique_ptr<Scheduler> sched_;
    std::unique_ptr<DramSystem> dram_;
    std::unique_ptr<ProtocolChecker> checker_;
    std::unique_ptr<ScriptedFaultInjector> injector_;
    std::unique_ptr<MemHierarchy> hier_;
    std::unique_ptr<TraceStats> traceStats_;
    std::vector<std::unique_ptr<TraceGenerator>> gens_;
    std::vector<std::unique_ptr<Core>> cores_;

    const std::atomic<bool> *abortFlag_ = nullptr;

    /**
     * Per-core cached nextEventCycle() bounds for lazy core ticking:
     * while fast-forwarding is enabled, tickOnce() skips any core
     * whose bound is still in the future and that no memory
     * completion has poked; the core replays the skipped window's
     * accounting (Core::skipTo) when it next ticks.
     */
    std::vector<Cycle> coreNext_;
    bool lazyTick_ = false;

    Cycle cycle_ = 0;
    Cycle windowStart_ = 0;
    std::uint64_t dramAccum_ = 0;
    DramCycle dramCycle_ = 0;
};

} // namespace critmem

#endif // CRITMEM_SYSTEM_SYSTEM_HH

#include "system/system.hh"

#include <algorithm>

#include "check/diagnostics.hh"
#include "sim/log.hh"

namespace critmem
{

System::System(const SystemConfig &cfg, const AppParams &app)
    : cfg_(cfg), root_("sys")
{
    std::vector<AppParams> perCore(cfg.numCores, app);
    build(perCore, true);
}

System::System(const SystemConfig &cfg,
               const std::vector<AppParams> &perCore)
    : cfg_(cfg), root_("sys")
{
    if (perCore.size() != cfg.numCores)
        fatal("per-core workload list has ", perCore.size(),
              " entries for ", cfg.numCores, " cores");
    build(perCore, false);
}

System::System(const SystemConfig &cfg, const TraceWorkload &trace)
    : cfg_(cfg), root_("sys")
{
    if (cfg_.numCores != trace.numCores)
        fatal("trace workload '", trace.name, "' declares ",
              trace.numCores, " cores but the config has ",
              cfg_.numCores);
    buildTrace(trace);
}

void
System::buildShared()
{
    validateOrFatal(cfg_);

    // The channel-side watchdog defaults to the harness bound when
    // checking is on and the DRAM config did not set its own.
    if (cfg_.check.enabled && cfg_.dram.watchdogCycles == 0)
        cfg_.dram.watchdogCycles = cfg_.check.watchdogCycles;

    sched_ = makeScheduler(cfg_);
    dram_ = std::make_unique<DramSystem>(cfg_.dram, *sched_, root_);
    if (cfg_.check.enabled) {
        checker_ =
            std::make_unique<ProtocolChecker>(cfg_.check, cfg_.dram);
        checker_->attach(*dram_);
    }
    if (cfg_.check.fault != FaultKind::None) {
        injector_ =
            std::make_unique<ScriptedFaultInjector>(cfg_.check);
        dram_->setFaultInjector(injector_.get());
    }
    hier_ = std::make_unique<MemHierarchy>(cfg_, *dram_, root_);
}

void
System::buildTrace(const TraceWorkload &trace)
{
    buildShared();
    traceStats_ = std::make_unique<TraceStats>(root_);
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        // Per-core prewarm regions from the registration scan, with
        // memory-op-free cores contributing nothing.
        std::vector<std::pair<Addr, std::uint64_t>> far;
        if (i < trace.coreRegions.size() &&
            trace.coreRegions[i].second > 0)
            far.push_back(trace.coreRegions[i]);
        gens_.push_back(std::make_unique<ingest::ExternalTraceReader>(
            trace.name, trace.path, trace.options, i, std::move(far),
            &traceStats_->records, &traceStats_->dropped));
        cores_.push_back(std::make_unique<Core>(
            cfg_, i, *gens_.back(), *hier_, root_));
    }
}

void
System::build(const std::vector<AppParams> &perCore, bool parallel)
{
    buildShared();

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        if (parallel) {
            // SPMD threads of one application, shared address space.
            gens_.push_back(std::make_unique<SyntheticApp>(
                perCore[i], i, cfg_.numCores, 0, cfg_.seed));
        } else {
            // Disjoint address spaces, one single-threaded app each.
            const Addr base = static_cast<Addr>(i) << 40;
            gens_.push_back(std::make_unique<SyntheticApp>(
                perCore[i], 0, 1, base, cfg_.seed + i * 977));
        }
        cores_.push_back(std::make_unique<Core>(
            cfg_, i, *gens_.back(), *hier_, root_));
        if (perCore[i].name.empty())
            cores_.back()->setActive(false);
    }
}

void
System::prewarmCaches(double fillFrac, double dirtyFrac)
{
    Rng rng(cfg_.seed ^ 0x77a12f5ull);
    Cache &l2 = hier_->l2();
    const std::uint64_t lines = static_cast<std::uint64_t>(
        fillFrac * cfg_.l2.sizeBytes / cfg_.l2.blockBytes);

    // Gather every active thread's far regions once.
    std::vector<std::pair<Addr, std::uint64_t>> regions;
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        if (!cores_[i]->active())
            continue;
        for (const auto &region : gens_[i]->farRegions()) {
            if (region.second > 0)
                regions.push_back(region);
        }
    }
    if (regions.empty())
        return;

    for (std::uint64_t n = 0; n < lines; ++n) {
        const auto &[base, size] = regions[rng.below(regions.size())];
        const Addr block =
            l2.blockAlign(base + rng.below(size));
        l2.insert(block, rng.chance(dirtyFrac) ? LineState::Modified
                                               : LineState::Exclusive);
    }
}

void
System::resetStatsWindow()
{
    root_.resetAll();
    if (checker_)
        checker_->onStatsReset();
    for (auto &core : cores_)
        core->resetWindow();
    windowStart_ = cycle_;
}

void
System::finalizeChecks(bool requireDrained)
{
    if (!checker_)
        return;
    checker_->finalize(requireDrained);
    checker_->crossCheckStats(root_);
}

void
System::tickOnce()
{
    ++cycle_;
    hier_->tick(cycle_);
    if (lazyTick_) {
        // Lazy core ticking: only cores whose cached next-event bound
        // is due (or that a completion delivered by the hierarchy
        // tick above just poked) run a real tick; the rest stay
        // frozen and bulk-replay the window when they next wake.
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            Core &core = *cores_[i];
            if (!core.poked() && coreNext_[i] > cycle_)
                continue;
            core.skipTo(cycle_ - 1);
            core.clearPoked();
            core.tick(cycle_);
            coreNext_[i] = core.nextEventCycle(cycle_);
        }
    } else {
        for (auto &core : cores_)
            core->tick(cycle_);
    }
    // Clock crossing: one DRAM tick whenever the fractional
    // accumulator of busMHz/cpuMHz wraps (4 CPU cycles per DRAM cycle
    // at DDR3-2133 under a 4.27 GHz core).
    dramAccum_ += cfg_.dram.busMHz;
    if (dramAccum_ >= cfg_.core.freqMHz) {
        dramAccum_ -= cfg_.core.freqMHz;
        dram_->tick(++dramCycle_);
    }
}

void
System::fastForward(Cycle limit, bool pollBounded)
{
    // Gather bounds cheapest-first and bail as soon as one pins the
    // next event to the very next tick — on busy cycles this keeps
    // the fast-forward probe close to free.
    Cycle target = limit;
    if (pollBounded)
        target = std::min(target, (cycle_ | Cycle{0x3ff}) + 1);
    // The cached per-core bounds are current: tickOnce() refreshed
    // every core that was poked or due this cycle, and the rest are
    // frozen with their bound still in the future.
    for (const Cycle bound : coreNext_) {
        target = std::min(target, bound);
        if (target <= cycle_ + 1)
            return;
    }
    target = std::min(target, hier_->nextEventCycle(cycle_));
    if (target <= cycle_ + 1)
        return;

    // Translate the DRAM domain's next event into the CPU cycle on
    // which the clock-crossing accumulator reaches it: the m-th
    // future DRAM tick fires on the k-th future CPU cycle where
    // dramAccum_ + k*busMHz first reaches m*freqMHz.
    const DramCycle e = dram_->nextEventCycle(dramCycle_);
    if (e != kNoCycle) {
        if (e <= dramCycle_)
            return; // defensive: treat a stale bound as "event now"
        const std::uint64_t m = e - dramCycle_;
        const std::uint64_t need = m * cfg_.core.freqMHz - dramAccum_;
        const std::uint64_t k =
            (need + cfg_.dram.busMHz - 1) / cfg_.dram.busMHz;
        target = std::min(target, cycle_ + k);
    }

    if (target <= cycle_ + 1)
        return; // the next event is the very next tick — nothing to skip

    // Skip to the cycle *before* the earliest event; the event's own
    // cycle runs through the ordinary tickOnce() path.
    const Cycle stop = target - 1;
    // Cores stay lazy — their skipped window is replayed when they
    // next wake or tick; only the hierarchy clock advances eagerly.
    hier_->skipTo(stop);

    const std::uint64_t cpuCycles = stop - cycle_;
    const std::uint64_t total =
        dramAccum_ + cpuCycles * cfg_.dram.busMHz;
    const std::uint64_t dramTicks = total / cfg_.core.freqMHz;
    dramAccum_ = total % cfg_.core.freqMHz;
    if (dramTicks != 0) {
        dramCycle_ += dramTicks;
        dram_->skipTo(dramCycle_);
    }
    cycle_ = stop;
}

Cycle
System::run(std::uint64_t quotaPerCore, bool stopAtQuota,
            Cycle maxCycles)
{
    if (quotaPerCore == 0)
        fatal("run() needs a nonzero quota");
    if (maxCycles == 0)
        maxCycles = quotaPerCore * 4000 + 10'000'000;

    for (auto &core : cores_) {
        core->setQuota(quotaPerCore);
        core->setStopAtQuota(stopAtQuota);
    }

    // Commit-level forward-progress watchdog: catches system-wide
    // deadlocks (e.g. a lost completion wedging a core's ROB) that
    // the DRAM-side watchdog cannot see because the channel looks
    // legitimately idle.
    const bool watchCommits =
        checker_ != nullptr && cfg_.check.commitWatchdogCycles != 0;

    // Fault injection perturbs channel timing outside the
    // nextEventCycle contract, so it forces the plain loop.
    const bool skip = cfg_.fastForward && injector_ == nullptr;
    const bool pollBounded = abortFlag_ != nullptr || watchCommits;
    lazyTick_ = skip;
    // A zero bound makes every core tick (and publish a real bound)
    // on the first cycle of the run.
    coreNext_.assign(cores_.size(), 0);
    // Lazily-skipped cores replay their idle accounting when poked;
    // whatever window is still pending at exit (including exits via
    // the watchdog/abort throws) is settled here so the statistics
    // always cover the full run.
    const auto syncCores = [&] {
        if (!lazyTick_)
            return;
        for (auto &core : cores_)
            core->skipTo(cycle_);
        lazyTick_ = false;
    };

    const Cycle limit = cycle_ + maxCycles;
    try {
        runLoop(limit, skip, pollBounded, watchCommits);
    } catch (...) {
        syncCores();
        throw;
    }
    syncCores();
    return cycle_;
}

void
System::runLoop(Cycle limit, bool skip, bool pollBounded,
                bool watchCommits)
{
    const Cycle start = cycle_;
    std::uint64_t lastCommitTotal = 0;
    Cycle lastCommitCycle = cycle_;
    while (true) {
        bool allDone = true;
        for (const auto &core : cores_) {
            if (!core->finished()) {
                allDone = false;
                break;
            }
        }
        if (allDone)
            break;
        if (cycle_ >= limit) {
            warn("run() hit the ", limit - start,
                 "-cycle safety limit before all cores finished");
            break;
        }
        tickOnce();

        if (abortFlag_ != nullptr && (cycle_ & 0x3ff) == 0 &&
            abortFlag_->load(std::memory_order_relaxed)) {
            std::string dump;
            for (std::uint32_t c = 0; c < dram_->numChannels(); ++c)
                dump +=
                    formatSnapshot(dram_->channel(c).snapshot(dramCycle_));
            throw CheckViolation(Violation{
                RuleId::Watchdog, 0, dramCycle_,
                "run aborted by the execution engine at cycle " +
                    std::to_string(cycle_) +
                    " (per-job timeout or shutdown drain deadline); "
                    "channel snapshots:\n" +
                    dump});
        }

        if (watchCommits && (cycle_ & 0x3ff) == 0) {
            std::uint64_t committed = 0;
            for (const auto &core : cores_)
                committed += core->committed();
            if (committed != lastCommitTotal) {
                lastCommitTotal = committed;
                lastCommitCycle = cycle_;
            } else if (cycle_ - lastCommitCycle >=
                       cfg_.check.commitWatchdogCycles) {
                std::string dump;
                for (std::uint32_t c = 0; c < dram_->numChannels(); ++c)
                    dump += formatSnapshot(
                        dram_->channel(c).snapshot(dramCycle_));
                throw CheckViolation(Violation{
                    RuleId::Watchdog, 0, dramCycle_,
                    "no core committed for " +
                        std::to_string(cycle_ - lastCommitCycle) +
                        " CPU cycles; channel snapshots:\n" + dump});
            }
        }

        if (skip) {
            // The loop exits before ticking again once every core is
            // finished; skipping here would overrun that exit cycle.
            bool done = true;
            for (const auto &core : cores_) {
                if (!core->finished()) {
                    done = false;
                    break;
                }
            }
            if (!done)
                fastForward(limit, pollBounded);
        }
    }
}

} // namespace critmem

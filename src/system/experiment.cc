#include "system/experiment.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/log.hh"

namespace critmem
{

std::uint64_t
defaultQuota(std::uint64_t fallback)
{
    if (const char *env = std::getenv("CRITMEM_INSTRS")) {
        const std::uint64_t value = std::strtoull(env, nullptr, 10);
        if (value > 0)
            return value;
        warn("ignoring unparsable CRITMEM_INSTRS='", env, "'");
    }
    return fallback;
}

std::uint64_t
defaultWarmup(std::uint64_t quota)
{
    if (const char *env = std::getenv("CRITMEM_WARMUP"))
        return std::strtoull(env, nullptr, 10);
    return quota / 2;
}

RunResult
collect(System &sys)
{
    // With checking enabled, a run only yields numbers after the
    // checker signs off (requests still queued at the quota are in
    // flight, not lost, so drainage is not required here).
    sys.finalizeChecks(/*requireDrained=*/false);

    RunResult result;
    result.cycles = sys.windowCycles();

    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        const Core &core = sys.core(i);
        const Core::Stats &cs = core.coreStats();
        const Cycle fin = core.finishCycle();
        result.finishCycles.push_back(
            fin == kNoCycle ? kNoCycle : fin - sys.windowStart());
        result.committed.push_back(cs.committedOps.value());
        result.dynamicLoads += cs.committedLoads.value();
        result.blockingLoads += cs.blockingLoads.value();
        result.robBlockedCycles += cs.robHeadBlockedCycles.value();
        result.coreCycles += cs.cycles.value();
        result.loadsIssued += cs.loadsIssued.value();
        result.critLoadsIssued += cs.critLoadsIssued.value();
        result.lqFullCycles += cs.lqFullCycles.value();
        if (const CommitBlockPredictor *cbp = core.cbp()) {
            result.maxCbpValue =
                std::max(result.maxCbpValue, cbp->maxObserved());
            result.cbpPopulated += cbp->populatedEntries();
        }
    }

    const MemHierarchy::Stats &ms = sys.hierarchy().memStats();
    result.l2MissLatCrit = ms.l2MissLatCrit.mean();
    result.l2MissLatNonCrit = ms.l2MissLatNonCrit.mean();
    result.demandMisses = ms.demandMisses.value();
    result.critMissCount = ms.l2MissLatCrit.count();
    result.nonCritMissCount = ms.l2MissLatNonCrit.count();

    DramSystem &dram = sys.dram();
    for (std::uint32_t c = 0; c < dram.numChannels(); ++c) {
        const DramChannel::Stats &ds = dram.channel(c).channelStats();
        result.rowHits += ds.rowHits.value();
        result.rowMisses += ds.rowMisses.value();
        result.dramReads += ds.reads.value();
    }
    return result;
}

RunResult
runSystem(System &sys, std::uint64_t quota, std::uint64_t warmup,
          bool stopAtQuota)
{
    sys.prewarmCaches();
    const std::uint64_t w =
        warmup == kDefaultWarmup ? defaultWarmup(quota) : warmup;
    if (w) {
        sys.run(w, /*stopAtQuota=*/false);
        sys.resetStatsWindow();
    }
    sys.run(quota, stopAtQuota);
    return collect(sys);
}

RunResult
runParallel(const SystemConfig &cfg, const AppParams &app,
            std::uint64_t quota, std::uint64_t warmup)
{
    validateOrFatal(cfg);
    System sys(cfg, app);
    return runSystem(sys, quota, warmup, /*stopAtQuota=*/true);
}

RunResult
runBundle(const SystemConfig &cfg, const Bundle &bundle,
          std::uint64_t quota, std::uint64_t warmup)
{
    validateOrFatal(cfg);
    if (cfg.numCores != bundle.apps.size())
        fatal("bundle '", bundle.name, "' needs ", bundle.apps.size(),
              " cores, config has ", cfg.numCores);
    std::vector<AppParams> perCore;
    for (const std::string &name : bundle.apps)
        perCore.push_back(appParams(name));
    System sys(cfg, perCore);
    return runSystem(sys, quota, warmup, /*stopAtQuota=*/false);
}

RunResult
runAloneResult(const SystemConfig &cfg, const AppParams &app,
               std::uint64_t quota, std::uint64_t warmup)
{
    validateOrFatal(cfg);
    std::vector<AppParams> perCore(cfg.numCores);
    perCore[0] = app;
    // Remaining cores stay idle: default AppParams with empty name.
    System sys(cfg, perCore);
    return runSystem(sys, quota, warmup, /*stopAtQuota=*/true);
}

double
runAlone(const SystemConfig &cfg, const AppParams &app,
         std::uint64_t quota)
{
    return runAloneResult(cfg, app, quota).ipc(0, quota);
}

double
weightedSpeedup(const RunResult &run,
                const std::array<double, 4> &aloneIpc,
                std::uint64_t quota)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < aloneIpc.size(); ++i) {
        if (aloneIpc[i] > 0.0)
            sum += run.ipc(static_cast<std::uint32_t>(i), quota) /
                aloneIpc[i];
    }
    return sum;
}

double
maxSlowdown(const RunResult &run,
            const std::array<double, 4> &aloneIpc, std::uint64_t quota)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < aloneIpc.size(); ++i) {
        const double shared =
            run.ipc(static_cast<std::uint32_t>(i), quota);
        if (shared > 0.0)
            worst = std::max(worst, aloneIpc[i] / shared);
    }
    return worst;
}

} // namespace critmem

/**
 * @file
 * Experiment harness helpers shared by the benches and examples:
 * single-run drivers, result aggregation, speedup and
 * weighted-speedup computation (Snavely/Tullsen [24]).
 */

#ifndef CRITMEM_SYSTEM_EXPERIMENT_HH
#define CRITMEM_SYSTEM_EXPERIMENT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "system/system.hh"
#include "trace/workloads.hh"

namespace critmem
{

/** Aggregated outcome of one simulation run. */
struct RunResult
{
    /** Cycles until every core finished (the execution time). */
    Cycle cycles = 0;
    /** Per-core cycle at which the commit quota was reached. */
    std::vector<Cycle> finishCycles;
    /** Per-core committed micro-ops (>= quota). */
    std::vector<std::uint64_t> committed;

    // Core-side aggregates (summed over cores).
    std::uint64_t dynamicLoads = 0;
    std::uint64_t blockingLoads = 0;
    std::uint64_t robBlockedCycles = 0;
    std::uint64_t coreCycles = 0;
    std::uint64_t loadsIssued = 0;
    std::uint64_t critLoadsIssued = 0;
    std::uint64_t lqFullCycles = 0;

    // Memory-side aggregates.
    double l2MissLatCrit = 0.0;    ///< mean, CPU cycles
    double l2MissLatNonCrit = 0.0; ///< mean, CPU cycles
    std::uint64_t demandMisses = 0;
    std::uint64_t critMissCount = 0;
    std::uint64_t nonCritMissCount = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t dramReads = 0;

    // Predictor-side aggregates.
    std::uint64_t maxCbpValue = 0;   ///< Table 5 raw maximum
    std::uint64_t cbpPopulated = 0;  ///< flagged entries, summed

    /** Per-core IPC over the measurement window. */
    double
    ipc(std::uint32_t core, std::uint64_t quota) const
    {
        const Cycle fin = finishCycles[core];
        return fin == 0 || fin == kNoCycle
            ? 0.0
            : static_cast<double>(quota) / static_cast<double>(fin);
    }
};

/** Read CRITMEM_INSTRS, else @p fallback (per-core commit quota). */
std::uint64_t defaultQuota(std::uint64_t fallback);

/** Read CRITMEM_WARMUP, else half the quota (warmup instructions). */
std::uint64_t defaultWarmup(std::uint64_t quota);

/** Sentinel warmup value meaning "use defaultWarmup(quota)". */
inline constexpr std::uint64_t kDefaultWarmup = ~std::uint64_t{0};

/** Collect a RunResult from a finished System. */
RunResult collect(System &sys);

/**
 * Drive an already-constructed System through the standard
 * methodology — cache prewarm, warmup window, measured run — and
 * collect the result. The primitive under runParallel/runBundle/
 * runAloneResult; callers that need the System afterwards (stats
 * export, diagnostics) use it directly.
 * @param stopAtQuota See System::run().
 */
RunResult runSystem(System &sys, std::uint64_t quota,
                    std::uint64_t warmup = kDefaultWarmup,
                    bool stopAtQuota = true);

/**
 * Run one parallel application (all cores) to its quota.
 * @param cfg Complete configuration (scheduler, predictor, ...).
 * @param warmup Warmup micro-ops; kDefaultWarmup reads the
 *        CRITMEM_WARMUP environment (else half the quota).
 */
RunResult runParallel(const SystemConfig &cfg, const AppParams &app,
                      std::uint64_t quota,
                      std::uint64_t warmup = kDefaultWarmup);

/** Run a Table 4 bundle with the multiprogrammed methodology. */
RunResult runBundle(const SystemConfig &cfg, const Bundle &bundle,
                    std::uint64_t quota,
                    std::uint64_t warmup = kDefaultWarmup);

/**
 * Run @p app alone on core 0 of the multiprogrammed system (other
 * cores idle), for weighted-speedup baselining. The alone-IPC is
 * result.ipc(0, quota).
 */
RunResult runAloneResult(const SystemConfig &cfg, const AppParams &app,
                         std::uint64_t quota,
                         std::uint64_t warmup = kDefaultWarmup);

/**
 * Convenience wrapper around runAloneResult().
 * @return the app's alone-IPC.
 */
double runAlone(const SystemConfig &cfg, const AppParams &app,
                std::uint64_t quota);

/** baseCycles / testCycles. */
inline double
speedup(const RunResult &base, const RunResult &test)
{
    return static_cast<double>(base.cycles) /
        static_cast<double>(test.cycles);
}

/**
 * Weighted speedup of a bundle run: sum over apps of IPC_shared /
 * IPC_alone.
 */
double weightedSpeedup(const RunResult &run,
                       const std::array<double, 4> &aloneIpc,
                       std::uint64_t quota);

/** Maximum per-app slowdown (IPC_alone / IPC_shared). */
double maxSlowdown(const RunResult &run,
                   const std::array<double, 4> &aloneIpc,
                   std::uint64_t quota);

} // namespace critmem

#endif // CRITMEM_SYSTEM_EXPERIMENT_HH

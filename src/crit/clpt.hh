/**
 * @file
 * The Critical Load Prediction Table of Subramaniam et al. [29],
 * reproduced as a comparison point (Section 2 / 5.3.3).
 *
 * ROB-side counters track each load's *direct* consumers as they
 * rename; the count is stored in this PC-indexed table when the load
 * commits. A later dynamic instance is marked critical when its
 * stored count reaches the threshold (3 in the paper's main
 * configuration; 2 in the sensitivity rerun). The Consumers variant
 * forwards the stored count itself as the criticality magnitude.
 */

#ifndef CRITMEM_CRIT_CLPT_HH
#define CRITMEM_CRIT_CLPT_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace critmem
{

/** Per-core critical load prediction table. */
class Clpt
{
  public:
    /**
     * @param entries Table entries (power of two).
     * @param threshold Consumers required to mark a load critical.
     * @param magnitudeMode True = CLPT-Consumers (forward the count),
     *        false = CLPT-Binary.
     */
    Clpt(std::uint32_t entries, std::uint32_t threshold,
         bool magnitudeMode);

    /** Lookup at load issue; 0 = non-critical. */
    CritLevel predict(std::uint64_t pc) const;

    /** Store the consumer count observed when a load commits. */
    void recordConsumers(std::uint64_t pc, std::uint32_t consumers);

  private:
    std::uint64_t
    index(std::uint64_t pc) const
    {
        return (pc >> 2) & (table_.size() - 1);
    }

    std::vector<std::uint32_t> table_;
    std::uint32_t threshold_;
    bool magnitudeMode_;
};

} // namespace critmem

#endif // CRITMEM_CRIT_CLPT_HH

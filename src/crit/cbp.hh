/**
 * @file
 * The Commit Block Predictor (CBP) — the paper's Section 3 proposal.
 *
 * A small, tagless, direct-mapped SRAM indexed by a substring of the
 * load PC. When a load that blocked the head of the ROB commits, the
 * table entry is annotated with one of five metrics (Section 3.1):
 * a saturating bit (Binary), the number of blocking episodes
 * (BlockCount), the most recent stall length (LastStallTime), the
 * largest observed stall (MaxStallTime), or the accumulated stall
 * cycles (TotalStallTime). Future dynamic instances of any load
 * aliasing to that entry are flagged critical at issue, and the read
 * magnitude is piggybacked to the memory scheduler.
 *
 * An entry count of zero selects the paper's "unlimited" reference
 * configuration: a fully-associative, unaliased table. An optional
 * periodic full reset (Section 5.3.2) limits table saturation.
 */

#ifndef CRITMEM_CRIT_CBP_HH
#define CRITMEM_CRIT_CBP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace critmem
{

/** The per-core commit block predictor. */
class CommitBlockPredictor
{
  public:
    /**
     * @param kind One of the five CBP annotations.
     * @param entries Table entries (power of two), or 0 = unlimited.
     * @param resetInterval Full-reset period in CPU cycles; 0 = never.
     * @param counterWidth Saturating width in bits; 0 = unbounded.
     * @param probShift Probabilistic-update shift (Riley & Zilles
     *        [21]) for the accumulating annotations; 0 = exact.
     */
    CommitBlockPredictor(CritPredictor kind, std::uint32_t entries,
                         std::uint64_t resetInterval,
                         std::uint32_t counterWidth = 0,
                         std::uint32_t probShift = 0);

    /**
     * Table lookup at load issue.
     * @return the criticality magnitude (0 = predicted non-critical).
     */
    CritLevel predict(std::uint64_t pc) const;

    /**
     * Annotate the table when a load that blocked the ROB head
     * commits.
     * @param stallCycles Length of the ROB-head stall it caused.
     */
    void update(std::uint64_t pc, std::uint64_t stallCycles);

    /** Apply the periodic reset if the interval elapsed. */
    void maybeReset(Cycle now);

    /**
     * Cycle of the next periodic reset (kNoCycle when resets are
     * disabled) — the core's cycle-skip bound for maybeReset().
     */
    Cycle nextResetAt() const { return nextReset_; }

    /** Largest raw value ever written (Table 5's "Max Obs. Value"). */
    std::uint64_t maxObserved() const { return maxObserved_; }

    /** Entries currently flagged critical (saturation studies). */
    std::uint64_t populatedEntries() const;

    CritPredictor kind() const { return kind_; }
    std::uint32_t entries() const { return entries_; }

  private:
    std::uint64_t index(std::uint64_t pc) const;

    CritPredictor kind_;
    std::uint32_t entries_;
    std::uint64_t resetInterval_;
    std::uint64_t saturation_;
    std::uint32_t probShift_;
    Rng rng_;
    Cycle nextReset_;
    std::vector<std::uint64_t> table_;
    std::unordered_map<std::uint64_t, std::uint64_t> unlimited_;
    std::uint64_t maxObserved_ = 0;
};

} // namespace critmem

#endif // CRITMEM_CRIT_CBP_HH

#include "crit/cbp.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"

namespace critmem
{

CommitBlockPredictor::CommitBlockPredictor(CritPredictor kind,
                                           std::uint32_t entries,
                                           std::uint64_t resetInterval,
                                           std::uint32_t counterWidth,
                                           std::uint32_t probShift)
    : kind_(kind), entries_(entries), resetInterval_(resetInterval),
      saturation_(counterWidth == 0 || counterWidth >= 64
                      ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << counterWidth) - 1),
      probShift_(probShift), rng_(0x5a17u + entries * 131),
      nextReset_(resetInterval ? resetInterval : kNoCycle)
{
    if (!isCbp(kind))
        fatal("CommitBlockPredictor built with non-CBP kind '",
              toString(kind), "'");
    if (entries_ != 0) {
        if (!std::has_single_bit(entries_))
            fatal("CBP entry count must be a power of two or 0");
        table_.assign(entries_, 0);
    }
}

std::uint64_t
CommitBlockPredictor::index(std::uint64_t pc) const
{
    // Loads are word-spaced; drop the low bits before slicing the
    // index substring, as a branch-predictor-style table would.
    return (pc >> 2) & (entries_ - 1);
}

CritLevel
CommitBlockPredictor::predict(std::uint64_t pc) const
{
    std::uint64_t value = 0;
    if (entries_ == 0) {
        const auto it = unlimited_.find(pc);
        value = it == unlimited_.end() ? 0 : it->second;
    } else {
        value = table_[index(pc)];
    }
    // The scheduler comparators carry a bounded magnitude; clamp the
    // (potentially 27-bit-plus) raw counter into CritLevel.
    return static_cast<CritLevel>(
        std::min<std::uint64_t>(value, 0xffffffffull));
}

void
CommitBlockPredictor::update(std::uint64_t pc, std::uint64_t stallCycles)
{
    std::uint64_t &slot = entries_ == 0 ? unlimited_[pc]
                                        : table_[index(pc)];
    // Probabilistic accumulation (Riley & Zilles [21]): apply an
    // accumulating update with probability 2^-probShift and scale it
    // by 2^probShift -- unbiased, and a narrow counter advances in
    // coarse steps instead of overflowing.
    const bool accumulating = kind_ == CritPredictor::CbpBlockCount ||
        kind_ == CritPredictor::CbpTotalStall;
    std::uint64_t scale = 1;
    if (probShift_ > 0 && accumulating) {
        if (rng_.below(std::uint64_t{1} << probShift_) != 0)
            return; // update dropped this time
        scale = std::uint64_t{1} << probShift_;
    }
    switch (kind_) {
      case CritPredictor::CbpBinary:
        slot = 1;
        break;
      case CritPredictor::CbpBlockCount:
        slot += scale;
        break;
      case CritPredictor::CbpLastStall:
        slot = stallCycles;
        break;
      case CritPredictor::CbpMaxStall:
        slot = std::max(slot, stallCycles);
        break;
      case CritPredictor::CbpTotalStall:
        slot += stallCycles * scale;
        break;
      default:
        panic("unreachable CBP kind");
    }
    slot = std::min(slot, saturation_);
    maxObserved_ = std::max(maxObserved_, slot);
}

void
CommitBlockPredictor::maybeReset(Cycle now)
{
    if (now < nextReset_)
        return;
    nextReset_ = now + resetInterval_;
    std::fill(table_.begin(), table_.end(), 0);
    unlimited_.clear();
}

std::uint64_t
CommitBlockPredictor::populatedEntries() const
{
    if (entries_ == 0)
        return unlimited_.size();
    std::uint64_t count = 0;
    for (const std::uint64_t value : table_)
        count += value != 0;
    return count;
}

} // namespace critmem

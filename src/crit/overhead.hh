/**
 * @file
 * Analytic storage-overhead model reproducing the paper's bit
 * accounting: Table 5 (criticality counter widths) and Section 5.7
 * (SRAM bytes for the CASRAS-Crit implementation).
 */

#ifndef CRITMEM_CRIT_OVERHEAD_HH
#define CRITMEM_CRIT_OVERHEAD_HH

#include <cstdint>

#include "sim/config.hh"

namespace critmem
{

/** Storage accounting for one CBP configuration. */
struct OverheadReport
{
    std::uint32_t widthBits = 0;       ///< counter width per entry
    std::uint64_t perCoreMinBits = 0;  ///< cheapest lookup option
    std::uint64_t perCoreMaxBits = 0;  ///< costliest lookup option
    std::uint64_t perChannelQueueBits = 0;
    std::uint64_t systemMinBytes = 0;  ///< whole-CMP SRAM, min option
    std::uint64_t systemMaxBytes = 0;  ///< whole-CMP SRAM, max option
};

/** @return bits needed to hold @p maxValue (Table 5's Width column). */
std::uint32_t counterWidth(std::uint64_t maxValue);

/**
 * Compute the Section 5.7 accounting.
 *
 * Per core: a ROB-sequence register, a PC-substring index register,
 * the tagless CBP table, and — depending on the lookup
 * implementation — a load-queue expansion of zero bits (lookup via
 * the ROB), `width` bits (prediction stored at decode), or
 * `log2(entries)` bits (PC substring stored at issue). Per channel:
 * one magnitude per transaction-queue entry.
 *
 * @param widthBits Counter width (1 for Binary; measured otherwise).
 * @param cbpEntries CBP table entries.
 * @param cfg System dimensions (cores, channels, LQ, ROB, queue).
 */
OverheadReport storageOverhead(std::uint32_t widthBits,
                               std::uint32_t cbpEntries,
                               const SystemConfig &cfg);

} // namespace critmem

#endif // CRITMEM_CRIT_OVERHEAD_HH

#include "crit/overhead.hh"

#include <algorithm>
#include <bit>

namespace critmem
{

std::uint32_t
counterWidth(std::uint64_t maxValue)
{
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::bit_width(maxValue)));
}

OverheadReport
storageOverhead(std::uint32_t widthBits, std::uint32_t cbpEntries,
                const SystemConfig &cfg)
{
    OverheadReport report;
    report.widthBits = widthBits;

    const std::uint32_t seqBits = static_cast<std::uint32_t>(
        std::bit_width(cfg.core.robEntries - 1));
    const std::uint32_t idxBits = static_cast<std::uint32_t>(
        std::bit_width(std::max(cbpEntries, 2u) - 1));
    const std::uint64_t tableBits =
        static_cast<std::uint64_t>(cbpEntries) * widthBits;

    const std::uint64_t baseBits = seqBits + idxBits + tableBits;
    // Load-queue expansion options (Section 3.2): lookup-at-issue via
    // the ROB needs none; storing the decode-time prediction needs
    // `width` bits per entry; storing the PC substring needs idxBits.
    const std::uint64_t lqOptionMax =
        static_cast<std::uint64_t>(cfg.core.lqEntries) *
        std::max(widthBits, idxBits);

    report.perCoreMinBits = baseBits;
    report.perCoreMaxBits = baseBits + lqOptionMax;
    report.perChannelQueueBits =
        static_cast<std::uint64_t>(cfg.dram.queueEntries) * widthBits;

    const std::uint64_t queueTotal =
        report.perChannelQueueBits * cfg.dram.channels;
    report.systemMinBytes =
        (report.perCoreMinBits * cfg.numCores + queueTotal + 7) / 8;
    report.systemMaxBytes =
        (report.perCoreMaxBits * cfg.numCores + queueTotal + 7) / 8;
    return report;
}

} // namespace critmem

#include "crit/clpt.hh"

#include <bit>

#include "sim/log.hh"

namespace critmem
{

Clpt::Clpt(std::uint32_t entries, std::uint32_t threshold,
           bool magnitudeMode)
    : table_(entries, 0), threshold_(threshold),
      magnitudeMode_(magnitudeMode)
{
    if (entries == 0 || !std::has_single_bit(entries))
        fatal("CLPT entry count must be a nonzero power of two");
}

CritLevel
Clpt::predict(std::uint64_t pc) const
{
    const std::uint32_t count = table_[index(pc)];
    if (count < threshold_)
        return 0;
    return magnitudeMode_ ? count : 1;
}

void
Clpt::recordConsumers(std::uint64_t pc, std::uint32_t consumers)
{
    table_[index(pc)] = consumers;
}

} // namespace critmem

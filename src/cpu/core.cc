#include "cpu/core.hh"

#include <algorithm>

#include "sim/log.hh"

namespace critmem
{

namespace
{

/** 8-byte granularity used for store-to-load forwarding matches. */
Addr
wordAlign(Addr addr)
{
    return addr & ~Addr{7};
}

} // namespace

Core::Stats::Stats(stats::Group &parent, CoreId id)
    : group("core" + std::to_string(id), &parent),
      cycles(group, "cycles", "CPU cycles simulated"),
      committedOps(group, "committedOps", "micro-ops committed"),
      committedLoads(group, "committedLoads", "loads committed"),
      committedStores(group, "committedStores", "stores committed"),
      committedBranches(group, "committedBranches", "branches committed"),
      mispredicts(group, "mispredicts", "branches mispredicted"),
      blockingLoads(group, "blockingLoads",
                    "committed loads that blocked the ROB head"),
      robHeadBlockedCycles(group, "robHeadBlockedCycles",
                           "cycles a load blocked the ROB head"),
      robFullCycles(group, "robFullCycles",
                    "dispatch stalls: ROB full"),
      lqFullCycles(group, "lqFullCycles",
                   "dispatch stalls: load queue full"),
      sqFullCycles(group, "sqFullCycles",
                   "dispatch stalls: store queue full"),
      iqFullCycles(group, "iqFullCycles",
                   "dispatch stalls: issue queue full"),
      branchLimitCycles(group, "branchLimitCycles",
                        "dispatch stalls: unresolved-branch limit"),
      loadsIssued(group, "loadsIssued", "loads sent to the hierarchy"),
      loadsForwarded(group, "loadsForwarded",
                     "loads satisfied by store forwarding"),
      critLoadsIssued(group, "critLoadsIssued",
                      "loads issued with a critical prediction"),
      loadRetries(group, "loadRetries",
                  "load issue attempts rejected by the hierarchy"),
      headStallLength(group, "headStallLength",
                      "per-blocking-load ROB-head stall, cycles")
{
}

Core::Core(const SystemConfig &cfg, CoreId id, TraceGenerator &gen,
           MemHierarchy &mem, stats::Group &parent)
    : cfg_(cfg), id_(id), gen_(gen), mem_(mem),
      rob_(cfg.core.robEntries), stats_(parent, id)
{
    const CritConfig &crit = cfg.crit;
    if (isCbp(crit.predictor)) {
        cbp_ = std::make_unique<CommitBlockPredictor>(
            crit.predictor, crit.tableEntries, crit.resetInterval,
            crit.counterWidth, crit.probShift);
    } else if (crit.predictor == CritPredictor::ClptBinary ||
               crit.predictor == CritPredictor::ClptConsumers) {
        clpt_ = std::make_unique<Clpt>(
            std::max(crit.tableEntries, 2u), crit.clptThreshold,
            crit.predictor == CritPredictor::ClptConsumers);
    }
}

CritLevel
Core::criticalityOf(const MicroOp &op) const
{
    if (cbp_)
        return cbp_->predict(op.pc);
    if (clpt_)
        return clpt_->predict(op.pc);
    return 0;
}

void
Core::markComplete(RobEntry &entry, Cycle)
{
    entry.state = EntryState::Complete;
    for (const std::uint32_t idx : entry.waiters) {
        RobEntry &waiter = rob_[idx];
        if (waiter.state == EntryState::Waiting &&
            waiter.srcsPending > 0 && --waiter.srcsPending == 0) {
            waiter.state = EntryState::Ready;
            readyList_.push_back(idx);
        }
    }
    entry.waiters.clear();
}

void
Core::completeStage(Cycle now)
{
    while (!fuCompletions_.empty() && fuCompletions_.top().first <= now) {
        const SeqNum seq = fuCompletions_.top().second;
        fuCompletions_.pop();
        RobEntry &entry = entryOf(seq);
        if (entry.op.cls == OpClass::Branch) {
            --unresolvedBranches_;
            if (seq == redirectBranch_) {
                redirectBranch_ = ~SeqNum{0};
                fetchResumeAt_ = now + cfg_.core.mispredictPenalty;
            }
        }
        markComplete(entry, now);
    }
}

void
Core::commitStage(Cycle now)
{
    for (std::uint32_t n = 0; n < cfg_.core.commitWidth; ++n) {
        if (robCount_ == 0)
            return;
        RobEntry &head = entryOf(headSeq_);
        if (head.state != EntryState::Complete) {
            // A completed-but-stalled head never happens; only an
            // incomplete issued load is "blocking" in the paper's
            // sense (its miss is what commit waits on).
            if (head.op.cls == OpClass::Load &&
                head.state == EntryState::Issued) {
                if (!head.blocked) {
                    head.blocked = true;
                    if (cfg_.crit.predictor ==
                        CritPredictor::NaiveForward) {
                        // Section 5.1: tell the controller only now.
                        mem_.promote(id_, head.op.addr, 1);
                    }
                }
                ++head.stallCycles;
            }
            return;
        }

        // Commit.
        switch (head.op.cls) {
          case OpClass::Load:
            ++stats_.committedLoads;
            --lqCount_;
            if (head.blocked) {
                stats_.headStallLength.sample(head.stallCycles);
                // Figure 1 counts *long-latency* blocking loads: a
                // stall that outlasts the uncontended L2 round trip
                // means commit waited on DRAM.
                if (head.stallCycles >= cfg_.l2.latency) {
                    ++stats_.blockingLoads;
                    stats_.robHeadBlockedCycles += head.stallCycles;
                }
                if (cbp_)
                    cbp_->update(head.op.pc, head.stallCycles);
            }
            if (clpt_)
                clpt_->recordConsumers(head.op.pc, head.consumers);
            break;
          case OpClass::Store:
            ++stats_.committedStores;
            storeDrain_.push(head.op.addr);
            break;
          case OpClass::Branch:
            ++stats_.committedBranches;
            if (head.op.mispredict)
                ++stats_.mispredicts;
            break;
          default:
            break;
        }
        ++stats_.committedOps;
        ++headSeq_;
        --robCount_;
        if (finishCycle_ == kNoCycle && quota_ != 0 &&
            stats_.committedOps.value() >= quota_) {
            finishCycle_ = now;
        }
    }
}

void
Core::issueLoad(RobEntry &entry, Cycle now, bool &accepted)
{
    // Perfect disambiguation with store-to-load forwarding: a load
    // whose word matches an in-flight older store gets its value from
    // the SQ without touching the cache.
    if (pendingStoreAddrs_.contains(wordAlign(entry.op.addr))) {
        ++stats_.loadsForwarded;
        entry.state = EntryState::Issued;
        fuCompletions_.emplace(now + 1, entry.seq);
        accepted = true;
        return;
    }

    const CritLevel crit = criticalityOf(entry.op);
    const SeqNum seq = entry.seq;
    const bool ok = mem_.load(id_, entry.op.addr, crit, [this, seq] {
        wake();
        RobEntry &done = entryOf(seq);
        markComplete(done, now_);
    });
    if (!ok) {
        ++stats_.loadRetries;
        accepted = false;
        return;
    }
    ++stats_.loadsIssued;
    if (crit > 0)
        ++stats_.critLoadsIssued;
    entry.state = EntryState::Issued;
    accepted = true;
}

void
Core::issueStage(Cycle now)
{
    if (readyList_.empty())
        return;
    // Oldest-first issue.
    std::sort(readyList_.begin(), readyList_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return rob_[a].seq < rob_[b].seq;
              });

    const CoreConfig &c = cfg_.core;
    std::uint32_t issued = 0;
    std::uint32_t intAlu = 0, intMul = 0, fpAlu = 0, fpMul = 0;
    std::uint32_t loads = 0, stores = 0, branches = 0;

    // Persistent scratch (swapped back below) so the per-cycle issue
    // scan never allocates.
    std::vector<std::uint32_t> &still = stillScratch_;
    still.clear();
    for (const std::uint32_t idx : readyList_) {
        RobEntry &entry = rob_[idx];
        if (entry.state != EntryState::Ready)
            continue; // defensive: committed/reused slot
        if (issued >= c.issueWidth) {
            still.push_back(idx);
            continue;
        }
        bool ok = false;
        switch (entry.op.cls) {
          case OpClass::Load:
            if (loads < c.loadPorts) {
                bool accepted = false;
                issueLoad(entry, now, accepted);
                ++loads; // the port is consumed either way
                ok = accepted;
            }
            break;
          case OpClass::Store:
            if (stores < c.storePorts) {
                ++stores;
                entry.state = EntryState::Issued;
                fuCompletions_.emplace(now + entry.op.latency,
                                       entry.seq);
                ok = true;
            }
            break;
          case OpClass::Branch:
            if (branches < c.branchUnits) {
                ++branches;
                entry.state = EntryState::Issued;
                fuCompletions_.emplace(now + entry.op.latency,
                                       entry.seq);
                ok = true;
            }
            break;
          case OpClass::IntAlu:
            if (intAlu < c.intAlus) {
                ++intAlu;
                entry.state = EntryState::Issued;
                fuCompletions_.emplace(now + entry.op.latency,
                                       entry.seq);
                ok = true;
            }
            break;
          case OpClass::IntMul:
            if (intMul < c.intMuls) {
                ++intMul;
                entry.state = EntryState::Issued;
                fuCompletions_.emplace(now + entry.op.latency,
                                       entry.seq);
                ok = true;
            }
            break;
          case OpClass::FpAlu:
            if (fpAlu < c.fpAlus) {
                ++fpAlu;
                entry.state = EntryState::Issued;
                fuCompletions_.emplace(now + entry.op.latency,
                                       entry.seq);
                ok = true;
            }
            break;
          case OpClass::FpMul:
            if (fpMul < c.fpMuls) {
                ++fpMul;
                entry.state = EntryState::Issued;
                fuCompletions_.emplace(now + entry.op.latency,
                                       entry.seq);
                ok = true;
            }
            break;
        }
        if (ok) {
            ++issued;
            if (entry.isFp)
                --fpIqCount_;
            else
                --intIqCount_;
        } else {
            still.push_back(idx);
        }
    }
    readyList_.swap(still);
}

void
Core::drainStores(Cycle now)
{
    (void)now;
    std::uint32_t drained = 0;
    while (!storeDrain_.empty() && drained < cfg_.core.storePorts) {
        const Addr addr = storeDrain_.front();
        const bool ok = mem_.store(id_, addr, [this, addr] {
            wake();
            --sqCount_;
            const auto it = pendingStoreAddrs_.find(wordAlign(addr));
            if (it != pendingStoreAddrs_.end() && --it->second == 0)
                pendingStoreAddrs_.erase(it);
        });
        if (!ok)
            return;
        storeDrain_.pop();
        ++drained;
    }
}

void
Core::dispatchStage(Cycle now)
{
    const CoreConfig &c = cfg_.core;
    if (stopAtQuota_ && quota_ != 0 && fetched_ >= quota_ &&
        !hasPendingOp_) {
        return; // quota reached and no buffered op left to dispatch
    }
    if (now < fetchResumeAt_ || fetchBlockedOnIcache_)
        return;
    if (redirectBranch_ != ~SeqNum{0})
        return; // waiting on an unresolved mispredicted branch

    for (std::uint32_t n = 0; n < c.fetchWidth; ++n) {
        if (robCount_ >= rob_.size()) {
            ++stats_.robFullCycles;
            return;
        }
        if (!hasPendingOp_) {
            if (stopAtQuota_ && quota_ != 0 && fetched_ >= quota_)
                return; // quota reached: no new fetches
            gen_.next(pendingOp_);
            hasPendingOp_ = true;
            ++fetched_;
        }
        const MicroOp &op = pendingOp_;

        // Front end: make sure the instruction's block is in the iL1.
        // Sequential hits are pipelined (free); only misses stall.
        const Addr block = op.pc & ~Addr{cfg_.il1.blockBytes - 1};
        if (block != fetchedBlock_) {
            if (mem_.fetchProbe(id_, op.pc)) {
                fetchedBlock_ = block;
            } else {
                if (mem_.fetch(id_, op.pc, [this, block] {
                        wake();
                        fetchBlockedOnIcache_ = false;
                        fetchedBlock_ = block;
                    })) {
                    fetchBlockedOnIcache_ = true;
                }
                return; // miss (or iL1 MSHRs full): retry later
            }
        }

        // Structural resources.
        const bool isFp =
            op.cls == OpClass::FpAlu || op.cls == OpClass::FpMul;
        if (isFp ? fpIqCount_ >= c.fpIqEntries
                 : intIqCount_ >= c.intIqEntries) {
            ++stats_.iqFullCycles;
            return;
        }
        if (op.cls == OpClass::Load && lqCount_ >= c.lqEntries) {
            ++stats_.lqFullCycles;
            return;
        }
        if (op.cls == OpClass::Store && sqCount_ >= c.sqEntries) {
            ++stats_.sqFullCycles;
            return;
        }
        if (op.cls == OpClass::Branch &&
            unresolvedBranches_ >= c.maxUnresolvedBranches) {
            ++stats_.branchLimitCycles;
            return;
        }

        // Allocate the ROB entry.
        const SeqNum seq = nextSeq_++;
        RobEntry &entry = entryOf(seq);
        entry.op = op;
        entry.seq = seq;
        entry.state = EntryState::Waiting;
        entry.srcsPending = 0;
        entry.isFp = isFp;
        entry.blocked = false;
        entry.stallCycles = 0;
        entry.consumers = 0;
        entry.waiters.clear();
        ++robCount_;
        hasPendingOp_ = false;

        // Resolve dependences against the ROB.
        const auto addDep = [&](std::uint16_t dist) {
            if (dist == 0 || dist > seq)
                return;
            const SeqNum producerSeq = seq - dist;
            if (producerSeq < headSeq_)
                return; // producer already committed
            RobEntry &producer = entryOf(producerSeq);
            if (producer.op.cls == OpClass::Load)
                ++producer.consumers;
            if (producer.state != EntryState::Complete) {
                ++entry.srcsPending;
                producer.waiters.push_back(robIndex(seq));
            }
        };
        addDep(op.dep1);
        addDep(op.dep2);

        if (isFp)
            ++fpIqCount_;
        else
            ++intIqCount_;
        switch (op.cls) {
          case OpClass::Load:
            ++lqCount_;
            break;
          case OpClass::Store:
            ++sqCount_;
            ++pendingStoreAddrs_[wordAlign(op.addr)];
            break;
          case OpClass::Branch:
            ++unresolvedBranches_;
            break;
          default:
            break;
        }

        if (entry.srcsPending == 0) {
            entry.state = EntryState::Ready;
            readyList_.push_back(robIndex(seq));
        }

        if (op.cls == OpClass::Branch && op.mispredict) {
            // Stop dispatching until the branch resolves; the redirect
            // penalty is charged at resolution (completeStage).
            redirectBranch_ = seq;
            return;
        }
    }
}

void
Core::tick(Cycle now)
{
    if (!active_)
        return;
    now_ = now;
    ++stats_.cycles;
    if (cbp_)
        cbp_->maybeReset(now);

    completeStage(now);
    commitStage(now);
    issueStage(now);
    drainStores(now);
    dispatchStage(now);
}

Core::DispatchState
Core::dispatchState() const
{
    // Mirrors dispatchStage()'s decision order exactly, minus the
    // fetchResumeAt_ time gate (the caller handles time) and with no
    // side effects. Every input is frozen between events: the counts
    // only change on commits, issues, drains, or memory callbacks.
    if (stopAtQuota_ && quota_ != 0 && fetched_ >= quota_ &&
        !hasPendingOp_)
        return DispatchState::Idle;
    if (fetchBlockedOnIcache_)
        return DispatchState::Idle; // woken by the iL1 fill callback
    if (redirectBranch_ != ~SeqNum{0})
        return DispatchState::Idle; // woken by the branch completing
    if (robCount_ >= rob_.size())
        return DispatchState::RobFull;
    if (!hasPendingOp_)
        return DispatchState::Busy; // would fetch a new micro-op
    const Addr block = pendingOp_.pc & ~Addr{cfg_.il1.blockBytes - 1};
    if (block != fetchedBlock_)
        return DispatchState::Busy; // would probe the iL1
    const CoreConfig &c = cfg_.core;
    const bool isFp = pendingOp_.cls == OpClass::FpAlu ||
        pendingOp_.cls == OpClass::FpMul;
    if (isFp ? fpIqCount_ >= c.fpIqEntries
             : intIqCount_ >= c.intIqEntries)
        return DispatchState::IqFull;
    if (pendingOp_.cls == OpClass::Load && lqCount_ >= c.lqEntries)
        return DispatchState::LqFull;
    if (pendingOp_.cls == OpClass::Store && sqCount_ >= c.sqEntries)
        return DispatchState::SqFull;
    if (pendingOp_.cls == OpClass::Branch &&
        unresolvedBranches_ >= c.maxUnresolvedBranches)
        return DispatchState::BranchLimit;
    return DispatchState::Busy; // would allocate a ROB entry
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    if (!active_)
        return kNoCycle;
    if (!readyList_.empty() || !storeDrain_.empty())
        return now + 1;
    if (robCount_ > 0) {
        const RobEntry &head = entryOf(headSeq_);
        if (head.state == EntryState::Complete)
            return now + 1; // commit proceeds next tick
        if (head.op.cls == OpClass::Load &&
            head.state == EntryState::Issued && !head.blocked) {
            // The blocking onset (and the naive-forward promote it
            // triggers) must land on a real tick at its exact cycle.
            return now + 1;
        }
    }

    Cycle next = kNoCycle;
    if (cbp_)
        next = std::min(next, cbp_->nextResetAt());
    if (!fuCompletions_.empty())
        next = std::min(next, fuCompletions_.top().first);

    const DispatchState d = dispatchState();
    if (d != DispatchState::Idle) {
        if (fetchResumeAt_ > now + 1)
            next = std::min(next, fetchResumeAt_);
        else if (d == DispatchState::Busy)
            return now + 1;
        // else: a deterministic structural stall whose counter
        // skipTo() bumps in bulk until an event frees the resource.
    }

    if (next == kNoCycle)
        return kNoCycle;
    return std::max(next, now + 1);
}

void
Core::skipTo(Cycle to)
{
    if (!active_ || to <= now_)
        return;
    const Cycle from = now_;
    const std::uint64_t k = to - from;
    now_ = to;
    stats_.cycles += k;

    if (robCount_ > 0) {
        RobEntry &head = entryOf(headSeq_);
        if (head.op.cls == OpClass::Load &&
            head.state == EntryState::Issued && head.blocked)
            head.stallCycles += k;
    }

    const DispatchState d = dispatchState();
    if (d == DispatchState::Idle || d == DispatchState::Busy)
        return;
    if (fetchResumeAt_ > from + 1)
        return; // certified window ends before the fetch resumes
    switch (d) {
      case DispatchState::RobFull:
        stats_.robFullCycles += k;
        break;
      case DispatchState::IqFull:
        stats_.iqFullCycles += k;
        break;
      case DispatchState::LqFull:
        stats_.lqFullCycles += k;
        break;
      case DispatchState::SqFull:
        stats_.sqFullCycles += k;
        break;
      case DispatchState::BranchLimit:
        stats_.branchLimitCycles += k;
        break;
      default:
        break;
    }
}

void
Core::wake()
{
    // The hierarchy's clock is the cycle being ticked right now; the
    // skipped window's accounting must be replayed against the state
    // the caller is about to mutate.
    skipTo(mem_.now() - 1);
    poked_ = true;
}

} // namespace critmem

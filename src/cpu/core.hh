/**
 * @file
 * Cycle-level simplified out-of-order core (Table 1).
 *
 * The core consumes a TraceGenerator's dependence-annotated micro-op
 * stream and models the structures that matter to the paper's
 * mechanism: a finite ROB with in-order dispatch/commit, issue queues
 * and a functional-unit pool, load/store queues with store-to-load
 * forwarding (perfect disambiguation, per Table 1), a bounded number
 * of unresolved branches with a fixed misprediction redirect penalty,
 * and — crucially — detection and timing of loads that block the ROB
 * head, feeding the Commit Block Predictor.
 *
 * Deliberate simplifications (documented in DESIGN.md): wrong-path
 * instructions are not fetched (a mispredicted branch instead blocks
 * the front end until it resolves plus the redirect penalty), and
 * register renaming is abstracted by the generator's dependence
 * distances.
 */

#ifndef CRITMEM_CPU_CORE_HH
#define CRITMEM_CPU_CORE_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "crit/cbp.hh"
#include "crit/clpt.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/generator.hh"

namespace critmem
{

/** One out-of-order core. */
class Core
{
  public:
    /**
     * @param cfg Whole-system configuration (core + crit sections).
     * @param id This core's id.
     * @param gen Micro-op source; must outlive the core.
     * @param mem Shared memory hierarchy; must outlive the core.
     * @param parent Statistics parent.
     */
    Core(const SystemConfig &cfg, CoreId id, TraceGenerator &gen,
         MemHierarchy &mem, stats::Group &parent);

    /** Stop fetching new micro-ops after this many commits. */
    void setQuota(std::uint64_t instructions) { quota_ = instructions; }

    /**
     * When false, the core keeps executing past its quota (the
     * multiprogrammed methodology: the bundle runs until every
     * application has committed its measurement window, but each
     * application's IPC uses only its own first-quota instructions).
     */
    void setStopAtQuota(bool stop) { stopAtQuota_ = stop; }

    /** Advance one CPU cycle. */
    void tick(Cycle now);

    /**
     * Earliest CPU cycle > @p now at which tick() could do anything
     * besides deterministic idle accounting (cycle/stall counters):
     * an FU completion, the fetch-redirect resume, a CBP reset, or
     * "next cycle" whenever the core has actionable work (ready ops,
     * stores to drain, a committable or about-to-block ROB head, an
     * unblocked front end). kNoCycle for an inactive or fully
     * quiescent core. Memory wakeups arrive through MemHierarchy
     * events and are bounded by its nextEventCycle, not this one.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Bulk-apply the per-cycle idle accounting tick() would have done
     * for every cycle in (now_, to]: the cycle counter, the blocked
     * ROB-head stall counter, and the dispatch stall counter the
     * front end is deterministically pinned on. Only legal when
     * to < nextEventCycle(now_).
     */
    void skipTo(Cycle to);

    /**
     * True when a memory completion has touched core state since the
     * last tick() — the signal that a lazily-skipped core must tick
     * on the current cycle regardless of its cached nextEventCycle().
     */
    bool poked() const { return poked_; }
    void clearPoked() { poked_ = false; }

    /** Committed instruction count. */
    std::uint64_t committed() const { return stats_.committedOps.value(); }

    /**
     * Deactivate the core entirely (used to run an application
     * "alone" for weighted-speedup baselining). An inactive core
     * never ticks and always reports finished.
     */
    void setActive(bool active) { active_ = active; }

    bool active() const { return active_; }

    /** @return true once the commit quota has been reached. */
    bool
    finished() const
    {
        return !active_ || (quota_ != 0 && committed() >= quota_);
    }

    /** Cycle at which the quota was reached (kNoCycle if not yet). */
    Cycle finishCycle() const { return finishCycle_; }

    /**
     * Start a fresh measurement window after a warmup run: the commit
     * quota counts from zero again (statistics are reset separately
     * via the stats tree). Predictor state is deliberately kept warm.
     */
    void
    resetWindow()
    {
        fetched_ = 0;
        finishCycle_ = kNoCycle;
    }

    /** @return true when no instruction is in flight. */
    bool drained() const { return robCount_ == 0 && storeDrain_.empty(); }

    /** Per-core statistics. */
    struct Stats
    {
        Stats(stats::Group &parent, CoreId id);

        stats::Group group;
        stats::Scalar cycles;
        stats::Scalar committedOps;
        stats::Scalar committedLoads;
        stats::Scalar committedStores;
        stats::Scalar committedBranches;
        stats::Scalar mispredicts;
        stats::Scalar blockingLoads;
        stats::Scalar robHeadBlockedCycles;
        stats::Scalar robFullCycles;
        stats::Scalar lqFullCycles;
        stats::Scalar sqFullCycles;
        stats::Scalar iqFullCycles;
        stats::Scalar branchLimitCycles;
        stats::Scalar loadsIssued;
        stats::Scalar loadsForwarded;
        stats::Scalar critLoadsIssued;
        stats::Scalar loadRetries;
        stats::Histogram headStallLength;
    };

    const Stats &coreStats() const { return stats_; }

    /** The core's commit block predictor (null unless configured). */
    const CommitBlockPredictor *cbp() const { return cbp_.get(); }

    /** The core's CLPT (null unless configured). */
    const Clpt *clpt() const { return clpt_.get(); }

  private:
    enum class EntryState : std::uint8_t
    {
        Waiting,  ///< operands outstanding
        Ready,    ///< may issue when an FU/port is free
        Issued,   ///< executing / memory access in flight
        Complete, ///< may commit when it reaches the head
    };

    struct RobEntry
    {
        MicroOp op;
        SeqNum seq = 0;
        EntryState state = EntryState::Waiting;
        std::uint8_t srcsPending = 0;
        bool isFp = false;
        bool blocked = false;       ///< has blocked the ROB head
        std::uint64_t stallCycles = 0;
        std::uint32_t consumers = 0; ///< direct consumers (CLPT)
        std::vector<std::uint32_t> waiters; ///< ROB indices to wake
    };

    std::uint32_t robIndex(SeqNum seq) const
    {
        return static_cast<std::uint32_t>(seq % rob_.size());
    }

    RobEntry &entryOf(SeqNum seq) { return rob_[robIndex(seq)]; }
    const RobEntry &entryOf(SeqNum seq) const
    {
        return rob_[robIndex(seq)];
    }

    /**
     * What dispatchStage() would do this cycle if the front end's
     * time gate (fetchResumeAt_) is open: real work (Busy), nothing
     * at all (Idle: quota reached, iL1 miss pending, or an unresolved
     * mispredict), or a deterministic structural stall that bumps one
     * stall counter per cycle until an event frees the resource.
     */
    enum class DispatchState : std::uint8_t
    {
        Busy,
        Idle,
        RobFull,
        IqFull,
        LqFull,
        SqFull,
        BranchLimit,
    };

    DispatchState dispatchState() const;

    /**
     * First statement of every memory-completion callback: replay the
     * idle accounting up to the cycle before the delivering event
     * (while the pre-completion state the skipped window saw is still
     * intact) and flag the core for a real tick this cycle.
     */
    void wake();

    void commitStage(Cycle now);
    void completeStage(Cycle now);
    void issueStage(Cycle now);
    void drainStores(Cycle now);
    void dispatchStage(Cycle now);

    void markComplete(RobEntry &entry, Cycle now);
    void issueLoad(RobEntry &entry, Cycle now, bool &portUsed);
    CritLevel criticalityOf(const MicroOp &op) const;

    SystemConfig cfg_;
    const CoreId id_;
    TraceGenerator &gen_;
    MemHierarchy &mem_;

    std::vector<RobEntry> rob_;
    SeqNum headSeq_ = 0;
    SeqNum nextSeq_ = 0;
    std::uint32_t robCount_ = 0;

    std::uint32_t intIqCount_ = 0;
    std::uint32_t fpIqCount_ = 0;
    std::uint32_t lqCount_ = 0;
    std::uint32_t sqCount_ = 0;
    std::uint32_t unresolvedBranches_ = 0;

    /** Committed stores awaiting their dL1 write. */
    std::queue<Addr> storeDrain_;
    std::uint32_t storeDrainInFlight_ = 0;
    /** Store addresses (8B-aligned) visible for forwarding. */
    std::unordered_map<Addr, std::uint32_t> pendingStoreAddrs_;

    /** Non-memory completion times. */
    std::priority_queue<std::pair<Cycle, SeqNum>,
                        std::vector<std::pair<Cycle, SeqNum>>,
                        std::greater<>> fuCompletions_;

    std::vector<std::uint32_t> readyList_;
    /** issueStage()'s not-issued survivors; reused every cycle. */
    std::vector<std::uint32_t> stillScratch_;

    /** Front-end state. */
    Cycle fetchResumeAt_ = 0;
    SeqNum redirectBranch_ = ~SeqNum{0}; ///< unresolved mispredict
    bool fetchBlockedOnIcache_ = false;
    Addr fetchedBlock_ = kNoAddr;
    MicroOp pendingOp_;
    bool hasPendingOp_ = false;

    /** Head-block tracking (the CBP counter logic of Fig. 2). */
    SeqNum trackedHead_ = ~SeqNum{0};

    std::uint64_t quota_ = 0;
    std::uint64_t fetched_ = 0;
    bool stopAtQuota_ = true;
    bool active_ = true;
    bool poked_ = false;
    Cycle finishCycle_ = kNoCycle;
    Cycle now_ = 0;

    std::unique_ptr<CommitBlockPredictor> cbp_;
    std::unique_ptr<Clpt> clpt_;

    Stats stats_;
};

} // namespace critmem

#endif // CRITMEM_CPU_CORE_HH

/**
 * @file
 * Cache of alone-run IPC baselines.
 *
 * Every fairness metric needs IPC_alone,i — the IPC application i
 * achieves running alone on the same configuration — and an alone run
 * costs as much as any other simulation. The cache keys baselines by
 * (application, configuration hash, quota) so a campaign that
 * evaluates many schedulers over the same workload set computes each
 * baseline exactly once; the executed-run counter lets tests assert
 * that. Deliberately not thread-safe: the campaign engine only
 * touches it from the single aggregation thread, and critmem-sim is
 * single-threaded.
 */

#ifndef CRITMEM_FAIR_BASELINE_CACHE_HH
#define CRITMEM_FAIR_BASELINE_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/config.hh"

namespace critmem::fair
{

/**
 * FNV-1a-64 over every simulation-affecting SystemConfig field.
 * Two configurations with equal hashes produce identical alone runs
 * (the converse — hash collisions — is as unlikely as FNV allows).
 */
std::uint64_t configHash(const SystemConfig &cfg);

/** Alone-IPC baselines keyed by (app, configHash, quota). */
class AloneBaselineCache
{
  public:
    /**
     * The cached baseline for @p app on @p cfg at @p quota, invoking
     * @p compute (an alone run) only on the first request.
     */
    double getOrCompute(const std::string &app, const SystemConfig &cfg,
                        std::uint64_t quota,
                        const std::function<double()> &compute);

    /** Cached value, or nullptr when absent (no run triggered). */
    const double *find(const std::string &app, const SystemConfig &cfg,
                       std::uint64_t quota) const;

    /** Record an externally computed baseline (campaign alone jobs). */
    void insert(const std::string &app, const SystemConfig &cfg,
                std::uint64_t quota, double aloneIpc);

    /** Number of compute() invocations (cache misses), for tests. */
    std::uint64_t runsExecuted() const { return runs_; }
    /** Number of distinct baselines held. */
    std::size_t size() const { return cache_.size(); }

  private:
    static std::string key(const std::string &app,
                           const SystemConfig &cfg, std::uint64_t quota);

    std::map<std::string, double> cache_;
    std::uint64_t runs_ = 0;
};

} // namespace critmem::fair

#endif // CRITMEM_FAIR_BASELINE_CACHE_HH

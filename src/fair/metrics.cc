#include "fair/metrics.hh"

#include <algorithm>

#include "system/experiment.hh"

namespace critmem::fair
{

FairnessMetrics
computeFairness(const std::vector<double> &sharedIpc,
                const std::vector<double> &aloneIpc)
{
    FairnessMetrics m;
    const std::size_t n = sharedIpc.size();
    if (n == 0 || aloneIpc.size() != n)
        return m;
    for (std::size_t i = 0; i < n; ++i) {
        if (sharedIpc[i] <= 0.0 || aloneIpc[i] <= 0.0)
            return m;
    }

    m.valid = true;
    m.slowdown.resize(n);
    double slowdownSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        m.slowdown[i] = aloneIpc[i] / sharedIpc[i];
        m.weightedSpeedup += sharedIpc[i] / aloneIpc[i];
        slowdownSum += m.slowdown[i];
    }
    m.harmonicSpeedup = static_cast<double>(n) / slowdownSum;
    const auto [lo, hi] =
        std::minmax_element(m.slowdown.begin(), m.slowdown.end());
    m.maxSlowdown = *hi;
    m.unfairness = *hi / *lo;
    return m;
}

std::vector<double>
sharedIpcs(const RunResult &run, std::uint64_t quota,
           std::uint32_t numCores)
{
    std::vector<double> ipcs(numCores, 0.0);
    for (std::uint32_t core = 0; core < numCores; ++core)
        ipcs[core] = run.ipc(core, quota);
    return ipcs;
}

} // namespace critmem::fair

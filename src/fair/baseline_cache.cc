#include "fair/baseline_cache.hh"

#include <bit>
#include <cstdio>

namespace critmem::fair
{

namespace
{

/** Incremental FNV-1a-64 (the campaign-hash flavor). */
struct Fnv
{
    std::uint64_t hash = 0xcbf29ce484222325ull;

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= static_cast<std::uint8_t>(v >> (i * 8));
            hash *= 0x100000001b3ull;
        }
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
};

void
hashCache(Fnv &fnv, const CacheConfig &c)
{
    fnv.u64(c.sizeBytes);
    fnv.u64(c.blockBytes);
    fnv.u64(c.ways);
    fnv.u64(c.latency);
    fnv.u64(c.mshrs);
    fnv.u64(c.ports);
}

} // namespace

std::uint64_t
configHash(const SystemConfig &cfg)
{
    Fnv fnv;
    fnv.u64(cfg.numCores);
    fnv.u64(cfg.seed);

    const CoreConfig &core = cfg.core;
    fnv.u64(core.freqMHz);
    fnv.u64(core.fetchWidth);
    fnv.u64(core.issueWidth);
    fnv.u64(core.commitWidth);
    fnv.u64(core.robEntries);
    fnv.u64(core.intIqEntries);
    fnv.u64(core.fpIqEntries);
    fnv.u64(core.lqEntries);
    fnv.u64(core.sqEntries);
    fnv.u64(core.intAlus);
    fnv.u64(core.fpAlus);
    fnv.u64(core.loadPorts);
    fnv.u64(core.storePorts);
    fnv.u64(core.branchUnits);
    fnv.u64(core.intMuls);
    fnv.u64(core.fpMuls);
    fnv.u64(core.maxUnresolvedBranches);
    fnv.u64(core.mispredictPenalty);

    hashCache(fnv, cfg.il1);
    hashCache(fnv, cfg.dl1);
    hashCache(fnv, cfg.l2);

    const PrefetchConfig &pf = cfg.prefetch;
    fnv.u64(pf.enabled);
    fnv.u64(pf.streams);
    fnv.u64(pf.distance);
    fnv.u64(pf.degree);

    const DramConfig &dram = cfg.dram;
    fnv.u64(static_cast<std::uint64_t>(dram.speed));
    fnv.u64(dram.busMHz);
    fnv.u64(dram.channels);
    fnv.u64(dram.ranksPerChannel);
    fnv.u64(dram.banksPerRank);
    fnv.u64(dram.rowBytes);
    fnv.u64(dram.queueEntries);
    fnv.u64(dram.closedPage);
    fnv.u64(static_cast<std::uint64_t>(dram.mapKind));
    fnv.u64(dram.unifiedQueue);
    const DramTiming &t = dram.t;
    fnv.u64(t.tRCD); fnv.u64(t.tCL); fnv.u64(t.tWL); fnv.u64(t.tCCD);
    fnv.u64(t.tWTR); fnv.u64(t.tWR); fnv.u64(t.tRTP); fnv.u64(t.tRP);
    fnv.u64(t.tRRD); fnv.u64(t.tFAW); fnv.u64(t.tRTRS); fnv.u64(t.tRAS);
    fnv.u64(t.tRC); fnv.u64(t.tRFC); fnv.u64(t.tREFI);
    fnv.u64(t.burstLength);

    const SchedConfig &sched = cfg.sched;
    fnv.u64(static_cast<std::uint64_t>(sched.algo));
    fnv.u64(sched.starvationCap);
    fnv.u64(sched.parbsMarkingCap);
    fnv.u64(sched.tcmQuantum);
    fnv.f64(sched.tcmClusterThresh);
    fnv.u64(sched.morseMaxCommands);
    fnv.u64(sched.blissThreshold);
    fnv.u64(sched.blissClearInterval);
    fnv.u64(sched.batchCap);
    fnv.u64(sched.dynThreshEpoch);
    fnv.u64(sched.dynThreshTargetPct);

    const CritConfig &crit = cfg.crit;
    fnv.u64(static_cast<std::uint64_t>(crit.predictor));
    fnv.u64(crit.tableEntries);
    fnv.u64(crit.resetInterval);
    fnv.u64(crit.clptThreshold);
    fnv.u64(crit.counterWidth);
    fnv.u64(crit.probShift);

    return fnv.hash;
}

std::string
AloneBaselineCache::key(const std::string &app, const SystemConfig &cfg,
                        std::uint64_t quota)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "\x1f%016llx\x1f%llu",
                  static_cast<unsigned long long>(configHash(cfg)),
                  static_cast<unsigned long long>(quota));
    return app + buf;
}

double
AloneBaselineCache::getOrCompute(const std::string &app,
                                 const SystemConfig &cfg,
                                 std::uint64_t quota,
                                 const std::function<double()> &compute)
{
    const std::string k = key(app, cfg, quota);
    const auto it = cache_.find(k);
    if (it != cache_.end())
        return it->second;
    ++runs_;
    const double ipc = compute();
    cache_.emplace(k, ipc);
    return ipc;
}

const double *
AloneBaselineCache::find(const std::string &app, const SystemConfig &cfg,
                         std::uint64_t quota) const
{
    const auto it = cache_.find(key(app, cfg, quota));
    return it == cache_.end() ? nullptr : &it->second;
}

void
AloneBaselineCache::insert(const std::string &app,
                           const SystemConfig &cfg, std::uint64_t quota,
                           double aloneIpc)
{
    cache_.insert_or_assign(key(app, cfg, quota), aloneIpc);
}

} // namespace critmem::fair

#include "fair/fairness_stats.hh"

#include <sstream>

namespace critmem::fair
{

FairnessStats::FairnessStats(stats::Group *parent, std::uint32_t numCores)
    : group_("fair", parent),
      valid_(group_, "valid",
             "1 when every core had positive shared and alone IPC"),
      weightedSpeedup_(group_, "weightedSpeedup",
                       "sum over cores of IPC_shared / IPC_alone"),
      harmonicSpeedup_(group_, "harmonicSpeedup",
                       "numCores / sum of per-core slowdowns"),
      maxSlowdown_(group_, "maxSlowdown",
                   "largest per-core IPC_alone / IPC_shared"),
      unfairness_(group_, "unfairness",
                  "max slowdown / min slowdown (1.0 = fair)")
{
    slowdown_.reserve(numCores);
    for (std::uint32_t core = 0; core < numCores; ++core) {
        slowdown_.push_back(std::make_unique<stats::Value>(
            group_, "slowdown" + std::to_string(core),
            "core " + std::to_string(core) +
                " IPC_alone / IPC_shared"));
    }
}

void
FairnessStats::set(const FairnessMetrics &m)
{
    valid_.set(m.valid ? 1.0 : 0.0);
    weightedSpeedup_.set(m.weightedSpeedup);
    harmonicSpeedup_.set(m.harmonicSpeedup);
    maxSlowdown_.set(m.maxSlowdown);
    unfairness_.set(m.unfairness);
    for (std::size_t core = 0; core < slowdown_.size(); ++core) {
        slowdown_[core]->set(
            m.valid && core < m.slowdown.size() ? m.slowdown[core] : 0.0);
    }
}

std::string
FairnessStats::json() const
{
    std::ostringstream os;
    group_.printJson(os);
    return os.str();
}

} // namespace critmem::fair

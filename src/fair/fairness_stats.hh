/**
 * @file
 * Fairness metrics as first-class statistics.
 *
 * FairnessStats owns a stats::Group named "fair" holding one Value
 * gauge per metric (plus one per-core slowdown gauge), so fairness
 * results flow through the same machinery as every other statistic:
 * critmem-sim --stats / --stats-json, the stats-JSON result sink, and
 * the campaign record's captured stats tree.
 */

#ifndef CRITMEM_FAIR_FAIRNESS_STATS_HH
#define CRITMEM_FAIR_FAIRNESS_STATS_HH

#include <memory>
#include <string>
#include <vector>

#include "fair/metrics.hh"
#include "sim/stats.hh"

namespace critmem::fair
{

/** The "fair" stats group: fairness metrics as Value gauges. */
class FairnessStats
{
  public:
    /**
     * @param parent Group to attach the "fair" child group to;
     *        nullptr keeps it a standalone root (sweep records).
     * @param numCores Per-core slowdown gauges to create.
     */
    FairnessStats(stats::Group *parent, std::uint32_t numCores);

    /** Publish @p m into the gauges (invalid metrics reset to 0). */
    void set(const FairnessMetrics &m);

    const stats::Group &group() const { return group_; }

    /** The group's JSON object text, e.g. {"weightedSpeedup":...}. */
    std::string json() const;

  private:
    stats::Group group_;
    stats::Value valid_;
    stats::Value weightedSpeedup_;
    stats::Value harmonicSpeedup_;
    stats::Value maxSlowdown_;
    stats::Value unfairness_;
    std::vector<std::unique_ptr<stats::Value>> slowdown_;
};

} // namespace critmem::fair

#endif // CRITMEM_FAIR_FAIRNESS_STATS_HH

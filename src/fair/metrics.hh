/**
 * @file
 * Multiprogrammed fairness metrics (Snavely/Tullsen weighted speedup,
 * Luo et al. harmonic speedup, and the maximum-slowdown / unfairness
 * pair popularized by the BLISS line of work).
 *
 * All four derive from per-core slowdowns, slowdown_i = IPC_alone,i /
 * IPC_shared,i: how much slower application i runs when sharing the
 * memory system than when running alone on the same hardware. The
 * metrics work on plain vectors so 2-, 4- and 8-core systems all use
 * the same code path (generalizing the fixed 4-wide helpers in
 * system/experiment.hh).
 */

#ifndef CRITMEM_FAIR_METRICS_HH
#define CRITMEM_FAIR_METRICS_HH

#include <cstdint>
#include <vector>

namespace critmem
{

struct RunResult;

namespace fair
{

/** Derived fairness metrics of one multiprogrammed run. */
struct FairnessMetrics
{
    /**
     * True when every core had strictly positive shared and alone
     * IPC; all other fields are zero when false (a core that never
     * reached its quota has no meaningful slowdown).
     */
    bool valid = false;
    /** Per-core slowdown, IPC_alone / IPC_shared. */
    std::vector<double> slowdown;
    /** Sum over cores of IPC_shared / IPC_alone (system throughput). */
    double weightedSpeedup = 0.0;
    /** N / sum of slowdowns (balances throughput and fairness). */
    double harmonicSpeedup = 0.0;
    /** Largest per-core slowdown (the BLISS fairness headline). */
    double maxSlowdown = 0.0;
    /** Max slowdown / min slowdown (1.0 = perfectly fair). */
    double unfairness = 0.0;
};

/**
 * Compute all metrics from per-core shared and alone IPCs. The
 * vectors must be the same length, one entry per core.
 */
FairnessMetrics computeFairness(const std::vector<double> &sharedIpc,
                                const std::vector<double> &aloneIpc);

/**
 * Per-core shared IPCs of a finished multiprogrammed run, one entry
 * per core in [0, numCores).
 */
std::vector<double> sharedIpcs(const RunResult &run, std::uint64_t quota,
                               std::uint32_t numCores);

} // namespace fair
} // namespace critmem

#endif // CRITMEM_FAIR_METRICS_HH

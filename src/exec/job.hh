/**
 * @file
 * Job model of the experiment-execution engine.
 *
 * A JobSpec is one isolated simulation: a complete SystemConfig, a
 * workload (parallel app, Table 4 bundle, or an alone-run baseline),
 * a quota/warmup pair and a seed. Jobs share nothing at run time —
 * every execution constructs its own System — so a campaign's results
 * are bit-identical regardless of worker-thread count or completion
 * order. See DESIGN.md ("Experiment execution engine").
 */

#ifndef CRITMEM_EXEC_JOB_HH
#define CRITMEM_EXEC_JOB_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "fair/metrics.hh"
#include "sim/config.hh"
#include "system/experiment.hh"

namespace critmem::exec
{

/** Which experiment-harness entry point a job drives. */
enum class RunKind
{
    Parallel, ///< runParallel: all cores run one app to the quota
    Bundle,   ///< runBundle: Table 4 multiprogrammed methodology
    Alone,    ///< runAloneResult: app on core 0, others idle
    Trace,    ///< external trace: every core replays its slice
};

const char *toString(RunKind kind);

/** Terminal outcome of a job (after any retries). */
enum class JobStatus
{
    Ok,             ///< completed, result is valid
    CheckViolation, ///< the protocol checker/watchdog fired
    TraceError,     ///< a trace file failed to parse
    Error,          ///< any other exception (bad spec, ...)
    Timeout,        ///< cooperatively aborted at the wall-clock limit
    Crashed,        ///< isolated worker died on a signal (--isolate)
    Oom,            ///< per-job memory budget exhausted (--job-mem-mb)
    Exit,           ///< isolated worker exited nonzero without a record
};

/** Parse a toString(JobStatus) name back; false on unknown names. */
bool parseJobStatus(const std::string &name, JobStatus &out);

const char *toString(JobStatus status);

/** One simulation to run, self-contained and immutable once queued. */
struct JobSpec
{
    /** Unique campaign-wide key, e.g. "art/maxstall". */
    std::string name;
    RunKind kind = RunKind::Parallel;
    /** App name (Parallel/Alone) or bundle name (Bundle). */
    std::string workload;
    /** Complete configuration; cfg.seed is this job's seed. */
    SystemConfig cfg;
    std::uint64_t quota = 24000;
    /** kDefaultWarmup resolves via defaultWarmup(quota) at run time. */
    std::uint64_t warmup = kDefaultWarmup;
    /**
     * cfg was derived from SystemConfig::multiprogDefault(); recorded
     * so the repro command can start from the right preset.
     */
    bool multiprogPreset = false;
    /** Capture the full stats tree as JSON into the record. */
    bool captureStats = false;
    /** Free-form labels a driver can attach (figure row/column...). */
    std::map<std::string, std::string> tags;
};

/** Outcome of one job, as delivered to the result sinks. */
struct JobRecord
{
    /** Position in the submitted batch; sinks receive records in
     *  this order regardless of completion order. */
    std::size_t index = 0;
    JobSpec spec;
    JobStatus status = JobStatus::Ok;
    /** Executions performed (1 = succeeded or failed first try). */
    std::uint32_t attempts = 1;
    /** Warmup actually used (spec.warmup with the sentinel resolved). */
    std::uint64_t warmupUsed = 0;
    /** What the failed attempt threw; empty when Ok. */
    std::string error;
    /** Simulation outcome; only meaningful when status == Ok. */
    RunResult result;
    /** Stats tree JSON when spec.captureStats; else empty. */
    std::string statsJson;
    /**
     * Fairness metrics, filled in by the arena annotator
     * (exec/arena.hh) for Bundle records whose alone baselines were
     * available; fairness.valid stays false otherwise. Derived
     * deterministically from other records, so never journaled.
     */
    fair::FairnessMetrics fairness;
    /** Wall-clock of the final attempt, ms. Informational only —
     *  never serialized, so result files stay deterministic. */
    double wallMs = 0.0;

    bool ok() const { return status == JobStatus::Ok; }
};

/**
 * A critmem-sim command line reproducing @p spec in isolation —
 * attached to every failure record so a crash found mid-campaign can
 * be replayed immediately.
 */
std::string reproCommand(const JobSpec &spec);

/**
 * Execute one job synchronously in the calling thread.
 * Throws CheckViolation / TraceError / std::runtime_error; the
 * JobRunner maps those onto JobStatus (callers running jobs by hand
 * get the raw exception).
 * @param statsJson When non-null and spec.captureStats, receives the
 *        finished System's stats tree as JSON.
 * @param cancel When non-null, polled by the simulation loop; setting
 *        it aborts the run with CheckViolation (diagnostics snapshots
 *        attached). The JobRunner's per-job timeout watchdog and the
 *        graceful-shutdown drain deadline both drive this flag.
 */
RunResult executeJob(const JobSpec &spec,
                     std::string *statsJson = nullptr,
                     const std::atomic<bool> *cancel = nullptr);

/**
 * Derive a per-job seed from a campaign seed and the job's name —
 * stable across platforms, independent of expansion order, and
 * decorrelated between jobs (splitmix64 over an FNV-1a name hash).
 */
std::uint64_t deriveSeed(std::uint64_t campaignSeed,
                         const std::string &jobName);

} // namespace critmem::exec

#endif // CRITMEM_EXEC_JOB_HH

#include "exec/job.hh"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "sched/registry.hh"
#include "system/system.hh"
#include "trace/workloads.hh"

namespace critmem::exec
{

const char *
toString(RunKind kind)
{
    switch (kind) {
      case RunKind::Parallel: return "parallel";
      case RunKind::Bundle:   return "bundle";
      case RunKind::Alone:    return "alone";
      case RunKind::Trace:    return "trace";
    }
    return "?";
}

const char *
toString(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:             return "ok";
      case JobStatus::CheckViolation: return "check_violation";
      case JobStatus::TraceError:     return "trace_error";
      case JobStatus::Error:          return "error";
      case JobStatus::Timeout:        return "timeout";
      case JobStatus::Crashed:        return "crashed";
      case JobStatus::Oom:            return "oom";
      case JobStatus::Exit:           return "exit";
    }
    return "?";
}

bool
parseJobStatus(const std::string &name, JobStatus &out)
{
    for (const JobStatus status :
         {JobStatus::Ok, JobStatus::CheckViolation,
          JobStatus::TraceError, JobStatus::Error, JobStatus::Timeout,
          JobStatus::Crashed, JobStatus::Oom, JobStatus::Exit}) {
        if (name == toString(status)) {
            out = status;
            return true;
        }
    }
    return false;
}

std::string
reproCommand(const JobSpec &spec)
{
    const SystemConfig base = spec.multiprogPreset
        ? SystemConfig::multiprogDefault()
        : SystemConfig::parallelDefault();
    const SystemConfig &cfg = spec.cfg;

    std::ostringstream cmd;
    cmd << "critmem-sim";
    if (spec.multiprogPreset)
        cmd << " --preset multiprog";
    if (spec.kind == RunKind::Bundle) {
        cmd << " --bundle " << spec.workload;
    } else if (spec.kind == RunKind::Trace) {
        // Re-register the trace source, then select it by name.
        if (const TraceWorkload *wl =
                findTraceWorkload(spec.workload)) {
            cmd << " --trace " << wl->name << '=' << wl->path;
            if (wl->options.policy !=
                ingest::RecoveryPolicy::Fail) {
                cmd << " --trace-policy "
                    << ingest::toString(wl->options.policy)
                    << " --trace-skip-budget "
                    << wl->options.skipBudget;
            }
            if (wl->options.format != ingest::TraceFormat::Auto) {
                cmd << " --trace-format "
                    << ingest::toString(wl->options.format);
            }
        } else {
            cmd << " --trace " << spec.workload << "=<path>";
        }
    } else {
        cmd << " --app " << spec.workload;
    }
    if (spec.kind == RunKind::Alone)
        cmd << " --alone";
    cmd << " --sched " << cliName(cfg.sched.algo);
    if (cfg.crit.predictor != CritPredictor::None) {
        cmd << " --predictor " << cliName(cfg.crit.predictor)
            << " --entries " << cfg.crit.tableEntries;
    }
    if (cfg.crit.resetInterval != 0)
        cmd << " --reset " << cfg.crit.resetInterval;
    cmd << " --instrs " << spec.quota;
    if (spec.warmup != kDefaultWarmup)
        cmd << " --warmup " << spec.warmup;
    cmd << " --seed " << cfg.seed;
    if (cfg.dram.ranksPerChannel != base.dram.ranksPerChannel)
        cmd << " --ranks " << cfg.dram.ranksPerChannel;
    if (cfg.dram.channels != base.dram.channels)
        cmd << " --channels " << cfg.dram.channels;
    if (cfg.dram.speed != base.dram.speed)
        cmd << " --speed " << cliName(cfg.dram.speed);
    if (cfg.core.lqEntries != base.core.lqEntries)
        cmd << " --lq " << cfg.core.lqEntries;
    if (cfg.prefetch.enabled)
        cmd << " --prefetch";
    if (cfg.dram.closedPage)
        cmd << " --closed-page";
    if (!cfg.dram.unifiedQueue)
        cmd << " --split-wq";
    if (cfg.check.fault != FaultKind::None) {
        cmd << " --inject " << toString(cfg.check.fault)
            << " --inject-period " << cfg.check.faultPeriod;
    } else if (cfg.check.enabled) {
        cmd << " --check";
    }
    return cmd.str();
}

RunResult
executeJob(const JobSpec &spec, std::string *statsJson,
           const std::atomic<bool> *cancel)
{
    // Validate up front and throw instead of letting the harness
    // fatal(): a malformed job must not take the campaign down.
    const ConfigErrors errors = spec.cfg.validate();
    if (!errors.empty()) {
        std::ostringstream msg;
        msg << "invalid config for job '" << spec.name << "':";
        for (const ConfigError &err : errors)
            msg << ' ' << err.field << ": " << err.message << ';';
        throw std::runtime_error(msg.str());
    }

    std::unique_ptr<System> sys;
    bool stopAtQuota = true;
    switch (spec.kind) {
      case RunKind::Parallel:
      case RunKind::Alone: {
        if (!haveApp(spec.workload)) {
            throw std::runtime_error("unknown application '" +
                                     spec.workload + "'");
        }
        const AppParams &app = appParams(spec.workload);
        if (spec.kind == RunKind::Parallel) {
            sys = std::make_unique<System>(spec.cfg, app);
        } else {
            std::vector<AppParams> perCore(spec.cfg.numCores);
            perCore[0] = app;
            sys = std::make_unique<System>(spec.cfg, perCore);
        }
        break;
      }
      case RunKind::Bundle: {
        const Bundle *bundle = findBundle(spec.workload);
        if (!bundle) {
            throw std::runtime_error("unknown bundle '" +
                                     spec.workload + "'");
        }
        if (spec.cfg.numCores != bundle->apps.size()) {
            throw std::runtime_error(
                "bundle job '" + spec.name + "' needs " +
                std::to_string(bundle->apps.size()) + " cores");
        }
        std::vector<AppParams> perCore;
        for (const std::string &name : bundle->apps)
            perCore.push_back(appParams(name));
        sys = std::make_unique<System>(spec.cfg, perCore);
        stopAtQuota = false;
        break;
      }
      case RunKind::Trace: {
        const TraceWorkload *wl = findTraceWorkload(spec.workload);
        if (!wl) {
            throw std::runtime_error("unknown trace workload '" +
                                     spec.workload + "'");
        }
        if (spec.cfg.numCores != wl->numCores) {
            throw std::runtime_error(
                "trace job '" + spec.name + "' needs " +
                std::to_string(wl->numCores) + " cores (config has " +
                std::to_string(spec.cfg.numCores) + ")");
        }
        sys = std::make_unique<System>(spec.cfg, *wl);
        break;
      }
    }
    if (!sys)
        throw std::runtime_error("unknown run kind");
    sys->setAbortFlag(cancel);

    const RunResult result =
        runSystem(*sys, spec.quota, spec.warmup, stopAtQuota);
    if (statsJson && spec.captureStats) {
        std::ostringstream os;
        sys->statsRoot().printJson(os);
        *statsJson = os.str();
    }
    return result;
}

std::uint64_t
deriveSeed(std::uint64_t campaignSeed, const std::string &jobName)
{
    // FNV-1a over the job name...
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : jobName) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    // ...then one splitmix64 step over the combination.
    std::uint64_t z = campaignSeed ^ hash;
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace critmem::exec

#include "exec/sweep.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sched/registry.hh"
#include "trace/workloads.hh"

namespace critmem::exec
{

SweepError::SweepError(const std::string &message, std::size_t lineNo,
                       std::uint64_t byteOffset)
    : std::runtime_error(message + " (byte offset " +
                         std::to_string(byteOffset) + ")"),
      lineNo_(lineNo), byteOffset_(byteOffset)
{
}

namespace
{

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error(what);
}

std::uint64_t
parseUint(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const std::uint64_t parsed = std::stoull(value, &used, 10);
        if (used != value.size())
            bad("trailing junk in " + key + " = '" + value + "'");
        return parsed;
    } catch (const std::invalid_argument &) {
        bad("unparsable number for " + key + ": '" + value + "'");
    } catch (const std::out_of_range &) {
        bad("out-of-range number for " + key + ": '" + value + "'");
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    bad("expected boolean for " + key + ", got '" + value + "'");
}

std::string
trim(const std::string &text)
{
    const std::size_t from = text.find_first_not_of(" \t");
    if (from == std::string::npos)
        return "";
    const std::size_t to = text.find_last_not_of(" \t");
    return text.substr(from, to - from + 1);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> items;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        item = trim(item);
        if (!item.empty())
            items.push_back(item);
    }
    return items;
}

} // namespace

void
applySetting(SystemConfig &cfg, const std::string &key,
             const std::string &value)
{
    if (key == "sched") {
        const auto algo = findSchedAlgo(value);
        if (!algo)
            bad("unknown scheduler '" + value + "'");
        cfg.sched.algo = *algo;
    } else if (key == "predictor") {
        const auto pred = findCritPredictor(value);
        if (!pred)
            bad("unknown predictor '" + value + "'");
        cfg.crit.predictor = *pred;
    } else if (key == "entries") {
        cfg.crit.tableEntries =
            static_cast<std::uint32_t>(parseUint(key, value));
    } else if (key == "reset") {
        cfg.crit.resetInterval = parseUint(key, value);
    } else if (key == "ranks") {
        cfg.dram.ranksPerChannel =
            static_cast<std::uint32_t>(parseUint(key, value));
    } else if (key == "channels") {
        cfg.dram.channels =
            static_cast<std::uint32_t>(parseUint(key, value));
    } else if (key == "speed") {
        const auto speed = findDramSpeed(value);
        if (!speed)
            bad("unknown speed grade '" + value + "'");
        const DramConfig fresh = DramConfig::preset(*speed);
        cfg.dram.t = fresh.t;
        cfg.dram.busMHz = fresh.busMHz;
        cfg.dram.speed = *speed;
    } else if (key == "lq") {
        cfg.core.lqEntries =
            static_cast<std::uint32_t>(parseUint(key, value));
    } else if (key == "prefetch") {
        cfg.prefetch.enabled = parseBool(key, value);
    } else if (key == "closed-page") {
        cfg.dram.closedPage = parseBool(key, value);
    } else if (key == "split-wq") {
        cfg.dram.unifiedQueue = !parseBool(key, value);
    } else if (key == "morse-cmds") {
        cfg.sched.morseMaxCommands =
            static_cast<std::uint32_t>(parseUint(key, value));
    } else if (key == "cores") {
        cfg.numCores = static_cast<std::uint32_t>(parseUint(key, value));
    } else if (key == "seed") {
        cfg.seed = parseUint(key, value);
    } else if (key == "inject") {
        const auto fault = findFaultKind(value);
        if (!fault)
            bad("unknown fault kind '" + value + "'");
        cfg.check.fault = *fault;
        // Mirror critmem-sim --inject, which implies --check, so the
        // failure record's repro command reproduces the same config.
        cfg.check.enabled = true;
    } else if (key == "inject-period") {
        cfg.check.faultPeriod = parseUint(key, value);
    } else {
        bad("unknown setting '" + key + "'");
    }
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative '*' matcher with single-point backtracking.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::vector<JobSpec>
SweepSpec::expand() const
{
    if (variants.empty())
        bad("sweep spec has no variants (add 'scheds = ...' or "
            "'variant NAME : ...' lines)");

    // Register declared trace sources first, so workload names can
    // resolve to them. Registration scans + validates each file;
    // TraceError (with its byte offset) propagates untouched.
    for (const TraceDecl &decl : traces) {
        try {
            registerTraceWorkload(decl.name, decl.path,
                                  decl.options);
        } catch (const TraceError &) {
            throw;
        } catch (const std::exception &err) {
            bad("trace '" + decl.name + "': " + err.what());
        }
    }

    // Resolve the workload list.
    std::vector<std::string> names = workloads;
    if (names.empty() || (names.size() == 1 && names[0] == "*")) {
        names.clear();
        if (mode == Mode::Parallel) {
            for (const AppParams &app : parallelApps())
                names.push_back(app.name);
            for (const TraceDecl &decl : traces)
                names.push_back(decl.name);
        } else {
            for (const Bundle &bundle : multiprogBundles())
                names.push_back(bundle.name);
        }
    }
    for (const std::string &name : names) {
        if (mode == Mode::Parallel
                ? !haveApp(name) && findTraceWorkload(name) == nullptr
                : findBundle(name) == nullptr)
            bad("unknown workload '" + name + "' for this mode");
    }

    const SystemConfig base = mode == Mode::Parallel
        ? SystemConfig::parallelDefault()
        : SystemConfig::multiprogDefault();

    const auto excluded = [&](const std::string &jobName) {
        return std::any_of(exclude.begin(), exclude.end(),
                           [&](const std::string &pattern) {
                               return globMatch(pattern, jobName);
                           });
    };

    std::vector<JobSpec> jobs;
    // Seeds are assigned before variant settings are applied, so an
    // explicit 'seed=' variant setting overrides the campaign seed.
    const auto seedFor = [&](const std::string &jobName) {
        return seedMode == SeedMode::Derived
            ? deriveSeed(campaignSeed, jobName)
            : campaignSeed;
    };
    const auto finishJob = [&](JobSpec &job) {
        job.cfg.check.enabled = job.cfg.check.enabled || check;
        job.quota = quota;
        job.warmup = warmup;
        job.captureStats = captureStats;
        job.multiprogPreset = mode == Mode::Multiprog;
        const ConfigErrors errors = job.cfg.validate();
        if (!errors.empty()) {
            bad("job '" + job.name + "' expands to an invalid config: " +
                errors.front().field + ": " + errors.front().message);
        }
        jobs.push_back(std::move(job));
    };

    // Alone-run baselines first: one per distinct app, at the base
    // (variant-free) configuration, shared by every bundle.
    if (mode == Mode::Multiprog && alone) {
        std::set<std::string> seen;
        for (const std::string &bundleName : names) {
            for (const std::string &app :
                 findBundle(bundleName)->apps) {
                if (!seen.insert(app).second)
                    continue;
                JobSpec job;
                job.name = "alone/" + app;
                if (excluded(job.name))
                    continue;
                job.kind = RunKind::Alone;
                job.workload = app;
                job.cfg = base;
                job.cfg.seed = seedFor(job.name);
                finishJob(job);
            }
        }
    }

    for (const std::string &workload : names) {
        const TraceWorkload *trace = mode == Mode::Parallel
            ? findTraceWorkload(workload)
            : nullptr;
        for (const SweepVariant &variant : variants) {
            JobSpec job;
            job.name = workload + "/" + variant.name;
            if (excluded(job.name))
                continue;
            job.kind = mode == Mode::Parallel
                ? (trace ? RunKind::Trace : RunKind::Parallel)
                : RunKind::Bundle;
            job.workload = workload;
            job.cfg = base;
            job.cfg.seed = seedFor(job.name);
            job.tags["workload"] = workload;
            job.tags["variant"] = variant.name;
            for (const auto &[key, value] : variant.settings) {
                try {
                    applySetting(job.cfg, key, value);
                } catch (const std::exception &err) {
                    bad("variant '" + variant.name +
                        "': " + err.what());
                }
            }
            // The trace file dictates the core count, overriding any
            // 'cores=' variant setting.
            if (trace)
                job.cfg.numCores = trace->numCores;
            finishJob(job);
        }
    }
    return jobs;
}

SweepSpec
parseSweepSpec(std::istream &in)
{
    SweepSpec spec;
    std::string line;
    std::size_t lineNo = 0;
    std::uint64_t lineStart = 0;
    std::uint64_t nextStart = 0;

    const auto fail = [&](const std::string &what) {
        throw SweepError("sweep spec line " + std::to_string(lineNo) +
                             ": " + what,
                         lineNo, lineStart);
    };

    while (std::getline(in, line)) {
        ++lineNo;
        lineStart = nextStart;
        nextStart += line.size() + 1; // getline consumed the newline
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;

        if (line.rfind("variant", 0) == 0 &&
            line.size() > 7 && (line[7] == ' ' || line[7] == '\t')) {
            const std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                fail("variant line needs ':'");
            SweepVariant variant;
            variant.name = trim(line.substr(7, colon - 7));
            if (variant.name.empty())
                fail("variant needs a name");
            std::istringstream settings(line.substr(colon + 1));
            std::string token;
            while (settings >> token) {
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos)
                    fail("variant setting '" + token +
                         "' is not key=value");
                variant.settings.emplace_back(
                    token.substr(0, eq), token.substr(eq + 1));
            }
            spec.variants.push_back(std::move(variant));
            continue;
        }

        if (line.rfind("trace", 0) == 0 && line.size() > 5 &&
            (line[5] == ' ' || line[5] == '\t')) {
            const std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                fail("trace line needs ':'");
            TraceDecl decl;
            decl.name = trim(line.substr(5, colon - 5));
            if (decl.name.empty())
                fail("trace needs a name");
            for (const TraceDecl &other : spec.traces) {
                if (other.name == decl.name)
                    fail("duplicate trace '" + decl.name + "'");
            }
            std::istringstream settings(line.substr(colon + 1));
            std::string token;
            while (settings >> token) {
                const std::size_t eq = token.find('=');
                if (eq == std::string::npos) {
                    fail("trace setting '" + token +
                         "' is not key=value");
                }
                const std::string key = token.substr(0, eq);
                const std::string value = token.substr(eq + 1);
                try {
                    if (key == "path") {
                        decl.path = value;
                    } else if (key == "format") {
                        if (!ingest::findTraceFormat(
                                value, decl.options.format))
                            fail("unknown trace format '" + value +
                                 "'");
                    } else if (key == "policy") {
                        if (!ingest::findRecoveryPolicy(
                                value, decl.options.policy))
                            fail("unknown recovery policy '" +
                                 value + "'");
                    } else if (key == "skip-budget") {
                        decl.options.skipBudget =
                            parseUint(key, value);
                    } else if (key == "max-line") {
                        decl.options.limits.maxLineBytes =
                            static_cast<std::uint32_t>(
                                parseUint(key, value));
                    } else if (key == "max-record") {
                        decl.options.limits.maxRecordBytes =
                            static_cast<std::uint32_t>(
                                parseUint(key, value));
                    } else if (key == "max-cores") {
                        decl.options.limits.maxCores =
                            static_cast<std::uint32_t>(
                                parseUint(key, value));
                    } else {
                        fail("unknown trace setting '" + key + "'");
                    }
                } catch (const std::runtime_error &err) {
                    const std::string what = err.what();
                    if (what.rfind("sweep spec line", 0) == 0)
                        throw;
                    fail(what);
                }
            }
            if (decl.path.empty())
                fail("trace '" + decl.name + "' needs path=FILE");
            ConfigErrors limitErrors;
            decl.options.validate(limitErrors);
            if (!limitErrors.empty()) {
                fail("trace '" + decl.name + "': " +
                     limitErrors.front().field + ": " +
                     limitErrors.front().message);
            }
            spec.traces.push_back(std::move(decl));
            continue;
        }

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fail("expected 'key = value' or 'variant NAME : ...'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        try {
            if (key == "mode") {
                if (value == "parallel")
                    spec.mode = SweepSpec::Mode::Parallel;
                else if (value == "multiprog")
                    spec.mode = SweepSpec::Mode::Multiprog;
                else
                    fail("unknown mode '" + value + "'");
            } else if (key == "workloads") {
                spec.workloads = splitList(value);
            } else if (key == "quota") {
                spec.quota = parseUint(key, value);
            } else if (key == "warmup") {
                spec.warmup = parseUint(key, value);
            } else if (key == "seed") {
                spec.campaignSeed = parseUint(key, value);
            } else if (key == "seed-mode") {
                if (value == "fixed")
                    spec.seedMode = SweepSpec::SeedMode::Fixed;
                else if (value == "derived")
                    spec.seedMode = SweepSpec::SeedMode::Derived;
                else
                    fail("unknown seed-mode '" + value + "'");
            } else if (key == "check") {
                spec.check = parseBool(key, value);
            } else if (key == "stats") {
                spec.captureStats = parseBool(key, value);
            } else if (key == "alone") {
                spec.alone = parseBool(key, value);
            } else if (key == "exclude") {
                spec.exclude = splitList(value);
            } else if (key == "scheds") {
                for (const std::string &sched : splitList(value)) {
                    SweepVariant variant;
                    variant.name = sched;
                    variant.settings.emplace_back("sched", sched);
                    spec.variants.push_back(std::move(variant));
                }
            } else {
                fail("unknown key '" + key + "'");
            }
        } catch (const std::runtime_error &err) {
            // Re-tag value parse errors with the line number.
            const std::string what = err.what();
            if (what.rfind("sweep spec line", 0) == 0)
                throw;
            fail(what);
        }
    }
    return spec;
}

SweepSpec
parseSweepFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        bad("cannot open sweep spec '" + path + "'");
    SweepSpec spec = parseSweepSpec(in);
    // Relative trace paths are relative to the spec file, so a spec
    // and its fixtures move together.
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos) {
        const std::string dir = path.substr(0, slash + 1);
        for (TraceDecl &decl : spec.traces) {
            if (!decl.path.empty() && decl.path[0] != '/')
                decl.path = dir + decl.path;
        }
    }
    return spec;
}

} // namespace critmem::exec

#include "exec/worker.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <execinfo.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "check/check.hh"
#include "exec/campaign.hh"
#include "trace/trace_file.hh"

namespace critmem::exec
{

namespace
{

/**
 * Registry of live worker process groups, sized generously above any
 * plausible --jobs value. Lock-free atomics only: killWorkerGroups()
 * runs from the SIGINT handler, so everything it touches must be
 * async-signal-safe.
 */
constexpr std::size_t kMaxWorkerSlots = 512;
std::atomic<long> gWorkerGroups[kMaxWorkerSlots];

void
registerWorkerGroup(pid_t pid)
{
    for (std::atomic<long> &slot : gWorkerGroups) {
        long expected = 0;
        if (slot.compare_exchange_strong(expected,
                                         static_cast<long>(pid)))
            return;
    }
    // Registry full (would need > kMaxWorkerSlots concurrent
    // workers): the worker still runs, it just cannot be mass-killed
    // by the second-SIGINT path.
}

void
unregisterWorkerGroup(pid_t pid)
{
    for (std::atomic<long> &slot : gWorkerGroups) {
        long expected = static_cast<long>(pid);
        if (slot.compare_exchange_strong(expected, 0))
            return;
    }
}

/** Stable signal spelling (strsignal() is locale-dependent). */
const char *
signalName(int sig)
{
    switch (sig) {
      case SIGHUP:  return "SIGHUP";
      case SIGINT:  return "SIGINT";
      case SIGQUIT: return "SIGQUIT";
      case SIGILL:  return "SIGILL";
      case SIGTRAP: return "SIGTRAP";
      case SIGABRT: return "SIGABRT";
      case SIGBUS:  return "SIGBUS";
      case SIGFPE:  return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGSEGV: return "SIGSEGV";
      case SIGPIPE: return "SIGPIPE";
      case SIGTERM: return "SIGTERM";
      case SIGXCPU: return "SIGXCPU";
      case SIGXFSZ: return "SIGXFSZ";
      case SIGSYS:  return "SIGSYS";
      default:      return nullptr;
    }
}

std::string
describeSignal(int sig)
{
    std::string out = "killed by signal " + std::to_string(sig);
    if (const char *name = signalName(sig))
        out += std::string(" (") + name + ")";
    return out;
}

/**
 * Current VM size of this process in bytes (/proc/self/statm), the
 * baseline the relative --job-mem-mb budget is applied on top of.
 * 0 when unreadable (the budget then falls back to absolute).
 */
std::uint64_t
currentVmBytes()
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long long pages = 0;
    const int got = std::fscanf(f, "%llu", &pages);
    std::fclose(f);
    if (got != 1)
        return 0;
    const long pageSize = ::sysconf(_SC_PAGESIZE);
    return pages * static_cast<std::uint64_t>(
        pageSize > 0 ? pageSize : 4096);
}

/**
 * Strip bracketed absolute addresses ("[0x7f...]") from a backtrace
 * line: file-relative offsets ("binary(+0x1234)") are stable across
 * runs of the same build, absolute addresses move with ASLR and
 * would make failure records nondeterministic.
 */
std::string
sanitizeDiagLine(const std::string &line)
{
    std::string out;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '[' && i + 2 < line.size() &&
            line[i + 1] == '0' && line[i + 2] == 'x') {
            const std::size_t close = line.find(']', i);
            if (close != std::string::npos) {
                i = close;
                continue;
            }
        }
        out += line[i];
    }
    while (!out.empty() && (out.back() == ' ' || out.back() == '\r'))
        out.pop_back();
    return out;
}

/** write() the whole buffer, riding out EINTR and partial writes. */
void
writeAllFd(int fd, const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // supervisor gone (EPIPE): nothing left to tell
        }
        done += static_cast<std::size_t>(n);
    }
}

/** Pipe fd the crash handler writes its backtrace to. */
std::atomic<int> gCrashPipeFd{-1};

extern "C" void
onWorkerCrash(int sig)
{
    // Async-signal-safe only: write() and backtrace_symbols_fd()
    // (the unwinder was warmed up before handlers were installed, so
    // no lazy allocation happens here). SA_RESETHAND restored the
    // default action; re-raising terminates with the true signal so
    // the supervisor's waitpid sees WTERMSIG == sig.
    const int fd = gCrashPipeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        static const char header[] = "worker backtrace:\n";
        writeAllFd(fd, header, sizeof(header) - 1);
        void *frames[64];
        const int depth = ::backtrace(frames, 64);
        ::backtrace_symbols_fd(frames, depth, fd);
    }
    ::raise(sig);
}

/**
 * The post-fork child: apply limits, run the job, stream the record,
 * terminate. Must never return into the supervisor's call stack —
 * two processes running the same campaign state would corrupt both.
 */
[[noreturn]] void
runWorkerChild(const JobSpec &spec, std::size_t index,
               std::uint32_t attempt, const WorkerLimits &limits,
               std::uint64_t memLimitBytes, int fd)
{
    // Own process group: a terminal ^C (sent to the supervisor's
    // group) must not reach workers mid-drain, and it gives the
    // supervisor one handle to SIGKILL the worker and any helpers.
    ::setpgid(0, 0);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);

    // Warm up the unwinder while ordinary allocation is still legal;
    // the crash handler may then call backtrace() safely.
    void *warm[4];
    ::backtrace(warm, 4);
    gCrashPipeFd.store(fd, std::memory_order_relaxed);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onWorkerCrash;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND | SA_NODEFER;
    for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
        ::sigaction(sig, &sa, nullptr);

    if (memLimitBytes != 0) {
        struct rlimit lim;
        lim.rlim_cur = memLimitBytes;
        lim.rlim_max = memLimitBytes;
        ::setrlimit(RLIMIT_AS, &lim);
    }
    if (limits.cpuSeconds != 0) {
        struct rlimit lim;
        lim.rlim_cur = limits.cpuSeconds;
        lim.rlim_max = limits.cpuSeconds + 5;
        ::setrlimit(RLIMIT_CPU, &lim);
    }

    JobRecord rec;
    rec.index = index;
    rec.spec = spec;
    rec.attempts = attempt;
    rec.warmupUsed = spec.warmup == kDefaultWarmup
        ? defaultWarmup(spec.quota)
        : spec.warmup;
    try {
        rec.result = executeJob(spec, &rec.statsJson, nullptr);
        rec.status = JobStatus::Ok;
    } catch (const std::bad_alloc &) {
        // The budget fired: allocation failure surfaces as
        // std::bad_alloc once RLIMIT_AS refuses the allocator more
        // address space. (The System and any fault-injector ballast
        // were freed during unwinding, so building the record below
        // has headroom again.)
        rec.status = JobStatus::Oom;
        rec.error = limits.memMb != 0
            ? "std::bad_alloc: per-job memory budget exhausted "
              "(RLIMIT_AS, --job-mem-mb " +
                  std::to_string(limits.memMb) + ")"
            : "std::bad_alloc (no --job-mem-mb budget set)";
    } catch (const CheckViolation &err) {
        rec.status = JobStatus::CheckViolation;
        rec.error = err.what();
    } catch (const TraceError &err) {
        rec.status = JobStatus::TraceError;
        rec.error = err.what();
    } catch (const std::exception &err) {
        rec.status = JobStatus::Error;
        rec.error = err.what();
    }

    const std::string line = encodeJournalRecord(rec);
    writeAllFd(fd, line.data(), line.size());
    // lint:allow(no-terminate): the post-fork worker child must
    // terminate here; returning would run the supervisor's stack
    // (sinks, journal, joins) a second time in a second process.
    // _exit (not exit) so inherited stdio buffers are not re-flushed.
    ::_exit(0);
}

/** Split the pipe buffer into lines (a trailing partial line too). */
std::vector<std::string>
splitLines(const std::string &buffer)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < buffer.size()) {
        const std::size_t nl = buffer.find('\n', pos);
        const std::size_t end =
            nl == std::string::npos ? buffer.size() : nl;
        lines.push_back(buffer.substr(pos, end - pos));
        pos = nl == std::string::npos ? buffer.size() : nl + 1;
    }
    return lines;
}

} // namespace

JobStatus
classifyWaitStatus(int wstatus, const WorkerLimits &limits,
                   std::string &detail)
{
    if (WIFSIGNALED(wstatus)) {
        const int sig = WTERMSIG(wstatus);
        if (sig == SIGXCPU) {
            detail = "worker hit the RLIMIT_CPU backstop (" +
                std::to_string(limits.cpuSeconds) +
                "s CPU) and was killed (SIGXCPU)";
            return JobStatus::Timeout;
        }
        detail = describeSignal(sig);
        return JobStatus::Crashed;
    }
    if (WIFEXITED(wstatus)) {
        detail = "worker exited with status " +
            std::to_string(WEXITSTATUS(wstatus)) +
            " without streaming a result record";
        return JobStatus::Exit;
    }
    detail = "worker vanished with unrecognized wait status " +
        std::to_string(wstatus);
    return JobStatus::Crashed;
}

void
killWorkerGroups()
{
    for (std::atomic<long> &slot : gWorkerGroups) {
        const long pid = slot.load(std::memory_order_relaxed);
        if (pid > 0)
            ::kill(static_cast<pid_t>(-pid), SIGKILL);
    }
}

IsolatedRun
runJobIsolated(const JobSpec &spec, std::size_t index,
               std::uint32_t attempt, const WorkerLimits &limits,
               const std::atomic<bool> *cancel,
               const std::atomic<int> *cancelReason)
{
    IsolatedRun out;
    JobRecord &rec = out.record;
    rec.index = index;
    rec.spec = spec;
    rec.attempts = attempt;
    rec.warmupUsed = spec.warmup == kDefaultWarmup
        ? defaultWarmup(spec.quota)
        : spec.warmup;

    const std::uint64_t memLimitBytes = limits.memMb == 0
        ? 0
        : currentVmBytes() + (limits.memMb << 20);

    int fds[2];
    if (::pipe(fds) != 0) {
        rec.status = JobStatus::Error;
        rec.error = std::string("cannot create worker pipe: ") +
            std::strerror(errno);
        return out;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        rec.status = JobStatus::Error;
        rec.error = std::string("cannot fork worker: ") +
            std::strerror(errno);
        return out;
    }
    if (pid == 0) {
        ::close(fds[0]);
        runWorkerChild(spec, index, attempt, limits, memLimitBytes,
                       fds[1]);
    }
    ::close(fds[1]);
    // Both sides call setpgid to close the race between the fork and
    // the child's own call; EACCES just means the child won.
    ::setpgid(pid, pid);
    registerWorkerGroup(pid);

    const int fd = fds[0];
    std::string buffer;
    bool killedByUs = false;
    auto maybeKill = [&] {
        if (killedByUs || cancel == nullptr || !cancel->load())
            return;
        ::kill(-pid, SIGKILL);
        killedByUs = true;
    };
    for (bool eof = false; !eof;) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, 100);
        if (ready > 0) {
            char chunk[4096];
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n > 0)
                buffer.append(chunk, static_cast<std::size_t>(n));
            else if (n == 0 || errno != EINTR)
                eof = true;
        }
        maybeKill();
    }
    ::close(fd);

    int wstatus = 0;
    for (;;) {
        const pid_t reaped = ::waitpid(pid, &wstatus, WNOHANG);
        if (reaped == pid)
            break;
        if (reaped < 0 && errno != EINTR) {
            wstatus = 0; // unreachable: pid is our un-reaped child
            break;
        }
        // EOF but still running: the worker closed its pipe end and
        // kept going. The cancel watchdog remains the way out.
        maybeKill();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    unregisterWorkerGroup(pid);

    if (killedByUs) {
        const auto reason = cancelReason == nullptr
            ? CancelReason::Timeout
            : static_cast<CancelReason>(cancelReason->load());
        if (reason == CancelReason::Drain) {
            out.abandoned = true;
            return out;
        }
        rec.status = JobStatus::Timeout;
        rec.error = "worker killed after exceeding the per-job "
                    "wall-clock budget (--timeout)";
        return out;
    }

    // Find the streamed record among the pipe lines; everything else
    // is diagnostic output (crash-handler backtrace, stray prints).
    std::vector<std::string> diag;
    bool haveRecord = false;
    for (const std::string &line : splitLines(buffer)) {
        if (!haveRecord && line.rfind("r1 ", 0) == 0) {
            try {
                JobRecord streamed = decodeJournalRecord(line);
                if (streamed.index == index &&
                    streamed.spec.name == spec.name &&
                    streamed.spec.cfg.seed == spec.cfg.seed) {
                    // Re-attach the full spec: the wire format (like
                    // the journal) only carries the identity fields.
                    streamed.spec = spec;
                    rec = std::move(streamed);
                    haveRecord = true;
                    continue;
                }
                diag.push_back("worker streamed a record for the "
                               "wrong job ('" + streamed.spec.name +
                               "')");
            } catch (const CampaignError &) {
                // Torn record line — the worker died mid-write. The
                // wait status below tells the real story.
                diag.push_back("worker record line failed its "
                               "checksum (torn write)");
            }
            continue;
        }
        const std::string clean = sanitizeDiagLine(line);
        if (!clean.empty() && diag.size() < 40)
            diag.push_back(clean);
    }
    if (haveRecord)
        return out;

    if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) {
        // Not our kill (killedByUs was handled above): an operator or
        // the kernel OOM killer. Let the caller re-dispatch.
        out.externalKill = true;
    }
    rec.status = classifyWaitStatus(wstatus, limits, rec.error);
    for (const std::string &line : diag)
        rec.error += "\n" + line;
    return out;
}

} // namespace critmem::exec

#include "exec/job_runner.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "check/check.hh"
#include "exec/console.hh"
#include "exec/worker.hh"
#include "sim/random.hh"
#include "trace/trace_file.hh"

namespace critmem::exec
{

namespace
{

// lint:allow(wall-clock): wallMs/progress ETA/timeouts feed the
// stderr display and the cancellation watchdog only and are never
// serialized into result files (see JobRecord).
using Clock = std::chrono::steady_clock;

// CancelReason lives in exec/worker.hh: the isolated-worker monitor
// interprets the same flags the watchdog raises for in-thread jobs.

/**
 * An externally SIGKILLed worker is re-dispatched at the same attempt
 * number (the execution "never happened"), but only this many times:
 * a job that keeps attracting SIGKILL — e.g. the kernel OOM killer
 * with no --job-mem-mb budget set — must eventually be recorded as
 * crashed instead of looping forever.
 */
constexpr std::uint32_t kMaxRespawns = 3;

/** One queued execution: which job and which attempt this is. */
struct Task
{
    std::size_t index;
    std::uint32_t attempt;
    /** External-SIGKILL re-dispatches of this attempt so far. */
    std::uint32_t respawns = 0;
};

/** A worker's deque: owner pops the back, thieves pop the front. */
struct WorkerQueue
{
    std::mutex mutex;
    std::deque<Task> tasks;
};

/**
 * Watchdog-visible state of one worker. The worker publishes what it
 * is running and since when; the watchdog raises `cancel`, which the
 * simulation loop polls (System::setAbortFlag).
 */
struct WorkerSlot
{
    static constexpr std::size_t kIdle = ~std::size_t{0};

    std::atomic<std::size_t> jobIndex{kIdle};
    /** Clock::now() at dispatch, in ms since the clock's epoch. */
    std::atomic<std::int64_t> startMs{0};
    std::atomic<bool> cancel{false};
    std::atomic<int> reason{static_cast<int>(CancelReason::None)};
};

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now().time_since_epoch())
        .count();
}

/** Shared state of one campaign execution. */
struct Campaign
{
    const std::vector<JobSpec> &jobs;
    const RunnerOptions &opts;
    unsigned threads;
    CampaignLog *log;

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::unique_ptr<WorkerSlot>> slots;

    // Sleep/wake coordination for workers with empty deques.
    std::mutex idleMutex;
    std::condition_variable idleCv;
    std::atomic<std::size_t> queuedTasks{0};
    std::atomic<std::size_t> unfinishedJobs{0};
    std::atomic<std::size_t> retries{0};
    std::atomic<std::size_t> respawns{0};
    std::atomic<unsigned> activeWorkers{0};

    // Circuit breaker (--max-failures): once enough jobs have failed
    // permanently, dispatch stops exactly like a graceful shutdown.
    std::atomic<std::size_t> permanentFailures{0};
    std::atomic<bool> breakerTripped{false};

    // Watchdog shutdown handshake.
    std::mutex watchdogMutex;
    std::condition_variable watchdogCv;
    bool watchdogDone = false;

    // Completed records, slotted by job index; the aggregator
    // releases them to the sinks in index order.
    std::mutex recordMutex;
    std::condition_variable recordCv;
    std::vector<std::unique_ptr<JobRecord>> records;
    std::size_t replayed = 0;

    explicit Campaign(const std::vector<JobSpec> &jobs_,
                      const RunnerOptions &opts_, unsigned threads_,
                      CampaignLog *log_)
        : jobs(jobs_), opts(opts_), threads(threads_), log(log_),
          records(jobs_.size())
    {
        for (unsigned i = 0; i < threads; ++i) {
            queues.push_back(std::make_unique<WorkerQueue>());
            slots.push_back(std::make_unique<WorkerSlot>());
        }
    }

    bool
    stopping() const
    {
        return breakerTripped.load(std::memory_order_relaxed) ||
            (opts.stopRequested != nullptr &&
             opts.stopRequested->load(std::memory_order_relaxed) != 0);
    }

    /** Count one permanent failure and trip the breaker at the
     *  configured count or percentage threshold. */
    void
    noteFailure()
    {
        const std::size_t failures =
            permanentFailures.fetch_add(1) + 1;
        const bool overCount =
            opts.maxFailures != 0 && failures >= opts.maxFailures;
        const bool overPct = opts.maxFailuresPct != 0 &&
            !jobs.empty() &&
            failures * 100 >=
                static_cast<std::size_t>(opts.maxFailuresPct) *
                    jobs.size();
        if ((overCount || overPct) && !breakerTripped.exchange(true)) {
            Console::instance().line(
                "circuit breaker: " + std::to_string(failures) +
                " permanent failure(s) reached the --max-failures "
                "threshold; aborting dispatch");
            idleCv.notify_all();
            recordCv.notify_one();
        }
    }

    /**
     * Slot replayed records and queue the rest. Returns the number of
     * jobs that still need to run.
     */
    std::size_t
    seed()
    {
        std::size_t fresh = 0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const JobRecord *old = log ? log->replay(i) : nullptr;
            if (old != nullptr) {
                records[i] = std::make_unique<JobRecord>(*old);
                ++replayed;
                continue;
            }
            ++fresh;
        }
        unfinishedJobs.store(fresh);
        // Round-robin the fresh jobs across the workers *after* the
        // replay scan so the seeding is balanced on resume too.
        std::size_t next = 0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (records[i] != nullptr)
                continue;
            push(static_cast<unsigned>(next % threads),
                 {i, /*attempt=*/1});
            ++next;
        }
        return fresh;
    }

    void
    push(unsigned worker, Task task)
    {
        {
            std::lock_guard<std::mutex> lock(queues[worker]->mutex);
            queues[worker]->tasks.push_back(task);
        }
        queuedTasks.fetch_add(1);
        idleCv.notify_one();
    }

    bool
    popOwn(unsigned worker, Task &task)
    {
        std::lock_guard<std::mutex> lock(queues[worker]->mutex);
        if (queues[worker]->tasks.empty())
            return false;
        task = queues[worker]->tasks.back();
        queues[worker]->tasks.pop_back();
        return true;
    }

    bool
    steal(unsigned thief, Task &task)
    {
        for (unsigned i = 1; i < threads; ++i) {
            WorkerQueue &victim = *queues[(thief + i) % threads];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.front();
                victim.tasks.pop_front();
                return true;
            }
        }
        return false;
    }

    /** Blocking acquire; false when finished or dispatch stopped. */
    bool
    acquire(unsigned worker, Task &task)
    {
        for (;;) {
            // Graceful shutdown: stop handing out work. Queued jobs
            // stay unrun (pending) and are re-run on --resume.
            if (stopping())
                return false;
            if (popOwn(worker, task) || steal(worker, task)) {
                queuedTasks.fetch_sub(1);
                return true;
            }
            std::unique_lock<std::mutex> lock(idleMutex);
            if (unfinishedJobs.load() == 0)
                return false;
            idleCv.wait_for(lock, std::chrono::milliseconds(50), [&] {
                return queuedTasks.load() > 0 ||
                    unfinishedJobs.load() == 0 || stopping();
            });
            if (unfinishedJobs.load() == 0 && queuedTasks.load() == 0)
                return false;
        }
    }

    void
    finish(std::size_t index, JobRecord record)
    {
        // Journal before the record becomes visible to the
        // aggregator: a record a sink has consumed is always durable,
        // so a resumed campaign can only re-run jobs whose output the
        // interrupted run had not emitted yet.
        if (log != nullptr)
            log->record(record);
        const bool failed = !record.ok();
        {
            std::lock_guard<std::mutex> lock(recordMutex);
            records[index] =
                std::make_unique<JobRecord>(std::move(record));
        }
        unfinishedJobs.fetch_sub(1);
        if (failed)
            noteFailure();
        recordCv.notify_one();
        idleCv.notify_all();
    }

    // lint:thread(worker): runs on a pool thread; must never reach
    // the sinks, the fairness annotator or the stats splice.
    void
    workerLoop(unsigned worker)
    {
        Task task;
        while (acquire(worker, task))
            execute(worker, task);
        activeWorkers.fetch_sub(1);
        // The aggregator may be waiting for a record that will now
        // never arrive (drain-abandoned job); let it re-check.
        recordCv.notify_one();
    }

    /**
     * Jittered exponential backoff before a retry. Deterministic:
     * the jitter stream is seeded from (backoffSeed, attempt, job
     * name), never from time. Sleeps in slices so a shutdown request
     * cuts the wait short; returns false when interrupted.
     */
    bool
    backoff(const JobSpec &spec, std::uint32_t nextAttempt)
    {
        if (opts.backoffBaseMs == 0)
            return !stopping();
        std::uint64_t delay = opts.backoffBaseMs;
        for (std::uint32_t i = 1; i + 1 < nextAttempt; ++i) {
            delay *= 2;
            if (delay >= opts.backoffCapMs)
                break;
        }
        if (delay > opts.backoffCapMs)
            delay = opts.backoffCapMs;
        Rng rng(deriveSeed(opts.backoffSeed + nextAttempt, spec.name));
        const std::uint64_t half = delay / 2;
        delay = half + rng.below(half + 1);
        const std::int64_t deadline =
            nowMs() + static_cast<std::int64_t>(delay);
        while (nowMs() < deadline) {
            if (stopping())
                return false;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return !stopping();
    }

    // lint:thread(worker): runs on a pool thread via workerLoop.
    void
    execute(unsigned worker, Task task)
    {
        const JobSpec &spec = jobs[task.index];
        WorkerSlot &slot = *slots[worker];
        JobRecord record;
        record.index = task.index;
        record.spec = spec;
        record.attempts = task.attempt;
        record.warmupUsed = spec.warmup == kDefaultWarmup
            ? defaultWarmup(spec.quota)
            : spec.warmup;

        slot.cancel.store(false);
        slot.reason.store(static_cast<int>(CancelReason::None));
        slot.startMs.store(nowMs());
        slot.jobIndex.store(task.index);

        const Clock::time_point start = Clock::now();
        bool abandoned = false;
        bool externalKill = false;
        if (opts.isolate) {
            // Out-of-process: the job runs in a forked worker; a
            // crash, OOM or wedge is contained to that process and
            // comes back as a classified record. The watchdog's
            // cancel flags steer the worker monitor exactly like the
            // in-thread cooperative cancel.
            WorkerLimits limits;
            limits.memMb = opts.jobMemMb;
            if (opts.jobTimeoutMs != 0)
                limits.cpuSeconds = opts.jobTimeoutMs / 1000 * 2 + 5;
            IsolatedRun run = runJobIsolated(
                spec, task.index, task.attempt, limits, &slot.cancel,
                &slot.reason);
            abandoned = run.abandoned;
            externalKill = run.externalKill;
            if (!abandoned)
                record = std::move(run.record);
        } else {
            try {
                record.result =
                    executeJob(spec, &record.statsJson, &slot.cancel);
                record.status = JobStatus::Ok;
            } catch (const CheckViolation &err) {
                record.status = JobStatus::CheckViolation;
                record.error = err.what();
            } catch (const TraceError &err) {
                record.status = JobStatus::TraceError;
                record.error = err.what();
            } catch (const std::bad_alloc &) {
                // Same taxonomy as an isolated worker that hit its
                // budget, minus the RLIMIT (in-thread jobs share the
                // supervisor's address space).
                record.status = JobStatus::Oom;
                record.error =
                    "std::bad_alloc (no --job-mem-mb budget set)";
            } catch (const std::exception &err) {
                record.status = JobStatus::Error;
                record.error = err.what();
            }
        }
        record.wallMs = std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count();
        slot.jobIndex.store(WorkerSlot::kIdle);

        if (abandoned) {
            // Drain deadline killed the worker: not a result at all
            // (mirrors the in-thread CancelReason::Drain path below).
            return;
        }
        if (externalKill && task.respawns < kMaxRespawns &&
            !stopping()) {
            // An external SIGKILL (operator, kernel OOM killer) is an
            // environmental event, not a property of the job:
            // re-dispatch at the same attempt number so the final
            // record — and the result files — are byte-identical to a
            // run where nobody interfered.
            respawns.fetch_add(1);
            if (opts.progress) {
                Console::instance().line(
                    "respawn " + spec.name +
                    " (worker killed externally, respawn " +
                    std::to_string(task.respawns + 1) + "/" +
                    std::to_string(kMaxRespawns) + ")");
            }
            push(worker, {task.index, task.attempt,
                          task.respawns + 1});
            return;
        }

        if (!record.ok() && slot.cancel.load()) {
            const auto reason =
                static_cast<CancelReason>(slot.reason.load());
            if (reason == CancelReason::Drain) {
                // Abandoned by the shutdown drain deadline: not a
                // result at all. Leave it out of the journal and the
                // sinks; --resume re-runs it from scratch.
                return;
            }
            if (reason == CancelReason::Timeout) {
                record.status = JobStatus::Timeout;
                // A rerun would be just as slow: never retried.
                finish(task.index, std::move(record));
                return;
            }
        }

        if (!record.ok() && task.attempt < opts.maxAttempts &&
            !stopping()) {
            // Bounded retry: requeue locally and try again after a
            // jittered exponential backoff. The rerun is
            // deterministic, so this only helps against transient
            // environmental failures — which is exactly the point of
            // recording the attempt count.
            retries.fetch_add(1);
            if (opts.progress) {
                Console::instance().line(
                    "retry " + spec.name + " (attempt " +
                    std::to_string(task.attempt + 1) + "/" +
                    std::to_string(opts.maxAttempts) + ")");
            }
            if (backoff(spec, task.attempt + 1)) {
                push(worker, {task.index, task.attempt + 1});
                return;
            }
            // Shutdown arrived mid-backoff: the retry will not run;
            // record the failure we already have.
        }
        if (!record.ok() && opts.maxAttempts > 1 &&
            task.attempt >= opts.maxAttempts &&
            (record.status == JobStatus::Crashed ||
             record.status == JobStatus::Oom ||
             record.status == JobStatus::Exit)) {
            // Repeat offender: every allowed attempt died at the
            // process level. The record is permanent — this run will
            // never dispatch the job again — and says so.
            record.error += "; quarantined after " +
                std::to_string(task.attempt) + " failed attempts";
        }
        finish(task.index, std::move(record));
    }

    /**
     * Cancellation watchdog: raises per-worker cancel flags when a
     * job exceeds its wall-clock budget (reason Timeout) and, after a
     * shutdown request has been pending for drainDeadlineMs, on every
     * still-running job (reason Drain).
     */
    void
    watchdogLoop()
    {
        std::int64_t stopSeenMs = -1;
        std::unique_lock<std::mutex> lock(watchdogMutex);
        while (!watchdogDone) {
            watchdogCv.wait_for(lock, std::chrono::milliseconds(20));
            if (watchdogDone)
                break;
            const std::int64_t now = nowMs();
            if (stopping() && stopSeenMs < 0)
                stopSeenMs = now;
            const bool drainExpired = stopSeenMs >= 0 &&
                now - stopSeenMs >=
                    static_cast<std::int64_t>(opts.drainDeadlineMs);
            for (const auto &slot : slots) {
                const std::size_t index = slot->jobIndex.load();
                if (index == WorkerSlot::kIdle)
                    continue;
                CancelReason why = CancelReason::None;
                if (drainExpired) {
                    why = CancelReason::Drain;
                } else if (opts.jobTimeoutMs != 0 &&
                           now - slot->startMs.load() >=
                               static_cast<std::int64_t>(
                                   opts.jobTimeoutMs)) {
                    why = CancelReason::Timeout;
                }
                if (why == CancelReason::None)
                    continue;
                if (!slot->cancel.exchange(true))
                    slot->reason.store(static_cast<int>(why));
            }
        }
    }

    void
    stopWatchdog()
    {
        {
            std::lock_guard<std::mutex> lock(watchdogMutex);
            watchdogDone = true;
        }
        watchdogCv.notify_all();
    }

    // lint:thread(aggregation): the single thread allowed to feed
    // ResultSinks and splice fairness stats.
    CampaignSummary
    aggregate(const std::vector<ResultSink *> &sinks)
    {
        CampaignSummary summary;
        summary.total = jobs.size();
        summary.replayed = replayed;
        const Clock::time_point start = Clock::now();
        Clock::time_point lastLine = start;

        std::size_t consumed = 0;
        for (std::size_t next = 0; next < jobs.size(); ++next) {
            std::unique_ptr<JobRecord> record;
            {
                std::unique_lock<std::mutex> lock(recordMutex);
                for (;;) {
                    if (records[next] != nullptr) {
                        record = std::move(records[next]);
                        break;
                    }
                    // A shutdown can leave this slot permanently
                    // empty (job still queued, or abandoned by the
                    // drain deadline). Once every worker has exited
                    // no further record can arrive: stop here so the
                    // sinks keep a clean submission-order prefix.
                    if (stopping() && activeWorkers.load() == 0)
                        break;
                    recordCv.wait_for(lock,
                                      std::chrono::milliseconds(50));
                }
            }
            if (record == nullptr)
                break;
            ++consumed;
            if (record->ok())
                ++summary.ok;
            else
                ++summary.failed;
            if (opts.annotate)
                opts.annotate(*record);
            for (ResultSink *sink : sinks)
                sink->consume(*record);

            if (opts.progress) {
                const Clock::time_point now = Clock::now();
                const double elapsed =
                    std::chrono::duration<double>(now - start).count();
                const std::size_t done = consumed;
                if (now - lastLine >
                        std::chrono::milliseconds(100) ||
                    done == jobs.size()) {
                    lastLine = now;
                    const double rate =
                        elapsed > 0.0 ? done / elapsed : 0.0;
                    const double eta = rate > 0.0
                        ? static_cast<double>(jobs.size() - done) / rate
                        : 0.0;
                    char line[160];
                    std::snprintf(line, sizeof(line),
                                  "[%zu/%zu] ok=%zu failed=%zu "
                                  "%.1f jobs/s ETA %.0fs",
                                  done, jobs.size(), summary.ok,
                                  summary.failed, rate, eta);
                    Console::instance().progress(line);
                }
            }
        }
        if (opts.progress)
            Console::instance().close();
        summary.pending = jobs.size() - consumed;
        summary.interrupted = summary.pending != 0 && stopping();
        summary.retries = retries.load();
        summary.respawned = respawns.load();
        summary.breakerTripped = breakerTripped.load();
        summary.wallMs = std::chrono::duration<double, std::milli>(
                             Clock::now() - start)
                             .count();
        return summary;
    }
};

} // namespace

CampaignSummary
JobRunner::run(const std::vector<JobSpec> &jobs,
               const std::vector<ResultSink *> &sinks,
               CampaignLog *log)
{
    unsigned threads = opts_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (threads > jobs.size() && !jobs.empty())
        threads = static_cast<unsigned>(jobs.size());
    if (threads == 0)
        threads = 1;

    RunnerOptions opts = opts_;
    if (opts.maxAttempts == 0)
        opts.maxAttempts = 1;

    Campaign campaign(jobs, opts, threads, log);
    campaign.seed();

    for (ResultSink *sink : sinks)
        sink->begin(jobs.size());

    campaign.activeWorkers.store(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        workers.emplace_back(
            [&campaign, w] { campaign.workerLoop(w); });

    std::thread watchdog;
    if (opts.jobTimeoutMs != 0 || opts.stopRequested != nullptr ||
        opts.maxFailures != 0 || opts.maxFailuresPct != 0)
        watchdog = std::thread([&campaign] {
            campaign.watchdogLoop();
        });

    CampaignSummary summary = campaign.aggregate(sinks);

    for (std::thread &worker : workers)
        worker.join();
    campaign.stopWatchdog();
    if (watchdog.joinable())
        watchdog.join();
    for (ResultSink *sink : sinks)
        sink->end();
    return summary;
}

} // namespace critmem::exec

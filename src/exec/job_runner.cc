#include "exec/job_runner.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "check/check.hh"
#include "trace/trace_file.hh"

namespace critmem::exec
{

namespace
{

// lint:allow(wall-clock): wallMs/progress ETA feed the stderr display
// only and are never serialized into result files (see JobRecord).
using Clock = std::chrono::steady_clock;

/** One queued execution: which job and which attempt this is. */
struct Task
{
    std::size_t index;
    std::uint32_t attempt;
};

/** A worker's deque: owner pops the back, thieves pop the front. */
struct WorkerQueue
{
    std::mutex mutex;
    std::deque<Task> tasks;
};

/** Shared state of one campaign execution. */
struct Campaign
{
    const std::vector<JobSpec> &jobs;
    const RunnerOptions &opts;
    unsigned threads;

    std::vector<std::unique_ptr<WorkerQueue>> queues;

    // Sleep/wake coordination for workers with empty deques.
    std::mutex idleMutex;
    std::condition_variable idleCv;
    std::atomic<std::size_t> queuedTasks{0};
    std::atomic<std::size_t> unfinishedJobs{0};
    std::atomic<std::size_t> retries{0};

    // Completed records, slotted by job index; the aggregator
    // releases them to the sinks in index order.
    std::mutex recordMutex;
    std::condition_variable recordCv;
    std::vector<std::unique_ptr<JobRecord>> records;

    explicit Campaign(const std::vector<JobSpec> &jobs_,
                      const RunnerOptions &opts_, unsigned threads_)
        : jobs(jobs_), opts(opts_), threads(threads_),
          records(jobs_.size())
    {
        for (unsigned i = 0; i < threads; ++i)
            queues.push_back(std::make_unique<WorkerQueue>());
        unfinishedJobs.store(jobs.size());
    }

    void
    push(unsigned worker, Task task)
    {
        {
            std::lock_guard<std::mutex> lock(queues[worker]->mutex);
            queues[worker]->tasks.push_back(task);
        }
        queuedTasks.fetch_add(1);
        idleCv.notify_one();
    }

    bool
    popOwn(unsigned worker, Task &task)
    {
        std::lock_guard<std::mutex> lock(queues[worker]->mutex);
        if (queues[worker]->tasks.empty())
            return false;
        task = queues[worker]->tasks.back();
        queues[worker]->tasks.pop_back();
        return true;
    }

    bool
    steal(unsigned thief, Task &task)
    {
        for (unsigned i = 1; i < threads; ++i) {
            WorkerQueue &victim = *queues[(thief + i) % threads];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.front();
                victim.tasks.pop_front();
                return true;
            }
        }
        return false;
    }

    /** Blocking acquire; false when the campaign is finished. */
    bool
    acquire(unsigned worker, Task &task)
    {
        for (;;) {
            if (popOwn(worker, task) || steal(worker, task)) {
                queuedTasks.fetch_sub(1);
                return true;
            }
            std::unique_lock<std::mutex> lock(idleMutex);
            if (unfinishedJobs.load() == 0)
                return false;
            idleCv.wait_for(lock, std::chrono::milliseconds(50), [&] {
                return queuedTasks.load() > 0 ||
                    unfinishedJobs.load() == 0;
            });
            if (unfinishedJobs.load() == 0 && queuedTasks.load() == 0)
                return false;
        }
    }

    void
    finish(std::size_t index, JobRecord record)
    {
        {
            std::lock_guard<std::mutex> lock(recordMutex);
            records[index] =
                std::make_unique<JobRecord>(std::move(record));
        }
        unfinishedJobs.fetch_sub(1);
        recordCv.notify_one();
        idleCv.notify_all();
    }

    void
    workerLoop(unsigned worker)
    {
        Task task;
        while (acquire(worker, task))
            execute(worker, task);
    }

    void
    execute(unsigned worker, Task task)
    {
        const JobSpec &spec = jobs[task.index];
        JobRecord record;
        record.index = task.index;
        record.spec = spec;
        record.attempts = task.attempt;
        record.warmupUsed = spec.warmup == kDefaultWarmup
            ? defaultWarmup(spec.quota)
            : spec.warmup;

        const Clock::time_point start = Clock::now();
        try {
            record.result = executeJob(spec, &record.statsJson);
            record.status = JobStatus::Ok;
        } catch (const CheckViolation &err) {
            record.status = JobStatus::CheckViolation;
            record.error = err.what();
        } catch (const TraceError &err) {
            record.status = JobStatus::TraceError;
            record.error = err.what();
        } catch (const std::exception &err) {
            record.status = JobStatus::Error;
            record.error = err.what();
        }
        record.wallMs = std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count();

        if (!record.ok() && task.attempt < opts.maxAttempts) {
            // Bounded retry: requeue locally and try again. The rerun
            // is deterministic, so this only helps against transient
            // environmental failures — which is exactly the point of
            // recording the attempt count.
            retries.fetch_add(1);
            push(worker, {task.index, task.attempt + 1});
            return;
        }
        finish(task.index, std::move(record));
    }

    CampaignSummary
    aggregate(const std::vector<ResultSink *> &sinks)
    {
        CampaignSummary summary;
        summary.total = jobs.size();
        const Clock::time_point start = Clock::now();
        Clock::time_point lastLine = start;

        for (std::size_t next = 0; next < jobs.size(); ++next) {
            std::unique_ptr<JobRecord> record;
            {
                std::unique_lock<std::mutex> lock(recordMutex);
                recordCv.wait(lock,
                              [&] { return records[next] != nullptr; });
                record = std::move(records[next]);
            }
            if (record->ok())
                ++summary.ok;
            else
                ++summary.failed;
            for (ResultSink *sink : sinks)
                sink->consume(*record);

            if (opts.progress) {
                const Clock::time_point now = Clock::now();
                const double elapsed =
                    std::chrono::duration<double>(now - start).count();
                const std::size_t done = next + 1;
                if (now - lastLine >
                        std::chrono::milliseconds(100) ||
                    done == jobs.size()) {
                    lastLine = now;
                    const double rate =
                        elapsed > 0.0 ? done / elapsed : 0.0;
                    const double eta = rate > 0.0
                        ? static_cast<double>(jobs.size() - done) / rate
                        : 0.0;
                    std::fprintf(stderr,
                                 "\r[%zu/%zu] ok=%zu failed=%zu "
                                 "%.1f jobs/s ETA %.0fs ",
                                 done, jobs.size(), summary.ok,
                                 summary.failed, rate, eta);
                }
            }
        }
        if (opts.progress)
            std::fprintf(stderr, "\n");
        summary.retries = retries.load();
        summary.wallMs = std::chrono::duration<double, std::milli>(
                             Clock::now() - start)
                             .count();
        return summary;
    }
};

} // namespace

CampaignSummary
JobRunner::run(const std::vector<JobSpec> &jobs,
               const std::vector<ResultSink *> &sinks)
{
    unsigned threads = opts_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (threads > jobs.size() && !jobs.empty())
        threads = static_cast<unsigned>(jobs.size());
    if (threads == 0)
        threads = 1;

    RunnerOptions opts = opts_;
    if (opts.maxAttempts == 0)
        opts.maxAttempts = 1;

    Campaign campaign(jobs, opts, threads);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        campaign.push(static_cast<unsigned>(i % threads),
                      {i, /*attempt=*/1});

    for (ResultSink *sink : sinks)
        sink->begin(jobs.size());

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        workers.emplace_back(
            [&campaign, w] { campaign.workerLoop(w); });

    CampaignSummary summary = campaign.aggregate(sinks);

    for (std::thread &worker : workers)
        worker.join();
    for (ResultSink *sink : sinks)
        sink->end();
    return summary;
}

} // namespace critmem::exec

#include "exec/campaign.hh"

#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "sched/registry.hh"
#include "sim/atomic_file.hh"
#include "trace/workloads.hh"

namespace critmem::exec
{

namespace
{

constexpr const char *kManifestMagic = "critmem-campaign v1";
constexpr const char *kRecordMagic = "r1";
constexpr std::size_t kPayloadFields = 28;

/** Incremental FNV-1a-64 used by both the hash and the checksums. */
struct Fnv
{
    std::uint64_t hash = 0xcbf29ce484222325ull;

    void
    byte(std::uint8_t b)
    {
        hash ^= b;
        hash *= 0x100000001b3ull;
    }

    void
    str(const std::string &s)
    {
        for (const char c : s)
            byte(static_cast<std::uint8_t>(c));
        byte(0x1f); // field separator: "ab","c" != "a","bc"
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (i * 8)));
    }
};

std::uint64_t
lineChecksum(const std::string &payload)
{
    Fnv fnv;
    for (const char c : payload)
        fnv.byte(static_cast<std::uint8_t>(c));
    return fnv.hash;
}

/** \ tab newline CR are the only bytes that would break a record. */
std::string
escapeField(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          default:   out += c; break;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &text, std::uint64_t offset)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\') {
            out += text[i];
            continue;
        }
        if (i + 1 == text.size())
            throw CampaignError("journal record ends inside an "
                                "escape sequence", offset);
        switch (text[++i]) {
          case '\\': out += '\\'; break;
          case 't':  out += '\t'; break;
          case 'n':  out += '\n'; break;
          case 'r':  out += '\r'; break;
          default:
            throw CampaignError(
                std::string("journal record holds unknown escape "
                            "'\\") + text[i] + "'", offset);
        }
    }
    return out;
}

std::uint64_t
parseU64(const std::string &field, const char *what,
         std::uint64_t offset)
{
    if (field.empty())
        throw CampaignError(std::string("journal record has an "
                                        "empty ") + what + " field",
                            offset);
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value =
        std::strtoull(field.c_str(), &end, 10);
    if (errno != 0 || end != field.c_str() + field.size())
        throw CampaignError(std::string("journal record has a "
                                        "malformed ") + what +
                            " field '" + field + "'", offset);
    return value;
}

/** Doubles travel as bit-exact 16-digit hex of their IEEE-754 bits. */
double
parseDoubleBits(const std::string &field, const char *what,
                std::uint64_t offset)
{
    if (field.size() != 16)
        throw CampaignError(std::string("journal record has a "
                                        "malformed ") + what +
                            " field '" + field + "'", offset);
    std::uint64_t bits = 0;
    for (const char c : field) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            throw CampaignError(std::string("journal record has a "
                                            "malformed ") + what +
                                " field '" + field + "'", offset);
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    return std::bit_cast<double>(bits);
}

std::string
joinU64s(const std::vector<std::uint64_t> &values)
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0)
            out += ',';
        out += std::to_string(values[i]);
    }
    return out;
}

std::vector<std::uint64_t>
splitU64s(const std::string &field, const char *what,
          std::uint64_t offset)
{
    std::vector<std::uint64_t> out;
    if (field.empty())
        return out;
    std::size_t pos = 0;
    while (pos <= field.size()) {
        const std::size_t comma = field.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? field.size() : comma;
        out.push_back(
            parseU64(field.substr(pos, end - pos), what, offset));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

bool
parseHex64(const std::string &field, std::uint64_t &out)
{
    if (field.size() != 16)
        return false;
    out = 0;
    for (const char c : field) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        out = (out << 4) | static_cast<std::uint64_t>(digit);
    }
    return true;
}

std::string
readWholeFile(const std::string &path, const char *what)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw CampaignError(std::string("cannot open ") + what +
                            " '" + path + "'", 0);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Decode a checksum-verified payload; throws on any field error. */
JobRecord
decodePayload(const std::string &payload, std::uint64_t offset)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (pos <= payload.size()) {
        const std::size_t tab = payload.find('\t', pos);
        const std::size_t end =
            tab == std::string::npos ? payload.size() : tab;
        fields.push_back(payload.substr(pos, end - pos));
        if (tab == std::string::npos)
            break;
        pos = tab + 1;
    }
    if (fields.size() != kPayloadFields)
        throw CampaignError(
            "journal record has " + std::to_string(fields.size()) +
            " fields, expected " + std::to_string(kPayloadFields),
            offset);

    JobRecord rec;
    std::size_t f = 0;
    rec.index = parseU64(fields[f++], "index", offset);
    rec.spec.name = unescapeField(fields[f++], offset);
    rec.spec.cfg.seed = parseU64(fields[f++], "seed", offset);
    if (!parseJobStatus(fields[f], rec.status))
        throw CampaignError("journal record has unknown status '" +
                            fields[f] + "'", offset);
    ++f;
    rec.attempts = static_cast<std::uint32_t>(
        parseU64(fields[f++], "attempts", offset));
    rec.warmupUsed = parseU64(fields[f++], "warmup", offset);

    RunResult &r = rec.result;
    r.cycles = parseU64(fields[f++], "cycles", offset);
    r.finishCycles = splitU64s(fields[f++], "finishCycles", offset);
    r.committed = splitU64s(fields[f++], "committed", offset);
    std::uint64_t *const scalars[] = {
        &r.dynamicLoads, &r.blockingLoads, &r.robBlockedCycles,
        &r.coreCycles, &r.loadsIssued, &r.critLoadsIssued,
        &r.lqFullCycles, &r.demandMisses, &r.critMissCount,
        &r.nonCritMissCount, &r.rowHits, &r.rowMisses, &r.dramReads,
        &r.maxCbpValue, &r.cbpPopulated,
    };
    for (std::uint64_t *scalar : scalars)
        *scalar = parseU64(fields[f++], "result", offset);
    r.l2MissLatCrit =
        parseDoubleBits(fields[f++], "l2MissLatCrit", offset);
    r.l2MissLatNonCrit =
        parseDoubleBits(fields[f++], "l2MissLatNonCrit", offset);
    rec.error = unescapeField(fields[f++], offset);
    rec.statsJson = unescapeField(fields[f++], offset);
    return rec;
}

} // namespace

CampaignError::CampaignError(const std::string &message,
                             std::uint64_t byteOffset)
    : std::runtime_error(message + " (byte offset " +
                         std::to_string(byteOffset) + ")"),
      byteOffset_(byteOffset)
{
}

std::string
hashHex(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

std::uint64_t
campaignHash(const std::vector<JobSpec> &jobs)
{
    Fnv fnv;
    fnv.str(kManifestMagic);

    // Registry identity: renaming/adding a scheduler, app or bundle
    // invalidates old campaigns even when the job list looks alike.
    for (const SchedInfo &info : schedulerRegistry())
        fnv.str(info.cliName);
    for (const AppParams &app : parallelApps())
        fnv.str(app.name);
    for (const AppParams &app : singleApps())
        fnv.str(app.name);
    for (const Bundle &bundle : multiprogBundles())
        fnv.str(bundle.name);
    // Trace workload identity covers the file CONTENT (FNV-1a of the
    // raw bytes from the registration scan), so a campaign resumed
    // against an edited trace file is refused as a different
    // campaign even when the path and job list are unchanged.
    for (const TraceWorkload &wl : traceWorkloads()) {
        fnv.str(wl.name);
        fnv.str(wl.path);
        fnv.u64(wl.contentHash);
        fnv.u64(wl.numCores);
        fnv.u64(wl.records);
        fnv.str(ingest::toString(wl.options.policy));
        fnv.u64(wl.options.skipBudget);
    }

    fnv.u64(jobs.size());
    for (const JobSpec &spec : jobs) {
        fnv.str(spec.name);
        fnv.u64(spec.cfg.seed);
        fnv.str(toString(spec.kind));
        fnv.str(spec.workload);
        fnv.str(cliName(spec.cfg.sched.algo));
        fnv.str(cliName(spec.cfg.crit.predictor));
        fnv.u64(spec.cfg.crit.tableEntries);
        fnv.u64(spec.quota);
        fnv.u64(spec.warmup);
    }
    return fnv.hash;
}

const std::string *
Manifest::find(const std::string &key) const
{
    for (const auto &[k, v] : fields) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
Manifest::expectValue(const std::string &key,
                      const std::string &want) const
{
    const std::string *have = find(key);
    if (have == nullptr)
        throw CampaignError("campaign manifest is missing key '" +
                            key + "'", 0);
    if (*have != want) {
        const auto offset = keyOffset.find(key);
        throw CampaignError(
            "campaign manifest records " + key + " = '" + *have +
            "' but the resumed campaign expects '" + want +
            "'; refusing to mix results from different experiments",
            offset == keyOffset.end() ? 0 : offset->second);
    }
}

Manifest
loadManifest(const std::string &path)
{
    const std::string text = readWholeFile(path, "campaign manifest");
    Manifest manifest;
    std::size_t pos = 0;
    bool sawMagic = false;
    while (pos < text.size()) {
        const std::uint64_t lineStart = pos;
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            throw CampaignError("campaign manifest line is missing "
                                "its newline", lineStart);
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (!sawMagic) {
            if (line != kManifestMagic)
                throw CampaignError(
                    "campaign manifest does not start with '" +
                    std::string(kManifestMagic) + "'", lineStart);
            sawMagic = true;
            continue;
        }
        if (line.empty())
            continue;
        const std::size_t sep = line.find(" = ");
        if (sep == std::string::npos || sep == 0)
            throw CampaignError("campaign manifest line is not "
                                "'key = value'", lineStart);
        const std::string key = line.substr(0, sep);
        if (manifest.find(key) != nullptr)
            throw CampaignError("campaign manifest repeats key '" +
                                key + "'", lineStart);
        manifest.fields.emplace_back(key, line.substr(sep + 3));
        manifest.keyOffset.emplace(key, lineStart);
    }
    if (!sawMagic)
        throw CampaignError("campaign manifest is empty", 0);
    return manifest;
}

void
writeManifest(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &fields)
{
    AtomicFile file(path);
    file.stream() << kManifestMagic << '\n';
    for (const auto &[key, value] : fields)
        file.stream() << key << " = " << value << '\n';
    file.commit();
}

std::string
encodeJournalRecord(const JobRecord &rec)
{
    const RunResult &r = rec.result;
    std::string payload;
    const auto add = [&payload](const std::string &field) {
        if (!payload.empty())
            payload += '\t';
        payload += field;
    };
    add(std::to_string(rec.index));
    add(escapeField(rec.spec.name));
    add(std::to_string(rec.spec.cfg.seed));
    add(toString(rec.status));
    add(std::to_string(rec.attempts));
    add(std::to_string(rec.warmupUsed));
    add(std::to_string(r.cycles));
    add(joinU64s(r.finishCycles));
    add(joinU64s(r.committed));
    for (const std::uint64_t scalar :
         {r.dynamicLoads, r.blockingLoads, r.robBlockedCycles,
          r.coreCycles, r.loadsIssued, r.critLoadsIssued,
          r.lqFullCycles, r.demandMisses, r.critMissCount,
          r.nonCritMissCount, r.rowHits, r.rowMisses, r.dramReads,
          r.maxCbpValue, r.cbpPopulated})
        add(std::to_string(scalar));
    add(hashHex(std::bit_cast<std::uint64_t>(r.l2MissLatCrit)));
    add(hashHex(std::bit_cast<std::uint64_t>(r.l2MissLatNonCrit)));
    add(escapeField(rec.error));
    add(escapeField(rec.statsJson));

    return std::string(kRecordMagic) + ' ' +
        hashHex(lineChecksum(payload)) + ' ' + payload + '\n';
}

JobRecord
decodeJournalRecord(const std::string &rawLine, std::uint64_t offset)
{
    std::string line = rawLine;
    if (!line.empty() && line.back() == '\n')
        line.pop_back();
    const std::size_t headerLen = std::strlen(kRecordMagic) + 1 + 16 + 1;
    std::uint64_t want = 0;
    if (line.size() < headerLen ||
        line.compare(0, std::strlen(kRecordMagic), kRecordMagic) != 0 ||
        line[std::strlen(kRecordMagic)] != ' ' ||
        line[headerLen - 1] != ' ' ||
        !parseHex64(line.substr(std::strlen(kRecordMagic) + 1, 16),
                    want)) {
        throw CampaignError("journal record does not start with '" +
                            std::string(kRecordMagic) +
                            " <checksum> '", offset);
    }
    const std::string payload = line.substr(headerLen);
    if (lineChecksum(payload) != want) {
        throw CampaignError(
            "journal record fails its checksum (expected " +
            hashHex(want) + ", computed " +
            hashHex(lineChecksum(payload)) + ")", offset);
    }
    return decodePayload(payload, offset);
}

JournalLoad
loadJournal(const std::string &path, bool strict)
{
    const std::string text = readWholeFile(path, "campaign journal");
    JournalLoad load;
    std::vector<bool> seen;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::uint64_t lineStart = pos;
        const std::size_t nl = text.find('\n', pos);
        const bool hasNewline = nl != std::string::npos;
        const std::string line =
            text.substr(pos, (hasNewline ? nl : text.size()) - pos);
        pos = hasNewline ? nl + 1 : text.size();
        const bool finalLine = pos >= text.size();

        // Structural damage — short line, bad magic, checksum
        // mismatch, missing newline — is a torn tail when (and only
        // when) it is the last line of the file.
        std::string damage;
        std::uint64_t want = 0;
        const std::size_t headerLen =
            std::strlen(kRecordMagic) + 1 + 16 + 1;
        if (!hasNewline) {
            damage = "journal record is missing its newline";
        } else if (line.size() < headerLen ||
                   line.compare(0, std::strlen(kRecordMagic),
                                kRecordMagic) != 0 ||
                   line[std::strlen(kRecordMagic)] != ' ' ||
                   line[headerLen - 1] != ' ' ||
                   !parseHex64(
                       line.substr(std::strlen(kRecordMagic) + 1, 16),
                       want)) {
            damage = "journal record does not start with '" +
                std::string(kRecordMagic) + " <checksum> '";
        }
        std::string payload;
        if (damage.empty()) {
            payload = line.substr(headerLen);
            if (lineChecksum(payload) != want)
                damage = "journal record fails its checksum "
                         "(expected " + hashHex(want) + ", computed " +
                         hashHex(lineChecksum(payload)) + ")";
        }
        if (!damage.empty()) {
            if (!strict && finalLine) {
                load.tornTail = true;
                break;
            }
            throw CampaignError(damage, lineStart);
        }

        // Past the checksum the line is exactly what was written:
        // decode/consistency failures are real corruption (or a
        // foreign file) and throw even on the final line.
        JobRecord rec = decodePayload(payload, lineStart);
        if (rec.index >= seen.size())
            seen.resize(rec.index + 1, false);
        if (seen[rec.index])
            throw CampaignError("journal repeats job index " +
                                std::to_string(rec.index), lineStart);
        seen[rec.index] = true;
        load.records.push_back(std::move(rec));
        load.offsets.push_back(lineStart);
        load.validBytes = pos;
    }
    return load;
}

CampaignJournal::~CampaignJournal()
{
    // A destructor cannot surface failures; it does not need to. The
    // close result is deliberately ignored because record() already
    // fflush'd and fsync'd every line before returning — there is no
    // buffered data left for fclose to lose.
    if (file_ != nullptr)
        static_cast<void>(std::fclose(file_));
}

std::unique_ptr<CampaignJournal>
CampaignJournal::create(const std::string &path)
{
    std::unique_ptr<CampaignJournal> journal(new CampaignJournal);
    journal->path_ = path;
    // Deliberately not an AtomicFile: the journal is an append-only
    // log whose durability comes from the per-record fsync in
    // record(); the atomic temp+rename recipe cannot append.
    // lint:allow(durable-write): see above.
    journal->file_ = std::fopen(path.c_str(), "wb");
    if (journal->file_ == nullptr) {
        throw CampaignError("cannot create campaign journal '" +
                            path + "': " + std::strerror(errno), 0);
    }
    fsyncParentDir(path);
    return journal;
}

std::unique_ptr<CampaignJournal>
CampaignJournal::resume(const std::string &path)
{
    JournalLoad load = loadJournal(path, /*strict=*/false);
    std::unique_ptr<CampaignJournal> journal(new CampaignJournal);
    journal->path_ = path;
    journal->loaded_ = std::move(load.records);
    journal->offsets_ = std::move(load.offsets);
    journal->tornTail_ = load.tornTail;
    if (load.tornTail) {
        // Cut the torn line off on disk so the file again ends at a
        // record boundary before we start appending after it.
        if (::truncate(path.c_str(),
                       static_cast<off_t>(load.validBytes)) != 0) {
            throw CampaignError(
                "cannot truncate torn campaign journal '" + path +
                "': " + std::strerror(errno), load.validBytes);
        }
        fsyncPath(path);
    }
    journal->offset_ = load.validBytes;
    // lint:allow(durable-write): append-only log, fsync'd per record.
    journal->file_ = std::fopen(path.c_str(), "ab");
    if (journal->file_ == nullptr) {
        throw CampaignError("cannot reopen campaign journal '" +
                            path + "': " + std::strerror(errno),
                            load.validBytes);
    }
    return journal;
}

void
CampaignJournal::attach(const std::vector<JobSpec> &jobs)
{
    byIndex_.assign(jobs.size(), nullptr);
    for (std::size_t i = 0; i < loaded_.size(); ++i) {
        JobRecord &rec = loaded_[i];
        const std::uint64_t offset = offsets_[i];
        if (rec.index >= jobs.size()) {
            throw CampaignError(
                "journal records job index " +
                std::to_string(rec.index) + " but the campaign "
                "expands to only " + std::to_string(jobs.size()) +
                " jobs", offset);
        }
        const JobSpec &spec = jobs[rec.index];
        if (spec.name != rec.spec.name ||
            spec.cfg.seed != rec.spec.cfg.seed) {
            throw CampaignError(
                "journal job " + std::to_string(rec.index) +
                " is '" + rec.spec.name + "' (seed " +
                std::to_string(rec.spec.cfg.seed) +
                ") but the campaign expands it as '" + spec.name +
                "' (seed " + std::to_string(spec.cfg.seed) + ")",
                offset);
        }
        // Re-attach the full spec (config, tags, ...): the journal
        // stores only the identity fields needed to verify it.
        rec.spec = spec;
        byIndex_[rec.index] = &rec;
    }
}

const JobRecord *
CampaignJournal::replay(std::size_t index) const
{
    return index < byIndex_.size() ? byIndex_[index] : nullptr;
}

void
CampaignJournal::record(const JobRecord &rec)
{
    const std::string line = encodeJournalRecord(rec);
    std::lock_guard<std::mutex> lock(mutex_);
    // Every I/O step is checked individually and surfaced as a
    // CampaignError carrying the append offset: a journal that can no
    // longer absorb records durably must stop the campaign, not
    // silently continue past an unrecorded result.
    const auto ioError = [this](const char *what) {
        throw CampaignError(
            std::string("cannot append to campaign journal '") +
            path_ + "': " + what + " failed: " +
            std::strerror(errno), offset_);
    };
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
        ioError("write");
    if (std::fflush(file_) != 0)
        ioError("flush");
    if (::fsync(fileno(file_)) != 0)
        ioError("fsync");
    offset_ += line.size();
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest.txt";
}

std::string
journalPath(const std::string &dir)
{
    return dir + "/journal.txt";
}

} // namespace critmem::exec

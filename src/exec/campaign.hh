/**
 * @file
 * Crash-safe campaign state: the manifest + journal pair behind
 * critmem-sweep --campaign/--resume.
 *
 * A campaign directory holds two files:
 *
 *  - `manifest.txt` — what was asked for: the spec path, a hash of
 *    the fully expanded job list (campaignHash), and every
 *    command-line override that shaped the expansion. Written once,
 *    atomically, before the first job runs. On --resume the spec is
 *    re-expanded and the hash re-checked, so a resumed campaign can
 *    never silently mix results from two different experiment
 *    definitions.
 *
 *  - `journal.txt` — what has finished: one self-checksummed record
 *    per completed job, appended and fsync'd record-at-a-time by the
 *    JobRunner (via the CampaignLog interface). A record carries
 *    everything the result sinks serialize, so resumed campaigns
 *    replay completed jobs into the sinks byte-identically without
 *    re-running them.
 *
 * Durability contract: each journal line is `r1 <crc> <payload>`
 * where crc is the FNV-1a-64 of the payload. A crash (power loss,
 * SIGKILL) can only damage the final line; the non-strict loader
 * detects such a torn tail and truncates it, re-running that one
 * job. Damage anywhere else — a failed checksum mid-file, a
 * duplicate job index, an unparseable field — is never silently
 * skipped: it throws CampaignError carrying the byte offset of the
 * corruption, mirroring TraceError.
 */

#ifndef CRITMEM_EXEC_CAMPAIGN_HH
#define CRITMEM_EXEC_CAMPAIGN_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exec/job_runner.hh"

namespace critmem::exec
{

/**
 * A malformed campaign manifest or journal. Carries the byte offset
 * of the offending record/field so tooling can point at the
 * corruption (the analogue of TraceError for campaign state).
 */
class CampaignError : public std::runtime_error
{
  public:
    CampaignError(const std::string &message, std::uint64_t byteOffset);

    /** Offset into the file of the line that failed validation. */
    std::uint64_t byteOffset() const { return byteOffset_; }

  private:
    std::uint64_t byteOffset_;
};

/** 16-digit lower-case hex of a 64-bit hash (the on-disk spelling). */
std::string hashHex(std::uint64_t value);

/**
 * Identity hash of a fully expanded campaign: folds every field of
 * every job that the result files depend on (name, seed, kind,
 * workload, scheduler, predictor, quota, warmup) plus the registry
 * contents (scheduler/app/bundle name lists), so a code or spec
 * change that would alter the job list changes the hash.
 */
std::uint64_t campaignHash(const std::vector<JobSpec> &jobs);

/**
 * The campaign manifest: ordered key/value pairs under a
 * `critmem-campaign v1` magic line. Keys remember their byte offset
 * so verification failures can point into the file.
 */
struct Manifest
{
    std::vector<std::pair<std::string, std::string>> fields;
    std::map<std::string, std::uint64_t> keyOffset;

    /** Value of @p key; nullptr when absent. */
    const std::string *find(const std::string &key) const;

    /**
     * Throw CampaignError (at the key's line) unless the manifest
     * holds @p key with exactly @p want — the resume-safety check.
     */
    void expectValue(const std::string &key,
                     const std::string &want) const;
};

/** Parse @p path; throws CampaignError on any malformation. */
Manifest loadManifest(const std::string &path);

/** Atomically (temp + fsync + rename) write a manifest to @p path. */
void writeManifest(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &fields);

/** Serialize one completed job as a journal line (incl. newline). */
std::string encodeJournalRecord(const JobRecord &rec);

/**
 * Decode one journal line (`r1 <checksum> <payload>`, trailing
 * newline optional) back into a JobRecord. The isolated-worker pipe
 * protocol (exec/worker.hh) reuses the journal encoding as its wire
 * format — the checksum turns a record torn by a worker crash into a
 * detected failure instead of silent corruption. Throws CampaignError
 * carrying @p offset on any structural or field damage.
 */
JobRecord decodeJournalRecord(const std::string &line,
                              std::uint64_t offset = 0);

/** Result of loading a journal file. */
struct JournalLoad
{
    std::vector<JobRecord> records;
    /** Byte offset where each record's line starts (parallel). */
    std::vector<std::uint64_t> offsets;
    /** File prefix covered by intact records. */
    std::uint64_t validBytes = 0;
    /** A torn final line was detected (and excluded). */
    bool tornTail = false;
};

/**
 * Load a journal. Non-strict mode (the --resume path) tolerates
 * exactly one kind of damage — a torn *final* line, the signature of
 * a crash mid-append — reporting it via JournalLoad::tornTail.
 * Everything else, and in strict mode a torn tail too, throws
 * CampaignError with the byte offset of the bad line.
 */
JournalLoad loadJournal(const std::string &path, bool strict = false);

/**
 * The append-side of the journal: the CampaignLog implementation the
 * JobRunner writes through. Thread-safe; every record() call appends
 * one line, flushes and fsyncs before returning, so a record handed
 * to the sinks is always durable.
 */
class CampaignJournal : public CampaignLog
{
  public:
    /** Start an empty journal at @p path (truncates). */
    static std::unique_ptr<CampaignJournal>
    create(const std::string &path);

    /**
     * Load @p path (truncating a torn tail in place, on disk) and
     * open it for appending. Call attach() before use as a replay
     * source.
     */
    static std::unique_ptr<CampaignJournal>
    resume(const std::string &path);

    ~CampaignJournal() override;

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /**
     * Bind loaded records to the re-expanded job list: each record's
     * index must name a job with the same name and seed, else
     * CampaignError (at the record's byte offset) — the journal
     * belongs to a different campaign than the manifest admitted.
     */
    void attach(const std::vector<JobSpec> &jobs);

    const JobRecord *replay(std::size_t index) const override;
    void record(const JobRecord &rec) override;

    /** Records recovered from an existing journal by resume(). */
    std::size_t loadedCount() const { return loaded_.size(); }

    /** resume() found and truncated a torn final line. */
    bool tornTailTruncated() const { return tornTail_; }

    /**
     * Byte offset the next record will be appended at (== the bytes
     * of intact records currently on disk). A failed append throws
     * CampaignError carrying this offset, so forensics can point at
     * exactly where the journal stopped being writable.
     */
    std::uint64_t appendOffset() const { return offset_; }

  private:
    CampaignJournal() = default;

    std::FILE *file_ = nullptr;
    std::string path_;
    std::mutex mutex_;
    std::vector<JobRecord> loaded_;
    std::vector<std::uint64_t> offsets_;
    std::vector<const JobRecord *> byIndex_;
    bool tornTail_ = false;
    std::uint64_t offset_ = 0;
};

/** manifest.txt / journal.txt paths inside a campaign directory. */
std::string manifestPath(const std::string &dir);
std::string journalPath(const std::string &dir);

} // namespace critmem::exec

#endif // CRITMEM_EXEC_CAMPAIGN_HH

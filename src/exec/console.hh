/**
 * @file
 * Single mutex-guarded stderr writer for campaign drivers. The job
 * runner's progress line, worker retry/timeout notices and the
 * tool-level summary/failure lines all funnel through one Console so
 * that no two threads ever interleave partial lines — and a sticky
 * progress line is cleanly erased before any full line is printed.
 */

#ifndef CRITMEM_EXEC_CONSOLE_HH
#define CRITMEM_EXEC_CONSOLE_HH

#include <mutex>
#include <string>

namespace critmem::exec
{

/** Process-wide serialized stderr writer (see file comment). */
class Console
{
  public:
    static Console &instance();

    /**
     * Print @p text as one whole line (newline appended), atomically
     * with respect to every other Console caller. Any sticky progress
     * line is erased first and redrawn by the next progress() call.
     */
    void line(const std::string &text);

    /** Replace the sticky single-line progress display. */
    void progress(const std::string &text);

    /** Terminate the progress line with a newline, if one is shown. */
    void close();

  private:
    Console() = default;

    std::mutex mutex_;
    /** Visible width of the currently shown progress line (0 = none). */
    std::size_t shown_ = 0;
};

} // namespace critmem::exec

#endif // CRITMEM_EXEC_CONSOLE_HH

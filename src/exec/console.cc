#include "exec/console.hh"

#include <cstdio>

namespace critmem::exec
{

Console &
Console::instance()
{
    static Console console;
    return console;
}

void
Console::line(const std::string &text)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (shown_ != 0) {
        std::fprintf(stderr, "\r%*s\r", static_cast<int>(shown_), "");
        shown_ = 0;
    }
    std::fprintf(stderr, "%s\n", text.c_str());
    std::fflush(stderr);
}

void
Console::progress(const std::string &text)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Pad with spaces when the new line is shorter than the previous
    // one so stale tail characters never linger.
    const std::size_t pad =
        shown_ > text.size() ? shown_ - text.size() : 0;
    std::fprintf(stderr, "\r%s%*s", text.c_str(),
                 static_cast<int>(pad), "");
    if (pad != 0)
        std::fprintf(stderr, "\r%s", text.c_str());
    shown_ = text.size();
    std::fflush(stderr);
}

void
Console::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (shown_ != 0) {
        std::fputc('\n', stderr);
        shown_ = 0;
    }
    std::fflush(stderr);
}

} // namespace critmem::exec

#include "exec/result_sink.hh"

#include <stdexcept>

#include "sched/registry.hh"
#include "sim/stats.hh"

namespace critmem::exec
{

double
aggregateIpc(const JobRecord &rec)
{
    const RunResult &r = rec.result;
    switch (rec.spec.kind) {
      case RunKind::Parallel:
      case RunKind::Trace: // same stop-at-quota methodology
        return r.cycles == 0
            ? 0.0
            : static_cast<double>(rec.spec.quota) *
                static_cast<double>(rec.spec.cfg.numCores) /
                static_cast<double>(r.cycles);
      case RunKind::Bundle: {
        double sum = 0.0;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(r.finishCycles.size()); ++i)
            sum += r.ipc(i, rec.spec.quota);
        return sum;
      }
      case RunKind::Alone:
        return r.finishCycles.empty() ? 0.0 : r.ipc(0, rec.spec.quota);
    }
    return 0.0;
}

namespace
{

void
jsonKey(std::ostream &os, bool &first, const char *key)
{
    os << (first ? "" : ",");
    first = false;
    stats::jsonEscape(os, key);
    os << ':';
}

void
jsonUints(std::ostream &os, const std::vector<std::uint64_t> &values)
{
    os << '[';
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << values[i];
    os << ']';
}

} // namespace

void
JsonlSink::consume(const JobRecord &rec)
{
    const JobSpec &spec = rec.spec;
    bool first = true;
    os_ << '{';
    jsonKey(os_, first, "name");
    stats::jsonEscape(os_, spec.name);
    jsonKey(os_, first, "index");
    os_ << rec.index;
    jsonKey(os_, first, "kind");
    os_ << '"' << toString(spec.kind) << '"';
    jsonKey(os_, first, "workload");
    stats::jsonEscape(os_, spec.workload);
    jsonKey(os_, first, "sched");
    os_ << '"' << cliName(spec.cfg.sched.algo) << '"';
    jsonKey(os_, first, "predictor");
    os_ << '"' << cliName(spec.cfg.crit.predictor) << '"';
    if (spec.cfg.crit.predictor != CritPredictor::None) {
        jsonKey(os_, first, "entries");
        os_ << spec.cfg.crit.tableEntries;
    }
    jsonKey(os_, first, "seed");
    os_ << spec.cfg.seed;
    jsonKey(os_, first, "quota");
    os_ << spec.quota;
    jsonKey(os_, first, "warmup");
    os_ << rec.warmupUsed;
    jsonKey(os_, first, "status");
    os_ << '"' << toString(rec.status) << '"';
    jsonKey(os_, first, "attempts");
    os_ << rec.attempts;

    if (rec.ok()) {
        const RunResult &r = rec.result;
        jsonKey(os_, first, "cycles");
        os_ << r.cycles;
        jsonKey(os_, first, "ipc");
        stats::jsonDouble(os_, aggregateIpc(rec));
        jsonKey(os_, first, "finishCycles");
        jsonUints(os_, r.finishCycles);
        jsonKey(os_, first, "committed");
        jsonUints(os_, r.committed);
        const std::pair<const char *, std::uint64_t> scalars[] = {
            {"dynamicLoads", r.dynamicLoads},
            {"blockingLoads", r.blockingLoads},
            {"robBlockedCycles", r.robBlockedCycles},
            {"coreCycles", r.coreCycles},
            {"loadsIssued", r.loadsIssued},
            {"critLoadsIssued", r.critLoadsIssued},
            {"lqFullCycles", r.lqFullCycles},
            {"demandMisses", r.demandMisses},
            {"critMissCount", r.critMissCount},
            {"nonCritMissCount", r.nonCritMissCount},
            {"rowHits", r.rowHits},
            {"rowMisses", r.rowMisses},
            {"dramReads", r.dramReads},
            {"maxCbpValue", r.maxCbpValue},
            {"cbpPopulated", r.cbpPopulated},
        };
        for (const auto &[key, value] : scalars) {
            jsonKey(os_, first, key);
            os_ << value;
        }
        jsonKey(os_, first, "l2MissLatCrit");
        stats::jsonDouble(os_, r.l2MissLatCrit);
        jsonKey(os_, first, "l2MissLatNonCrit");
        stats::jsonDouble(os_, r.l2MissLatNonCrit);
        if (rec.fairness.valid) {
            const fair::FairnessMetrics &m = rec.fairness;
            jsonKey(os_, first, "weightedSpeedup");
            stats::jsonDouble(os_, m.weightedSpeedup);
            jsonKey(os_, first, "harmonicSpeedup");
            stats::jsonDouble(os_, m.harmonicSpeedup);
            jsonKey(os_, first, "maxSlowdown");
            stats::jsonDouble(os_, m.maxSlowdown);
            jsonKey(os_, first, "unfairness");
            stats::jsonDouble(os_, m.unfairness);
            jsonKey(os_, first, "slowdown");
            os_ << '[';
            for (std::size_t i = 0; i < m.slowdown.size(); ++i) {
                os_ << (i ? "," : "");
                stats::jsonDouble(os_, m.slowdown[i]);
            }
            os_ << ']';
        }
    } else {
        jsonKey(os_, first, "error");
        stats::jsonEscape(os_, rec.error);
        jsonKey(os_, first, "repro");
        stats::jsonEscape(os_, reproCommand(spec));
    }

    if (!spec.tags.empty()) {
        jsonKey(os_, first, "tags");
        os_ << '{';
        bool tagFirst = true;
        for (const auto &[key, value] : spec.tags) {
            os_ << (tagFirst ? "" : ",");
            tagFirst = false;
            stats::jsonEscape(os_, key);
            os_ << ':';
            stats::jsonEscape(os_, value);
        }
        os_ << '}';
    }
    if (!rec.statsJson.empty()) {
        jsonKey(os_, first, "stats");
        os_ << rec.statsJson; // already a serialized JSON object
    }
    os_ << "}\n";
}

void
CsvSink::begin(std::size_t)
{
    os_ << "name,index,kind,workload,sched,predictor,entries,seed,"
           "quota,warmup,status,attempts,cycles,ipc,dynamicLoads,"
           "blockingLoads,robBlockedCycles,rowHits,rowMisses,"
           "dramReads,l2MissLatCrit,l2MissLatNonCrit,"
           "weightedSpeedup,harmonicSpeedup,maxSlowdown,unfairness,"
           "error\n";
}

namespace
{

void
csvField(std::ostream &os, const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos) {
        os << text;
        return;
    }
    os << '"';
    for (const char c : text) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

} // namespace

void
CsvSink::consume(const JobRecord &rec)
{
    const JobSpec &spec = rec.spec;
    csvField(os_, spec.name);
    os_ << ',' << rec.index << ',' << toString(spec.kind) << ',';
    csvField(os_, spec.workload);
    os_ << ',' << cliName(spec.cfg.sched.algo) << ','
        << cliName(spec.cfg.crit.predictor) << ','
        << spec.cfg.crit.tableEntries << ',' << spec.cfg.seed << ','
        << spec.quota << ',' << rec.warmupUsed << ','
        << toString(rec.status) << ',' << rec.attempts << ',';
    if (rec.ok()) {
        const RunResult &r = rec.result;
        os_ << r.cycles << ',';
        stats::jsonDouble(os_, aggregateIpc(rec));
        os_ << ',' << r.dynamicLoads << ',' << r.blockingLoads << ','
            << r.robBlockedCycles << ',' << r.rowHits << ','
            << r.rowMisses << ',' << r.dramReads << ',';
        stats::jsonDouble(os_, r.l2MissLatCrit);
        os_ << ',';
        stats::jsonDouble(os_, r.l2MissLatNonCrit);
        os_ << ',';
        // Fairness columns stay empty when no baselines were around.
        if (rec.fairness.valid) {
            const fair::FairnessMetrics &m = rec.fairness;
            stats::jsonDouble(os_, m.weightedSpeedup);
            os_ << ',';
            stats::jsonDouble(os_, m.harmonicSpeedup);
            os_ << ',';
            stats::jsonDouble(os_, m.maxSlowdown);
            os_ << ',';
            stats::jsonDouble(os_, m.unfairness);
            os_ << ',';
        } else {
            os_ << ",,,,";
        }
    } else {
        os_ << ",,,,,,,,,,,,,,";
        csvField(os_, rec.error);
    }
    os_ << '\n';
}

const JobRecord *
MemorySink::find(const std::string &name) const
{
    for (const JobRecord &rec : records_) {
        if (rec.spec.name == name)
            return &rec;
    }
    return nullptr;
}

const RunResult &
MemorySink::result(const std::string &name) const
{
    const JobRecord *rec = find(name);
    if (!rec)
        throw std::runtime_error("no record for job '" + name + "'");
    if (!rec->ok()) {
        throw std::runtime_error("job '" + name + "' failed: " +
                                 rec->error);
    }
    return rec->result;
}

void
StatsJsonSink::consume(const JobRecord &rec)
{
    os_ << (rec.statsJson.empty() ? "{}" : rec.statsJson.c_str())
        << '\n';
}

} // namespace critmem::exec

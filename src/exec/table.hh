/**
 * @file
 * Text-table rendering shared by the bench binaries and the sweep
 * driver: fixed-width figure/table rows in the layout every reproduced
 * figure prints, plus the column-wise averager for the "Average" row.
 * Formerly duplicated per bench in bench/bench_util.hh.
 */

#ifndef CRITMEM_EXEC_TABLE_HH
#define CRITMEM_EXEC_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace critmem::exec
{

/** Print a row header: label column plus one column per series. */
inline void
printHeader(const std::vector<std::string> &columns,
            const char *first = "app")
{
    std::printf("%-10s", first);
    for (const std::string &col : columns)
        std::printf(" %12s", col.c_str());
    std::printf("\n");
}

/** Print one row of values. */
inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *fmt = " %12.4f")
{
    std::printf("%-10s", label.c_str());
    for (const double value : values)
        std::printf(fmt, value);
    std::printf("\n");
}

/** Geometric-mean-free average row across previously printed rows. */
class Averager
{
  public:
    void
    add(const std::vector<double> &row)
    {
        if (sums_.empty())
            sums_.assign(row.size(), 0.0);
        for (std::size_t i = 0; i < row.size(); ++i)
            sums_[i] += row[i];
        ++count_;
    }

    std::vector<double>
    average() const
    {
        std::vector<double> avg(sums_);
        for (double &value : avg)
            value /= count_ ? count_ : 1;
        return avg;
    }

  private:
    std::vector<double> sums_;
    std::size_t count_ = 0;
};

} // namespace critmem::exec

#endif // CRITMEM_EXEC_TABLE_HH

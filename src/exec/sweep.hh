/**
 * @file
 * Declarative sweep specifications: a workload × variant cross-product
 * (with exclusion filters) that expands into the job list a campaign
 * executes. Specs can be built programmatically (the ported benches)
 * or parsed from the line-based ".sweep" format (critmem-sweep).
 *
 * Seeding discipline: with seedMode=fixed every job runs at the
 * campaign seed (what the serial figure benches do); with
 * seedMode=derived each job's seed is deriveSeed(campaignSeed, name),
 * decorrelating jobs while keeping the whole campaign reproducible
 * from the single campaign seed.
 */

#ifndef CRITMEM_EXEC_SWEEP_HH
#define CRITMEM_EXEC_SWEEP_HH

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exec/job.hh"
#include "trace/ingest/ingest.hh"

namespace critmem::exec
{

/**
 * A malformed .sweep spec. Carries the 1-based line number and the
 * byte offset of the offending line so drivers and fuzz harnesses can
 * point at the exact location (the analogue of TraceError for spec
 * files).
 */
class SweepError : public std::runtime_error
{
  public:
    SweepError(const std::string &message, std::size_t lineNo,
               std::uint64_t byteOffset);

    /** 1-based line number of the offending line. */
    std::size_t lineNo() const { return lineNo_; }

    /** Offset into the stream where that line starts. */
    std::uint64_t byteOffset() const { return byteOffset_; }

  private:
    std::size_t lineNo_;
    std::uint64_t byteOffset_;
};

/** One configuration column: a name plus key=value settings. */
struct SweepVariant
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> settings;
};

/**
 * One external trace source declared by a spec. expand() registers it
 * (scanning and validating the file) before workload names resolve.
 */
struct TraceDecl
{
    std::string name;
    std::string path;
    ingest::IngestOptions options;
};

/**
 * Apply one spec setting to a job under construction. Supported keys:
 * sched, predictor, entries, reset, ranks, channels, speed, lq,
 * prefetch, closed-page, split-wq, morse-cmds, cores, seed, inject,
 * inject-period (fault injection, mirroring critmem-sim --inject).
 * Throws std::runtime_error on unknown keys or unparsable values.
 */
void applySetting(SystemConfig &cfg, const std::string &key,
                  const std::string &value);

/** A declarative experiment campaign. */
struct SweepSpec
{
    enum class Mode { Parallel, Multiprog };
    enum class SeedMode { Fixed, Derived };

    Mode mode = Mode::Parallel;
    /**
     * App names (Parallel) or bundle names (Multiprog); empty or the
     * single entry "*" selects every workload of the mode (plus, in
     * Parallel mode, every trace declared by this spec). Parallel
     * workload names may also name a declared/registered trace.
     */
    std::vector<std::string> workloads;
    /** External trace sources to register before expansion. */
    std::vector<TraceDecl> traces;
    /** Configuration columns; at least one is required to expand. */
    std::vector<SweepVariant> variants;
    std::uint64_t quota = 24000;
    std::uint64_t warmup = kDefaultWarmup;
    std::uint64_t campaignSeed = 1;
    SeedMode seedMode = SeedMode::Fixed;
    /** Attach the protocol checker to every job. */
    bool check = false;
    /** Capture every job's stats tree as JSON into the records. */
    bool captureStats = false;
    /**
     * Multiprog only: add one alone-run baseline job per distinct app
     * appearing in the selected bundles (named "alone/<app>"), for
     * weighted-speedup post-processing.
     */
    bool alone = false;
    /** Glob patterns ('*' wildcard) against "workload/variant". */
    std::vector<std::string> exclude;

    /**
     * Expand into the ordered job list. Validates workload names,
     * variant settings and the resulting configs; throws
     * std::runtime_error describing the first problem.
     */
    std::vector<JobSpec> expand() const;
};

/** '*'-wildcard match (the filter language of SweepSpec::exclude). */
bool globMatch(const std::string &pattern, const std::string &text);

/**
 * Parse the .sweep text format:
 *
 *   # comment
 *   mode = parallel | multiprog
 *   workloads = art, swim        (or *)
 *   quota = 24000
 *   seed = 1
 *   seed-mode = fixed | derived
 *   check = 0 | 1
 *   alone = 0 | 1
 *   stats = 0 | 1
 *   exclude = art/morse, swim/morse   ('*' wildcards allowed)
 *   scheds = frfcfs, tcm         (shorthand: one variant per entry)
 *   variant NAME : key=value key=value ...
 *   trace NAME : path=FILE [format=auto|text|binary]
 *                [policy=fail|skip-record|truncate] [skip-budget=N]
 *                [max-line=N] [max-record=N] [max-cores=N]
 *
 * Throws SweepError carrying the line number and byte offset on
 * syntax errors.
 */
SweepSpec parseSweepSpec(std::istream &in);

/**
 * parseSweepSpec() over a file; throws when unreadable. Relative
 * trace paths are resolved against the spec file's directory.
 */
SweepSpec parseSweepFile(const std::string &path);

} // namespace critmem::exec

#endif // CRITMEM_EXEC_SWEEP_HH

/**
 * @file
 * Structured result sinks for the experiment-execution engine.
 *
 * The JobRunner's single aggregation thread feeds every registered
 * sink with JobRecords in submission (index) order, so sink
 * implementations need no locking and campaign outputs are
 * byte-identical regardless of worker-thread count. Serialized
 * records deliberately exclude wall-clock timings.
 */

#ifndef CRITMEM_EXEC_RESULT_SINK_HH
#define CRITMEM_EXEC_RESULT_SINK_HH

#include <ostream>
#include <vector>

#include "exec/job.hh"

namespace critmem::exec
{

/**
 * Aggregate IPC of a finished job: parallel runs report
 * quota * cores / cycles; bundle runs the sum of per-core IPCs;
 * alone runs core 0's IPC.
 */
double aggregateIpc(const JobRecord &rec);

/** Consumer of finished-job records. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Called once before any record, with the campaign size. */
    virtual void begin(std::size_t totalJobs) { (void)totalJobs; }

    /** Called once per job, in submission order. */
    virtual void consume(const JobRecord &rec) = 0;

    /** Called once after the last record. */
    virtual void end() {}
};

/** One self-contained JSON object per job, one job per line. */
class JsonlSink : public ResultSink
{
  public:
    explicit JsonlSink(std::ostream &os) : os_(os) {}

    void consume(const JobRecord &rec) override;

  private:
    std::ostream &os_;
};

/** Flat spreadsheet-friendly table with a fixed column set. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &os) : os_(os) {}

    void begin(std::size_t totalJobs) override;
    void consume(const JobRecord &rec) override;

  private:
    std::ostream &os_;
};

/** Buffers every record for programmatic queries by the benches. */
class MemorySink : public ResultSink
{
  public:
    void
    consume(const JobRecord &rec) override
    {
        records_.push_back(rec);
    }

    const std::vector<JobRecord> &records() const { return records_; }

    /** Record of the job named @p name; nullptr when absent. */
    const JobRecord *find(const std::string &name) const;

    /**
     * The job's RunResult, insisting it succeeded (throws
     * std::runtime_error naming the job and its error otherwise) —
     * the query the figure benches build their tables from.
     */
    const RunResult &result(const std::string &name) const;

  private:
    std::vector<JobRecord> records_;
};

/**
 * Writes each record's captured stats tree (stats::Group JSON) as one
 * JSON document per line — the sink behind critmem-sim --stats-json.
 */
class StatsJsonSink : public ResultSink
{
  public:
    explicit StatsJsonSink(std::ostream &os) : os_(os) {}

    void consume(const JobRecord &rec) override;

  private:
    std::ostream &os_;
};

} // namespace critmem::exec

#endif // CRITMEM_EXEC_RESULT_SINK_HH

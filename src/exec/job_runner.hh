/**
 * @file
 * Work-stealing parallel job runner for simulation campaigns.
 *
 * Each worker owns a deque seeded round-robin; owners pop from the
 * back, idle workers steal from the front of a victim's deque. Every
 * job constructs its own System, so workers share no simulation
 * state and a campaign's numbers are independent of thread count and
 * scheduling order. A single aggregation thread releases finished
 * records to the sinks in submission order.
 *
 * Failure isolation: CheckViolation / TraceError / std::exception
 * from a job is caught, recorded (with a repro command line) and —
 * under the bounded retry policy, after a jittered exponential
 * backoff — the job is re-queued; the campaign itself never aborts.
 * A per-job wall-clock timeout cooperatively cancels wedged jobs
 * (diagnostics snapshots attached to the failure record).
 *
 * Crash safety: a CampaignLog (the durable journal behind
 * critmem-sweep --campaign/--resume) can pre-supply completed
 * records — those jobs are replayed into the sinks without running —
 * and durably absorbs every freshly finished record. A cooperative
 * stop flag turns SIGINT/SIGTERM into a graceful drain: dispatch
 * stops, in-flight jobs get a bounded deadline, finished work is
 * journaled, and the summary reports the campaign as interrupted.
 */

#ifndef CRITMEM_EXEC_JOB_RUNNER_HH
#define CRITMEM_EXEC_JOB_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/result_sink.hh"

namespace critmem::exec
{

/**
 * Checkpoint/resume hook of one campaign: supplies records completed
 * by a previous (interrupted) execution and durably absorbs fresh
 * ones. Implemented by CampaignJournal (exec/campaign.hh).
 */
class CampaignLog
{
  public:
    virtual ~CampaignLog() = default;

    /** Completed record for job @p index; nullptr = must run. */
    virtual const JobRecord *replay(std::size_t index) const = 0;

    /**
     * Durably record a freshly finished job. Called from worker
     * threads (never for replayed records); implementations must be
     * thread-safe and should persist record-at-a-time.
     */
    virtual void record(const JobRecord &rec) = 0;
};

/** Knobs of one campaign execution. */
struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Total executions allowed per job (1 = no retries). */
    unsigned maxAttempts = 1;
    /** Emit a live [done/total] throughput/ETA line on stderr. */
    bool progress = false;

    /**
     * Wall-clock budget per job execution, ms; 0 disables. A job past
     * its budget is cooperatively cancelled and recorded as
     * JobStatus::Timeout (no retry), with channel snapshots in the
     * error text.
     */
    std::uint64_t jobTimeoutMs = 0;

    /**
     * Base of the jittered exponential backoff between retry
     * attempts, ms; 0 disables the delay (retries stay immediate).
     * Attempt k waits in [d/2, d] where d = min(base << (k-1), cap).
     */
    std::uint64_t backoffBaseMs = 0;
    /** Upper bound of the exponential backoff delay, ms. */
    std::uint64_t backoffCapMs = 5000;
    /** Seed of the (deterministic) backoff jitter stream. */
    std::uint64_t backoffSeed = 1;

    /**
     * Graceful-shutdown request. nullptr or 0 = run normally; any
     * nonzero value stops dispatch: queued jobs are left unrun,
     * in-flight jobs drain (bounded by drainDeadlineMs, then
     * cooperative cancel), finished records are journaled/flushed,
     * and the summary comes back with interrupted = true.
     */
    const std::atomic<int> *stopRequested = nullptr;
    /** ms allowed for in-flight jobs to drain after a stop request. */
    std::uint64_t drainDeadlineMs = 20000;

    /**
     * Record decorator invoked on the aggregation thread, in
     * submission order, before a record reaches any sink — for fresh
     * and replayed records alike (the journal stores undecorated
     * records, so resumes stay byte-identical as long as the decorator
     * is deterministic). The arena fairness annotator hooks in here.
     */
    std::function<void(JobRecord &)> annotate;

    /**
     * Run each job in a forked, resource-governed worker process
     * (exec/worker.hh): a crash, runaway allocation or wedge is
     * contained to that job and classified (crashed/oom/timeout/
     * exit) instead of taking the campaign down. Result files stay
     * byte-identical to in-thread execution.
     */
    bool isolate = false;
    /**
     * Per-job address-space budget in MiB (RLIMIT_AS inside the
     * worker, relative to the pre-fork baseline); 0 = unlimited.
     * Only meaningful with isolate.
     */
    std::uint64_t jobMemMb = 0;
    /**
     * Circuit breaker: stop dispatching once this many jobs have
     * failed permanently (0 = off). The campaign drains like a
     * graceful shutdown and the summary reports breakerTripped, so a
     * broken build aborts in seconds instead of burning hours —
     * resumable once fixed.
     */
    std::size_t maxFailures = 0;
    /** Circuit breaker, percent form: trip once permanent failures
     *  reach this percentage of the total job count (0 = off). */
    unsigned maxFailuresPct = 0;
};

/** Campaign-level accounting returned by JobRunner::run(). */
struct CampaignSummary
{
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    /** Jobs replayed from a CampaignLog instead of executed. */
    std::size_t replayed = 0;
    /** Jobs never completed (graceful shutdown left them queued). */
    std::size_t pending = 0;
    /** Extra executions spent on retries (attempts beyond the first). */
    std::size_t retries = 0;
    /** Isolated workers killed by an external SIGKILL and
     *  re-dispatched at the same attempt number. */
    std::size_t respawned = 0;
    /** True when a stop request cut the campaign short. */
    bool interrupted = false;
    /** The --max-failures circuit breaker aborted dispatch. */
    bool breakerTripped = false;
    double wallMs = 0.0;
};

/** Executes a batch of jobs across a work-stealing thread pool. */
class JobRunner
{
  public:
    explicit JobRunner(RunnerOptions opts = {}) : opts_(opts) {}

    /**
     * Run every job, feeding @p sinks in submission order, and block
     * until the campaign completes. Safe to call repeatedly.
     *
     * With @p log, jobs whose records the log already holds are
     * replayed into the sinks without executing, and every freshly
     * finished record is handed to log->record() before it becomes
     * visible to the sinks — so the sink outputs of a resumed
     * campaign are byte-identical to an uninterrupted one.
     */
    CampaignSummary run(const std::vector<JobSpec> &jobs,
                        const std::vector<ResultSink *> &sinks,
                        CampaignLog *log = nullptr);

  private:
    RunnerOptions opts_;
};

} // namespace critmem::exec

#endif // CRITMEM_EXEC_JOB_RUNNER_HH

/**
 * @file
 * Work-stealing parallel job runner for simulation campaigns.
 *
 * Each worker owns a deque seeded round-robin; owners pop from the
 * back, idle workers steal from the front of a victim's deque. Every
 * job constructs its own System, so workers share no simulation
 * state and a campaign's numbers are independent of thread count and
 * scheduling order. A single aggregation thread releases finished
 * records to the sinks in submission order.
 *
 * Failure isolation: CheckViolation / TraceError / std::exception
 * from a job is caught, recorded (with a repro command line) and —
 * under the bounded retry policy — the job is re-queued; the campaign
 * itself never aborts.
 */

#ifndef CRITMEM_EXEC_JOB_RUNNER_HH
#define CRITMEM_EXEC_JOB_RUNNER_HH

#include <cstdint>
#include <vector>

#include "exec/result_sink.hh"

namespace critmem::exec
{

/** Knobs of one campaign execution. */
struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Total executions allowed per job (1 = no retries). */
    unsigned maxAttempts = 1;
    /** Emit a live [done/total] throughput/ETA line on stderr. */
    bool progress = false;
};

/** Campaign-level accounting returned by JobRunner::run(). */
struct CampaignSummary
{
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    /** Extra executions spent on retries (attempts beyond the first). */
    std::size_t retries = 0;
    double wallMs = 0.0;
};

/** Executes a batch of jobs across a work-stealing thread pool. */
class JobRunner
{
  public:
    explicit JobRunner(RunnerOptions opts = {}) : opts_(opts) {}

    /**
     * Run every job, feeding @p sinks in submission order, and block
     * until the campaign completes. Safe to call repeatedly.
     */
    CampaignSummary run(const std::vector<JobSpec> &jobs,
                        const std::vector<ResultSink *> &sinks);

  private:
    RunnerOptions opts_;
};

} // namespace critmem::exec

#endif // CRITMEM_EXEC_JOB_RUNNER_HH

#include "exec/arena.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "fair/fairness_stats.hh"
#include "fair/metrics.hh"
#include "trace/workloads.hh"

namespace critmem::exec
{

void
FairnessAnnotator::operator()(JobRecord &rec)
{
    if (!rec.ok())
        return;

    if (rec.spec.kind == RunKind::Alone) {
        cache_.insert(rec.spec.workload, rec.spec.cfg, rec.spec.quota,
                      rec.result.ipc(0, rec.spec.quota));
        baselineRef_.insert_or_assign(
            rec.spec.workload,
            std::make_pair(rec.spec.cfg, rec.spec.quota));
        return;
    }
    if (rec.spec.kind != RunKind::Bundle)
        return;

    const Bundle *bundle = findBundle(rec.spec.workload);
    if (bundle == nullptr)
        return;
    const std::uint32_t cores =
        std::min<std::uint32_t>(rec.spec.cfg.numCores,
                                bundle->apps.size());

    std::vector<double> alone;
    alone.reserve(cores);
    for (std::uint32_t core = 0; core < cores; ++core) {
        const auto ref = baselineRef_.find(bundle->apps[core]);
        const double *ipc = ref == baselineRef_.end()
            ? nullptr
            : cache_.find(bundle->apps[core], ref->second.first,
                          ref->second.second);
        if (ipc == nullptr)
            return; // no baseline: fairness stays invalid
        alone.push_back(*ipc);
    }

    rec.fairness = fair::computeFairness(
        fair::sharedIpcs(rec.result, rec.spec.quota, cores), alone);
    rec.statsJson =
        spliceFairStats(rec.statsJson, rec.fairness, cores);
}

std::string
spliceFairStats(const std::string &statsJson,
                const fair::FairnessMetrics &m, std::uint32_t numCores)
{
    const std::size_t close = statsJson.rfind('}');
    if (statsJson.empty() || close == std::string::npos)
        return statsJson;

    fair::FairnessStats stats(nullptr, numCores);
    stats.set(m);

    // Insert before the object's closing brace; an empty "{}" tree
    // gets no leading comma.
    const bool bare = statsJson.find_first_not_of(
        " \t", statsJson.find('{') + 1) == close;
    std::string out = statsJson.substr(0, close);
    out += bare ? "\"fair\":" : ",\"fair\":";
    out += stats.json();
    out += statsJson.substr(close);
    return out;
}

namespace
{

/** One scheduler's metrics on one workload. */
struct ArenaCell
{
    std::string variant;
    fair::FairnessMetrics metrics;
};

void
printRanking(const std::vector<ArenaCell> &cells)
{
    std::printf("  %4s %-18s %10s %10s %10s %10s\n", "rank", "sched",
                "ws", "hs", "maxslow", "unfair");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const fair::FairnessMetrics &m = cells[i].metrics;
        std::printf("  %4zu %-18s %10.4f %10.4f %10.4f %10.4f\n",
                    i + 1, cells[i].variant.c_str(), m.weightedSpeedup,
                    m.harmonicSpeedup, m.maxSlowdown, m.unfairness);
    }
}

/** Rank by weighted speedup (desc), then name — fully deterministic. */
void
sortCells(std::vector<ArenaCell> &cells)
{
    std::sort(cells.begin(), cells.end(),
              [](const ArenaCell &a, const ArenaCell &b) {
                  if (a.metrics.weightedSpeedup !=
                      b.metrics.weightedSpeedup) {
                      return a.metrics.weightedSpeedup >
                          b.metrics.weightedSpeedup;
                  }
                  return a.variant < b.variant;
              });
}

} // namespace

void
printArenaReport(const SweepSpec &spec, const MemorySink &memory)
{
    // Group valid bundle records by workload, in submission order so
    // the report bytes are independent of thread count.
    std::vector<std::string> workloadOrder;
    std::map<std::string, std::vector<ArenaCell>> byWorkload;
    for (const JobRecord &rec : memory.records()) {
        if (rec.spec.kind != RunKind::Bundle || !rec.fairness.valid)
            continue;
        const auto tag = rec.spec.tags.find("variant");
        if (tag == rec.spec.tags.end())
            continue;
        auto [it, fresh] = byWorkload.try_emplace(rec.spec.workload);
        if (fresh)
            workloadOrder.push_back(rec.spec.workload);
        it->second.push_back({tag->second, rec.fairness});
    }

    std::printf("# arena leaderboard (quota=%llu/core, %zu workloads)\n",
                static_cast<unsigned long long>(spec.quota),
                workloadOrder.size());
    for (const std::string &workload : workloadOrder) {
        std::vector<ArenaCell> &cells = byWorkload[workload];
        sortCells(cells);
        std::printf("== %s ==\n", workload.c_str());
        printRanking(cells);
    }

    // Overall: mean metrics per scheduler across the workloads it
    // completed, ranked like the per-workload tables.
    std::map<std::string, std::pair<fair::FairnessMetrics, std::size_t>>
        totals;
    for (const std::string &workload : workloadOrder) {
        for (const ArenaCell &cell : byWorkload[workload]) {
            auto &[sum, count] = totals[cell.variant];
            sum.weightedSpeedup += cell.metrics.weightedSpeedup;
            sum.harmonicSpeedup += cell.metrics.harmonicSpeedup;
            sum.maxSlowdown += cell.metrics.maxSlowdown;
            sum.unfairness += cell.metrics.unfairness;
            ++count;
        }
    }
    std::vector<ArenaCell> overall;
    overall.reserve(totals.size());
    for (const auto &[variant, total] : totals) {
        ArenaCell cell{variant, total.first};
        const double n = static_cast<double>(total.second);
        cell.metrics.weightedSpeedup /= n;
        cell.metrics.harmonicSpeedup /= n;
        cell.metrics.maxSlowdown /= n;
        cell.metrics.unfairness /= n;
        overall.push_back(std::move(cell));
    }
    sortCells(overall);
    std::printf("== overall (mean across workloads) ==\n");
    printRanking(overall);
}

} // namespace critmem::exec

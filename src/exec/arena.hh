/**
 * @file
 * The scheduler arena: fairness annotation + leaderboard reporting on
 * top of the campaign engine.
 *
 * A FairnessAnnotator plugs into RunnerOptions::annotate. Sweep
 * expansion emits every alone-run baseline before the bundle jobs
 * that need it, and the aggregation thread delivers records in
 * submission order, so the annotator simply banks each Alone record's
 * IPC in an AloneBaselineCache and decorates every later Bundle
 * record with fair::FairnessMetrics — deterministically, for any
 * --jobs count, on fresh and journal-replayed records alike.
 *
 * printArenaReport renders the post-campaign leaderboard behind
 * `critmem-sweep --report arena`: per-workload rankings plus an
 * overall table, ordered by weighted speedup with lexicographic
 * tiebreaks so the bytes never depend on thread count.
 */

#ifndef CRITMEM_EXEC_ARENA_HH
#define CRITMEM_EXEC_ARENA_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "exec/result_sink.hh"
#include "exec/sweep.hh"
#include "fair/baseline_cache.hh"

namespace critmem::exec
{

/**
 * Decorates Bundle records with fairness metrics computed against the
 * campaign's own alone-run baselines. Invoked only from the
 * aggregation thread (submission order); not thread-safe.
 */
class FairnessAnnotator
{
  public:
    /** The RunnerOptions::annotate entry point. */
    void operator()(JobRecord &rec);

    /** Baselines banked so far (tests assert each ran exactly once). */
    const fair::AloneBaselineCache &cache() const { return cache_; }

  private:
    fair::AloneBaselineCache cache_;
    /**
     * Per-app (config, quota) under which the baseline was banked:
     * bundle jobs run variant configs whose hash differs from the
     * base-config alone jobs, so lookups go through the recorded key.
     */
    std::map<std::string, std::pair<SystemConfig, std::uint64_t>>
        baselineRef_;
};

/**
 * Splice a "fair" stats group into a captured stats-tree JSON object
 * so fairness metrics ride the --stats / stats-JSON channel too.
 * Returns @p statsJson unchanged when it is empty.
 */
std::string spliceFairStats(const std::string &statsJson,
                            const fair::FairnessMetrics &m,
                            std::uint32_t numCores);

/**
 * Print the arena leaderboard from a finished campaign's in-memory
 * records: one ranking per workload, then the overall table (mean
 * metrics across workloads, ranked by mean weighted speedup).
 */
void printArenaReport(const SweepSpec &spec, const MemorySink &memory);

} // namespace critmem::exec

#endif // CRITMEM_EXEC_ARENA_HH

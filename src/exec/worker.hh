/**
 * @file
 * Process-isolated job execution: the supervisor side of
 * `critmem-sweep --isolate`.
 *
 * Each job runs in a forked worker process that streams its finished
 * JobRecord — encoded exactly like a journal line, checksum and all —
 * back over a pipe, then _exit()s. A worker that segfaults, exhausts
 * its memory budget or wedges takes down only itself: the supervisor
 * reaps it via waitpid, classifies the wait status into the failure
 * taxonomy (crashed / oom / timeout / exit(N)) and the campaign keeps
 * going. Resource governance is applied inside the child before the
 * job starts: RLIMIT_AS for `--job-mem-mb` (relative to the pre-fork
 * baseline VM size, so sanitizer shadow mappings do not count against
 * the budget) and an RLIMIT_CPU backstop derived from `--timeout` in
 * case the supervisor's wall-clock watchdog dies with the supervisor.
 *
 * Failure forensics: the child installs async-signal-safe crash
 * handlers (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT) that write a
 * backtrace down the pipe before re-raising, and the supervisor
 * attaches it — with absolute addresses stripped, so the record bytes
 * stay deterministic under ASLR — to the failure record next to the
 * ready-to-paste critmem-sim repro line.
 *
 * Byte-identity contract: a record produced by an isolated worker is
 * decoded from the same checksummed encoding the journal uses, so
 * result files are identical with and without --isolate for any
 * --jobs value. See DESIGN.md ("Process-isolated job execution").
 */

#ifndef CRITMEM_EXEC_WORKER_HH
#define CRITMEM_EXEC_WORKER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "exec/job.hh"

namespace critmem::exec
{

/** Resource limits applied inside a forked worker before its job. */
struct WorkerLimits
{
    /**
     * Address-space budget in MiB above the supervisor's VM size at
     * fork time (RLIMIT_AS); 0 = unlimited. Relative because ASan /
     * TSan map terabytes of shadow up front — an absolute budget
     * would starve every sanitized job before it allocated a byte.
     */
    std::uint64_t memMb = 0;
    /**
     * CPU-time backstop in seconds (RLIMIT_CPU soft limit; the hard
     * limit adds a 5 s SIGKILL grace); 0 = none. The supervisor's
     * wall-clock watchdog normally fires first — this catches a
     * spinning worker whose supervisor died.
     */
    std::uint64_t cpuSeconds = 0;
};

/** Why a job's cooperative cancel flag was raised. */
enum class CancelReason : int
{
    None = 0,
    Timeout = 1, ///< per-job wall-clock budget exceeded
    Drain = 2,   ///< graceful-shutdown drain deadline expired
};

/** Outcome of one isolated (out-of-process) job execution. */
struct IsolatedRun
{
    /**
     * The shutdown drain deadline killed the worker: there is no
     * record at all — the job is left out of journal and sinks so a
     * --resume re-runs it from scratch, exactly like an in-thread
     * job abandoned by CancelReason::Drain.
     */
    bool abandoned = false;
    /**
     * The worker died on a SIGKILL the supervisor did not send (an
     * operator, or the kernel OOM killer). The execution never
     * happened from the campaign's accounting viewpoint: the caller
     * re-dispatches the job at the *same* attempt number, keeping
     * result files byte-identical to a run where nobody interfered.
     */
    bool externalKill = false;
    /** The classified record (valid unless abandoned). */
    JobRecord record;
};

/**
 * Run one job in a forked, resource-governed worker process and
 * block until it is reaped. @p cancel / @p cancelReason are the
 * WorkerSlot flags the watchdog raises: on cancel the worker's whole
 * process group is SIGKILLed and the outcome follows the reason
 * (Timeout -> status=timeout record, Drain -> abandoned).
 * Never throws: every failure mode becomes a classified record.
 */
IsolatedRun runJobIsolated(const JobSpec &spec, std::size_t index,
                           std::uint32_t attempt,
                           const WorkerLimits &limits,
                           const std::atomic<bool> *cancel,
                           const std::atomic<int> *cancelReason);

/**
 * Classify a waitpid() status (for a worker that streamed no intact
 * record) into the failure taxonomy and a human-readable detail:
 * SIGXCPU -> Timeout (the RLIMIT_CPU backstop), any other signal ->
 * Crashed with the signal name, plain exit -> Exit with the code.
 * Split out for unit testing; @p limits shapes the messages.
 */
JobStatus classifyWaitStatus(int wstatus, const WorkerLimits &limits,
                             std::string &detail);

/**
 * SIGKILL every live worker process group. Async-signal-safe (a scan
 * over a fixed array of lock-free atomics plus kill()): this is what
 * the second SIGINT during a graceful drain calls so isolated
 * workers die with the supervisor instead of being orphaned.
 */
void killWorkerGroups();

} // namespace critmem::exec

#endif // CRITMEM_EXEC_WORKER_HH

#include "check/diagnostics.hh"

#include <sstream>

namespace critmem
{

namespace
{

const char *
typeName(ReqType type)
{
    switch (type) {
      case ReqType::Read: return "R";
      case ReqType::Write: return "W";
      case ReqType::Prefetch: return "P";
    }
    return "?";
}

void
dumpQueue(std::ostringstream &os, const char *label,
          const std::vector<ChannelSnapshot::QueueEntry> &queue,
          DramCycle now, std::size_t cap)
{
    os << "  " << label << " (" << queue.size() << " entries)";
    if (queue.empty()) {
        os << ": empty\n";
        return;
    }
    os << ":\n";
    std::size_t shown = 0;
    for (const auto &e : queue) {
        if (cap && shown++ >= cap) {
            os << "    ... " << (queue.size() - cap) << " more\n";
            break;
        }
        os << "    id " << e.id << " " << typeName(e.type) << " addr 0x"
           << std::hex << e.addr << std::dec << " core " << e.core
           << " crit " << e.crit << " rank " << e.coord.rank << " bank "
           << e.coord.bank << " row " << e.coord.row << " age "
           << (now >= e.arrival ? now - e.arrival : 0) << "\n";
    }
}

} // namespace

std::string
formatSnapshot(const ChannelSnapshot &snap, std::size_t maxQueueEntries)
{
    std::ostringstream os;
    os << "channel " << snap.channel << " @ DRAM cycle " << snap.now
       << " (scheduler " << snap.scheduler << ")\n";
    os << "  data bus free at " << snap.busFreeAt << ", "
       << snap.completionsPending << " completions pending"
       << (snap.draining ? ", draining writes" : "") << "\n";

    dumpQueue(os, "read queue", snap.readQ, snap.now, maxQueueEntries);
    dumpQueue(os, "write queue", snap.writeQ, snap.now,
              maxQueueEntries);

    const std::size_t banksPerRank =
        snap.ranks.empty() ? snap.banks.size()
                           : snap.banks.size() / snap.ranks.size();
    for (std::size_t r = 0; r < snap.ranks.size(); ++r) {
        const auto &rank = snap.ranks[r];
        os << "  rank " << r << ": refresh due " << rank.refreshDue
           << (rank.refreshPending ? " (PENDING)" : "") << "\n";
        for (std::size_t b = 0; b < banksPerRank; ++b) {
            const auto &bank = snap.banks[r * banksPerRank + b];
            os << "    bank " << b << ": ";
            if (bank.open)
                os << "open row " << bank.row;
            else
                os << "closed";
            os << ", readyAct " << bank.readyAct << " readyRead "
               << bank.readyRead << " readyWrite " << bank.readyWrite
               << " readyPre " << bank.readyPre << "\n";
        }
    }
    return os.str();
}

} // namespace critmem

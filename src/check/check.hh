/**
 * @file
 * Vocabulary of the validation harness: the rules the protocol
 * invariant checker enforces, the violation record it produces, and
 * the exception it throws.
 *
 * Timing rules carry the JEDEC DDR3 parameter name they enforce;
 * structural and conservation rules describe the broken invariant.
 * See DESIGN.md ("Validation & invariants") for the full catalogue
 * with sources.
 */

#ifndef CRITMEM_CHECK_CHECK_HH
#define CRITMEM_CHECK_CHECK_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace critmem
{

/** Every invariant the ProtocolChecker can report. */
enum class RuleId
{
    // DDR3 timing constraints (independent shadow recomputation).
    Trcd,            ///< CAS before ACT-to-CAS delay elapsed
    Trp,             ///< ACT (or REF) before precharge period elapsed
    Tras,            ///< PRE before minimum row-open time elapsed
    Trc,             ///< ACT before same-bank ACT-to-ACT time elapsed
    Tccd,            ///< CAS before same-rank CAS-to-CAS delay elapsed
    Trrd,            ///< ACT before same-rank ACT-to-ACT delay elapsed
    Tfaw,            ///< fifth ACT inside the four-activate window
    Twtr,            ///< read CAS inside the write-to-read turnaround
    Trtw,            ///< write CAS inside the read-to-write turnaround
    Trtp,            ///< PRE before read-to-precharge delay elapsed
    Twr,             ///< PRE before write recovery elapsed
    Trfc,            ///< ACT before the refresh cycle time elapsed
    RefreshInterval, ///< a rank went too long without a REF
    // Structural command legality.
    ActOnOpenBank,   ///< ACT to a bank that already has an open row
    CasIllegal,      ///< CAS to a closed bank or the wrong open row
    PreOnClosedBank, ///< PRE to a bank with no open row
    RefIllegal,      ///< REF while a bank of the rank is still open
    CmdBusConflict,  ///< two commands on one command bus in one cycle
    DataBusConflict, ///< overlapping data bursts on one data bus
    // Conservation invariants.
    DuplicateId,     ///< two in-flight requests share one id
    UnknownCompletion, ///< completion for a request never enqueued
    LostRequest,     ///< enqueued request never completed (finalize)
    CritDecrease,    ///< promotion lowered a criticality level
    Starvation,      ///< a request sat queued past the starvation bound
    // Liveness and accounting.
    Watchdog,        ///< forward-progress watchdog tripped
    StatsMismatch,   ///< channel stats disagree with the shadow counts
};

/** @return the short printable name of a rule (e.g. "tRCD"). */
const char *toString(RuleId rule);

/** One detected invariant violation. */
struct Violation
{
    RuleId rule = RuleId::Watchdog;
    std::uint32_t channel = 0;
    DramCycle cycle = 0;
    std::string message;
};

/**
 * Thrown on the first violation when CheckConfig::failFast is set,
 * and always by the forward-progress watchdog (recording a stall and
 * carrying on would simply hang again).
 */
class CheckViolation : public std::runtime_error
{
  public:
    explicit CheckViolation(Violation violation);

    const Violation &violation() const { return violation_; }

  private:
    Violation violation_;
};

} // namespace critmem

#endif // CRITMEM_CHECK_CHECK_HH

#include "check/fault_injector.hh"

#include <csignal>
#include <new>

#include <sys/mman.h>

namespace critmem
{

ScriptedFaultInjector::ScriptedFaultInjector(const CheckConfig &cfg)
    : kind_(cfg.fault), period_(cfg.faultPeriod),
      victim_(cfg.faultVictim), rng_(cfg.faultSeed)
{
}

ScriptedFaultInjector::~ScriptedFaultInjector()
{
    for (void *region : hog_)
        ::munmap(region, kHogChunkBytes);
}

bool
ScriptedFaultInjector::roll()
{
    if (period_ <= 1)
        return true;
    return rng_.below(period_) == 0;
}

bool
ScriptedFaultInjector::dropCompletion(const MemRequest &req,
                                      DramCycle now)
{
    (void)now;
    // Only reads have a consumer waiting on the callback; dropping a
    // writeback completion would be invisible to the processor side.
    if (kind_ != FaultKind::DropCompletion || req.type == ReqType::Write)
        return false;
    if (!roll())
        return false;
    ++injections_;
    return true;
}

void
ScriptedFaultInjector::processFault()
{
    if (++opportunities_ != period_)
        return;
    ++injections_;
    if (kind_ == FaultKind::CrashWorker) {
        // A deterministic "segfault": raising the signal directly
        // (instead of dereferencing null) keeps sanitizer runtimes
        // out of the picture, so an isolated worker dies with
        // WTERMSIG == SIGSEGV under ASan/TSan exactly as in a plain
        // build. Containment is the supervisor's job (exec/worker.cc).
        std::raise(SIGSEGV);
        return;
    }
    // HogMemory: grab address space until the per-job budget
    // (RLIMIT_AS, set by --job-mem-mb) is exhausted, then throw
    // bad_alloc so the isolated worker records status=oom. Raw mmap
    // instead of operator new keeps sanitizer runtimes out of the
    // failure path: ASan aborts (or deadlocks, when another thread
    // held its allocator lock across fork) on an internal mmap
    // failure before bad_alloc is reachable, so the heap route would
    // make the oom classification runtime-dependent. Without a budget
    // this really does try to exhaust memory — it exists to prove
    // containment, never run it outside --isolate --job-mem-mb.
    for (;;) {
        void *region = ::mmap(nullptr, kHogChunkBytes,
                              PROT_READ | PROT_WRITE,
                              MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (region == MAP_FAILED)
            throw std::bad_alloc();
        hog_.push_back(region);
    }
}

std::uint32_t
ScriptedFaultInjector::casSlack(DramCycle now)
{
    (void)now;
    if (kind_ == FaultKind::CrashWorker ||
        kind_ == FaultKind::HogMemory) {
        processFault();
        return 0;
    }
    if (kind_ != FaultKind::EarlyCas || !roll())
        return 0;
    ++injections_;
    return 1; // CAS eligibility opens one DRAM cycle early
}

bool
ScriptedFaultInjector::skipRefresh(std::uint32_t rank, DramCycle now)
{
    (void)rank; (void)now;
    if (kind_ != FaultKind::SkipRefresh || !roll())
        return false;
    ++injections_;
    return true;
}

bool
ScriptedFaultInjector::starveCore(CoreId core)
{
    // Deterministic (no roll): starvation only manifests when the
    // victim's requests are hidden persistently, not intermittently.
    if (kind_ != FaultKind::StarveCore || core != victim_)
        return false;
    ++injections_;
    return true;
}

bool
ScriptedFaultInjector::corruptPromotion(DramCycle now)
{
    (void)now;
    if (kind_ != FaultKind::FlipCrit || !roll())
        return false;
    ++injections_;
    return true;
}

} // namespace critmem

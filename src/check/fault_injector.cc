#include "check/fault_injector.hh"

namespace critmem
{

ScriptedFaultInjector::ScriptedFaultInjector(const CheckConfig &cfg)
    : kind_(cfg.fault), period_(cfg.faultPeriod),
      victim_(cfg.faultVictim), rng_(cfg.faultSeed)
{
}

bool
ScriptedFaultInjector::roll()
{
    if (period_ <= 1)
        return true;
    return rng_.below(period_) == 0;
}

bool
ScriptedFaultInjector::dropCompletion(const MemRequest &req,
                                      DramCycle now)
{
    (void)now;
    // Only reads have a consumer waiting on the callback; dropping a
    // writeback completion would be invisible to the processor side.
    if (kind_ != FaultKind::DropCompletion || req.type == ReqType::Write)
        return false;
    if (!roll())
        return false;
    ++injections_;
    return true;
}

std::uint32_t
ScriptedFaultInjector::casSlack(DramCycle now)
{
    (void)now;
    if (kind_ != FaultKind::EarlyCas || !roll())
        return 0;
    ++injections_;
    return 1; // CAS eligibility opens one DRAM cycle early
}

bool
ScriptedFaultInjector::skipRefresh(std::uint32_t rank, DramCycle now)
{
    (void)rank; (void)now;
    if (kind_ != FaultKind::SkipRefresh || !roll())
        return false;
    ++injections_;
    return true;
}

bool
ScriptedFaultInjector::starveCore(CoreId core)
{
    // Deterministic (no roll): starvation only manifests when the
    // victim's requests are hidden persistently, not intermittently.
    if (kind_ != FaultKind::StarveCore || core != victim_)
        return false;
    ++injections_;
    return true;
}

bool
ScriptedFaultInjector::corruptPromotion(DramCycle now)
{
    (void)now;
    if (kind_ != FaultKind::FlipCrit || !roll())
        return false;
    ++injections_;
    return true;
}

} // namespace critmem

/**
 * @file
 * Configurable fault injector: deliberately corrupts one aspect of
 * channel behaviour (per CheckConfig::fault) so tests can prove the
 * matching ProtocolChecker rule fires. Stochastic faults draw from a
 * private seeded Rng, so every run is reproducible.
 */

#ifndef CRITMEM_CHECK_FAULT_INJECTOR_HH
#define CRITMEM_CHECK_FAULT_INJECTOR_HH

#include <cstdint>

#include "dram/observer.hh"
#include "sim/config.hh"
#include "sim/random.hh"

namespace critmem
{

/** FaultInjector driven by a CheckConfig fault description. */
class ScriptedFaultInjector : public FaultInjector
{
  public:
    explicit ScriptedFaultInjector(const CheckConfig &cfg);

    bool dropCompletion(const MemRequest &req, DramCycle now) override;
    std::uint32_t casSlack(DramCycle now) override;
    bool skipRefresh(std::uint32_t rank, DramCycle now) override;
    bool starveCore(CoreId core) override;
    bool corruptPromotion(DramCycle now) override;

    /** Number of faults actually injected so far. */
    std::uint64_t injections() const { return injections_; }

  private:
    /** One Bernoulli(1/faultPeriod) draw; period <= 1 always fires. */
    bool roll();

    FaultKind kind_;
    std::uint64_t period_;
    CoreId victim_;
    Rng rng_;
    std::uint64_t injections_ = 0;
};

} // namespace critmem

#endif // CRITMEM_CHECK_FAULT_INJECTOR_HH

/**
 * @file
 * Configurable fault injector: deliberately corrupts one aspect of
 * channel behaviour (per CheckConfig::fault) so tests can prove the
 * matching ProtocolChecker rule fires. Stochastic faults draw from a
 * private seeded Rng, so every run is reproducible.
 */

#ifndef CRITMEM_CHECK_FAULT_INJECTOR_HH
#define CRITMEM_CHECK_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dram/observer.hh"
#include "sim/config.hh"
#include "sim/random.hh"

namespace critmem
{

/** FaultInjector driven by a CheckConfig fault description. */
class ScriptedFaultInjector : public FaultInjector
{
  public:
    explicit ScriptedFaultInjector(const CheckConfig &cfg);
    ~ScriptedFaultInjector() override;

    bool dropCompletion(const MemRequest &req, DramCycle now) override;
    std::uint32_t casSlack(DramCycle now) override;
    bool skipRefresh(std::uint32_t rank, DramCycle now) override;
    bool starveCore(CoreId core) override;
    bool corruptPromotion(DramCycle now) override;

    /** Number of faults actually injected so far. */
    std::uint64_t injections() const { return injections_; }

  private:
    /** One Bernoulli(1/faultPeriod) draw; period <= 1 always fires. */
    bool roll();

    /**
     * Process-level faults (CrashWorker / HogMemory) trigger exactly
     * once, on the faultPeriod-th opportunity — a deterministic
     * countdown rather than a Bernoulli draw, so the crash point (and
     * hence the journal/record bytes of an isolated campaign) is
     * reproducible run to run. Called from the casSlack hook, the
     * most frequently consulted injection point.
     */
    void processFault();

    /** Size of one HogMemory mmap region (1 MiB). */
    static constexpr std::size_t kHogChunkBytes = std::size_t{1} << 20;

    FaultKind kind_;
    std::uint64_t period_;
    CoreId victim_;
    Rng rng_;
    std::uint64_t injections_ = 0;
    std::uint64_t opportunities_ = 0;
    /** HogMemory ballast: anonymous mmap regions (see processFault). */
    std::vector<void *> hog_;
};

} // namespace critmem

#endif // CRITMEM_CHECK_FAULT_INJECTOR_HH

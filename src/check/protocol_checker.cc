#include "check/protocol_checker.hh"

#include <algorithm>
#include <sstream>

#include "check/diagnostics.hh"
#include "dram/channel.hh"
#include "dram/dram.hh"

namespace critmem
{

namespace
{

/** max of @p terms, ignoring the 0 = "never happened" sentinel. */
DramCycle
maxKnown(std::initializer_list<DramCycle> terms)
{
    DramCycle best = 0;
    for (DramCycle t : terms)
        best = std::max(best, t);
    return best;
}

std::string
coordStr(const DramCoord &c)
{
    return "rank " + std::to_string(c.rank) + " bank " +
        std::to_string(c.bank) + " row " + std::to_string(c.row);
}

} // namespace

ProtocolChecker::ProtocolChecker(const CheckConfig &check,
                                 const DramConfig &dram)
    : check_(check), t_(dram.t), channels_(dram.channels)
{
    for (auto &ch : channels_) {
        ch.ranks.resize(dram.ranksPerChannel);
        for (auto &rank : ch.ranks)
            rank.banks.resize(dram.banksPerRank);
    }
}

void
ProtocolChecker::attach(DramSystem &dram)
{
    dram.setObserver(this);
}

void
ProtocolChecker::record(RuleId rule, std::uint32_t channel,
                        DramCycle now, std::string message,
                        bool forceThrow)
{
    Violation v{rule, channel, now, std::move(message)};
    ++countsByRule_[rule];
    ++total_;
    if (violations_.size() < check_.maxViolations)
        violations_.push_back(v);
    if (check_.failFast || forceThrow)
        throw CheckViolation(std::move(v));
}

bool
ProtocolChecker::hasRule(RuleId rule) const
{
    return countsByRule_.count(rule) != 0;
}

void
ProtocolChecker::onEnqueue(std::uint32_t channel, const MemRequest &req,
                           const DramCoord &coord, DramCycle now)
{
    (void)coord;
    auto [it, inserted] = outstanding_.emplace(
        req.id, Pending{channel, req.addr, req.core, now, false});
    if (!inserted) {
        record(RuleId::DuplicateId, channel, now,
               "request id " + std::to_string(req.id) +
                   " enqueued while a request with the same id is "
                   "still in flight (first enqueued at cycle " +
                   std::to_string(it->second.enqueued) + ")");
    }
}

void
ProtocolChecker::onReject(std::uint32_t channel, const MemRequest &req,
                          DramCycle now)
{
    (void)req; (void)now;
    ++channels_[channel].counters.rejects;
}

void
ProtocolChecker::checkAct(ChannelShadow &ch, std::uint32_t channel,
                          const DramCoord &c, DramCycle now)
{
    RankShadow &rank = ch.ranks[c.rank];
    BankShadow &bank = rank.banks[c.bank];

    if (bank.open) {
        record(RuleId::ActOnOpenBank, channel, now,
               "ACT to " + coordStr(c) + " while row " +
                   std::to_string(bank.row) + " is open");
    }
    if (bank.lastPre != 0 && now < bank.lastPre + t_.tRP) {
        record(RuleId::Trp, channel, now,
               "ACT to " + coordStr(c) + " only " +
                   std::to_string(now - bank.lastPre) +
                   " cycles after precharge (tRP=" +
                   std::to_string(t_.tRP) + ")");
    }
    if (bank.lastAct != 0 && now < bank.lastAct + t_.tRC) {
        record(RuleId::Trc, channel, now,
               "ACT to " + coordStr(c) + " only " +
                   std::to_string(now - bank.lastAct) +
                   " cycles after previous ACT (tRC=" +
                   std::to_string(t_.tRC) + ")");
    }
    if (rank.lastActAny != 0 && rank.lastActAny != bank.lastAct &&
        now < rank.lastActAny + t_.tRRD) {
        record(RuleId::Trrd, channel, now,
               "ACT to " + coordStr(c) + " only " +
                   std::to_string(now - rank.lastActAny) +
                   " cycles after an ACT to the same rank (tRRD=" +
                   std::to_string(t_.tRRD) + ")");
    }
    const DramCycle oldest = rank.actTimes[rank.actHead];
    if (oldest != 0 && now < oldest + t_.tFAW) {
        record(RuleId::Tfaw, channel, now,
               "fifth ACT to rank " + std::to_string(c.rank) +
                   " only " + std::to_string(now - oldest) +
                   " cycles after the fourth-last (tFAW=" +
                   std::to_string(t_.tFAW) + ")");
    }
    if (rank.lastRef != 0 && now < rank.lastRef + t_.tRFC) {
        record(RuleId::Trfc, channel, now,
               "ACT to " + coordStr(c) + " only " +
                   std::to_string(now - rank.lastRef) +
                   " cycles after REF (tRFC=" +
                   std::to_string(t_.tRFC) + ")");
    }

    bank.open = true;
    bank.row = c.row;
    bank.lastAct = now;
    rank.lastActAny = now;
    rank.actTimes[rank.actHead] = now;
    rank.actHead =
        (rank.actHead + 1) % static_cast<std::uint32_t>(
            rank.actTimes.size());
    ++ch.counters.activates;
}

void
ProtocolChecker::checkCas(ChannelShadow &ch, std::uint32_t channel,
                          bool isWrite, const DramCoord &c,
                          DramCycle now)
{
    RankShadow &rank = ch.ranks[c.rank];
    BankShadow &bank = rank.banks[c.bank];
    const char *what = isWrite ? "write CAS" : "read CAS";

    if (!bank.open || bank.row != c.row) {
        record(RuleId::CasIllegal, channel, now,
               std::string(what) + " to " + coordStr(c) +
                   (bank.open
                        ? " but row " + std::to_string(bank.row) +
                              " is open"
                        : " but the bank is closed"));
    } else if (bank.lastAct != 0 && now < bank.lastAct + t_.tRCD) {
        record(RuleId::Trcd, channel, now,
               std::string(what) + " to " + coordStr(c) + " only " +
                   std::to_string(now - bank.lastAct) +
                   " cycles after ACT (tRCD=" +
                   std::to_string(t_.tRCD) + ")");
    }

    const DramCycle lastSame =
        isWrite ? rank.lastWriteCas : rank.lastReadCas;
    if (lastSame != 0 && now < lastSame + t_.tCCD) {
        record(RuleId::Tccd, channel, now,
               std::string(what) + " to " + coordStr(c) + " only " +
                   std::to_string(now - lastSame) +
                   " cycles after the previous same-type CAS (tCCD=" +
                   std::to_string(t_.tCCD) + ")");
    }
    if (!isWrite && rank.lastWriteBurstEnd != 0 &&
        now < rank.lastWriteBurstEnd + t_.tWTR) {
        record(RuleId::Twtr, channel, now,
               "read CAS to " + coordStr(c) + " only " +
                   std::to_string(now - rank.lastWriteBurstEnd) +
                   " cycles after a write burst ended (tWTR=" +
                   std::to_string(t_.tWTR) + ")");
    }
    if (isWrite && rank.lastReadBurstEnd != 0 &&
        now + t_.tWL < rank.lastReadBurstEnd + t_.tRTRS) {
        record(RuleId::Trtw, channel, now,
               "write CAS to " + coordStr(c) +
                   " would start its burst inside the preceding read "
                   "burst's turnaround window");
    }

    // Data-bus booking: a burst may not overlap the previous one, and
    // switching ranks costs an extra tRTRS gap.
    const DramCycle start = now + (isWrite ? t_.tWL : t_.tCL);
    if (ch.busEnd != 0) {
        const DramCycle free =
            ch.busEnd + (c.rank != ch.busRank ? t_.tRTRS : 0);
        if (start < free) {
            record(RuleId::DataBusConflict, channel, now,
                   std::string(what) + " to " + coordStr(c) +
                       " starts its data burst at " +
                       std::to_string(start) +
                       " but the bus is booked until " +
                       std::to_string(free));
        }
    }
    ch.busEnd = start + t_.dataCycles();
    ch.busRank = c.rank;

    if (isWrite) {
        rank.lastWriteCas = now;
        rank.lastWriteBurstEnd = now + t_.tWL + t_.dataCycles();
        bank.lastWriteEnd = rank.lastWriteBurstEnd;
        ++ch.counters.writes;
    } else {
        rank.lastReadCas = now;
        rank.lastReadBurstEnd = now + t_.tCL + t_.dataCycles();
        bank.lastRead = now;
        ++ch.counters.reads;
    }
}

void
ProtocolChecker::checkPre(ChannelShadow &ch, std::uint32_t channel,
                          const DramCoord &c, DramCycle now)
{
    BankShadow &bank = ch.ranks[c.rank].banks[c.bank];

    if (!bank.open) {
        record(RuleId::PreOnClosedBank, channel, now,
               "PRE to " + coordStr(c) + " but no row is open");
    }
    if (bank.lastAct != 0 && now < bank.lastAct + t_.tRAS) {
        record(RuleId::Tras, channel, now,
               "PRE to " + coordStr(c) + " only " +
                   std::to_string(now - bank.lastAct) +
                   " cycles after ACT (tRAS=" +
                   std::to_string(t_.tRAS) + ")");
    }
    if (bank.lastRead != 0 && now < bank.lastRead + t_.tRTP) {
        record(RuleId::Trtp, channel, now,
               "PRE to " + coordStr(c) + " only " +
                   std::to_string(now - bank.lastRead) +
                   " cycles after a read CAS (tRTP=" +
                   std::to_string(t_.tRTP) + ")");
    }
    if (bank.lastWriteEnd != 0 && now < bank.lastWriteEnd + t_.tWR) {
        record(RuleId::Twr, channel, now,
               "PRE to " + coordStr(c) + " inside the write recovery "
                   "window (tWR=" + std::to_string(t_.tWR) + ")");
    }

    bank.open = false;
    bank.lastPre = now;
    ++ch.counters.precharges;
}

void
ProtocolChecker::checkRef(ChannelShadow &ch, std::uint32_t channel,
                          std::uint32_t rankIdx, DramCycle now)
{
    RankShadow &rank = ch.ranks[rankIdx];

    for (std::uint32_t b = 0; b < rank.banks.size(); ++b) {
        BankShadow &bank = rank.banks[b];
        if (bank.open) {
            record(RuleId::RefIllegal, channel, now,
                   "REF to rank " + std::to_string(rankIdx) +
                       " while bank " + std::to_string(b) +
                       " still has row " + std::to_string(bank.row) +
                       " open");
        }
        if (bank.lastPre != 0 && now < bank.lastPre + t_.tRP) {
            record(RuleId::Trp, channel, now,
                   "REF to rank " + std::to_string(rankIdx) +
                       " before bank " + std::to_string(b) +
                       "'s precharge period elapsed");
        }
        if (bank.lastAct != 0 && now < bank.lastAct + t_.tRC) {
            record(RuleId::Trc, channel, now,
                   "REF to rank " + std::to_string(rankIdx) +
                       " before bank " + std::to_string(b) +
                       "'s tRC elapsed");
        }
    }
    if (rank.lastRef != 0 && now < rank.lastRef + t_.tRFC) {
        record(RuleId::Trfc, channel, now,
               "REF to rank " + std::to_string(rankIdx) + " only " +
                   std::to_string(now - rank.lastRef) +
                   " cycles after the previous REF (tRFC=" +
                   std::to_string(t_.tRFC) + ")");
    }

    // Refresh-interval deadline: each REF must land within
    // tREFI (+slack) of the previous one; the first one within the
    // staggered initial deadline, which is at most one full tREFI.
    const DramCycle bound = t_.tREFI + check_.refreshSlack;
    const DramCycle since = now - rank.lastRef;
    if (since > bound) {
        record(RuleId::RefreshInterval, channel, now,
               "rank " + std::to_string(rankIdx) + " went " +
                   std::to_string(since) +
                   " cycles without a REF (tREFI=" +
                   std::to_string(t_.tREFI) + " + slack " +
                   std::to_string(check_.refreshSlack) + ")");
    }

    rank.lastRef = now;
    ++ch.counters.refreshes;
}

void
ProtocolChecker::onCommand(std::uint32_t channel, DramCmd cmd,
                           const DramCoord &coord, DramCycle now)
{
    ChannelShadow &ch = channels_[channel];

    if (ch.lastCmdCycle == now) {
        record(RuleId::CmdBusConflict, channel, now,
               "second command on the command bus in one cycle");
    }
    ch.lastCmdCycle = now;
    lastSeenCycle_ = std::max(lastSeenCycle_, now);

    switch (cmd) {
      case DramCmd::Act:
        checkAct(ch, channel, coord, now);
        break;
      case DramCmd::Read:
        checkCas(ch, channel, false, coord, now);
        break;
      case DramCmd::Write:
        checkCas(ch, channel, true, coord, now);
        break;
      case DramCmd::Pre:
        checkPre(ch, channel, coord, now);
        break;
      case DramCmd::Ref:
        checkRef(ch, channel, coord.rank, now);
        break;
    }

    if (check_.starvationCycles &&
        now - lastStarvationScan_ >=
            std::max<std::uint64_t>(1, check_.starvationCycles / 4)) {
        lastStarvationScan_ = now;
        scanStarvation(now);
    }
}

void
ProtocolChecker::onAutoPrecharge(std::uint32_t channel,
                                 const DramCoord &coord, DramCycle now)
{
    ChannelShadow &ch = channels_[channel];
    BankShadow &bank = ch.ranks[coord.rank].banks[coord.bank];

    if (!bank.open) {
        record(RuleId::PreOnClosedBank, channel, now,
               "auto-precharge of " + coordStr(coord) +
                   " but no row is open");
    }
    // The bank closes once its restore window elapses; the effective
    // precharge anchor is the earliest legal PRE time, exactly what
    // the channel folds into readyPre.
    bank.open = false;
    bank.lastPre = maxKnown(
        {bank.lastAct != 0 ? bank.lastAct + t_.tRAS : 0,
         bank.lastRead != 0 ? bank.lastRead + t_.tRTP : 0,
         bank.lastWriteEnd != 0 ? bank.lastWriteEnd + t_.tWR : 0});
    ++ch.counters.autoPrecharges;
}

void
ProtocolChecker::onComplete(std::uint32_t channel, const MemRequest &req,
                            DramCycle now)
{
    auto it = outstanding_.find(req.id);
    if (it == outstanding_.end()) {
        record(RuleId::UnknownCompletion, channel, now,
               "completion for request id " + std::to_string(req.id) +
                   " (addr " + std::to_string(req.addr) +
                   ") that is not in flight");
        return;
    }
    outstanding_.erase(it);
}

void
ProtocolChecker::onPromote(std::uint32_t channel, Addr addr, CoreId core,
                           CritLevel previous, CritLevel requested,
                           CritLevel applied, DramCycle now)
{
    const CritLevel expected = std::max(previous, requested);
    if (applied < expected) {
        record(RuleId::CritDecrease, channel, now,
               "promotion of core " + std::to_string(core) +
                   " addr " + std::to_string(addr) + " applied level " +
                   std::to_string(applied) + " < max(previous " +
                   std::to_string(previous) + ", requested " +
                   std::to_string(requested) + ")");
    }
}

void
ProtocolChecker::onStall(const DramChannel &channel, DramCycle now)
{
    // A stalled channel would spin forever if we merely recorded the
    // event, so the watchdog always throws, failFast or not.
    const ChannelSnapshot snap = channel.snapshot(now);
    record(RuleId::Watchdog, snap.channel, now,
           "no forward progress; diagnostic snapshot:\n" +
               formatSnapshot(snap),
           /*forceThrow=*/true);
}

void
ProtocolChecker::scanStarvation(DramCycle now)
{
    for (auto &[id, pending] : outstanding_) {
        if (pending.starvationFlagged)
            continue;
        if (now - pending.enqueued > check_.starvationCycles) {
            pending.starvationFlagged = true;
            record(RuleId::Starvation, pending.channel, now,
                   "request id " + std::to_string(id) + " from core " +
                       std::to_string(pending.core) + " (addr " +
                       std::to_string(pending.addr) +
                       ") outstanding for " +
                       std::to_string(now - pending.enqueued) +
                       " cycles (bound " +
                       std::to_string(check_.starvationCycles) + ")");
        }
    }
}

void
ProtocolChecker::finalize(bool requireDrained)
{
    if (requireDrained && !outstanding_.empty()) {
        const auto &[id, pending] = *outstanding_.begin();
        record(RuleId::LostRequest, pending.channel, lastSeenCycle_,
               std::to_string(outstanding_.size()) +
                   " request(s) never completed; oldest is id " +
                   std::to_string(id) + " from core " +
                   std::to_string(pending.core) +
                   " enqueued at cycle " +
                   std::to_string(pending.enqueued));
    }

    // Catch ranks whose refreshes stopped (or never started) even
    // when no further REF arrives to trigger the interval rule.
    const DramCycle bound = t_.tREFI + check_.refreshSlack;
    for (std::uint32_t c = 0; c < channels_.size(); ++c) {
        for (std::uint32_t r = 0; r < channels_[c].ranks.size(); ++r) {
            const DramCycle lastRef = channels_[c].ranks[r].lastRef;
            if (lastSeenCycle_ > lastRef + bound) {
                record(RuleId::RefreshInterval, c, lastSeenCycle_,
                       "rank " + std::to_string(r) +
                           " saw no REF for the last " +
                           std::to_string(lastSeenCycle_ - lastRef) +
                           " cycles of the run (tREFI=" +
                           std::to_string(t_.tREFI) + " + slack " +
                           std::to_string(check_.refreshSlack) + ")");
            }
        }
    }
}

void
ProtocolChecker::checkScalar(const stats::Group &root,
                             const std::string &path,
                             std::uint64_t shadow, std::uint32_t channel)
{
    const stats::Scalar *stat = root.findScalar(path);
    if (stat == nullptr) {
        record(RuleId::StatsMismatch, channel, lastSeenCycle_,
               "stat '" + path + "' not found for cross-check");
        return;
    }
    if (stat->value() != shadow) {
        record(RuleId::StatsMismatch, channel, lastSeenCycle_,
               "stat '" + path + "' = " +
                   std::to_string(stat->value()) +
                   " but the checker observed " + std::to_string(shadow));
    }
}

void
ProtocolChecker::crossCheckStats(const stats::Group &root,
                                 const std::string &prefix)
{
    for (std::uint32_t c = 0; c < channels_.size(); ++c) {
        const Counters &n = channels_[c].counters;
        const std::string base =
            prefix + "channel" + std::to_string(c) + ".";
        checkScalar(root, base + "activates", n.activates, c);
        checkScalar(root, base + "reads", n.reads, c);
        checkScalar(root, base + "writes", n.writes, c);
        checkScalar(root, base + "precharges", n.precharges, c);
        checkScalar(root, base + "refreshes", n.refreshes, c);
        checkScalar(root, base + "autoPrecharges", n.autoPrecharges, c);
        checkScalar(root, base + "enqueueRejects", n.rejects, c);
    }
}

void
ProtocolChecker::onStatsReset()
{
    for (auto &ch : channels_)
        ch.counters = Counters{};
}

std::string
ProtocolChecker::report() const
{
    std::ostringstream os;
    os << "protocol checker: " << total_ << " violation(s), "
       << outstanding_.size() << " request(s) in flight\n";
    for (const auto &[rule, count] : countsByRule_)
        os << "  " << toString(rule) << ": " << count << "\n";
    for (const auto &v : violations_) {
        os << "  [" << toString(v.rule) << "] channel " << v.channel
           << " cycle " << v.cycle << ": " << v.message << "\n";
    }
    return os.str();
}

} // namespace critmem

/**
 * @file
 * Human-readable rendering of a ChannelSnapshot, used by the
 * forward-progress watchdog to explain *why* a channel is stuck:
 * what is queued, what every bank is waiting for, and where the
 * refresh engine stands.
 */

#ifndef CRITMEM_CHECK_DIAGNOSTICS_HH
#define CRITMEM_CHECK_DIAGNOSTICS_HH

#include <string>

#include "dram/observer.hh"

namespace critmem
{

/**
 * Render @p snap as a multi-line diagnostic dump. Queue listings are
 * truncated to @p maxQueueEntries per queue (0 = unlimited).
 */
std::string formatSnapshot(const ChannelSnapshot &snap,
                           std::size_t maxQueueEntries = 16);

} // namespace critmem

#endif // CRITMEM_CHECK_DIAGNOSTICS_HH

/**
 * @file
 * DRAM protocol invariant checker.
 *
 * A ProtocolChecker attaches to every channel of a DramSystem as a
 * passive ChannelObserver and re-derives the full DDR3 constraint set
 * from the observed command stream alone — it never reads the
 * channel's own readyX bookkeeping, so a bug in the channel's timing
 * arithmetic cannot hide from it. On top of the timing rules it
 * enforces conservation (every enqueued request completes exactly
 * once, promotions never lower criticality, no request starves) and
 * liveness (the forward-progress watchdog), and at finalize() it
 * cross-checks its shadow event counts against the channel statistics.
 */

#ifndef CRITMEM_CHECK_PROTOCOL_CHECKER_HH
#define CRITMEM_CHECK_PROTOCOL_CHECKER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/check.hh"
#include "dram/observer.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace critmem
{

class DramSystem;

/** Shadow model + rule engine; see file comment. */
class ProtocolChecker : public ChannelObserver
{
  public:
    /**
     * @param check Harness policy (fail-fast, bounds, slack).
     * @param dram The checked subsystem's geometry and timing; the
     *             checker keeps its own copy.
     */
    ProtocolChecker(const CheckConfig &check, const DramConfig &dram);

    /** Convenience: attach to every channel of @p dram. */
    void attach(DramSystem &dram);

    // ChannelObserver interface.
    void onEnqueue(std::uint32_t channel, const MemRequest &req,
                   const DramCoord &coord, DramCycle now) override;
    void onReject(std::uint32_t channel, const MemRequest &req,
                  DramCycle now) override;
    void onCommand(std::uint32_t channel, DramCmd cmd,
                   const DramCoord &coord, DramCycle now) override;
    void onAutoPrecharge(std::uint32_t channel, const DramCoord &coord,
                         DramCycle now) override;
    void onComplete(std::uint32_t channel, const MemRequest &req,
                    DramCycle now) override;
    void onPromote(std::uint32_t channel, Addr addr, CoreId core,
                   CritLevel previous, CritLevel requested,
                   CritLevel applied, DramCycle now) override;
    void onStall(const DramChannel &channel, DramCycle now) override;

    /**
     * End-of-run checks: outstanding requests (LostRequest, unless
     * @p requireDrained is false) and overdue refreshes.
     */
    void finalize(bool requireDrained = true);

    /**
     * Compare shadow per-channel event counts against the published
     * statistics. @p prefix locates the channel groups below @p root
     * ("dram." when root is the System's stats root; "" when root is
     * the channels' direct parent).
     */
    void crossCheckStats(const stats::Group &root,
                         const std::string &prefix = "dram.");

    /** Zero the shadow event counters (mirrors Group::resetAll). */
    void onStatsReset();

    /** Total violations detected (including ones past the store cap). */
    std::uint64_t totalViolations() const { return total_; }

    /** Stored violation records (capped at CheckConfig::maxViolations). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** @return true when at least one violation of @p rule was seen. */
    bool hasRule(RuleId rule) const;

    /** Requests enqueued but not yet completed. */
    std::size_t outstanding() const { return outstanding_.size(); }

    /** Human-readable multi-line summary of everything detected. */
    std::string report() const;

  private:
    struct BankShadow
    {
        bool open = false;
        std::uint64_t row = 0;
        DramCycle lastAct = 0;      ///< ACT command cycle
        DramCycle lastRead = 0;     ///< read CAS command cycle
        DramCycle lastWriteEnd = 0; ///< write data-burst end cycle
        DramCycle lastPre = 0;      ///< precharge completion anchor
    };

    struct RankShadow
    {
        std::vector<BankShadow> banks;
        DramCycle lastReadCas = 0;
        DramCycle lastWriteCas = 0;
        DramCycle lastReadBurstEnd = 0;
        DramCycle lastWriteBurstEnd = 0;
        DramCycle lastActAny = 0;
        std::array<DramCycle, 4> actTimes{};
        std::uint32_t actHead = 0;
        DramCycle lastRef = 0;
    };

    struct Counters
    {
        std::uint64_t activates = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t precharges = 0;
        std::uint64_t refreshes = 0;
        std::uint64_t autoPrecharges = 0;
        std::uint64_t rejects = 0;
    };

    struct ChannelShadow
    {
        std::vector<RankShadow> ranks;
        DramCycle lastCmdCycle = 0;
        DramCycle busEnd = 0;       ///< exclusive end of latest burst
        std::uint32_t busRank = 0;
        Counters counters;
    };

    struct Pending
    {
        std::uint32_t channel = 0;
        Addr addr = 0;
        CoreId core = 0;
        DramCycle enqueued = 0;
        bool starvationFlagged = false;
    };

    void record(RuleId rule, std::uint32_t channel, DramCycle now,
                std::string message, bool forceThrow = false);
    void checkAct(ChannelShadow &ch, std::uint32_t channel,
                  const DramCoord &c, DramCycle now);
    void checkCas(ChannelShadow &ch, std::uint32_t channel, bool isWrite,
                  const DramCoord &c, DramCycle now);
    void checkPre(ChannelShadow &ch, std::uint32_t channel,
                  const DramCoord &c, DramCycle now);
    void checkRef(ChannelShadow &ch, std::uint32_t channel,
                  std::uint32_t rank, DramCycle now);
    void scanStarvation(DramCycle now);
    void checkScalar(const stats::Group &root, const std::string &path,
                     std::uint64_t shadow, std::uint32_t channel);

    CheckConfig check_;
    DramTiming t_;
    std::vector<ChannelShadow> channels_;
    std::map<std::uint64_t, Pending> outstanding_;
    DramCycle lastSeenCycle_ = 0;
    DramCycle lastStarvationScan_ = 0;

    std::vector<Violation> violations_;
    std::map<RuleId, std::uint64_t> countsByRule_;
    std::uint64_t total_ = 0;
};

} // namespace critmem

#endif // CRITMEM_CHECK_PROTOCOL_CHECKER_HH

#include "check/check.hh"

namespace critmem
{

const char *
toString(RuleId rule)
{
    switch (rule) {
      case RuleId::Trcd: return "tRCD";
      case RuleId::Trp: return "tRP";
      case RuleId::Tras: return "tRAS";
      case RuleId::Trc: return "tRC";
      case RuleId::Tccd: return "tCCD";
      case RuleId::Trrd: return "tRRD";
      case RuleId::Tfaw: return "tFAW";
      case RuleId::Twtr: return "tWTR";
      case RuleId::Trtw: return "tRTW";
      case RuleId::Trtp: return "tRTP";
      case RuleId::Twr: return "tWR";
      case RuleId::Trfc: return "tRFC";
      case RuleId::RefreshInterval: return "RefreshInterval";
      case RuleId::ActOnOpenBank: return "ActOnOpenBank";
      case RuleId::CasIllegal: return "CasIllegal";
      case RuleId::PreOnClosedBank: return "PreOnClosedBank";
      case RuleId::RefIllegal: return "RefIllegal";
      case RuleId::CmdBusConflict: return "CmdBusConflict";
      case RuleId::DataBusConflict: return "DataBusConflict";
      case RuleId::DuplicateId: return "DuplicateId";
      case RuleId::UnknownCompletion: return "UnknownCompletion";
      case RuleId::LostRequest: return "LostRequest";
      case RuleId::CritDecrease: return "CritDecrease";
      case RuleId::Starvation: return "Starvation";
      case RuleId::Watchdog: return "Watchdog";
      case RuleId::StatsMismatch: return "StatsMismatch";
    }
    return "unknown";
}

namespace
{

std::string
describe(const Violation &v)
{
    return std::string("checker violation [") + toString(v.rule) +
        "] channel " + std::to_string(v.channel) + " cycle " +
        std::to_string(v.cycle) + ": " + v.message;
}

} // namespace

CheckViolation::CheckViolation(Violation violation)
    : std::runtime_error(describe(violation)),
      violation_(std::move(violation))
{
}

} // namespace critmem

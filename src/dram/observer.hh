/**
 * @file
 * Passive instrumentation and fault-injection interfaces of a DRAM
 * channel.
 *
 * A ChannelObserver shadows everything a channel does — enqueues,
 * issued commands, completions, criticality promotions, watchdog
 * trips — without being able to influence scheduling. The protocol
 * invariant checker (src/check/) is the canonical implementation.
 *
 * A FaultInjector is the opposite: it deliberately corrupts channel
 * behaviour so that tests can prove each checker rule actually fires.
 * The default implementation injects nothing.
 */

#ifndef CRITMEM_DRAM_OBSERVER_HH
#define CRITMEM_DRAM_OBSERVER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dram/command.hh"
#include "mem/request.hh"
#include "sim/types.hh"

namespace critmem
{

class DramChannel;

/**
 * Point-in-time diagnostic state of one channel, dumped by the
 * forward-progress watchdog when a stall or violation is reported.
 */
struct ChannelSnapshot
{
    struct QueueEntry
    {
        Addr addr = 0;
        ReqType type = ReqType::Read;
        CoreId core = 0;
        CritLevel crit = 0;
        DramCycle arrival = 0;
        std::uint64_t id = 0;
        DramCoord coord;
    };

    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        DramCycle readyAct = 0;
        DramCycle readyRead = 0;
        DramCycle readyWrite = 0;
        DramCycle readyPre = 0;
    };

    struct Rank
    {
        DramCycle refreshDue = 0;
        bool refreshPending = false;
    };

    std::uint32_t channel = 0;
    DramCycle now = 0;
    const char *scheduler = "";
    std::vector<QueueEntry> readQ;
    std::vector<QueueEntry> writeQ;
    std::size_t completionsPending = 0;
    std::vector<Bank> banks;
    std::vector<Rank> ranks;
    DramCycle busFreeAt = 0;
    bool draining = false;
};

/** Passive shadow of every externally visible channel event. */
class ChannelObserver
{
  public:
    virtual ~ChannelObserver() = default;

    /** A transaction was accepted into @p channel's queue. */
    virtual void
    onEnqueue(std::uint32_t channel, const MemRequest &req,
              const DramCoord &coord, DramCycle now)
    {
        (void)channel; (void)req; (void)coord; (void)now;
    }

    /** A transaction was rejected because the queue was full. */
    virtual void
    onReject(std::uint32_t channel, const MemRequest &req, DramCycle now)
    {
        (void)channel; (void)req; (void)now;
    }

    /**
     * A command was placed on @p channel's command bus this cycle
     * (including the refresh engine's precharges and REF commands).
     * For ACT/Read/Write/Pre @p coord carries rank/bank/row; for Ref
     * only the rank is meaningful.
     */
    virtual void
    onCommand(std::uint32_t channel, DramCmd cmd, const DramCoord &coord,
              DramCycle now)
    {
        (void)channel; (void)cmd; (void)coord; (void)now;
    }

    /**
     * A CAS-with-auto-precharge closed @p coord's bank (closed-page
     * policy). This consumes no command-bus slot; the bank closes once
     * its restore window elapses.
     */
    virtual void
    onAutoPrecharge(std::uint32_t channel, const DramCoord &coord,
                    DramCycle now)
    {
        (void)channel; (void)coord; (void)now;
    }

    /** A transaction's data burst finished (reads and writes). */
    virtual void
    onComplete(std::uint32_t channel, const MemRequest &req,
               DramCycle now)
    {
        (void)channel; (void)req; (void)now;
    }

    /**
     * A queued read's criticality was promoted. @p requested is the
     * caller's level; @p applied is what the queue entry now holds —
     * legal behaviour guarantees applied == max(previous, requested).
     */
    virtual void
    onPromote(std::uint32_t channel, Addr addr, CoreId core,
              CritLevel previous, CritLevel requested, CritLevel applied,
              DramCycle now)
    {
        (void)channel; (void)addr; (void)core; (void)previous;
        (void)requested; (void)applied; (void)now;
    }

    /**
     * The forward-progress watchdog tripped: @p channel has queued
     * work but issued nothing for DramConfig::watchdogCycles. The
     * handler should capture channel.snapshot(now) and fail loudly.
     */
    virtual void
    onStall(const DramChannel &channel, DramCycle now)
    {
        (void)channel; (void)now;
    }
};

/**
 * Deliberate-misbehaviour hooks a channel consults at each decision
 * point. Every default answers "no fault"; src/check/fault_injector
 * implements the seeded, configurable version.
 */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /** Swallow this read completion (no callback, no notification)? */
    virtual bool
    dropCompletion(const MemRequest &req, DramCycle now)
    {
        (void)req; (void)now;
        return false;
    }

    /** Cycles of illegal headroom to give CAS eligibility this tick. */
    virtual std::uint32_t casSlack(DramCycle now)
    {
        (void)now;
        return 0;
    }

    /** Skip the refresh that just became due on @p rank? */
    virtual bool
    skipRefresh(std::uint32_t rank, DramCycle now)
    {
        (void)rank; (void)now;
        return false;
    }

    /** Hide all of @p core's transactions from the scheduler? */
    virtual bool starveCore(CoreId core)
    {
        (void)core;
        return false;
    }

    /** Zero the outcome of the current criticality promotion? */
    virtual bool corruptPromotion(DramCycle now)
    {
        (void)now;
        return false;
    }
};

} // namespace critmem

#endif // CRITMEM_DRAM_OBSERVER_HH

/**
 * @file
 * One DDR3 channel: transaction queues, per-bank/rank timing state,
 * refresh engine, candidate generation and command issue.
 */

#ifndef CRITMEM_DRAM_CHANNEL_HH
#define CRITMEM_DRAM_CHANNEL_HH

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "dram/command.hh"
#include "dram/observer.hh"
#include "mem/request.hh"
#include "sched/scheduler.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace critmem
{

/**
 * Timing state of every bank in a channel, stored struct-of-arrays:
 * one contiguous ready-time vector per command kind, indexed by
 * rank * banksPerRank + bank. The readyX vectors hold the earliest
 * DRAM cycle at which command X may be issued to that bank. The
 * layout keeps the per-tick ready-command scan (and the
 * nextEventCycle() min-scan that mirrors it) a branch-light linear
 * pass over contiguous arrays instead of strided loads through an
 * array of per-bank structs.
 */
struct BankTimingSoA
{
    explicit BankTimingSoA(std::size_t n)
        : open(n, 0), row(n, 0), readyAct(n, 0), readyRead(n, 0),
          readyWrite(n, 0), readyPre(n, 0)
    {
    }

    std::size_t size() const { return open.size(); }

    std::vector<std::uint8_t> open;
    std::vector<std::uint64_t> row;
    std::vector<DramCycle> readyAct;
    std::vector<DramCycle> readyRead;
    std::vector<DramCycle> readyWrite;
    std::vector<DramCycle> readyPre;
};

/** Refresh and activate-window bookkeeping for one rank. */
struct RankState
{
    DramCycle refreshDue = 0;  ///< next tREFI deadline
    bool refreshPending = false;
    /**
     * Issue times of the last four ACTs to this rank (tFAW sliding
     * window); actHead_ points at the oldest slot. 0 means "never"
     * (the DRAM clock starts at cycle 1).
     */
    std::array<DramCycle, 4> actTimes{};
    std::uint32_t actHead = 0;

    /** @return true when a fifth ACT would not violate tFAW. */
    bool
    fawOk(DramCycle now, std::uint32_t tFAW) const
    {
        const DramCycle oldest = actTimes[actHead];
        return oldest == 0 || now >= oldest + tFAW;
    }

    /** Record an ACT issued to this rank at @p now. */
    void
    recordAct(DramCycle now)
    {
        actTimes[actHead] = now;
        actHead = (actHead + 1) % actTimes.size();
    }
};

/**
 * A DDR3 channel with its own command/address/data buses.
 *
 * Scheduling protocol per DRAM cycle:
 *  1. The refresh engine runs first; when a refresh is due it owns the
 *     command bus (issuing PREs then REF) until the rank is clean.
 *  2. Otherwise all immediately-issuable commands are gathered and the
 *     scheduler picks one (or idles).
 *
 * By default (the paper's Table 3 controller) reads and writebacks
 * share one unified 64-entry transaction queue and arbitrate
 * together. DramConfig::unifiedQueue = false switches to a modern
 * split write buffer drained in bursts under a high/low watermark.
 * DramConfig::closedPage enables CAS-with-auto-precharge when no
 * other queued transaction wants the open row.
 */
class DramChannel
{
  public:
    DramChannel(const DramConfig &cfg, std::uint32_t id,
                Scheduler &sched, stats::Group &parent);

    /**
     * Try to append a transaction.
     * @return false when the appropriate queue is full.
     */
    bool enqueue(MemRequest req, const DramCoord &coord, DramCycle now);

    /** Advance one DRAM cycle: completions, refresh, scheduling. */
    void tick(DramCycle now);

    /**
     * Earliest DRAM cycle > the last ticked cycle at which tick()
     * could do anything besides static idle accounting: a completion
     * popping, a refresh action (or a rank crossing its tREFI
     * deadline), a queued transaction's timing window opening, or the
     * forward-progress watchdog tripping. Returns kNoCycle when the
     * channel is fully drained and no refresh is on the horizon.
     * With a fault injector attached every cycle is an event (faults
     * are probed per tick), so skipping is disabled.
     *
     * Contract: for every cycle t in (now, nextEventCycle(now)),
     * tick(t) would only have resampled the occupancy statistics,
     * bumped idleNoCandidate, and refreshed lastProgress_/lastTick_
     * — exactly what skipTo() replays in bulk.
     */
    DramCycle nextEventCycle(DramCycle now) const;

    /**
     * Bulk-apply the idle per-cycle accounting for every skipped
     * cycle in (lastTick_, to]: occupancy samples, idleNoCandidate,
     * and the lastProgress_/lastTick_ bookkeeping. Only legal when
     * to < nextEventCycle(lastTick_).
     */
    void skipTo(DramCycle to);

    /**
     * Raise the criticality of a queued read to @p crit if the request
     * from @p core for @p addr is still waiting (Section 5.1 naive
     * forwarding path).
     * @return true when a matching queued read was found.
     */
    bool promote(Addr addr, CoreId core, CritLevel crit);

    /** @return number of queued (not yet CAS-issued) reads. */
    std::uint32_t readQueueSize() const
    {
        return static_cast<std::uint32_t>(readQ_.size());
    }

    std::uint32_t writeQueueSize() const
    {
        return static_cast<std::uint32_t>(writeQ_.size());
    }

    /** @return true when no work remains anywhere in the channel. */
    bool
    idle() const
    {
        return readQ_.empty() && writeQ_.empty() && completions_.empty();
    }

    /**
     * Attach a passive observer notified of every enqueue, command,
     * completion, promotion and watchdog trip. Pass nullptr to detach;
     * the observer must outlive its attachment.
     */
    void setObserver(ChannelObserver *observer) { observer_ = observer; }

    /** Attach a fault injector (nullptr = honest channel). */
    void setFaultInjector(FaultInjector *inj) { injector_ = inj; }

    /** Capture a diagnostic snapshot of all channel state. */
    ChannelSnapshot snapshot(DramCycle now) const;

    /** Name of the scheduling policy serving this channel. */
    const char *schedulerName() const { return sched_.name(); }

    /** Statistics for this channel. */
    struct Stats
    {
        explicit Stats(stats::Group &parent, std::uint32_t id);

        stats::Group group;
        stats::Scalar activates;
        stats::Scalar reads;
        stats::Scalar writes;
        stats::Scalar precharges;
        stats::Scalar refreshes;
        stats::Scalar rowHits;
        stats::Scalar rowMisses;
        stats::Scalar rowConflicts;
        stats::Scalar busyDataCycles;
        stats::Scalar idleNoCandidate;
        stats::Scalar enqueueRejects;
        stats::Scalar autoPrecharges;
        stats::Histogram readLatency;
        stats::Average readQueueOcc;
        stats::Average critInQueue;
    };

    const Stats &channelStats() const { return stats_; }

  private:
    struct Transaction
    {
        MemRequest req;
        DramCoord coord;
        DramCycle arrival = 0;
    };

    struct Completion
    {
        DramCycle at;
        std::uint64_t order;
        MemRequest req;
        DramCycle arrival;

        bool
        operator>(const Completion &other) const
        {
            return at != other.at ? at > other.at : order > other.order;
        }
    };

    std::uint32_t bankIdx(std::uint32_t rank, std::uint32_t bank) const
    {
        return rank * cfg_.banksPerRank + bank;
    }

    /**
     * The command a queued transaction wants under the current bank
     * state, and the earliest DRAM cycle that command's timing
     * windows open. buildCandidates() admits the candidate when
     * at <= now; nextEventCycle() takes the min over all ats — one
     * formula, so the scan and the skip bound cannot diverge.
     */
    struct TxnReady
    {
        DramCmd cmd;
        bool rowHit;
        DramCycle at;
    };

    TxnReady txnReady(const DramCoord &coord, bool isWrite,
                      std::uint32_t slack) const;

    /** The write-drain watermark decision for the current queue sizes. */
    bool writesEligible() const;

    /** Earliest cycle a CAS to (rank) could start its data burst. */
    DramCycle dataBusFreeFor(std::uint32_t rank) const;

    /** Handle due refreshes; @return true when the bus was consumed. */
    bool refreshTick(DramCycle now);

    /** Report a stall when the forward-progress bound is exceeded. */
    void checkWatchdog(DramCycle now);

    void buildCandidates(DramCycle now);
    void maybeAutoPrecharge(const DramCoord &coord, DramCycle now);
    void issue(const SchedCandidate &cand, DramCycle now);
    void applyRead(const DramCoord &c, DramCycle now);
    void applyWrite(const DramCoord &c, DramCycle now);
    void popCompletions(DramCycle now);

    const DramConfig &cfg_;
    const std::uint32_t id_;
    Scheduler &sched_;

    BankTimingSoA banks_;
    std::vector<RankState> ranks_;
    std::vector<Transaction> readQ_;
    std::vector<Transaction> writeQ_;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>> completions_;
    std::vector<SchedCandidate> cands_;

    /** End (exclusive) of the latest scheduled data burst. */
    DramCycle busFreeAt_ = 0;
    std::uint32_t lastBusRank_ = 0;
    bool draining_ = false;
    std::uint64_t completionOrder_ = 0;

    ChannelObserver *observer_ = nullptr;
    FaultInjector *injector_ = nullptr;
    /** Last cycle this channel issued, completed, or was work-free. */
    DramCycle lastProgress_ = 0;
    /** Most recent tick() cycle (timestamps promote() events). */
    DramCycle lastTick_ = 0;

    Stats stats_;
};

} // namespace critmem

#endif // CRITMEM_DRAM_CHANNEL_HH

/**
 * @file
 * Top-level DRAM subsystem: address decoding plus one DramChannel per
 * configured channel, all served by a single scheduling policy.
 */

#ifndef CRITMEM_DRAM_DRAM_HH
#define CRITMEM_DRAM_DRAM_HH

#include <memory>
#include <vector>

#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "mem/request.hh"
#include "sched/scheduler.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace critmem
{

/** Quad-channel (configurable) DDR3 memory subsystem. */
class DramSystem
{
  public:
    /**
     * @param cfg Organization and timing.
     * @param sched Scheduling policy shared by every channel; must
     *              outlive the DramSystem.
     * @param parent Statistics parent group.
     */
    DramSystem(const DramConfig &cfg, Scheduler &sched,
               stats::Group &parent);

    /**
     * Decode and enqueue a transaction. Arrival is stamped with the
     * DRAM subsystem's own clock (the last ticked cycle), keeping
     * queue ages monotonic regardless of the caller's clock domain.
     * @return false when the destination queue is full (caller
     *         retries; the L2 MSHR keeps the request alive).
     */
    bool enqueue(MemRequest req);

    /** Advance every channel one DRAM cycle. */
    void tick(DramCycle now);

    /**
     * Earliest DRAM cycle > @p now at which any channel or the
     * scheduling policy would do real work (see
     * DramChannel::nextEventCycle). kNoCycle = fully quiescent.
     */
    DramCycle nextEventCycle(DramCycle now) const;

    /**
     * Bulk-apply idle accounting for the skipped cycles up to and
     * including @p to on every channel. Only legal when
     * to < nextEventCycle(last ticked cycle).
     */
    void skipTo(DramCycle to);

    /** Naive-forwarding criticality promotion (Section 5.1). */
    bool promote(Addr addr, CoreId core, CritLevel crit);

    /** @return true when all channels are empty. */
    bool idle() const;

    const AddressMap &addressMap() const { return map_; }
    const DramConfig &config() const { return cfg_; }

    std::uint32_t
    numChannels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    const DramChannel &channel(std::uint32_t i) const
    {
        return *channels_[i];
    }

    /** Sum of queued reads across channels. */
    std::uint32_t pendingReads() const;

    /** Attach @p observer to every channel (nullptr detaches). */
    void setObserver(ChannelObserver *observer);

    /** Attach @p injector to every channel (nullptr detaches). */
    void setFaultInjector(FaultInjector *injector);

  private:
    DramConfig cfg_;
    AddressMap map_;
    stats::Group group_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    Scheduler &sched_;
    std::uint64_t nextId_ = 0;
    DramCycle lastNow_ = 0;
};

} // namespace critmem

#endif // CRITMEM_DRAM_DRAM_HH

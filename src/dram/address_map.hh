/**
 * @file
 * Physical address mapping.
 *
 * Page interleaving (Table 3): consecutive addresses within one 1 KB
 * row stay in the same bank so that sequential streams enjoy
 * row-buffer hits; successive rows rotate across channels, then
 * banks, then ranks:
 *
 *   | row | rank | bank | channel | row offset |
 *   MSB                                      LSB
 *
 * Block interleaving (ablation): consecutive 64 B blocks rotate
 * across channels first, maximizing channel parallelism:
 *
 *   | row | rank | bank | column | channel | block offset |
 *   MSB                                                LSB
 */

#ifndef CRITMEM_DRAM_ADDRESS_MAP_HH
#define CRITMEM_DRAM_ADDRESS_MAP_HH

#include "dram/command.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace critmem
{

/** Decodes physical addresses into DRAM coordinates. */
class AddressMap
{
  public:
    /**
     * @param cfg DRAM organization; channel/rank/bank counts and the
     *            row size must all be powers of two.
     */
    explicit AddressMap(const DramConfig &cfg);

    /** Decode an address into channel/rank/bank/row. */
    DramCoord decode(Addr addr) const;

    /** Bytes covered by one row across all channels. */
    std::uint64_t
    bytesPerRowGroup() const
    {
        return static_cast<std::uint64_t>(rowBytes_) << channelBits_;
    }

  private:
    AddressMapKind kind_;
    std::uint32_t rowBytes_;
    std::uint32_t rowShift_;
    std::uint32_t blockShift_;
    std::uint32_t channelBits_;
    std::uint32_t bankBits_;
    std::uint32_t rankBits_;
};

} // namespace critmem

#endif // CRITMEM_DRAM_ADDRESS_MAP_HH

/**
 * @file
 * DRAM command vocabulary and the candidate descriptors the channel
 * presents to a memory scheduler each DRAM cycle.
 */

#ifndef CRITMEM_DRAM_COMMAND_HH
#define CRITMEM_DRAM_COMMAND_HH

#include <cstdint>

#include "sim/types.hh"

namespace critmem
{

/** DDR3 commands the controller can place on the command bus. */
enum class DramCmd : std::uint8_t
{
    Act,   ///< activate (RAS): open a row
    Read,  ///< column read (CAS)
    Write, ///< column write (CAS-W)
    Pre,   ///< precharge: close the bank's open row
    Ref,   ///< all-bank refresh
};

/** Decoded DRAM coordinates of an address. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;

    bool
    operator==(const DramCoord &other) const
    {
        return channel == other.channel && rank == other.rank &&
            bank == other.bank && row == other.row;
    }
};

/**
 * One legal command the scheduler may issue this DRAM cycle, with all
 * the metadata the evaluated scheduling policies consult.
 *
 * A candidate always advances exactly one queued transaction: the
 * channel maps the winning candidate back to its transaction via
 * queueIndex.
 */
struct SchedCandidate
{
    DramCmd cmd = DramCmd::Act;
    /** Index into the channel's transaction queue. */
    std::uint32_t queueIndex = 0;
    DramCoord coord;
    /** True when cmd is a CAS to an already-open row. */
    bool rowHit = false;
    /** True when the underlying transaction is a write(back). */
    bool isWrite = false;
    /** True when the underlying transaction is a prefetch. */
    bool isPrefetch = false;
    /** Originating core. */
    CoreId core = 0;
    /** Criticality magnitude piggybacked on the request. */
    CritLevel crit = 0;
    /** DRAM cycle the transaction entered the queue. */
    DramCycle arrival = 0;
    /** Global FCFS id of the transaction (smaller = older). */
    std::uint64_t seq = 0;
};

} // namespace critmem

#endif // CRITMEM_DRAM_COMMAND_HH

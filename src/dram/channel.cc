#include "dram/channel.hh"

#include <algorithm>

#include "sim/log.hh"

namespace critmem
{

DramChannel::Stats::Stats(stats::Group &parent, std::uint32_t id)
    : group("channel" + std::to_string(id), &parent),
      activates(group, "activates", "ACT commands issued"),
      reads(group, "reads", "column read commands issued"),
      writes(group, "writes", "column write commands issued"),
      precharges(group, "precharges", "PRE commands issued"),
      refreshes(group, "refreshes", "REF commands issued"),
      rowHits(group, "rowHits", "CAS commands that hit an open row"),
      rowMisses(group, "rowMisses", "ACTs issued to closed banks"),
      rowConflicts(group, "rowConflicts",
                   "PREs closing a row another request had open"),
      busyDataCycles(group, "busyDataCycles",
                     "DRAM cycles the data bus carried a burst"),
      idleNoCandidate(group, "idleNoCandidate",
                      "cycles queue was nonempty but nothing issuable"),
      enqueueRejects(group, "enqueueRejects",
                     "transactions rejected because a queue was full"),
      autoPrecharges(group, "autoPrecharges",
                     "closed-page auto-precharges after CAS"),
      readLatency(group, "readLatency",
                  "read queueing+service latency, DRAM cycles"),
      readQueueOcc(group, "readQueueOcc",
                   "read transaction queue occupancy"),
      critInQueue(group, "critInQueue",
                  "critical reads resident in the queue")
{
}

DramChannel::DramChannel(const DramConfig &cfg, std::uint32_t id,
                         Scheduler &sched, stats::Group &parent)
    : cfg_(cfg), id_(id), sched_(sched),
      banks_(std::size_t{cfg.ranksPerChannel} * cfg.banksPerRank),
      ranks_(cfg.ranksPerChannel),
      stats_(parent, id)
{
    // Stagger refresh deadlines so the ranks don't refresh in
    // lock-step and stall the whole channel at once.
    for (std::uint32_t r = 0; r < cfg_.ranksPerChannel; ++r) {
        ranks_[r].refreshDue =
            static_cast<DramCycle>(cfg_.t.tREFI) * (r + 1) /
            cfg_.ranksPerChannel;
    }
}

bool
DramChannel::enqueue(MemRequest req, const DramCoord &coord,
                     DramCycle now)
{
    auto &queue = req.type == ReqType::Write ? writeQ_ : readQ_;
    const std::size_t used = cfg_.unifiedQueue
        ? readQ_.size() + writeQ_.size()
        : queue.size();
    if (used >= cfg_.queueEntries) {
        ++stats_.enqueueRejects;
        if (observer_)
            observer_->onReject(id_, req, now);
        return false;
    }
    sched_.onEnqueue(id_, req, coord, now);
    if (observer_)
        observer_->onEnqueue(id_, req, coord, now);
    queue.push_back(Transaction{std::move(req), coord, now});
    return true;
}

bool
DramChannel::promote(Addr addr, CoreId core, CritLevel crit)
{
    for (auto &trans : readQ_) {
        if (trans.req.addr == addr && trans.req.core == core &&
            trans.req.type == ReqType::Read) {
            const CritLevel previous = trans.req.crit;
            CritLevel applied = std::max(previous, crit);
            if (injector_ && injector_->corruptPromotion(lastTick_))
                applied = 0;
            trans.req.crit = applied;
            if (observer_) {
                observer_->onPromote(id_, addr, core, previous, crit,
                                     applied, lastTick_);
            }
            return true;
        }
    }
    return false;
}

DramCycle
DramChannel::dataBusFreeFor(std::uint32_t rank) const
{
    if (busFreeAt_ == 0)
        return 0;
    return busFreeAt_ + (rank != lastBusRank_ ? cfg_.t.tRTRS : 0);
}

void
DramChannel::popCompletions(DramCycle now)
{
    while (!completions_.empty() && completions_.top().at <= now) {
        // top() only exposes const access; the heap entry is dead after
        // pop, so moving the request out is safe.
        auto &entry = const_cast<Completion &>(completions_.top());
        MemRequest req = std::move(entry.req);
        const DramCycle arrival = entry.arrival;
        const DramCycle at = entry.at;
        completions_.pop();
        if (injector_ && injector_->dropCompletion(req, now))
            continue; // fault: the data burst vanishes untraced
        lastProgress_ = now;
        if (req.type != ReqType::Write)
            stats_.readLatency.sample(at - arrival);
        sched_.onComplete(id_, req, now);
        if (observer_)
            observer_->onComplete(id_, req, now);
        if (req.onComplete)
            req.onComplete(req);
    }
}

bool
DramChannel::refreshTick(DramCycle now)
{
    for (std::uint32_t r = 0; r < cfg_.ranksPerChannel; ++r) {
        RankState &rank = ranks_[r];
        if (!rank.refreshPending) {
            if (now >= rank.refreshDue) {
                if (injector_ && injector_->skipRefresh(r, now)) {
                    // Fault: the due refresh silently never happens.
                    rank.refreshDue += cfg_.t.tREFI;
                    continue;
                }
                rank.refreshPending = true;
            } else {
                continue;
            }
        }
        // Close any open bank as soon as its precharge is legal.
        bool allClosed = true;
        DramCycle readyRef = 0;
        const std::uint32_t base = bankIdx(r, 0);
        for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b) {
            const std::uint32_t bi = base + b;
            if (banks_.open[bi]) {
                allClosed = false;
                if (now >= banks_.readyPre[bi]) {
                    if (observer_) {
                        DramCoord coord;
                        coord.channel = id_;
                        coord.rank = r;
                        coord.bank = b;
                        coord.row = banks_.row[bi];
                        observer_->onCommand(id_, DramCmd::Pre, coord,
                                             now);
                    }
                    banks_.open[bi] = 0;
                    banks_.readyAct[bi] =
                        std::max(banks_.readyAct[bi], now + cfg_.t.tRP);
                    ++stats_.precharges;
                    lastProgress_ = now;
                    return true; // consumed the command bus
                }
            } else {
                readyRef = std::max(readyRef, banks_.readyAct[bi]);
            }
        }
        if (allClosed && now >= readyRef) {
            for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b)
                banks_.readyAct[base + b] = now + cfg_.t.tRFC;
            rank.refreshPending = false;
            rank.refreshDue += cfg_.t.tREFI;
            ++stats_.refreshes;
            lastProgress_ = now;
            if (observer_) {
                DramCoord coord;
                coord.channel = id_;
                coord.rank = r;
                observer_->onCommand(id_, DramCmd::Ref, coord, now);
            }
            return true;
        }
        // A pending refresh that cannot act yet does not consume the
        // bus; other ranks may still be scheduled.
    }
    return false;
}

DramChannel::TxnReady
DramChannel::txnReady(const DramCoord &c, bool isWrite,
                      std::uint32_t slack) const
{
    const std::uint32_t bi = bankIdx(c.rank, c.bank);
    if (!banks_.open[bi]) {
        // ACT: the bank's own window plus the rank's tFAW window
        // (fawOk() admits when the oldest slot is 0 or aged past
        // tFAW; the max below encodes exactly that).
        const RankState &rank = ranks_[c.rank];
        const DramCycle oldest = rank.actTimes[rank.actHead];
        const DramCycle fawReady =
            oldest == 0 ? 0 : oldest + cfg_.t.tFAW;
        return {DramCmd::Act, false,
                std::max(banks_.readyAct[bi], fawReady)};
    }
    if (banks_.row[bi] == c.row) {
        // CAS: the bank window and the shared data bus, both loosened
        // by the injector's EarlyCas slack (saturating: a window the
        // slack fully covers opened at cycle 0).
        const DramCycle ready =
            isWrite ? banks_.readyWrite[bi] : banks_.readyRead[bi];
        const DramCycle busFree = dataBusFreeFor(c.rank);
        const DramCycle casLead =
            (isWrite ? cfg_.t.tWL : cfg_.t.tCL) + slack;
        const DramCycle at =
            std::max(ready > slack ? ready - slack : 0,
                     busFree > casLead ? busFree - casLead : 0);
        return {isWrite ? DramCmd::Write : DramCmd::Read, true, at};
    }
    return {DramCmd::Pre, false, banks_.readyPre[bi]};
}

bool
DramChannel::writesEligible() const
{
    if (cfg_.unifiedQueue)
        return true;
    // Split-queue mode: drain writes under a high/low watermark or
    // opportunistically when no read is pending. Project the
    // hysteresis forward from the stored state so const callers
    // (nextEventCycle) see the decision the next tick would make.
    const std::uint32_t hi = cfg_.queueEntries * 3 / 4;
    const std::uint32_t lo = cfg_.queueEntries / 4;
    bool draining = draining_;
    if (!draining && writeQ_.size() >= hi)
        draining = true;
    else if (draining && writeQ_.size() <= lo)
        draining = false;
    return draining || (readQ_.empty() && !writeQ_.empty());
}

void
DramChannel::buildCandidates(DramCycle now)
{
    cands_.clear();

    if (!cfg_.unifiedQueue) {
        const std::uint32_t hi = cfg_.queueEntries * 3 / 4;
        const std::uint32_t lo = cfg_.queueEntries / 4;
        if (!draining_ && writeQ_.size() >= hi)
            draining_ = true;
        else if (draining_ && writeQ_.size() <= lo)
            draining_ = false;
    }
    const bool wElig = writesEligible();

    // EarlyCas fault: pretend CAS timing windows open `slack` cycles
    // sooner than they really do. issue() applies honest timings, so
    // the shadow checker sees a genuinely premature command.
    const std::uint32_t slack = injector_ ? injector_->casSlack(now) : 0;

    auto consider = [&](const std::vector<Transaction> &queue,
                        bool isWrite) {
        for (std::uint32_t i = 0; i < queue.size(); ++i) {
            const Transaction &trans = queue[i];
            const DramCoord &c = trans.coord;
            if (ranks_[c.rank].refreshPending)
                continue;
            if (injector_ && injector_->starveCore(trans.req.core))
                continue; // fault: scheduler never sees this core

            const TxnReady ready = txnReady(c, isWrite, slack);
            if (ready.at > now)
                continue;

            SchedCandidate cand;
            cand.queueIndex = i;
            cand.coord = c;
            cand.isWrite = isWrite;
            cand.isPrefetch = trans.req.type == ReqType::Prefetch;
            cand.core = trans.req.core;
            cand.crit = trans.req.crit;
            cand.arrival = trans.arrival;
            cand.seq = trans.req.id;
            cand.cmd = ready.cmd;
            cand.rowHit = ready.rowHit;
            cands_.push_back(cand);
        }
    };

    consider(readQ_, false);
    if (wElig)
        consider(writeQ_, true);
}

void
DramChannel::applyRead(const DramCoord &c, DramCycle now)
{
    const DramTiming &t = cfg_.t;
    const std::uint32_t bi = bankIdx(c.rank, c.bank);
    const DramCycle burstEnd = now + t.tCL + t.dataCycles();

    banks_.readyPre[bi] = std::max(banks_.readyPre[bi], now + t.tRTP);
    // Read-to-write turnaround: the write burst must start after the
    // read burst clears the bus plus a rank switch gap.
    const DramCycle rdReady = now + t.tCCD;
    const DramCycle wrCmd = burstEnd + t.tRTRS - t.tWL;
    const std::uint32_t base = bankIdx(c.rank, 0);
    for (std::uint32_t i = 0; i < cfg_.banksPerRank; ++i) {
        banks_.readyRead[base + i] =
            std::max(banks_.readyRead[base + i], rdReady);
        banks_.readyWrite[base + i] =
            std::max(banks_.readyWrite[base + i], wrCmd);
    }
    busFreeAt_ = burstEnd;
    lastBusRank_ = c.rank;
    stats_.busyDataCycles += t.dataCycles();
}

void
DramChannel::applyWrite(const DramCoord &c, DramCycle now)
{
    const DramTiming &t = cfg_.t;
    const DramCycle burstEnd = now + t.tWL + t.dataCycles();

    const std::uint32_t bi = bankIdx(c.rank, c.bank);
    banks_.readyPre[bi] =
        std::max(banks_.readyPre[bi], burstEnd + t.tWR);
    const DramCycle wrReady = now + t.tCCD;
    const DramCycle rdReady = burstEnd + t.tWTR;
    const std::uint32_t base = bankIdx(c.rank, 0);
    for (std::uint32_t i = 0; i < cfg_.banksPerRank; ++i) {
        banks_.readyWrite[base + i] =
            std::max(banks_.readyWrite[base + i], wrReady);
        banks_.readyRead[base + i] =
            std::max(banks_.readyRead[base + i], rdReady);
    }
    busFreeAt_ = burstEnd;
    lastBusRank_ = c.rank;
    stats_.busyDataCycles += t.dataCycles();
}

void
DramChannel::maybeAutoPrecharge(const DramCoord &coord, DramCycle now)
{
    if (!cfg_.closedPage)
        return;
    // Keep the row open while any queued transaction still wants it.
    for (const Transaction &trans : readQ_) {
        if (trans.coord.rank == coord.rank &&
            trans.coord.bank == coord.bank &&
            trans.coord.row == coord.row) {
            return;
        }
    }
    for (const Transaction &trans : writeQ_) {
        if (trans.coord.rank == coord.rank &&
            trans.coord.bank == coord.bank &&
            trans.coord.row == coord.row) {
            return;
        }
    }
    // CAS-with-auto-precharge: the bank closes once its restore
    // window (already folded into readyPre by applyRead/applyWrite)
    // elapses; model it as an immediate close whose next activate
    // honors that window plus tRP.
    const std::uint32_t bi = bankIdx(coord.rank, coord.bank);
    banks_.open[bi] = 0;
    banks_.readyAct[bi] =
        std::max(banks_.readyAct[bi], banks_.readyPre[bi] + cfg_.t.tRP);
    ++stats_.autoPrecharges;
    if (observer_)
        observer_->onAutoPrecharge(id_, coord, now);
}

void
DramChannel::issue(const SchedCandidate &cand, DramCycle now)
{
    const DramTiming &t = cfg_.t;
    auto &queue = cand.isWrite ? writeQ_ : readQ_;
    const std::uint32_t bi = bankIdx(cand.coord.rank, cand.coord.bank);

    lastProgress_ = now;
    if (observer_)
        observer_->onCommand(id_, cand.cmd, cand.coord, now);

    switch (cand.cmd) {
      case DramCmd::Act: {
        ranks_[cand.coord.rank].recordAct(now);
        banks_.open[bi] = 1;
        banks_.row[bi] = cand.coord.row;
        banks_.readyRead[bi] = std::max(banks_.readyRead[bi], now + t.tRCD);
        banks_.readyWrite[bi] =
            std::max(banks_.readyWrite[bi], now + t.tRCD);
        banks_.readyPre[bi] = std::max(banks_.readyPre[bi], now + t.tRAS);
        banks_.readyAct[bi] = std::max(banks_.readyAct[bi], now + t.tRC);
        const std::uint32_t base = bankIdx(cand.coord.rank, 0);
        for (std::uint32_t i = 0; i < cfg_.banksPerRank; ++i) {
            if (i != cand.coord.bank) {
                banks_.readyAct[base + i] =
                    std::max(banks_.readyAct[base + i], now + t.tRRD);
            }
        }
        ++stats_.activates;
        ++stats_.rowMisses;
        break;
      }

      case DramCmd::Read: {
        applyRead(cand.coord, now);
        ++stats_.reads;
        ++stats_.rowHits;
        Transaction trans = std::move(queue[cand.queueIndex]);
        queue.erase(queue.begin() + cand.queueIndex);
        completions_.push(Completion{now + t.tCL + t.dataCycles(),
                                     completionOrder_++,
                                     std::move(trans.req),
                                     trans.arrival});
        maybeAutoPrecharge(cand.coord, now);
        break;
      }

      case DramCmd::Write: {
        applyWrite(cand.coord, now);
        ++stats_.writes;
        ++stats_.rowHits;
        Transaction trans = std::move(queue[cand.queueIndex]);
        queue.erase(queue.begin() + cand.queueIndex);
        completions_.push(Completion{now + t.tWL + t.dataCycles(),
                                     completionOrder_++,
                                     std::move(trans.req),
                                     trans.arrival});
        maybeAutoPrecharge(cand.coord, now);
        break;
      }

      case DramCmd::Pre:
        banks_.open[bi] = 0;
        banks_.readyAct[bi] = std::max(banks_.readyAct[bi], now + t.tRP);
        ++stats_.precharges;
        ++stats_.rowConflicts;
        break;

      case DramCmd::Ref:
        panic("refresh is issued by the refresh engine, not pick()");
    }

    sched_.onIssue(id_, cand, now);
}

void
DramChannel::tick(DramCycle now)
{
    lastTick_ = now;
    popCompletions(now);

    stats_.readQueueOcc.sample(static_cast<double>(readQ_.size()));
    std::uint32_t crit = 0;
    for (const auto &trans : readQ_)
        crit += trans.req.crit > 0 ? 1 : 0;
    stats_.critInQueue.sample(static_cast<double>(crit));

    if (refreshTick(now))
        return;

    if (readQ_.empty() && writeQ_.empty()) {
        // No queued work: idling is progress, not a stall.
        lastProgress_ = now;
        return;
    }

    buildCandidates(now);
    if (cands_.empty()) {
        ++stats_.idleNoCandidate;
        checkWatchdog(now);
        return;
    }

    const int choice =
        sched_.pick(id_, cands_, now);
    if (choice < 0) {
        checkWatchdog(now);
        return;
    }
    if (static_cast<std::size_t>(choice) >= cands_.size())
        panic("scheduler '", sched_.name(), "' picked candidate ",
              choice, " of ", cands_.size());
    issue(cands_[choice], now);
}

DramCycle
DramChannel::nextEventCycle(DramCycle now) const
{
    if (injector_)
        return now + 1; // faults are probed every cycle: never skip

    DramCycle next = kNoCycle;
    if (!completions_.empty())
        next = std::min(next, completions_.top().at);

    // Refresh engine events: a rank crossing its tREFI deadline, a
    // pending refresh becoming able to PRE an open bank, or REF
    // becoming legal once every bank's activate window has drained.
    for (std::uint32_t r = 0; r < cfg_.ranksPerChannel; ++r) {
        const RankState &rank = ranks_[r];
        if (!rank.refreshPending) {
            next = std::min(next, rank.refreshDue);
            continue;
        }
        bool allClosed = true;
        DramCycle readyRef = 0;
        DramCycle preAt = kNoCycle;
        const std::uint32_t base = bankIdx(r, 0);
        for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b) {
            if (banks_.open[base + b]) {
                allClosed = false;
                preAt = std::min(preAt, banks_.readyPre[base + b]);
            } else {
                readyRef = std::max(readyRef, banks_.readyAct[base + b]);
            }
        }
        next = std::min(next, allClosed ? readyRef : preAt);
    }

    if (!readQ_.empty() || !writeQ_.empty()) {
        // The watchdog only fires while queued work exists; stop the
        // skip at its threshold so onStall() triggers on schedule.
        if (cfg_.watchdogCycles != 0 && observer_)
            next = std::min(next, lastProgress_ + cfg_.watchdogCycles);

        // Earliest cycle any queued transaction becomes issuable,
        // using the same txnReady() formula buildCandidates() admits
        // with. Transactions on refresh-pending ranks resurface via
        // the refresh events above.
        auto scan = [&](const std::vector<Transaction> &queue,
                        bool isWrite) {
            for (const Transaction &trans : queue) {
                if (ranks_[trans.coord.rank].refreshPending)
                    continue;
                next = std::min(
                    next, txnReady(trans.coord, isWrite, 0).at);
            }
        };
        scan(readQ_, false);
        if (writesEligible())
            scan(writeQ_, true);
    }

    if (next == kNoCycle)
        return kNoCycle;
    return std::max(next, now + 1);
}

void
DramChannel::skipTo(DramCycle to)
{
    const std::uint64_t n = to - lastTick_;
    if (n == 0)
        return;
    lastTick_ = to;

    // Replay tick()'s per-cycle idle accounting for the n skipped
    // cycles: queue contents are frozen inside a certified window, so
    // every skipped cycle samples the same occupancy values.
    stats_.readQueueOcc.sampleN(static_cast<double>(readQ_.size()), n);
    std::uint32_t crit = 0;
    for (const auto &trans : readQ_)
        crit += trans.req.crit > 0 ? 1 : 0;
    stats_.critInQueue.sampleN(static_cast<double>(crit), n);

    if (readQ_.empty() && writeQ_.empty()) {
        // No queued work: idling is progress, not a stall.
        lastProgress_ = to;
    } else {
        // Queued work but (certified) nothing issuable all window.
        stats_.idleNoCandidate += n;
    }
}

void
DramChannel::checkWatchdog(DramCycle now)
{
    if (cfg_.watchdogCycles == 0 || !observer_)
        return;
    if (now - lastProgress_ >= cfg_.watchdogCycles)
        observer_->onStall(*this, now);
}

ChannelSnapshot
DramChannel::snapshot(DramCycle now) const
{
    ChannelSnapshot snap;
    snap.channel = id_;
    snap.now = now;
    snap.scheduler = sched_.name();
    snap.completionsPending = completions_.size();
    snap.busFreeAt = busFreeAt_;
    snap.draining = draining_;

    auto capture = [](const std::vector<Transaction> &queue) {
        std::vector<ChannelSnapshot::QueueEntry> out;
        out.reserve(queue.size());
        for (const Transaction &trans : queue) {
            ChannelSnapshot::QueueEntry e;
            e.addr = trans.req.addr;
            e.type = trans.req.type;
            e.core = trans.req.core;
            e.crit = trans.req.crit;
            e.arrival = trans.arrival;
            e.id = trans.req.id;
            e.coord = trans.coord;
            out.push_back(e);
        }
        return out;
    };
    snap.readQ = capture(readQ_);
    snap.writeQ = capture(writeQ_);

    snap.banks.reserve(banks_.size());
    for (std::size_t i = 0; i < banks_.size(); ++i) {
        ChannelSnapshot::Bank bank;
        bank.open = banks_.open[i] != 0;
        bank.row = banks_.row[i];
        bank.readyAct = banks_.readyAct[i];
        bank.readyRead = banks_.readyRead[i];
        bank.readyWrite = banks_.readyWrite[i];
        bank.readyPre = banks_.readyPre[i];
        snap.banks.push_back(bank);
    }
    snap.ranks.reserve(ranks_.size());
    for (const RankState &r : ranks_) {
        ChannelSnapshot::Rank rank;
        rank.refreshDue = r.refreshDue;
        rank.refreshPending = r.refreshPending;
        snap.ranks.push_back(rank);
    }
    return snap;
}

} // namespace critmem

#include "dram/channel.hh"

#include <algorithm>

#include "sim/log.hh"

namespace critmem
{

DramChannel::Stats::Stats(stats::Group &parent, std::uint32_t id)
    : group("channel" + std::to_string(id), &parent),
      activates(group, "activates", "ACT commands issued"),
      reads(group, "reads", "column read commands issued"),
      writes(group, "writes", "column write commands issued"),
      precharges(group, "precharges", "PRE commands issued"),
      refreshes(group, "refreshes", "REF commands issued"),
      rowHits(group, "rowHits", "CAS commands that hit an open row"),
      rowMisses(group, "rowMisses", "ACTs issued to closed banks"),
      rowConflicts(group, "rowConflicts",
                   "PREs closing a row another request had open"),
      busyDataCycles(group, "busyDataCycles",
                     "DRAM cycles the data bus carried a burst"),
      idleNoCandidate(group, "idleNoCandidate",
                      "cycles queue was nonempty but nothing issuable"),
      enqueueRejects(group, "enqueueRejects",
                     "transactions rejected because a queue was full"),
      autoPrecharges(group, "autoPrecharges",
                     "closed-page auto-precharges after CAS"),
      readLatency(group, "readLatency",
                  "read queueing+service latency, DRAM cycles"),
      readQueueOcc(group, "readQueueOcc",
                   "read transaction queue occupancy"),
      critInQueue(group, "critInQueue",
                  "critical reads resident in the queue")
{
}

DramChannel::DramChannel(const DramConfig &cfg, std::uint32_t id,
                         Scheduler &sched, stats::Group &parent)
    : cfg_(cfg), id_(id), sched_(sched),
      banks_(cfg.ranksPerChannel * cfg.banksPerRank),
      ranks_(cfg.ranksPerChannel),
      stats_(parent, id)
{
    // Stagger refresh deadlines so the ranks don't refresh in
    // lock-step and stall the whole channel at once.
    for (std::uint32_t r = 0; r < cfg_.ranksPerChannel; ++r) {
        ranks_[r].refreshDue =
            static_cast<DramCycle>(cfg_.t.tREFI) * (r + 1) /
            cfg_.ranksPerChannel;
    }
}

bool
DramChannel::enqueue(MemRequest req, const DramCoord &coord,
                     DramCycle now)
{
    auto &queue = req.type == ReqType::Write ? writeQ_ : readQ_;
    const std::size_t used = cfg_.unifiedQueue
        ? readQ_.size() + writeQ_.size()
        : queue.size();
    if (used >= cfg_.queueEntries) {
        ++stats_.enqueueRejects;
        if (observer_)
            observer_->onReject(id_, req, now);
        return false;
    }
    sched_.onEnqueue(id_, req, coord, now);
    if (observer_)
        observer_->onEnqueue(id_, req, coord, now);
    queue.push_back(Transaction{std::move(req), coord, now});
    return true;
}

bool
DramChannel::promote(Addr addr, CoreId core, CritLevel crit)
{
    for (auto &trans : readQ_) {
        if (trans.req.addr == addr && trans.req.core == core &&
            trans.req.type == ReqType::Read) {
            const CritLevel previous = trans.req.crit;
            CritLevel applied = std::max(previous, crit);
            if (injector_ && injector_->corruptPromotion(lastTick_))
                applied = 0;
            trans.req.crit = applied;
            if (observer_) {
                observer_->onPromote(id_, addr, core, previous, crit,
                                     applied, lastTick_);
            }
            return true;
        }
    }
    return false;
}

DramCycle
DramChannel::dataBusFreeFor(std::uint32_t rank) const
{
    if (busFreeAt_ == 0)
        return 0;
    return busFreeAt_ + (rank != lastBusRank_ ? cfg_.t.tRTRS : 0);
}

void
DramChannel::popCompletions(DramCycle now)
{
    while (!completions_.empty() && completions_.top().at <= now) {
        // top() only exposes const access; the heap entry is dead after
        // pop, so moving the request out is safe.
        auto &entry = const_cast<Completion &>(completions_.top());
        MemRequest req = std::move(entry.req);
        const DramCycle arrival = entry.arrival;
        const DramCycle at = entry.at;
        completions_.pop();
        if (injector_ && injector_->dropCompletion(req, now))
            continue; // fault: the data burst vanishes untraced
        lastProgress_ = now;
        if (req.type != ReqType::Write)
            stats_.readLatency.sample(at - arrival);
        sched_.onComplete(id_, req, now);
        if (observer_)
            observer_->onComplete(id_, req, now);
        if (req.onComplete)
            req.onComplete(req);
    }
}

bool
DramChannel::refreshTick(DramCycle now)
{
    for (std::uint32_t r = 0; r < cfg_.ranksPerChannel; ++r) {
        RankState &rank = ranks_[r];
        if (!rank.refreshPending) {
            if (now >= rank.refreshDue) {
                if (injector_ && injector_->skipRefresh(r, now)) {
                    // Fault: the due refresh silently never happens.
                    rank.refreshDue += cfg_.t.tREFI;
                    continue;
                }
                rank.refreshPending = true;
            } else {
                continue;
            }
        }
        // Close any open bank as soon as its precharge is legal.
        bool allClosed = true;
        DramCycle readyRef = 0;
        for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b) {
            BankState &bank = this->bank(r, b);
            if (bank.open) {
                allClosed = false;
                if (now >= bank.readyPre) {
                    if (observer_) {
                        DramCoord coord;
                        coord.channel = id_;
                        coord.rank = r;
                        coord.bank = b;
                        coord.row = bank.row;
                        observer_->onCommand(id_, DramCmd::Pre, coord,
                                             now);
                    }
                    bank.open = false;
                    bank.readyAct =
                        std::max(bank.readyAct, now + cfg_.t.tRP);
                    ++stats_.precharges;
                    lastProgress_ = now;
                    return true; // consumed the command bus
                }
            } else {
                readyRef = std::max(readyRef, bank.readyAct);
            }
        }
        if (allClosed && now >= readyRef) {
            for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b)
                bank(r, b).readyAct = now + cfg_.t.tRFC;
            rank.refreshPending = false;
            rank.refreshDue += cfg_.t.tREFI;
            ++stats_.refreshes;
            lastProgress_ = now;
            if (observer_) {
                DramCoord coord;
                coord.channel = id_;
                coord.rank = r;
                observer_->onCommand(id_, DramCmd::Ref, coord, now);
            }
            return true;
        }
        // A pending refresh that cannot act yet does not consume the
        // bus; other ranks may still be scheduled.
    }
    return false;
}

void
DramChannel::buildCandidates(DramCycle now)
{
    cands_.clear();

    bool writesEligible = true;
    if (!cfg_.unifiedQueue) {
        // Split-queue mode: drain writes under a high/low watermark
        // or opportunistically when no read is pending.
        const std::uint32_t hi = cfg_.queueEntries * 3 / 4;
        const std::uint32_t lo = cfg_.queueEntries / 4;
        if (!draining_ && writeQ_.size() >= hi)
            draining_ = true;
        else if (draining_ && writeQ_.size() <= lo)
            draining_ = false;
        writesEligible =
            draining_ || (readQ_.empty() && !writeQ_.empty());
    }

    // EarlyCas fault: pretend CAS timing windows open `slack` cycles
    // sooner than they really do. issue() applies honest timings, so
    // the shadow checker sees a genuinely premature command.
    const std::uint32_t slack = injector_ ? injector_->casSlack(now) : 0;

    auto consider = [&](const std::vector<Transaction> &queue,
                        bool isWrite) {
        for (std::uint32_t i = 0; i < queue.size(); ++i) {
            const Transaction &trans = queue[i];
            const DramCoord &c = trans.coord;
            if (ranks_[c.rank].refreshPending)
                continue;
            if (injector_ && injector_->starveCore(trans.req.core))
                continue; // fault: scheduler never sees this core
            const BankState &bank =
                banks_[c.rank * cfg_.banksPerRank + c.bank];

            SchedCandidate cand;
            cand.queueIndex = i;
            cand.coord = c;
            cand.isWrite = isWrite;
            cand.isPrefetch = trans.req.type == ReqType::Prefetch;
            cand.core = trans.req.core;
            cand.crit = trans.req.crit;
            cand.arrival = trans.arrival;
            cand.seq = trans.req.id;

            if (!bank.open) {
                if (now < bank.readyAct ||
                    !ranks_[c.rank].fawOk(now, cfg_.t.tFAW))
                    continue;
                cand.cmd = DramCmd::Act;
            } else if (bank.row == c.row) {
                if (isWrite) {
                    if (now + slack < bank.readyWrite ||
                        now + cfg_.t.tWL + slack < dataBusFreeFor(c.rank))
                        continue;
                    cand.cmd = DramCmd::Write;
                } else {
                    if (now + slack < bank.readyRead ||
                        now + cfg_.t.tCL + slack < dataBusFreeFor(c.rank))
                        continue;
                    cand.cmd = DramCmd::Read;
                }
                cand.rowHit = true;
            } else {
                if (now < bank.readyPre)
                    continue;
                cand.cmd = DramCmd::Pre;
            }
            cands_.push_back(cand);
        }
    };

    consider(readQ_, false);
    if (writesEligible)
        consider(writeQ_, true);
}

void
DramChannel::applyRead(const DramCoord &c, DramCycle now)
{
    const DramTiming &t = cfg_.t;
    BankState &b = bank(c.rank, c.bank);
    const DramCycle burstEnd = now + t.tCL + t.dataCycles();

    b.readyPre = std::max(b.readyPre, now + t.tRTP);
    for (std::uint32_t i = 0; i < cfg_.banksPerRank; ++i) {
        BankState &other = bank(c.rank, i);
        other.readyRead = std::max(other.readyRead, now + t.tCCD);
        // Read-to-write turnaround: the write burst must start after
        // the read burst clears the bus plus a rank switch gap.
        const DramCycle wrCmd = burstEnd + t.tRTRS - t.tWL;
        other.readyWrite = std::max(other.readyWrite, wrCmd);
    }
    busFreeAt_ = burstEnd;
    lastBusRank_ = c.rank;
    stats_.busyDataCycles += t.dataCycles();
}

void
DramChannel::applyWrite(const DramCoord &c, DramCycle now)
{
    const DramTiming &t = cfg_.t;
    const DramCycle burstEnd = now + t.tWL + t.dataCycles();

    BankState &b = bank(c.rank, c.bank);
    b.readyPre = std::max(b.readyPre, burstEnd + t.tWR);
    for (std::uint32_t i = 0; i < cfg_.banksPerRank; ++i) {
        BankState &other = bank(c.rank, i);
        other.readyWrite = std::max(other.readyWrite, now + t.tCCD);
        other.readyRead = std::max(other.readyRead, burstEnd + t.tWTR);
    }
    busFreeAt_ = burstEnd;
    lastBusRank_ = c.rank;
    stats_.busyDataCycles += t.dataCycles();
}

void
DramChannel::maybeAutoPrecharge(const DramCoord &coord, DramCycle now)
{
    if (!cfg_.closedPage)
        return;
    // Keep the row open while any queued transaction still wants it.
    for (const Transaction &trans : readQ_) {
        if (trans.coord.rank == coord.rank &&
            trans.coord.bank == coord.bank &&
            trans.coord.row == coord.row) {
            return;
        }
    }
    for (const Transaction &trans : writeQ_) {
        if (trans.coord.rank == coord.rank &&
            trans.coord.bank == coord.bank &&
            trans.coord.row == coord.row) {
            return;
        }
    }
    // CAS-with-auto-precharge: the bank closes once its restore
    // window (already folded into readyPre by applyRead/applyWrite)
    // elapses; model it as an immediate close whose next activate
    // honors that window plus tRP.
    BankState &bank = this->bank(coord.rank, coord.bank);
    bank.open = false;
    bank.readyAct = std::max(bank.readyAct, bank.readyPre + cfg_.t.tRP);
    ++stats_.autoPrecharges;
    if (observer_)
        observer_->onAutoPrecharge(id_, coord, now);
}

void
DramChannel::issue(const SchedCandidate &cand, DramCycle now)
{
    const DramTiming &t = cfg_.t;
    auto &queue = cand.isWrite ? writeQ_ : readQ_;
    BankState &b = bank(cand.coord.rank, cand.coord.bank);

    lastProgress_ = now;
    if (observer_)
        observer_->onCommand(id_, cand.cmd, cand.coord, now);

    switch (cand.cmd) {
      case DramCmd::Act:
        ranks_[cand.coord.rank].recordAct(now);
        b.open = true;
        b.row = cand.coord.row;
        b.readyRead = std::max(b.readyRead, now + t.tRCD);
        b.readyWrite = std::max(b.readyWrite, now + t.tRCD);
        b.readyPre = std::max(b.readyPre, now + t.tRAS);
        b.readyAct = std::max(b.readyAct, now + t.tRC);
        for (std::uint32_t i = 0; i < cfg_.banksPerRank; ++i) {
            if (i != cand.coord.bank) {
                BankState &other = bank(cand.coord.rank, i);
                other.readyAct =
                    std::max(other.readyAct, now + t.tRRD);
            }
        }
        ++stats_.activates;
        ++stats_.rowMisses;
        break;

      case DramCmd::Read: {
        applyRead(cand.coord, now);
        ++stats_.reads;
        ++stats_.rowHits;
        Transaction trans = std::move(queue[cand.queueIndex]);
        queue.erase(queue.begin() + cand.queueIndex);
        completions_.push(Completion{now + t.tCL + t.dataCycles(),
                                     completionOrder_++,
                                     std::move(trans.req),
                                     trans.arrival});
        maybeAutoPrecharge(cand.coord, now);
        break;
      }

      case DramCmd::Write: {
        applyWrite(cand.coord, now);
        ++stats_.writes;
        ++stats_.rowHits;
        Transaction trans = std::move(queue[cand.queueIndex]);
        queue.erase(queue.begin() + cand.queueIndex);
        completions_.push(Completion{now + t.tWL + t.dataCycles(),
                                     completionOrder_++,
                                     std::move(trans.req),
                                     trans.arrival});
        maybeAutoPrecharge(cand.coord, now);
        break;
      }

      case DramCmd::Pre:
        b.open = false;
        b.readyAct = std::max(b.readyAct, now + t.tRP);
        ++stats_.precharges;
        ++stats_.rowConflicts;
        break;

      case DramCmd::Ref:
        panic("refresh is issued by the refresh engine, not pick()");
    }

    sched_.onIssue(id_, cand, now);
}

void
DramChannel::tick(DramCycle now)
{
    lastTick_ = now;
    popCompletions(now);

    stats_.readQueueOcc.sample(static_cast<double>(readQ_.size()));
    std::uint32_t crit = 0;
    for (const auto &trans : readQ_)
        crit += trans.req.crit > 0 ? 1 : 0;
    stats_.critInQueue.sample(static_cast<double>(crit));

    if (refreshTick(now))
        return;

    if (readQ_.empty() && writeQ_.empty()) {
        // No queued work: idling is progress, not a stall.
        lastProgress_ = now;
        return;
    }

    buildCandidates(now);
    if (cands_.empty()) {
        ++stats_.idleNoCandidate;
        checkWatchdog(now);
        return;
    }

    const int choice =
        sched_.pick(id_, cands_, now);
    if (choice < 0) {
        checkWatchdog(now);
        return;
    }
    if (static_cast<std::size_t>(choice) >= cands_.size())
        panic("scheduler '", sched_.name(), "' picked candidate ",
              choice, " of ", cands_.size());
    issue(cands_[choice], now);
}

void
DramChannel::checkWatchdog(DramCycle now)
{
    if (cfg_.watchdogCycles == 0 || !observer_)
        return;
    if (now - lastProgress_ >= cfg_.watchdogCycles)
        observer_->onStall(*this, now);
}

ChannelSnapshot
DramChannel::snapshot(DramCycle now) const
{
    ChannelSnapshot snap;
    snap.channel = id_;
    snap.now = now;
    snap.scheduler = sched_.name();
    snap.completionsPending = completions_.size();
    snap.busFreeAt = busFreeAt_;
    snap.draining = draining_;

    auto capture = [](const std::vector<Transaction> &queue) {
        std::vector<ChannelSnapshot::QueueEntry> out;
        out.reserve(queue.size());
        for (const Transaction &trans : queue) {
            ChannelSnapshot::QueueEntry e;
            e.addr = trans.req.addr;
            e.type = trans.req.type;
            e.core = trans.req.core;
            e.crit = trans.req.crit;
            e.arrival = trans.arrival;
            e.id = trans.req.id;
            e.coord = trans.coord;
            out.push_back(e);
        }
        return out;
    };
    snap.readQ = capture(readQ_);
    snap.writeQ = capture(writeQ_);

    snap.banks.reserve(banks_.size());
    for (const BankState &b : banks_) {
        ChannelSnapshot::Bank bank;
        bank.open = b.open;
        bank.row = b.row;
        bank.readyAct = b.readyAct;
        bank.readyRead = b.readyRead;
        bank.readyWrite = b.readyWrite;
        bank.readyPre = b.readyPre;
        snap.banks.push_back(bank);
    }
    snap.ranks.reserve(ranks_.size());
    for (const RankState &r : ranks_) {
        ChannelSnapshot::Rank rank;
        rank.refreshDue = r.refreshDue;
        rank.refreshPending = r.refreshPending;
        snap.ranks.push_back(rank);
    }
    return snap;
}

} // namespace critmem

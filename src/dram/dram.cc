#include "dram/dram.hh"

#include <algorithm>

namespace critmem
{

DramSystem::DramSystem(const DramConfig &cfg, Scheduler &sched,
                       stats::Group &parent)
    : cfg_(cfg), map_(cfg), group_("dram", &parent), sched_(sched)
{
    channels_.reserve(cfg_.channels);
    for (std::uint32_t i = 0; i < cfg_.channels; ++i) {
        channels_.push_back(
            std::make_unique<DramChannel>(cfg_, i, sched, group_));
    }
}

bool
DramSystem::enqueue(MemRequest req)
{
    const DramCoord coord = map_.decode(req.addr);
    req.id = nextId_++;
    return channels_[coord.channel]->enqueue(std::move(req), coord,
                                             lastNow_ + 1);
}

void
DramSystem::tick(DramCycle now)
{
    lastNow_ = now;
    sched_.tick(now);
    for (auto &channel : channels_)
        channel->tick(now);
}

DramCycle
DramSystem::nextEventCycle(DramCycle now) const
{
    DramCycle next = sched_.nextEventCycle(now);
    for (const auto &channel : channels_)
        next = std::min(next, channel->nextEventCycle(now));
    return next;
}

void
DramSystem::skipTo(DramCycle to)
{
    lastNow_ = to;
    for (auto &channel : channels_)
        channel->skipTo(to);
}

bool
DramSystem::promote(Addr addr, CoreId core, CritLevel crit)
{
    const DramCoord coord = map_.decode(addr);
    return channels_[coord.channel]->promote(addr, core, crit);
}

bool
DramSystem::idle() const
{
    for (const auto &channel : channels_) {
        if (!channel->idle())
            return false;
    }
    return true;
}

std::uint32_t
DramSystem::pendingReads() const
{
    std::uint32_t total = 0;
    for (const auto &channel : channels_)
        total += channel->readQueueSize();
    return total;
}

void
DramSystem::setObserver(ChannelObserver *observer)
{
    for (auto &channel : channels_)
        channel->setObserver(observer);
}

void
DramSystem::setFaultInjector(FaultInjector *injector)
{
    for (auto &channel : channels_)
        channel->setFaultInjector(injector);
}

} // namespace critmem

#include "dram/address_map.hh"

#include <bit>

#include "sim/log.hh"

namespace critmem
{

namespace
{

std::uint32_t
log2Exact(std::uint32_t v, const char *what)
{
    if (v == 0 || !std::has_single_bit(v))
        fatal("DRAM ", what, " must be a nonzero power of two, got ", v);
    return static_cast<std::uint32_t>(std::bit_width(v) - 1);
}

} // namespace

AddressMap::AddressMap(const DramConfig &cfg)
    : kind_(cfg.mapKind), rowBytes_(cfg.rowBytes),
      rowShift_(log2Exact(cfg.rowBytes, "row size")),
      blockShift_(6), // 64 B cache blocks
      channelBits_(log2Exact(cfg.channels, "channel count")),
      bankBits_(log2Exact(cfg.banksPerRank, "bank count")),
      rankBits_(log2Exact(cfg.ranksPerChannel, "rank count"))
{
}

DramCoord
AddressMap::decode(Addr addr) const
{
    DramCoord coord;
    if (kind_ == AddressMapKind::PageInterleave) {
        std::uint32_t shift = rowShift_;
        coord.channel = static_cast<std::uint32_t>(addr >> shift) &
            ((1u << channelBits_) - 1);
        shift += channelBits_;
        coord.bank = static_cast<std::uint32_t>(addr >> shift) &
            ((1u << bankBits_) - 1);
        shift += bankBits_;
        coord.rank = static_cast<std::uint32_t>(addr >> shift) &
            ((1u << rankBits_) - 1);
        shift += rankBits_;
        coord.row = addr >> shift;
        return coord;
    }
    // Block interleave: channel from the block number, the row's
    // column bits above it, then bank/rank/row.
    std::uint32_t shift = blockShift_;
    coord.channel = static_cast<std::uint32_t>(addr >> shift) &
        ((1u << channelBits_) - 1);
    shift += channelBits_;
    shift += rowShift_ - blockShift_; // column within the row
    coord.bank = static_cast<std::uint32_t>(addr >> shift) &
        ((1u << bankBits_) - 1);
    shift += bankBits_;
    coord.rank = static_cast<std::uint32_t>(addr >> shift) &
        ((1u << rankBits_) - 1);
    shift += rankBits_;
    coord.row = addr >> shift;
    return coord;
}

} // namespace critmem

/**
 * @file
 * L2 stream prefetcher (Section 5.5), modeled on the stream engine of
 * Srinath et al. [26]: a table of streams, each tracking the last
 * demand block, a direction, and a confidence counter; confirmed
 * streams issue `degree` prefetches `distance` blocks ahead of the
 * demand stream.
 */

#ifndef CRITMEM_MEM_PREFETCHER_HH
#define CRITMEM_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace critmem
{

/** Stream prefetcher operating in units of L2 blocks. */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(const PrefetchConfig &cfg, std::uint32_t blockBytes,
                     stats::Group &parent);

    /**
     * Train on a demand L2 miss and append the block addresses to
     * prefetch (at most the feedback-throttled degree) to @p out.
     */
    void onDemandMiss(Addr blockAddr, std::vector<Addr> &out);

    /**
     * Feedback (Srinath et al. [26]): a demand hit consumed a
     * prefetched line. Accuracy over an epoch throttles the degree.
     */
    void onUseful() { ++usefulInEpoch_; }

    /** Statistics. */
    struct Stats
    {
        explicit Stats(stats::Group &parent);

        stats::Group group;
        stats::Scalar issued;
        stats::Scalar streamsAllocated;
        stats::Scalar streamsConfirmed;
        stats::Scalar throttleEpochs;
    };

    const Stats &prefStats() const { return stats_; }

  private:
    struct Stream
    {
        bool valid = false;
        bool confirmed = false;
        std::int64_t lastBlock = 0;
        std::int64_t nextPrefetch = 0;
        int direction = 0;
        std::uint32_t confidence = 0;
        std::uint64_t lastUse = 0;
    };

    /** Recompute the throttled degree at epoch boundaries. */
    void updateThrottle();

    PrefetchConfig cfg_;
    std::uint32_t blockShift_;
    std::uint32_t degree_;
    std::uint64_t issuedInEpoch_ = 0;
    std::uint64_t usefulInEpoch_ = 0;
    std::uint64_t useCounter_ = 0;
    std::vector<Stream> streams_;
    Stats stats_;
};

} // namespace critmem

#endif // CRITMEM_MEM_PREFETCHER_HH

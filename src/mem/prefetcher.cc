#include "mem/prefetcher.hh"

#include <bit>
#include <cstdlib>

namespace critmem
{

StreamPrefetcher::Stats::Stats(stats::Group &parent)
    : group("prefetcher", &parent),
      issued(group, "issued", "prefetch requests issued"),
      streamsAllocated(group, "streamsAllocated",
                       "stream table allocations"),
      streamsConfirmed(group, "streamsConfirmed",
                       "streams that reached confirmation"),
      throttleEpochs(group, "throttleEpochs",
                     "feedback epochs that reduced the degree")
{
}

StreamPrefetcher::StreamPrefetcher(const PrefetchConfig &cfg,
                                   std::uint32_t blockBytes,
                                   stats::Group &parent)
    : cfg_(cfg),
      blockShift_(static_cast<std::uint32_t>(
          std::bit_width(blockBytes) - 1)),
      degree_(cfg.degree), streams_(cfg.streams), stats_(parent)
{
}

void
StreamPrefetcher::updateThrottle()
{
    constexpr std::uint64_t kEpoch = 256;
    if (issuedInEpoch_ < kEpoch)
        return;
    const double accuracy = static_cast<double>(usefulInEpoch_) /
        static_cast<double>(issuedInEpoch_);
    std::uint32_t next = cfg_.degree;
    if (accuracy < 0.20)
        next = 1;
    else if (accuracy < 0.40)
        next = std::max(1u, cfg_.degree / 2);
    if (next < degree_)
        ++stats_.throttleEpochs;
    degree_ = next;
    issuedInEpoch_ = 0;
    usefulInEpoch_ = 0;
}

void
StreamPrefetcher::onDemandMiss(Addr blockAddr, std::vector<Addr> &out)
{
    const auto block =
        static_cast<std::int64_t>(blockAddr >> blockShift_);

    // Find the stream this miss extends (within a small match window).
    constexpr std::int64_t kWindow = 16;
    Stream *match = nullptr;
    for (auto &stream : streams_) {
        if (stream.valid &&
            std::abs(block - stream.lastBlock) <= kWindow) {
            match = &stream;
            break;
        }
    }

    if (!match) {
        // Allocate the LRU entry as a fresh, unconfirmed stream.
        Stream *lru = &streams_[0];
        for (auto &stream : streams_) {
            if (!stream.valid) {
                lru = &stream;
                break;
            }
            if (stream.lastUse < lru->lastUse)
                lru = &stream;
        }
        *lru = Stream{};
        lru->valid = true;
        lru->lastBlock = block;
        lru->lastUse = ++useCounter_;
        ++stats_.streamsAllocated;
        return;
    }

    const int dir = block > match->lastBlock
        ? 1
        : (block < match->lastBlock ? -1 : match->direction);
    if (dir != 0 && dir == match->direction) {
        ++match->confidence;
    } else if (dir != 0) {
        match->direction = dir;
        match->confidence = 1;
        match->confirmed = false;
    }
    match->lastBlock = block;
    match->lastUse = ++useCounter_;

    if (!match->confirmed && match->confidence >= 2) {
        match->confirmed = true;
        match->nextPrefetch =
            block + static_cast<std::int64_t>(match->direction) *
                cfg_.distance;
        ++stats_.streamsConfirmed;
    }
    if (!match->confirmed)
        return;

    // Keep the prefetch pointer within [distance, distance + window]
    // blocks of the demand stream.
    const std::int64_t lead =
        (match->nextPrefetch - block) * match->direction;
    if (lead < static_cast<std::int64_t>(cfg_.distance)) {
        match->nextPrefetch = block +
            static_cast<std::int64_t>(match->direction) * cfg_.distance;
    }
    updateThrottle();
    const std::int64_t maxLead =
        static_cast<std::int64_t>(cfg_.distance) + 4 * cfg_.degree;
    for (std::uint32_t i = 0; i < degree_; ++i) {
        const std::int64_t ahead =
            (match->nextPrefetch - block) * match->direction;
        if (ahead > maxLead || match->nextPrefetch < 0)
            break;
        out.push_back(static_cast<Addr>(match->nextPrefetch)
                      << blockShift_);
        match->nextPrefetch += match->direction;
        ++stats_.issued;
        ++issuedInEpoch_;
    }
}

} // namespace critmem

/**
 * @file
 * The full cache hierarchy: per-core iL1/dL1 with MSHRs, an inclusive
 * shared L2 with MSHRs, a MESI-style invalidation directory, the L2
 * stream prefetcher, and the connection to the DRAM subsystem.
 *
 * Timing model: a dL1 hit completes after the configured round-trip
 * latency. A dL1 miss reaches the L2 after the dL1 latency; an L2 hit
 * returns after the L2 round-trip latency; an L2 miss pays a quarter
 * of the L2 latency to the controller, the DRAM service time, and a
 * quarter of the L2 latency back. MSHR capacity and DRAM queue
 * capacity exert backpressure through retry lists.
 */

#ifndef CRITMEM_MEM_HIERARCHY_HH
#define CRITMEM_MEM_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "dram/dram.hh"
#include "mem/cache.hh"
#include "mem/prefetcher.hh"
#include "mem/request.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace critmem
{

/** Completion callback for a core-side access. */
using Done = std::function<void()>;

/** Caches + directory + prefetcher + DRAM connection. */
class MemHierarchy
{
  public:
    MemHierarchy(const SystemConfig &cfg, DramSystem &dram,
                 stats::Group &parent);

    /**
     * Issue a data load.
     * @param crit Criticality magnitude to piggyback on an L2 miss.
     * @return false when the dL1 MSHR file is full (retry next cycle).
     */
    bool load(CoreId core, Addr addr, CritLevel crit, Done done);

    /** Issue a committed store (write-allocate, write-back). */
    bool store(CoreId core, Addr addr, Done done);

    /** Issue an instruction fetch for the block holding @p pc. */
    bool fetch(CoreId core, Addr pc, Done done);

    /**
     * Pipelined-fetch fast path: probe the iL1 for @p pc's block,
     * touching LRU on a hit.
     * @return true on an iL1 hit (no stall needed).
     */
    bool fetchProbe(CoreId core, Addr pc);

    /** Advance one CPU cycle: fire due events, run retry lists. */
    void tick(Cycle now);

    /**
     * Earliest CPU cycle > @p now at which tick() would do anything:
     * the next scheduled event, or "next cycle" while any retry list
     * is non-empty (retries run every tick until they drain).
     * kNoCycle when fully quiescent. tick() has no per-cycle
     * accounting, so skipping cycles before this bound is free.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Advance the clock across a certified-idle skip window. */
    void skipTo(Cycle to) { now_ = to; }

    /**
     * Raise the criticality of an in-flight L2 miss (Section 5.1
     * naive forwarding). No effect if the block is no longer queued.
     */
    void promote(CoreId core, Addr addr, CritLevel crit);

    /** @return true when no access is in flight anywhere. */
    bool quiescent() const;

    Cycle now() const { return now_; }

    /** Aggregate statistics. */
    struct Stats
    {
        explicit Stats(stats::Group &parent);

        stats::Group group;
        stats::Scalar loads;
        stats::Scalar stores;
        stats::Scalar fetches;
        stats::Scalar l1MshrFull;
        stats::Scalar l2MshrFull;
        stats::Scalar dramRejects;
        stats::Scalar demandMisses;
        stats::Scalar coherenceTransfers;
        stats::Scalar prefetchUseful;
        stats::Average l2MissLatCrit;
        stats::Average l2MissLatNonCrit;
    };

    const Stats &memStats() const { return stats_; }

    Cache &dl1(CoreId core) { return *dl1_[core]; }
    Cache &l2() { return *l2_; }

  private:
    /** A miss outstanding at L1 level (one per core x block). */
    struct L1Entry
    {
        std::vector<Done> waiters;
        CritLevel crit = 0;
        bool rfo = false; ///< a store needs exclusive ownership
    };

    /** Key for per-core L1 MSHR maps: the L1-aligned block address. */
    using L1MshrMap = std::unordered_map<Addr, L1Entry>;

    /** Identifies one L1 MSHR entry waiting on an L2 fill. */
    struct L2Waiter
    {
        CoreId core = 0;
        Addr l1Block = 0;
        bool isInst = false;
        bool rfo = false;
    };

    /** A miss outstanding at L2 level (one per L2 block). */
    struct L2Entry
    {
        std::vector<L2Waiter> waiters;
        CritLevel crit = 0;
        bool demand = false;
        bool sentToDram = false;
        Cycle started = 0;
        CoreId firstCore = 0;
    };

    void schedule(Cycle at, std::function<void()> fn);
    void l2Access(CoreId core, Addr l1Block, bool isInst, bool rfo);
    void l2Fill(Addr l2Block);
    void deliverToL1(const L2Waiter &waiter);
    bool sendToDram(Addr l2Block, L2Entry &entry);
    void writebackToDram(Addr l2Block, CoreId core);
    void issuePrefetches(Addr l2Block);
    void evictFromL2(const Cache::Victim &victim);
    void invalidateSharers(Addr l1Block, CoreId except);
    /** @return core holding @p l1Block modified, or kNoCore. */
    CoreId modifiedOwner(Addr l1Block, CoreId except) const;

    struct Event
    {
        Cycle at;
        std::uint64_t order;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            return at != other.at ? at > other.at : order > other.order;
        }
    };

    SystemConfig cfg_;
    DramSystem &dram_;
    stats::Group group_;

    std::vector<std::unique_ptr<Cache>> il1_;
    std::vector<std::unique_ptr<Cache>> dl1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<StreamPrefetcher> prefetcher_;

    std::vector<L1MshrMap> iMshr_;
    std::vector<L1MshrMap> dMshr_;
    std::unordered_map<Addr, L2Entry> l2Mshr_;

    /** dL1-block address -> bitmask of cores with a copy. */
    std::unordered_map<Addr, std::uint32_t> directory_;

    /** (core, l1Block, isInst, rfo) waiting for an L2 MSHR slot. */
    std::vector<L2Waiter> l2MshrRetry_;
    /** L2 blocks whose DRAM enqueue was rejected. */
    std::vector<Addr> dramRetry_;
    /** Writebacks whose DRAM enqueue was rejected. */
    std::vector<MemRequest> writebackRetry_;

    /**
     * tick()'s drain loops swap the retry lists into these persistent
     * scratch buffers; reusing their capacity keeps the per-cycle
     * path free of heap allocation (the hot-path-alloc lint rule).
     */
    std::vector<L2Waiter> l2RetryScratch_;
    std::vector<Addr> dramRetryScratch_;
    std::vector<MemRequest> wbRetryScratch_;

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events_;
    std::uint64_t eventOrder_ = 0;
    Cycle now_ = 0;
    std::uint64_t inFlight_ = 0;
    std::vector<Addr> prefetchScratch_;

    Stats stats_;
};

} // namespace critmem

#endif // CRITMEM_MEM_HIERARCHY_HH

#include "mem/cache.hh"

#include <bit>

#include "sim/log.hh"

namespace critmem
{

Cache::Stats::Stats(stats::Group &parent, const std::string &name)
    : group(name, &parent),
      hits(group, "hits", "accesses that hit"),
      misses(group, "misses", "accesses that missed"),
      evictions(group, "evictions", "lines displaced by fills"),
      writebacks(group, "writebacks", "dirty lines displaced"),
      invalidations(group, "invalidations",
                    "lines dropped by coherence/inclusion")
{
}

Cache::Cache(const CacheConfig &cfg, const std::string &name,
             stats::Group &parent)
    : cfg_(cfg), numSets_(cfg.sets()),
      blockShift_(static_cast<std::uint32_t>(
          std::bit_width(cfg.blockBytes) - 1)),
      lines_(static_cast<std::size_t>(numSets_) * cfg.ways),
      stats_(parent, name)
{
    if (!std::has_single_bit(cfg.blockBytes))
        fatal("cache block size must be a power of two");
    if (numSets_ == 0 || !std::has_single_bit(numSets_))
        fatal("cache set count must be a nonzero power of two");
}

Cache::Line *
Cache::find(Addr addr)
{
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                         cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].state != LineState::Invalid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

LineState
Cache::probe(Addr addr) const
{
    const Line *line = find(addr);
    return line ? line->state : LineState::Invalid;
}

bool
Cache::access(Addr addr)
{
    Line *line = find(addr);
    if (line) {
        line->lastUse = ++useCounter_;
        ++stats_.hits;
        return true;
    }
    ++stats_.misses;
    return false;
}

void
Cache::setState(Addr addr, LineState state)
{
    if (Line *line = find(addr))
        line->state = state;
}

bool
Cache::wasPrefetched(Addr addr) const
{
    const Line *line = find(addr);
    return line && line->prefetched;
}

void
Cache::clearPrefetched(Addr addr)
{
    if (Line *line = find(addr))
        line->prefetched = false;
}

Cache::Victim
Cache::insert(Addr addr, LineState state, bool prefetched)
{
    Victim victim;
    Line *dest = find(addr);
    if (!dest) {
        Line *base = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                             cfg_.ways];
        dest = base;
        for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
            if (base[w].state == LineState::Invalid) {
                dest = &base[w];
                break;
            }
            if (dest->state != LineState::Invalid &&
                base[w].lastUse < dest->lastUse) {
                dest = &base[w];
            }
        }
        if (dest->state != LineState::Invalid) {
            victim.valid = true;
            victim.addr = dest->tag << blockShift_;
            victim.dirty = dest->state == LineState::Modified;
            victim.prefetched = dest->prefetched;
            ++stats_.evictions;
            if (victim.dirty)
                ++stats_.writebacks;
        }
    }
    dest->tag = tagOf(addr);
    dest->state = state;
    dest->lastUse = ++useCounter_;
    dest->prefetched = prefetched;
    return victim;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = find(addr)) {
        line->state = LineState::Invalid;
        ++stats_.invalidations;
    }
}

} // namespace critmem

#include "mem/hierarchy.hh"

#include <algorithm>

#include "sim/log.hh"

namespace critmem
{

MemHierarchy::Stats::Stats(stats::Group &parent)
    : group("mem", &parent),
      loads(group, "loads", "data loads issued to the hierarchy"),
      stores(group, "stores", "stores issued to the hierarchy"),
      fetches(group, "fetches", "instruction fetch accesses"),
      l1MshrFull(group, "l1MshrFull", "accesses rejected: L1 MSHR full"),
      l2MshrFull(group, "l2MshrFull", "misses delayed: L2 MSHR full"),
      dramRejects(group, "dramRejects",
                  "DRAM enqueue attempts rejected (queue full)"),
      demandMisses(group, "demandMisses", "demand L2 misses sent to DRAM"),
      coherenceTransfers(group, "coherenceTransfers",
                         "dirty cache-to-cache transfers"),
      prefetchUseful(group, "prefetchUseful",
                     "demand hits on prefetched L2 lines"),
      l2MissLatCrit(group, "l2MissLatCrit",
                    "L2 miss latency, critical loads (CPU cycles)"),
      l2MissLatNonCrit(group, "l2MissLatNonCrit",
                       "L2 miss latency, non-critical (CPU cycles)")
{
}

MemHierarchy::MemHierarchy(const SystemConfig &cfg, DramSystem &dram,
                           stats::Group &parent)
    : cfg_(cfg), dram_(dram), group_("hier", &parent),
      iMshr_(cfg.numCores), dMshr_(cfg.numCores), stats_(group_)
{
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        il1_.push_back(std::make_unique<Cache>(
            cfg.il1, "il1_" + std::to_string(c), group_));
        dl1_.push_back(std::make_unique<Cache>(
            cfg.dl1, "dl1_" + std::to_string(c), group_));
    }
    l2_ = std::make_unique<Cache>(cfg.l2, "l2", group_);
    if (cfg.prefetch.enabled) {
        prefetcher_ = std::make_unique<StreamPrefetcher>(
            cfg.prefetch, cfg.l2.blockBytes, group_);
    }
}

void
MemHierarchy::schedule(Cycle at, std::function<void()> fn)
{
    events_.push(Event{at, eventOrder_++, std::move(fn)});
}

bool
MemHierarchy::load(CoreId core, Addr addr, CritLevel crit, Done done)
{
    ++stats_.loads;
    const Addr l1Block = dl1_[core]->blockAlign(addr);
    if (dl1_[core]->access(l1Block)) {
        schedule(now_ + cfg_.dl1.latency, std::move(done));
        return true;
    }
    auto &mshr = dMshr_[core];
    if (const auto it = mshr.find(l1Block); it != mshr.end()) {
        it->second.waiters.push_back(std::move(done));
        if (crit > it->second.crit) {
            it->second.crit = crit;
            promote(core, addr, crit);
        }
        return true;
    }
    if (mshr.size() >= cfg_.dl1.mshrs) {
        ++stats_.l1MshrFull;
        return false;
    }
    L1Entry &entry = mshr[l1Block];
    entry.waiters.push_back(std::move(done));
    entry.crit = crit;
    schedule(now_ + cfg_.dl1.latency, [this, core, l1Block] {
        l2Access(core, l1Block, false, false);
    });
    return true;
}

bool
MemHierarchy::store(CoreId core, Addr addr, Done done)
{
    ++stats_.stores;
    const Addr l1Block = dl1_[core]->blockAlign(addr);
    const LineState state = dl1_[core]->probe(l1Block);
    if (state != LineState::Invalid) {
        dl1_[core]->access(l1Block);
        if (state == LineState::Shared)
            invalidateSharers(l1Block, core);
        dl1_[core]->setState(l1Block, LineState::Modified);
        schedule(now_ + cfg_.dl1.latency, std::move(done));
        return true;
    }
    dl1_[core]->access(l1Block); // count the miss
    auto &mshr = dMshr_[core];
    if (const auto it = mshr.find(l1Block); it != mshr.end()) {
        it->second.waiters.push_back(std::move(done));
        it->second.rfo = true;
        return true;
    }
    if (mshr.size() >= cfg_.dl1.mshrs) {
        ++stats_.l1MshrFull;
        return false;
    }
    L1Entry &entry = mshr[l1Block];
    entry.waiters.push_back(std::move(done));
    entry.rfo = true;
    schedule(now_ + cfg_.dl1.latency, [this, core, l1Block] {
        l2Access(core, l1Block, false, true);
    });
    return true;
}

bool
MemHierarchy::fetchProbe(CoreId core, Addr pc)
{
    const Addr block = il1_[core]->blockAlign(pc);
    if (il1_[core]->probe(block) != LineState::Invalid) {
        il1_[core]->access(block);
        return true;
    }
    return false;
}

bool
MemHierarchy::fetch(CoreId core, Addr pc, Done done)
{
    ++stats_.fetches;
    const Addr block = il1_[core]->blockAlign(pc);
    if (il1_[core]->access(block)) {
        schedule(now_ + cfg_.il1.latency, std::move(done));
        return true;
    }
    auto &mshr = iMshr_[core];
    if (const auto it = mshr.find(block); it != mshr.end()) {
        it->second.waiters.push_back(std::move(done));
        return true;
    }
    if (mshr.size() >= cfg_.il1.mshrs) {
        ++stats_.l1MshrFull;
        return false;
    }
    mshr[block].waiters.push_back(std::move(done));
    schedule(now_ + cfg_.il1.latency, [this, core, block] {
        l2Access(core, block, true, false);
    });
    return true;
}

CoreId
MemHierarchy::modifiedOwner(Addr l1Block, CoreId except) const
{
    const auto it = directory_.find(l1Block);
    if (it == directory_.end())
        return kNoCore;
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        if (c != except && (it->second & (1u << c)) &&
            dl1_[c]->probe(l1Block) == LineState::Modified) {
            return c;
        }
    }
    return kNoCore;
}

void
MemHierarchy::invalidateSharers(Addr l1Block, CoreId except)
{
    const auto it = directory_.find(l1Block);
    if (it == directory_.end())
        return;
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        if (c != except && (it->second & (1u << c))) {
            // A modified copy's data lives on in the inclusive L2.
            if (dl1_[c]->probe(l1Block) == LineState::Modified)
                l2_->setState(l2_->blockAlign(l1Block),
                              LineState::Modified);
            dl1_[c]->invalidate(l1Block);
        }
    }
    it->second &= 1u << except;
    if (it->second == 0)
        directory_.erase(it);
}

void
MemHierarchy::l2Access(CoreId core, Addr l1Block, bool isInst, bool rfo)
{
    const Addr l2Block = l2_->blockAlign(l1Block);

    if (!isInst) {
        const CoreId owner = modifiedOwner(l1Block, core);
        if (owner != kNoCore) {
            // Dirty cache-to-cache transfer through the shared L2. The
            // inclusive L2 absorbs the dirty data; the owner is
            // downgraded (or invalidated on a store miss).
            ++stats_.coherenceTransfers;
            l2_->access(l2Block);
            l2_->setState(l2Block, LineState::Modified);
            if (rfo)
                dl1_[owner]->invalidate(l1Block);
            else
                dl1_[owner]->setState(l1Block, LineState::Shared);
            schedule(now_ + cfg_.l2.latency, [this, core, l1Block,
                                              isInst] {
                deliverToL1(L2Waiter{core, l1Block, isInst, false});
            });
            return;
        }
    }

    if (l2_->access(l2Block)) {
        if (l2_->wasPrefetched(l2Block)) {
            ++stats_.prefetchUseful;
            l2_->clearPrefetched(l2Block);
            if (prefetcher_)
                prefetcher_->onUseful();
        }
        schedule(now_ + cfg_.l2.latency, [this, core, l1Block, isInst] {
            deliverToL1(L2Waiter{core, l1Block, isInst, false});
        });
        return;
    }

    // L2 miss.
    const CritLevel crit = [&]() -> CritLevel {
        if (isInst)
            return 0;
        const auto it = dMshr_[core].find(l1Block);
        return it != dMshr_[core].end() ? it->second.crit : 0;
    }();

    if (const auto it = l2Mshr_.find(l2Block); it != l2Mshr_.end()) {
        L2Entry &entry = it->second;
        entry.waiters.push_back(L2Waiter{core, l1Block, isInst, rfo});
        if (!entry.demand) {
            // A prefetch in flight just turned into a demand miss.
            entry.demand = true;
            entry.started = now_;
        }
        if (crit > entry.crit) {
            entry.crit = crit;
            dram_.promote(l2Block, entry.firstCore, crit);
        }
        return;
    }
    if (l2Mshr_.size() >= cfg_.l2.mshrs) {
        ++stats_.l2MshrFull;
        l2MshrRetry_.push_back(L2Waiter{core, l1Block, isInst, rfo});
        return;
    }

    L2Entry &entry = l2Mshr_[l2Block];
    entry.waiters.push_back(L2Waiter{core, l1Block, isInst, rfo});
    entry.demand = true;
    entry.started = now_;
    entry.firstCore = core;
    entry.crit = crit;
    ++stats_.demandMisses;
    sendToDram(l2Block, entry);

    if (prefetcher_ && !isInst)
        issuePrefetches(l2Block);
}

bool
MemHierarchy::sendToDram(Addr l2Block, L2Entry &entry)
{
    MemRequest req;
    req.addr = l2Block;
    req.type = entry.demand ? ReqType::Read : ReqType::Prefetch;
    req.core = entry.firstCore;
    req.crit = entry.crit;
    req.onComplete = [this, l2Block](const MemRequest &) {
        l2Fill(l2Block);
    };
    if (dram_.enqueue(std::move(req))) {
        entry.sentToDram = true;
        return true;
    }
    ++stats_.dramRejects;
    dramRetry_.push_back(l2Block);
    return false;
}

void
MemHierarchy::writebackToDram(Addr l2Block, CoreId core)
{
    MemRequest req;
    req.addr = l2Block;
    req.type = ReqType::Write;
    req.core = core;
    if (!dram_.enqueue(std::move(req))) {
        ++stats_.dramRejects;
        req.addr = l2Block;
        req.type = ReqType::Write;
        req.core = core;
        writebackRetry_.push_back(std::move(req));
    }
}

void
MemHierarchy::issuePrefetches(Addr l2Block)
{
    prefetchScratch_.clear();
    prefetcher_->onDemandMiss(l2Block, prefetchScratch_);
    // Keep a demand reserve: prefetches never take the last MSHRs.
    const std::size_t prefetchCap =
        cfg_.l2.mshrs - std::min<std::size_t>(cfg_.l2.mshrs / 4, 16);
    for (const Addr target : prefetchScratch_) {
        if (l2_->probe(target) != LineState::Invalid)
            continue;
        if (l2Mshr_.contains(target))
            continue;
        if (l2Mshr_.size() >= prefetchCap)
            break;
        L2Entry &entry = l2Mshr_[target];
        entry.demand = false;
        entry.started = now_;
        entry.firstCore = 0;
        if (!sendToDram(target, entry)) {
            // Prefetches are best-effort: drop instead of retrying.
            dramRetry_.pop_back();
            l2Mshr_.erase(target);
        }
    }
}

void
MemHierarchy::evictFromL2(const Cache::Victim &victim)
{
    bool dirty = victim.dirty;
    // Inclusion: purge every L1 copy of the victim's sub-blocks; a
    // modified L1 copy folds into the writeback.
    for (Addr sub = victim.addr; sub < victim.addr + cfg_.l2.blockBytes;
         sub += cfg_.dl1.blockBytes) {
        const auto it = directory_.find(sub);
        if (it != directory_.end()) {
            for (CoreId c = 0; c < cfg_.numCores; ++c) {
                if (it->second & (1u << c)) {
                    if (dl1_[c]->probe(sub) == LineState::Modified)
                        dirty = true;
                    dl1_[c]->invalidate(sub);
                }
            }
            directory_.erase(it);
        }
        for (CoreId c = 0; c < cfg_.numCores; ++c)
            il1_[c]->invalidate(sub);
    }
    if (dirty)
        writebackToDram(victim.addr, kNoCore);
}

void
MemHierarchy::l2Fill(Addr l2Block)
{
    const auto it = l2Mshr_.find(l2Block);
    if (it == l2Mshr_.end())
        panic("DRAM fill for unknown L2 MSHR block");
    L2Entry entry = std::move(it->second);
    l2Mshr_.erase(it);

    if (entry.demand) {
        auto &stat = entry.crit > 0 ? stats_.l2MissLatCrit
                                    : stats_.l2MissLatNonCrit;
        stat.sample(static_cast<double>(now_ - entry.started));
    }

    const Cache::Victim victim =
        l2_->insert(l2Block, LineState::Exclusive, !entry.demand);
    if (victim.valid)
        evictFromL2(victim);

    const Cycle returnLat = std::max<Cycle>(cfg_.l2.latency / 4, 1);
    for (const L2Waiter &waiter : entry.waiters) {
        schedule(now_ + returnLat, [this, waiter] {
            deliverToL1(waiter);
        });
    }
}

void
MemHierarchy::deliverToL1(const L2Waiter &waiter)
{
    auto &mshr =
        waiter.isInst ? iMshr_[waiter.core] : dMshr_[waiter.core];
    const auto it = mshr.find(waiter.l1Block);
    if (it == mshr.end())
        return; // already satisfied (e.g. duplicate delivery)
    L1Entry entry = std::move(it->second);
    mshr.erase(it);

    if (waiter.isInst) {
        il1_[waiter.core]->insert(waiter.l1Block, LineState::Shared);
    } else {
        if (entry.rfo)
            invalidateSharers(waiter.l1Block, waiter.core);
        bool sharedElsewhere = false;
        if (const auto dit = directory_.find(waiter.l1Block);
            dit != directory_.end()) {
            sharedElsewhere =
                (dit->second & ~(1u << waiter.core)) != 0;
        }
        const LineState state = entry.rfo
            ? LineState::Modified
            : (sharedElsewhere ? LineState::Shared
                               : LineState::Exclusive);
        if (sharedElsewhere && !entry.rfo) {
            // Demote the other copies from E to S.
            for (CoreId c = 0; c < cfg_.numCores; ++c) {
                if (c != waiter.core &&
                    dl1_[c]->probe(waiter.l1Block) ==
                        LineState::Exclusive) {
                    dl1_[c]->setState(waiter.l1Block, LineState::Shared);
                }
            }
        }
        const Cache::Victim victim =
            dl1_[waiter.core]->insert(waiter.l1Block, state);
        if (victim.valid) {
            if (const auto dit = directory_.find(victim.addr);
                dit != directory_.end()) {
                dit->second &= ~(1u << waiter.core);
                if (dit->second == 0)
                    directory_.erase(dit);
            }
            if (victim.dirty) {
                l2_->setState(l2_->blockAlign(victim.addr),
                              LineState::Modified);
            }
        }
        directory_[waiter.l1Block] |= 1u << waiter.core;
    }

    for (Done &done : entry.waiters)
        done();
}

void
MemHierarchy::promote(CoreId core, Addr addr, CritLevel crit)
{
    const Addr l2Block = l2_->blockAlign(addr);
    const auto it = l2Mshr_.find(l2Block);
    if (it == l2Mshr_.end())
        return;
    if (crit > it->second.crit) {
        it->second.crit = crit;
        dram_.promote(l2Block, it->second.firstCore, crit);
    }
    (void)core;
}

bool
MemHierarchy::quiescent() const
{
    if (!events_.empty() || !l2Mshr_.empty() || !l2MshrRetry_.empty() ||
        !dramRetry_.empty() || !writebackRetry_.empty()) {
        return false;
    }
    for (const auto &mshr : dMshr_) {
        if (!mshr.empty())
            return false;
    }
    for (const auto &mshr : iMshr_) {
        if (!mshr.empty())
            return false;
    }
    return true;
}

Cycle
MemHierarchy::nextEventCycle(Cycle now) const
{
    if (!l2MshrRetry_.empty() || !dramRetry_.empty() ||
        !writebackRetry_.empty())
        return now + 1;
    if (events_.empty())
        return kNoCycle;
    return std::max(events_.top().at, now + 1);
}

void
MemHierarchy::tick(Cycle now)
{
    now_ = now;
    while (!events_.empty() && events_.top().at <= now) {
        auto fn = std::move(const_cast<Event &>(events_.top()).fn);
        events_.pop();
        fn();
    }

    // The retry lists swap into persistent scratch buffers instead of
    // per-tick locals so the steady state never touches the heap (the
    // retry loops below may push back into the live lists).
    if (!l2MshrRetry_.empty()) {
        l2RetryScratch_.clear();
        l2RetryScratch_.swap(l2MshrRetry_);
        for (const L2Waiter &waiter : l2RetryScratch_)
            l2Access(waiter.core, waiter.l1Block, waiter.isInst,
                     waiter.rfo);
    }
    if (!dramRetry_.empty()) {
        dramRetryScratch_.clear();
        dramRetryScratch_.swap(dramRetry_);
        for (const Addr block : dramRetryScratch_) {
            const auto it = l2Mshr_.find(block);
            if (it != l2Mshr_.end() && !it->second.sentToDram)
                sendToDram(block, it->second);
        }
    }
    if (!writebackRetry_.empty()) {
        wbRetryScratch_.clear();
        wbRetryScratch_.swap(writebackRetry_);
        for (MemRequest &req : wbRetryScratch_) {
            const Addr block = req.addr;
            if (!dram_.enqueue(std::move(req))) {
                ++stats_.dramRejects;
                MemRequest again;
                again.addr = block;
                again.type = ReqType::Write;
                again.core = kNoCore;
                writebackRetry_.push_back(std::move(again));
            }
        }
    }
}

} // namespace critmem

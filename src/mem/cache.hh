/**
 * @file
 * Generic set-associative, true-LRU cache array with per-line MESI
 * state. Private L1s use the full MESI vocabulary; the shared L2 uses
 * Exclusive/Modified as clean/dirty.
 */

#ifndef CRITMEM_MEM_CACHE_HH
#define CRITMEM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace critmem
{

/** Per-line coherence/dirtiness state. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< clean, sole copy
    Modified,  ///< dirty
};

/** A set-associative cache array (tags + state only; no data). */
class Cache
{
  public:
    /** Information about a line displaced by insert(). */
    struct Victim
    {
        bool valid = false;
        Addr addr = 0;
        bool dirty = false;
        bool prefetched = false;
    };

    Cache(const CacheConfig &cfg, const std::string &name,
          stats::Group &parent);

    /** @return the line's state without touching LRU. */
    LineState probe(Addr addr) const;

    /**
     * LRU-updating lookup.
     * @return true on hit (state != Invalid).
     */
    bool access(Addr addr);

    /** Change a resident line's state; no-op when absent. */
    void setState(Addr addr, LineState state);

    /** @return true when the line is resident and was prefetched in. */
    bool wasPrefetched(Addr addr) const;

    /** Clear a resident line's prefetched flag. */
    void clearPrefetched(Addr addr);

    /**
     * Insert a block, evicting the set's LRU line when needed.
     * @return the displaced victim, if any.
     */
    Victim insert(Addr addr, LineState state, bool prefetched = false);

    /** Drop a line (coherence invalidation / inclusion victim). */
    void invalidate(Addr addr);

    std::uint32_t blockBytes() const { return cfg_.blockBytes; }

    Addr
    blockAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(cfg_.blockBytes - 1);
    }

    /** Cache statistics (hits/misses counted by access()). */
    struct Stats
    {
        Stats(stats::Group &parent, const std::string &name);

        stats::Group group;
        stats::Scalar hits;
        stats::Scalar misses;
        stats::Scalar evictions;
        stats::Scalar writebacks;
        stats::Scalar invalidations;
    };

    Stats &cacheStats() { return stats_; }

  private:
    struct Line
    {
        Addr tag = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
        bool prefetched = false;
    };

    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(addr >> blockShift_) &
            (numSets_ - 1);
    }

    Addr tagOf(Addr addr) const { return addr >> blockShift_; }

    CacheConfig cfg_;
    std::uint32_t numSets_;
    std::uint32_t blockShift_;
    std::uint64_t useCounter_ = 0;
    std::vector<Line> lines_;
    Stats stats_;
};

} // namespace critmem

#endif // CRITMEM_MEM_CACHE_HH

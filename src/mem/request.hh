/**
 * @file
 * Memory request descriptor exchanged between the cache hierarchy and
 * the DRAM subsystem.
 *
 * The request carries the criticality information the processor side
 * piggybacks onto L2 misses (Section 3.2): a magnitude whose meaning
 * depends on the configured predictor (1 bit for Binary, stall cycles
 * for MaxStallTime, ...). Zero always means "not critical".
 */

#ifndef CRITMEM_MEM_REQUEST_HH
#define CRITMEM_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace critmem
{

/** Request categories seen by the memory controller. */
enum class ReqType : std::uint8_t
{
    Read,      ///< demand load / fetch miss
    Write,     ///< dirty writeback
    Prefetch,  ///< L2 stream prefetcher fill
};

/** A block-granularity memory transaction. */
struct MemRequest
{
    /** Block-aligned physical address. */
    Addr addr = 0;
    ReqType type = ReqType::Read;
    /** Originating core (writebacks keep the evicting core's id). */
    CoreId core = 0;
    /**
     * Criticality magnitude predicted by the processor side; the
     * scheduler prepends this to its age comparator. 0 = non-critical.
     */
    CritLevel crit = 0;
    /** Unique id; also the request's global age for FCFS ordering. */
    std::uint64_t id = 0;
    /**
     * Completion callback, invoked once the data burst finishes (reads
     * and prefetches). Writebacks may leave it empty.
     */
    std::function<void(const MemRequest &)> onComplete;
};

} // namespace critmem

#endif // CRITMEM_MEM_REQUEST_HH

/**
 * @file
 * The source-rule family of critmem-lint: lexical determinism,
 * protocol-bypass and hygiene invariants over the C++ tree. Each
 * rule documents the contract it enforces and the failure it was
 * written to prevent; fixtures under tests/analysis/fixtures/ prove
 * each one fires.
 */

#include <memory>
#include <regex>
#include <set>

#include "analysis/rule.hh"

namespace critmem::analysis
{

namespace
{

/** Shared helper: flag every regex hit on the blanked-code view. */
void
flagPattern(const SourceFile &file, const RuleMeta &meta,
            const std::regex &pattern, const std::string &reason,
            std::vector<Finding> &out)
{
    for (std::size_t li = 0; li < file.code.size(); ++li) {
        std::smatch match;
        if (std::regex_search(file.code[li], match, pattern)) {
            out.push_back({meta.id, meta.severity, file.path,
                           static_cast<int>(li + 1),
                           "'" + match.str() + "' " + reason});
        }
    }
}

/**
 * wall-clock: simulation behaviour and emitted results must be pure
 * functions of (workload, config, seed). Reading host time anywhere
 * in the scanned tree risks results that change from run to run —
 * exactly what the --jobs N byte-identical contract forbids. Display
 * -only uses (progress ETA lines on stderr) carry an inline
 * allow naming this rule, with a reason.
 */
class WallClockRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "wall-clock", Severity::Error,
            "no host time sources in simulation or emission code"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        static const std::regex kPattern(
            "system_clock|steady_clock|high_resolution_clock|"
            "gettimeofday|clock_gettime|\\btime\\s*\\(|"
            "\\bclock\\s*\\(");
        flagPattern(file, meta(), kPattern,
                    "reads host time; results must depend only on "
                    "(workload, config, seed)",
                    out);
    }
};

/**
 * unseeded-random: every stochastic element must draw from an
 * explicitly seeded critmem::Rng (sim/random.hh). std::random_device
 * and the C rand() family produce irreproducible streams.
 */
class UnseededRandomRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "unseeded-random", Severity::Error,
            "randomness must come from an explicitly seeded Rng"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        static const std::regex kPattern(
            "random_device|\\bsrand\\s*\\(|\\brand\\s*\\(\\s*\\)|"
            "default_random_engine|\\bmt19937|\\bminstd_rand");
        flagPattern(file, meta(), kPattern,
                    "is not reproducibly seeded; use critmem::Rng",
                    out);
    }
};

/**
 * unordered-iter: iterating an unordered associative container yields
 * an implementation- and address-layout-defined order. Any such loop
 * in an emission, sink or stats path silently breaks the byte-
 * identical --jobs N guarantee, so range-for over a container whose
 * declared type is std::unordered_* is banned tree-wide (membership
 * tests and lookups are fine). Copy into a std::map/sorted vector
 * before emitting.
 */
class UnorderedIterRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "unordered-iter", Severity::Error,
            "no iteration over unordered containers (order is not "
            "deterministic)"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        const std::string joined = file.joinedCode();
        const std::set<std::string> tracked = trackedNames(joined);

        // Every range-for: extract the range expression and test
        // whether it is (or ends in a member access of) a tracked
        // unordered container.
        static const std::regex kFor("\\bfor\\s*\\(");
        auto begin = std::sregex_iterator(joined.begin(), joined.end(),
                                          kFor);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::size_t open =
                static_cast<std::size_t>(it->position()) +
                it->length() - 1;
            const std::size_t close = matchParen(joined, open);
            if (close == std::string::npos)
                continue;
            const std::string inside =
                joined.substr(open + 1, close - open - 1);
            const std::size_t colon = rangeColon(inside);
            if (colon == std::string::npos)
                continue;
            std::string range = inside.substr(colon + 1);
            std::smatch last;
            static const std::regex kLastIdent(
                "([A-Za-z_]\\w*)\\s*(?:\\(\\s*\\))?\\s*$");
            const bool direct =
                range.find("unordered_") != std::string::npos;
            std::string name;
            if (std::regex_search(range, last, kLastIdent))
                name = last[1];
            if (!direct && (name.empty() || !tracked.count(name)))
                continue;
            out.push_back(
                {meta().id, meta().severity, file.path,
                 file.lineOfOffset(open),
                 "range-for over unordered container '" +
                     (direct ? std::string("<temporary>") : name) +
                     "': iteration order is nondeterministic; copy "
                     "into an ordered container first"});
        }
    }

  private:
    /** Names of variables/aliases with an unordered declared type. */
    static std::set<std::string>
    trackedNames(const std::string &joined)
    {
        std::set<std::string> aliases;
        static const std::regex kAlias(
            "using\\s+(\\w+)\\s*=\\s*std\\s*::\\s*unordered_");
        for (auto it = std::sregex_iterator(joined.begin(),
                                            joined.end(), kAlias);
             it != std::sregex_iterator(); ++it)
            aliases.insert((*it)[1]);

        std::set<std::string> names;
        static const std::regex kDecl(
            "unordered_(?:map|set|multimap|multiset)\\s*<");
        for (auto it = std::sregex_iterator(joined.begin(),
                                            joined.end(), kDecl);
             it != std::sregex_iterator(); ++it) {
            const std::size_t open =
                static_cast<std::size_t>(it->position()) +
                it->length() - 1;
            const std::size_t close = matchAngle(joined, open);
            if (close == std::string::npos)
                continue;
            std::smatch ident;
            const std::string after = joined.substr(close + 1, 80);
            static const std::regex kIdent(
                "^\\s*&?\\s*([A-Za-z_]\\w*)\\s*[;={(,)]");
            if (std::regex_search(after, ident, kIdent))
                names.insert(ident[1]);
        }
        for (const std::string &alias : aliases) {
            const std::regex aliasDecl(
                "\\b" + alias + "\\s*&?\\s+([A-Za-z_]\\w*)\\s*[;={(,)]");
            for (auto it = std::sregex_iterator(joined.begin(),
                                                joined.end(),
                                                aliasDecl);
                 it != std::sregex_iterator(); ++it)
                names.insert((*it)[1]);
        }
        return names;
    }

    /** Offset of the ')' matching the '(' at @p open; npos if none. */
    static std::size_t
    matchParen(const std::string &text, std::size_t open)
    {
        int depth = 0;
        for (std::size_t i = open; i < text.size(); ++i) {
            if (text[i] == '(')
                ++depth;
            else if (text[i] == ')' && --depth == 0)
                return i;
        }
        return std::string::npos;
    }

    /** Offset of the '>' matching the '<' at @p open; npos if none. */
    static std::size_t
    matchAngle(const std::string &text, std::size_t open)
    {
        int depth = 0;
        for (std::size_t i = open; i < text.size(); ++i) {
            if (text[i] == '<')
                ++depth;
            else if (text[i] == '>' && --depth == 0)
                return i;
        }
        return std::string::npos;
    }

    /** Offset of the range-for ':' inside @p inside; npos if none. */
    static std::size_t
    rangeColon(const std::string &inside)
    {
        for (std::size_t i = 0; i < inside.size(); ++i) {
            if (inside[i] != ':')
                continue;
            const bool prevColon = i > 0 && inside[i - 1] == ':';
            const bool nextColon =
                i + 1 < inside.size() && inside[i + 1] == ':';
            if (!prevColon && !nextColon)
                return i;
            if (nextColon)
                ++i; // skip the second ':' of a '::'
        }
        return std::string::npos;
    }
};

/**
 * narrow-cycle: cycle counts are unbounded 64-bit quantities (Cycle /
 * DramCycle in sim/types.hh). A naked 32-bit declaration whose name
 * says it holds cycles wraps after ~4e9 cycles — about one second of
 * simulated time at DDR3-2133 — corrupting timing arithmetic without
 * any diagnostic. Bounded ratios/durations may carry an inline
 * allow naming this rule, with the bound in the reason.
 */
class NarrowCycleRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "narrow-cycle", Severity::Error,
            "cycle quantities must use 64-bit Cycle/DramCycle types"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        static const std::regex kPattern(
            "\\b(?:std\\s*::\\s*)?(?:u?int32_t|unsigned|int)\\s+"
            "(\\w*[Cc]ycle\\w*)");
        for (std::size_t li = 0; li < file.code.size(); ++li) {
            std::smatch match;
            if (std::regex_search(file.code[li], match, kPattern)) {
                out.push_back(
                    {meta().id, meta().severity, file.path,
                     static_cast<int>(li + 1),
                     "32-bit declaration of cycle quantity '" +
                         match[1].str() +
                         "' wraps after ~4e9 cycles; use "
                         "Cycle/DramCycle"});
            }
        }
    }
};

/**
 * config-validate: SystemConfig::validate() is the choke point that
 * caught the inconsistent DDR3-1600 tRC preset. System's constructor
 * enforces it, so any code that assembles DramSystem / MemHierarchy /
 * DramChannel directly — bypassing System — must call
 * validateOrFatal()/validate() itself, or an inconsistent config
 * reaches the timing model unchecked. The implementing modules
 * (src/dram, src/mem, src/system) receive already-validated configs
 * and are exempt.
 */
class ConfigValidateRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "config-validate", Severity::Error,
            "direct component assembly must validate its config"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        for (const char *exempt :
             {"src/dram/", "src/mem/", "src/system/"}) {
            if (file.path.rfind(exempt, 0) == 0)
                return;
        }
        const std::string joined = file.joinedCode();
        const bool validated =
            joined.find("validateOrFatal") != std::string::npos ||
            joined.find(".validate(") != std::string::npos;
        if (validated)
            return;
        static const std::regex kConstruct(
            "\\b(DramSystem|MemHierarchy|DramChannel)\\s+\\w+\\s*[({]|"
            "make_unique<\\s*(DramSystem|MemHierarchy|DramChannel)\\b");
        for (auto it = std::sregex_iterator(joined.begin(),
                                            joined.end(), kConstruct);
             it != std::sregex_iterator(); ++it) {
            const std::string component =
                (*it)[1].matched ? (*it)[1] : (*it)[2];
            out.push_back(
                {meta().id, meta().severity, file.path,
                 file.lineOfOffset(
                     static_cast<std::size_t>(it->position())),
                 "direct " + component +
                     " construction bypasses System's "
                     "validateOrFatal(); call validateOrFatal(cfg) "
                     "first"});
        }
    }
};

/**
 * include-hygiene: quoted includes are project-relative from src/
 * (so every file names its dependencies unambiguously and the
 * include graph is greppable), headers carry CRITMEM_* guards, no
 * file-scope `using namespace` leaks from headers, and nonportable
 * <bits/...> internals stay out.
 */
class IncludeHygieneRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "include-hygiene", Severity::Error,
            "project-relative includes, header guards, no using-"
            "namespace in headers"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        static const std::regex kInclude(
            "^\\s*#\\s*include\\s*([<\"])([^>\"]*)[>\"]");
        for (std::size_t li = 0; li < file.lines.size(); ++li) {
            // Use the code view to skip commented-out directives,
            // but parse the raw line (literals are blanked in code).
            if (file.code[li].find('#') == std::string::npos)
                continue;
            std::smatch match;
            if (!std::regex_search(file.lines[li], match, kInclude))
                continue;
            const bool quoted = match[1] == "\"";
            const std::string target = match[2];
            const int line = static_cast<int>(li + 1);
            if (quoted && target.find('/') == std::string::npos) {
                out.push_back({meta().id, meta().severity, file.path,
                               line,
                               "include \"" + target +
                                   "\" is not project-relative; "
                                   "spell the full path from src/ "
                                   "(e.g. \"exec/job.hh\")"});
            }
            if (quoted &&
                target.find("../") != std::string::npos) {
                out.push_back({meta().id, meta().severity, file.path,
                               line,
                               "include \"" + target +
                                   "\" uses a parent-relative path"});
            }
            if (!quoted && target.rfind("bits/", 0) == 0) {
                out.push_back({meta().id, meta().severity, file.path,
                               line,
                               "include <" + target +
                                   "> names a libstdc++ internal"});
            }
        }

        if (!file.isHeader())
            return;

        static const std::regex kGuard("#ifndef\\s+(CRITMEM_\\w+)");
        std::smatch guard;
        const std::string joined = file.joinedCode();
        if (!std::regex_search(joined, guard, kGuard) ||
            joined.find("#define " + guard[1].str()) ==
                std::string::npos) {
            out.push_back({meta().id, meta().severity, file.path, 1,
                           "header lacks a CRITMEM_* include guard "
                           "(#ifndef/#define pair)"});
        }
        static const std::regex kUsingNs(
            "(^|\\n)\\s*using\\s+namespace\\s");
        std::smatch uns;
        if (std::regex_search(joined, uns, kUsingNs)) {
            out.push_back(
                {meta().id, meta().severity, file.path,
                 file.lineOfOffset(static_cast<std::size_t>(
                     uns.position() + uns.length() - 1)),
                 "'using namespace' in a header leaks into every "
                 "includer"});
        }
    }
};

/**
 * durable-write: result artifacts must never be observable in a
 * half-written state. A raw std::ofstream / fopen(write-mode) leaves
 * a truncated file behind on crash or SIGKILL — the failure mode the
 * crash-safe campaign work eliminated. Writers go through AtomicFile
 * (temp + fsync + rename; sim/atomic_file.hh), or carry an inline
 * allow naming this rule, stating their own durability story
 * (e.g. the campaign journal's append-plus-fsync protocol).
 * Read-mode fopen ("r", "rb") is fine.
 */
class DurableWriteRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "durable-write", Severity::Error,
            "file writers must use AtomicFile or state a durability "
            "story"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        // The helper itself is the one legitimate raw writer.
        if (file.path.rfind("src/sim/atomic_file", 0) == 0)
            return;
        static const std::regex kOfstream("\\bofstream\\b");
        static const std::regex kFopen("\\bfopen\\s*\\(");
        // The mode is a string literal, blanked in the code view:
        // sniff it from the raw line. It is the quoted string sitting
        // directly before a closing paren — matching the *first*
        // literal instead would misread fopen("/proc/...", "r"), and
        // anchoring on the call's own parens breaks on nested calls
        // like fopen(path.c_str(), "rb").
        static const std::regex kFopenMode("\"([^\"]*)\"\\s*\\)");
        for (std::size_t li = 0; li < file.code.size(); ++li) {
            std::smatch match;
            if (std::regex_search(file.code[li], match, kOfstream)) {
                out.push_back(
                    {meta().id, meta().severity, file.path,
                     static_cast<int>(li + 1),
                     "'" + match.str() +
                         "' writes without crash atomicity; a death "
                         "mid-write leaves a torn file. Use "
                         "AtomicFile (sim/atomic_file.hh) or add "
                         "lint:allow(durable-write) with the "
                         "durability story"});
                continue;
            }
            if (!std::regex_search(file.code[li], match, kFopen))
                continue;
            std::smatch mode;
            if (std::regex_search(file.lines[li], mode, kFopenMode)) {
                const std::string m = mode[1];
                if (!m.empty() && m[0] == 'r' &&
                    m.find('+') == std::string::npos)
                    continue; // read-only open
            }
            out.push_back(
                {meta().id, meta().severity, file.path,
                 static_cast<int>(li + 1),
                 "'fopen' in a write mode lacks crash atomicity; "
                 "use AtomicFile (sim/atomic_file.hh) or add "
                 "lint:allow(durable-write) with the durability "
                 "story"});
        }
    }
};

/**
 * hot-path-alloc: tick()-named functions run once per simulated
 * cycle — billions of times per campaign — so a heap allocation or a
 * std::function construction inside one is a per-cycle malloc the
 * profiler later finds at the top of the flame graph (the PR-7
 * hot-path overhaul hoisted exactly these into member scratch
 * buffers). Flags `new`, make_unique/make_shared, std::function
 * construction and local STL container declarations inside any
 * function whose name contains "tick". One-time or error-path
 * allocations may carry an inline allow naming this rule, with
 * the justification.
 */
class HotPathAllocRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "hot-path-alloc", Severity::Error,
            "no per-cycle heap allocation inside tick() hot paths"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        const std::string joined = file.joinedCode();
        // Function *definitions* whose name contains "tick": an
        // identifier, an argument list, optional qualifiers, then an
        // opening brace (declarations end in ';' and never match).
        static const std::regex kTickFn(
            "\\b([A-Za-z_]\\w*[Tt]ick\\w*|[Tt]ick\\w*)\\s*\\("
            "[^;{)]*\\)\\s*(?:const\\s*)?(?:noexcept\\s*)?"
            "(?:override\\s*)?\\{");
        for (auto it = std::sregex_iterator(joined.begin(),
                                            joined.end(), kTickFn);
             it != std::sregex_iterator(); ++it) {
            const std::size_t open =
                static_cast<std::size_t>(it->position()) +
                it->length() - 1;
            const std::size_t close = matchBrace(joined, open);
            if (close == std::string::npos)
                continue;
            scanBody(file, joined, (*it)[1], open, close, out);
        }
    }

  private:
    void
    scanBody(const SourceFile &file, const std::string &joined,
             const std::string &fn, std::size_t open,
             std::size_t close, std::vector<Finding> &out) const
    {
        const std::string body =
            joined.substr(open, close - open + 1);
        struct Pattern
        {
            const std::regex re;
            const char *what;
        };
        static const Pattern kPatterns[] = {
            {std::regex("\\bnew\\s+[A-Za-z_(]"),
             "operator new"},
            {std::regex("\\bmake_(?:unique|shared)\\s*<"),
             "make_unique/make_shared"},
            {std::regex("\\bstd\\s*::\\s*function\\s*<"),
             "std::function construction"},
            {std::regex("\\b(?:std\\s*::\\s*)?"
                        "(?:vector|deque|string|map|set|multimap|"
                        "multiset|unordered_map|unordered_set|list)"
                        "\\s*<[^;{}()]*>\\s+\\w+\\s*[;={(]"),
             "local container declaration"},
        };
        for (const Pattern &p : kPatterns) {
            for (auto it = std::sregex_iterator(body.begin(),
                                                body.end(), p.re);
                 it != std::sregex_iterator(); ++it) {
                out.push_back(
                    {meta().id, meta().severity, file.path,
                     file.lineOfOffset(
                         open +
                         static_cast<std::size_t>(it->position())),
                     std::string(p.what) + " inside per-cycle hot "
                     "path '" + fn + "': this runs every simulated "
                     "cycle; hoist into member scratch state or add "
                     "lint:allow(hot-path-alloc) with why it is not "
                     "per-cycle"});
            }
        }
    }

    /** Offset of the '}' matching the '{' at @p open; npos if none. */
    static std::size_t
    matchBrace(const std::string &text, std::size_t open)
    {
        int depth = 0;
        for (std::size_t i = open; i < text.size(); ++i) {
            if (text[i] == '{')
                ++depth;
            else if (text[i] == '}' && --depth == 0)
                return i;
        }
        return std::string::npos;
    }
};

/**
 * no-terminate: library code must never terminate the process. The
 * campaign layer's whole failure contract is that a broken job
 * becomes a classified record (crashed / oom / timeout / error) and
 * the run continues — one exit()/abort() buried in a scheduler or
 * sink turns a recoverable per-job failure into a dead campaign and
 * an empty result file. Calls to the exit family and abort anywhere
 * under src/, bench/ or examples/ are flagged; tools/ (CLI argument
 * handling, usage()) is exempt by path, and the two legitimate
 * terminators — panic()/fatal() in sim/log.hh and the post-fork
 * worker child in exec/worker.cc, which must _exit() instead of
 * returning into the supervisor's stack — carry inline allows naming
 * this rule with their justification.
 */
class NoTerminateRule : public SourceRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "no-terminate", Severity::Error,
            "library code must not call the exit()/abort() family"};
        return kMeta;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out)
        const override
    {
        // Process termination is the CLI layer's prerogative.
        if (file.path.rfind("tools/", 0) == 0)
            return;
        // Word-boundary match on the termination family, optionally
        // std:: / :: qualified. The leading capture rejects member
        // calls (obj.exit(), p->abort()) and other-namespace
        // qualification (foo::exit matches neither branch: the bare
        // name is preceded by ':', the '::' prefix by a word char).
        static const std::regex kPattern(
            "(^|[^.\\w>:])((?:(?:std\\s*)?::\\s*)?"
            "(?:exit|_exit|_Exit|quick_exit|abort)\\s*\\()");
        // A *declaration* of a function that merely shares the name
        // (`void exit();` in some wrapper class) is preceded by its
        // return type: text ending in an identifier before the match
        // is not a call site.
        static const std::regex kDeclPrefix("[\\w\\]]\\s*$");
        for (std::size_t li = 0; li < file.code.size(); ++li) {
            for (auto it = std::sregex_iterator(file.code[li].begin(),
                                                file.code[li].end(),
                                                kPattern);
                 it != std::sregex_iterator(); ++it) {
                const std::string pre = file.code[li].substr(
                    0, static_cast<std::size_t>(it->position(2)));
                if (std::regex_search(pre, kDeclPrefix))
                    continue;
                out.push_back(
                    {meta().id, meta().severity, file.path,
                     static_cast<int>(li + 1),
                     "'" + (*it)[2].str() +
                         ")' terminates the process from library "
                         "code; a failure here must surface as an "
                         "exception / classified job record, not "
                         "kill the campaign. Throw instead, move the "
                         "call to tools/, or add "
                         "lint:allow(no-terminate) with why this "
                         "path may terminate"});
                break;
            }
        }
    }
};

} // namespace

const std::vector<const SourceRule *> &
sourceRules()
{
    static const WallClockRule wallClock;
    static const UnseededRandomRule unseededRandom;
    static const UnorderedIterRule unorderedIter;
    static const NarrowCycleRule narrowCycle;
    static const ConfigValidateRule configValidate;
    static const IncludeHygieneRule includeHygiene;
    static const DurableWriteRule durableWrite;
    static const HotPathAllocRule hotPathAlloc;
    static const NoTerminateRule noTerminate;
    static const std::vector<const SourceRule *> kRules{
        &wallClock,      &unseededRandom, &unorderedIter,
        &narrowCycle,    &configValidate, &includeHygiene,
        &durableWrite,   &hotPathAlloc,   &noTerminate};
    return kRules;
}

} // namespace critmem::analysis

#include "analysis/rule.hh"

namespace critmem::analysis
{

const RuleMeta &
staleSuppressionMeta()
{
    static const RuleMeta kMeta{
        "stale-suppression", Severity::Error,
        "a lint:allow that suppresses nothing must be removed"};
    return kMeta;
}

std::vector<RuleMeta>
allRuleMetas()
{
    std::vector<RuleMeta> metas;
    for (const SourceRule *rule : sourceRules())
        metas.push_back(rule->meta());
    for (const SemanticRule *rule : semanticRules())
        metas.push_back(rule->meta());
    metas.push_back(staleSuppressionMeta());
    for (const DataRule *rule : dataRules())
        metas.push_back(rule->meta());
    return metas;
}

bool
haveRule(const std::string &id)
{
    for (const RuleMeta &meta : allRuleMetas()) {
        if (id == meta.id)
            return true;
    }
    return false;
}

} // namespace critmem::analysis

#include "analysis/rule.hh"

namespace critmem::analysis
{

std::vector<RuleMeta>
allRuleMetas()
{
    std::vector<RuleMeta> metas;
    for (const SourceRule *rule : sourceRules())
        metas.push_back(rule->meta());
    for (const DataRule *rule : dataRules())
        metas.push_back(rule->meta());
    return metas;
}

bool
haveRule(const std::string &id)
{
    for (const RuleMeta &meta : allRuleMetas()) {
        if (id == meta.id)
            return true;
    }
    return false;
}

} // namespace critmem::analysis

#include "analysis/analyzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "analysis/symbol_index.hh"

namespace critmem::analysis
{

namespace fs = std::filesystem;

bool
Baseline::covers(const Finding &finding) const
{
    return keys.count(finding.baselineKey()) > 0;
}

Baseline
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read baseline " + path);
    Baseline baseline;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        baseline.keys.insert(line);
    }
    return baseline;
}

std::string
formatBaseline(const std::vector<Finding> &findings)
{
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const Finding &finding : findings)
        keys.push_back(finding.baselineKey());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::ostringstream os;
    os << "# critmem-lint baseline: known findings, one "
          "rule<TAB>path<TAB>message per line.\n"
       << "# Regenerate with: critmem-lint --root . "
          "--write-baseline\n";
    for (const std::string &key : keys)
        os << key << '\n';
    return os.str();
}

bool
Report::clean() const
{
    return std::none_of(findings.begin(), findings.end(),
                        [](const Finding &finding) {
                            return finding.severity ==
                                Severity::Error;
                        });
}

const std::vector<std::string> &
scannedDirs()
{
    static const std::vector<std::string> kDirs{"src", "tools",
                                               "bench", "examples"};
    return kDirs;
}

namespace
{

bool
isCppSource(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
        ext == ".h" || ext == ".hpp";
}

/** Repo-relative path with '/' separators. */
std::string
relativePath(const fs::path &root, const fs::path &file)
{
    return fs::relative(file, root).generic_string();
}

/**
 * Per-file suppression bookkeeping: which AllowSites actually
 * suppressed a finding this run (the rest become stale-suppression
 * findings).
 */
struct SuppressionTracker
{
    std::vector<std::vector<bool>> used;

    explicit SuppressionTracker(const std::vector<SourceFile> &files)
    {
        used.resize(files.size());
        for (std::size_t i = 0; i < files.size(); ++i)
            used[i].assign(files[i].allowSites.size(), false);
    }

    /**
     * True when @p finding is suppressed in @p file; marks every
     * covering site as used.
     */
    bool
    filter(const SourceFile &file, std::size_t fileIndex,
           const Finding &finding)
    {
        if (!file.suppressed(finding.rule, finding.line))
            return false;
        for (std::size_t s = 0; s < file.allowSites.size(); ++s) {
            const AllowSite &site = file.allowSites[s];
            if (site.rule != finding.rule)
                continue;
            if (site.wholeFile ||
                std::find(site.applies.begin(), site.applies.end(),
                          finding.line) != site.applies.end())
                used[fileIndex][s] = true;
        }
        return true;
    }

    /**
     * Append a stale-suppression finding for every unused site whose
     * rule actually ran (@p ranRules). Sites naming the
     * stale-suppression pseudo-rule are exempt (no recursion), and
     * the finding itself honors lint:allow(stale-suppression).
     */
    void
    reportStale(const std::vector<SourceFile> &files,
                const std::set<std::string> &ranRules,
                std::vector<Finding> &out)
    {
        const RuleMeta &meta = staleSuppressionMeta();
        for (std::size_t i = 0; i < files.size(); ++i) {
            const SourceFile &file = files[i];
            for (std::size_t s = 0; s < file.allowSites.size();
                 ++s) {
                const AllowSite &site = file.allowSites[s];
                if (used[i][s] || site.rule == meta.id ||
                    !ranRules.count(site.rule))
                    continue;
                Finding finding{
                    meta.id, meta.severity, file.path, site.line,
                    std::string(site.wholeFile ? "lint:allow-file("
                                               : "lint:allow(") +
                        site.rule +
                        ") suppresses nothing and must be removed",
                    {}};
                if (!filter(file, i, finding))
                    out.push_back(std::move(finding));
            }
        }
    }
};

} // namespace

std::vector<Finding>
analyzeFile(const SourceFile &file)
{
    const std::vector<SourceFile> files{file};
    SuppressionTracker tracker(files);
    std::set<std::string> ranRules;
    std::vector<Finding> findings;

    for (const SourceRule *rule : sourceRules()) {
        ranRules.insert(rule->meta().id);
        std::vector<Finding> raw;
        rule->check(files.front(), raw);
        for (Finding &finding : raw) {
            if (!tracker.filter(files.front(), 0, finding))
                findings.push_back(std::move(finding));
        }
    }

    SemanticModel model;
    model.files = &files;
    model.index = SymbolIndex::build(files);
    for (const SemanticRule *rule : semanticRules()) {
        ranRules.insert(rule->meta().id);
        std::vector<Finding> raw;
        rule->check(model, raw);
        for (Finding &finding : raw) {
            if (finding.path != files.front().path ||
                !tracker.filter(files.front(), 0, finding))
                findings.push_back(std::move(finding));
        }
    }

    tracker.reportStale(files, ranRules, findings);
    return findings;
}

Report
runAnalysis(const AnalyzerOptions &opts, const Baseline &baseline)
{
    const fs::path root(opts.root);
    if (!fs::is_directory(root))
        throw std::runtime_error("not a directory: " + opts.root);

    auto ruleEnabled = [&](const RuleMeta &meta) {
        return opts.ruleFilter.empty() ||
            opts.ruleFilter.count(meta.id) > 0;
    };

    // Collect and sort the file list: directory iteration order is
    // filesystem-defined, and the lint report must be byte-identical
    // across runs and machines.
    std::vector<fs::path> paths;
    for (const std::string &dir : scannedDirs()) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (entry.is_regular_file() && isCppSource(entry.path()))
                paths.push_back(entry.path());
        }
    }
    std::sort(paths.begin(), paths.end());

    // Load everything up front: the semantic rules need the whole
    // tree at once, and the source rules reuse the same parse.
    std::vector<SourceFile> files;
    files.reserve(paths.size());
    std::map<std::string, std::size_t> fileByPath;
    for (const fs::path &path : paths) {
        files.push_back(loadSourceFile(path.string(),
                                       relativePath(root, path)));
        fileByPath[files.back().path] = files.size() - 1;
    }

    Report report;
    report.filesScanned = files.size();
    SuppressionTracker tracker(files);
    std::set<std::string> ranRules;
    std::vector<Finding> all;

    for (std::size_t i = 0; i < files.size(); ++i) {
        for (const SourceRule *rule : sourceRules()) {
            if (!ruleEnabled(rule->meta()))
                continue;
            ranRules.insert(rule->meta().id);
            std::vector<Finding> raw;
            rule->check(files[i], raw);
            for (Finding &finding : raw) {
                if (!tracker.filter(files[i], i, finding))
                    all.push_back(std::move(finding));
            }
        }
    }

    const bool anySemantic = std::any_of(
        semanticRules().begin(), semanticRules().end(),
        [&](const SemanticRule *rule) {
            return ruleEnabled(rule->meta());
        });
    if (anySemantic) {
        SemanticModel model;
        model.files = &files;
        model.index = SymbolIndex::build(files);
        for (const SemanticRule *rule : semanticRules()) {
            if (!ruleEnabled(rule->meta()))
                continue;
            ranRules.insert(rule->meta().id);
            std::vector<Finding> raw;
            rule->check(model, raw);
            for (Finding &finding : raw) {
                const auto it = fileByPath.find(finding.path);
                if (it == fileByPath.end() ||
                    !tracker.filter(files[it->second], it->second,
                                    finding))
                    all.push_back(std::move(finding));
            }
        }
    }

    if (ruleEnabled(staleSuppressionMeta()))
        tracker.reportStale(files, ranRules, all);

    if (!opts.sourceOnly) {
        const RepoContext repo{root.string()};
        for (const DataRule *rule : dataRules()) {
            if (ruleEnabled(rule->meta()))
                rule->check(repo, all);
        }
    }

    std::sort(all.begin(), all.end(), findingLess);
    for (Finding &finding : all) {
        (baseline.covers(finding) ? report.baselined
                                  : report.findings)
            .push_back(std::move(finding));
    }
    return report;
}

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char kHex[] = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xf];
                out += kHex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendFindingJson(std::ostringstream &os, const Finding &finding,
                  const char *indent)
{
    os << indent << "{\"rule\": \"" << jsonEscape(finding.rule)
       << "\", \"severity\": \"" << toString(finding.severity)
       << "\", \"path\": \"" << jsonEscape(finding.path)
       << "\", \"line\": " << finding.line << ", \"message\": \""
       << jsonEscape(finding.message) << "\", \"chain\": [";
    for (std::size_t i = 0; i < finding.chain.size(); ++i) {
        const ChainLink &link = finding.chain[i];
        if (i > 0)
            os << ", ";
        os << "{\"symbol\": \"" << jsonEscape(link.symbol)
           << "\", \"path\": \"" << jsonEscape(link.path)
           << "\", \"line\": " << link.line << '}';
    }
    os << "]}";
}

void
appendFindingsJson(std::ostringstream &os,
                   const std::vector<Finding> &findings)
{
    if (findings.empty()) {
        os << "[]";
        return;
    }
    os << "[\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        appendFindingJson(os, findings[i], "    ");
        os << (i + 1 < findings.size() ? ",\n" : "\n");
    }
    os << "  ]";
}

} // namespace

std::string
formatJson(const Report &report)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"filesScanned\": " << report.filesScanned << ",\n"
       << "  \"clean\": " << (report.clean() ? "true" : "false")
       << ",\n"
       << "  \"findings\": ";
    appendFindingsJson(os, report.findings);
    os << ",\n  \"baselined\": ";
    appendFindingsJson(os, report.baselined);
    os << "\n}\n";
    return os.str();
}

} // namespace critmem::analysis

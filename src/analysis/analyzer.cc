#include "analysis/analyzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace critmem::analysis
{

namespace fs = std::filesystem;

bool
Baseline::covers(const Finding &finding) const
{
    return keys.count(finding.baselineKey()) > 0;
}

Baseline
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read baseline " + path);
    Baseline baseline;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        baseline.keys.insert(line);
    }
    return baseline;
}

std::string
formatBaseline(const std::vector<Finding> &findings)
{
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const Finding &finding : findings)
        keys.push_back(finding.baselineKey());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::ostringstream os;
    os << "# critmem-lint baseline: known findings, one "
          "rule<TAB>path<TAB>message per line.\n"
       << "# Regenerate with: critmem-lint --root . "
          "--write-baseline\n";
    for (const std::string &key : keys)
        os << key << '\n';
    return os.str();
}

bool
Report::clean() const
{
    return std::none_of(findings.begin(), findings.end(),
                        [](const Finding &finding) {
                            return finding.severity ==
                                Severity::Error;
                        });
}

const std::vector<std::string> &
scannedDirs()
{
    static const std::vector<std::string> kDirs{"src", "tools",
                                               "bench", "examples"};
    return kDirs;
}

namespace
{

bool
isCppSource(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
        ext == ".h" || ext == ".hpp";
}

/** Repo-relative path with '/' separators. */
std::string
relativePath(const fs::path &root, const fs::path &file)
{
    return fs::relative(file, root).generic_string();
}

} // namespace

std::vector<Finding>
analyzeFile(const SourceFile &file)
{
    std::vector<Finding> findings;
    for (const SourceRule *rule : sourceRules()) {
        std::vector<Finding> raw;
        rule->check(file, raw);
        for (Finding &finding : raw) {
            if (!file.suppressed(finding.rule, finding.line))
                findings.push_back(std::move(finding));
        }
    }
    return findings;
}

Report
runAnalysis(const AnalyzerOptions &opts, const Baseline &baseline)
{
    const fs::path root(opts.root);
    if (!fs::is_directory(root))
        throw std::runtime_error("not a directory: " + opts.root);

    auto ruleEnabled = [&](const RuleMeta &meta) {
        return opts.ruleFilter.empty() ||
            opts.ruleFilter.count(meta.id) > 0;
    };

    // Collect and sort the file list: directory iteration order is
    // filesystem-defined, and the lint report must be byte-identical
    // across runs and machines.
    std::vector<fs::path> files;
    for (const std::string &dir : scannedDirs()) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (entry.is_regular_file() && isCppSource(entry.path()))
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    Report report;
    std::vector<Finding> all;
    for (const fs::path &path : files) {
        const SourceFile file =
            loadSourceFile(path.string(), relativePath(root, path));
        ++report.filesScanned;
        for (const SourceRule *rule : sourceRules()) {
            if (!ruleEnabled(rule->meta()))
                continue;
            std::vector<Finding> raw;
            rule->check(file, raw);
            for (Finding &finding : raw) {
                if (!file.suppressed(finding.rule, finding.line))
                    all.push_back(std::move(finding));
            }
        }
    }

    if (!opts.sourceOnly) {
        const RepoContext repo{root.string()};
        for (const DataRule *rule : dataRules()) {
            if (ruleEnabled(rule->meta()))
                rule->check(repo, all);
        }
    }

    std::sort(all.begin(), all.end(), findingLess);
    for (Finding &finding : all) {
        (baseline.covers(finding) ? report.baselined
                                  : report.findings)
            .push_back(std::move(finding));
    }
    return report;
}

} // namespace critmem::analysis

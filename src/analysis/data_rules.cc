/**
 * @file
 * The data-rule family of critmem-lint: checked-in data (DDR3 timing
 * presets, sweep campaign specs) validated at build time against the
 * simulator's own registries. PR 1's runtime protocol checker caught
 * an inconsistent DDR3-1600 tRC preset only when a simulation
 * happened to exercise it; these rules catch that whole bug class
 * before any workload runs.
 */

#include "analysis/data_rules.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "analysis/rule.hh"
#include "exec/sweep.hh"
#include "sched/registry.hh"
#include "trace/workloads.hh"

namespace critmem::analysis
{

void
checkDramTiming(const DramTiming &t, std::uint32_t busMHz,
                const std::string &label, std::vector<Finding> &out)
{
    const RuleMeta &meta = [] {
        static const RuleMeta kMeta{
            "preset-timing", Severity::Error,
            "DDR3 timing presets must satisfy the protocol's "
            "arithmetic invariants"};
        return kMeta;
    }();
    auto fail = [&](const std::string &message) {
        out.push_back({meta.id, meta.severity, "src/sim/config.cc", 0,
                       label + ": " + message});
    };

    if (t.tRC < t.tRAS + t.tRP) {
        fail("tRC (" + std::to_string(t.tRC) +
             ") < tRAS + tRP (" + std::to_string(t.tRAS + t.tRP) +
             "): an ACT-to-ACT interval cannot beat row restore "
             "plus precharge");
    }
    if (t.tFAW < 4 * t.tRRD) {
        fail("tFAW (" + std::to_string(t.tFAW) + ") < 4*tRRD (" +
             std::to_string(4 * t.tRRD) +
             "): the four-activate window would never bind");
    }
    if (t.tCCD < t.dataCycles()) {
        fail("tCCD (" + std::to_string(t.tCCD) +
             ") shorter than the data burst (" +
             std::to_string(t.dataCycles()) +
             " cycles): back-to-back CAS would overlap on the bus");
    }
    if (t.tRAS < t.tRCD + t.tCCD) {
        fail("tRAS (" + std::to_string(t.tRAS) +
             ") < tRCD + tCCD (" + std::to_string(t.tRCD + t.tCCD) +
             "): a row could close before serving a single CAS");
    }
    if (t.tRFC >= t.tREFI) {
        fail("tRFC (" + std::to_string(t.tRFC) + ") >= tREFI (" +
             std::to_string(t.tREFI) +
             "): refresh would consume the whole interval");
    }
    if (busMHz != 0 && t.tREFI != 0) {
        // 8192 refresh intervals must retire one full 64 ms window.
        const double windowMs = static_cast<double>(t.tREFI) * 8192.0 /
            (static_cast<double>(busMHz) * 1000.0);
        if (std::abs(windowMs - 64.0) > 0.64) {
            fail("8192 * tREFI spans " + std::to_string(windowMs) +
                 " ms at " + std::to_string(busMHz) +
                 " MHz; DDR3 requires 64 ms (+/- 1%)");
        }
    }
}

namespace
{

/**
 * preset-timing: run the independent timing checks over the default
 * DramTiming (Table 3) and every DramConfig::preset() speed grade.
 */
class PresetTimingRule : public DataRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "preset-timing", Severity::Error,
            "DDR3 timing presets must satisfy the protocol's "
            "arithmetic invariants"};
        return kMeta;
    }

    void
    check(const RepoContext &, std::vector<Finding> &out)
        const override
    {
        for (const DramSpeed speed :
             {DramSpeed::DDR3_1066, DramSpeed::DDR3_1600,
              DramSpeed::DDR3_2133}) {
            const DramConfig cfg = DramConfig::preset(speed);
            checkDramTiming(cfg.t, cfg.busMHz, toString(speed), out);
        }
    }
};

/**
 * preset-config: the shipped SystemConfig factories must pass their
 * own validate() — at build time, not on first use. Covers both base
 * presets and every speed-grade substitution a sweep can select.
 */
class PresetConfigRule : public DataRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "preset-config", Severity::Error,
            "shipped SystemConfig presets must pass validate()"};
        return kMeta;
    }

    void
    check(const RepoContext &, std::vector<Finding> &out)
        const override
    {
        auto audit = [&](const SystemConfig &cfg,
                         const std::string &label) {
            for (const ConfigError &error : cfg.validate()) {
                out.push_back({meta().id, meta().severity,
                               "src/sim/config.cc", 0,
                               label + ": " + error.field + ": " +
                                   error.message});
            }
        };
        audit(SystemConfig::parallelDefault(), "parallelDefault");
        audit(SystemConfig::multiprogDefault(), "multiprogDefault");
        for (const DramSpeed speed :
             {DramSpeed::DDR3_1066, DramSpeed::DDR3_1600}) {
            SystemConfig cfg = SystemConfig::parallelDefault();
            const std::uint32_t channels = cfg.dram.channels;
            cfg.dram = DramConfig::preset(speed);
            cfg.dram.channels = channels;
            audit(cfg, std::string("parallelDefault/") +
                      cliName(speed));
        }
    }
};

/**
 * trace-fixture: every checked-in trace under tests/trace/fixtures/
 * must decode cleanly — the goldens the tests and the fuzz corpus
 * mutate from must themselves be valid. CTMT replay traces (.bin)
 * validate through TraceReader; everything else through the ingest
 * scanner. Gzip fixtures are skipped when zlib is unavailable.
 */
class TraceFixtureRule : public DataRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "trace-fixture", Severity::Error,
            "checked-in trace fixtures must decode cleanly"};
        return kMeta;
    }

    void
    check(const RepoContext &repo, std::vector<Finding> &out)
        const override
    {
        namespace fs = std::filesystem;
        const fs::path dir =
            fs::path(repo.root) / "tests" / "trace" / "fixtures";
        if (!fs::is_directory(dir))
            return;
        std::vector<fs::path> files;
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (entry.is_regular_file())
                files.push_back(entry.path());
        }
        std::sort(files.begin(), files.end());
        for (const fs::path &file : files) {
            const std::string rel =
                "tests/trace/fixtures/" + file.filename().string();
            if (file.extension() == ".gz" && !ingest::haveGzip())
                continue;
            try {
                if (file.extension() == ".bin") {
                    TraceReader reader(file.string());
                } else {
                    ingest::scanTrace(file.string(),
                                      ingest::IngestOptions{});
                }
            } catch (const std::exception &err) {
                out.push_back({meta().id, meta().severity, rel, 0,
                               err.what()});
            }
        }
    }
};

/** sweep-spec over every .sweep campaign under specs/. */
class SweepSpecRule : public DataRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "sweep-spec", Severity::Error,
            "specs/*.sweep must parse, expand and name only "
            "registered workloads/variants"};
        return kMeta;
    }

    void
    check(const RepoContext &repo, std::vector<Finding> &out)
        const override
    {
        namespace fs = std::filesystem;
        const fs::path specs = fs::path(repo.root) / "specs";
        if (!fs::is_directory(specs))
            return;
        std::vector<fs::path> files;
        for (const auto &entry : fs::directory_iterator(specs)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".sweep")
                files.push_back(entry.path());
        }
        std::sort(files.begin(), files.end());
        for (const fs::path &file : files) {
            checkSweepFile(file.string(),
                           "specs/" + file.filename().string(), out);
        }
    }
};

/**
 * arena-coverage: the arena tournament (specs/arena.sweep) must field
 * every registered scheduler. Registering a new algorithm without
 * entering it in the arena silently keeps it off every leaderboard.
 */
class ArenaCoverageRule : public DataRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "arena-coverage", Severity::Error,
            "every registered scheduler must have a variant in "
            "specs/arena.sweep"};
        return kMeta;
    }

    void
    check(const RepoContext &repo, std::vector<Finding> &out)
        const override
    {
        namespace fs = std::filesystem;
        const fs::path file =
            fs::path(repo.root) / "specs" / "arena.sweep";
        if (!fs::is_regular_file(file)) {
            out.push_back({meta().id, meta().severity,
                           "specs/arena.sweep", 0,
                           "arena campaign spec is missing; every "
                           "registered scheduler needs a variant "
                           "there"});
            return;
        }
        checkArenaCoverage(file.string(), "specs/arena.sweep", out);
    }
};

} // namespace

void
checkArenaCoverage(const std::string &absPath,
                   const std::string &relPath,
                   std::vector<Finding> &out)
{
    const RuleMeta meta{"arena-coverage", Severity::Error, ""};
    auto fail = [&](const std::string &message) {
        out.push_back({meta.id, meta.severity, relPath, 0, message});
    };

    exec::SweepSpec spec;
    try {
        spec = exec::parseSweepFile(absPath);
    } catch (const std::exception &err) {
        fail(std::string("parse error: ") + err.what());
        return;
    }

    // Collect every scheduler any variant selects. Variants without a
    // sched= setting run the preset default, which the explicit
    // default variant already covers, so they add nothing here.
    std::set<std::string> covered;
    for (const exec::SweepVariant &variant : spec.variants) {
        for (const auto &[key, value] : variant.settings) {
            if (key == "sched")
                covered.insert(value);
        }
    }

    for (const SchedInfo &info : schedulerRegistry()) {
        if (covered.count(info.cliName))
            continue;
        fail(std::string("registered scheduler '") + info.cliName +
             "' (" + info.displayName +
             ") has no variant in the arena campaign");
    }
}

void
checkSweepFile(const std::string &absPath, const std::string &relPath,
               std::vector<Finding> &out)
{
    const RuleMeta meta{"sweep-spec", Severity::Error, ""};
    auto fail = [&](const std::string &message) {
        out.push_back(
            {meta.id, meta.severity, relPath, 0, message});
    };

    exec::SweepSpec spec;
    try {
        spec = exec::parseSweepFile(absPath);
    } catch (const std::exception &err) {
        fail(std::string("parse error: ") + err.what());
        return;
    }

    // Every declared trace source must exist and decode cleanly under
    // its declared options. Scan each one explicitly so a broken
    // trace yields one targeted finding per declaration (TraceError
    // messages carry the byte offset of the corruption) instead of a
    // single opaque expansion failure.
    bool tracesOk = true;
    for (const exec::TraceDecl &decl : spec.traces) {
        try {
            ingest::scanTrace(decl.path, decl.options);
        } catch (const std::exception &err) {
            fail("trace '" + decl.name + "' (" + decl.path + "): " +
                 err.what());
            tracesOk = false;
        }
    }
    if (!tracesOk)
        return;

    // expand() validates workload names, variant settings and every
    // resulting SystemConfig against the live registries.
    std::size_t jobs = 0;
    try {
        jobs = spec.expand().size();
    } catch (const std::exception &err) {
        fail(std::string("does not expand: ") + err.what());
        return;
    }
    if (jobs == 0)
        fail("expands to zero jobs (everything excluded?)");

    // Exclusion globs must each match at least one workload/variant
    // name; a pattern that matches nothing is a typo waiting to
    // silently stop excluding.
    std::vector<std::string> workloads = spec.workloads;
    if (workloads.empty() ||
        (workloads.size() == 1 && workloads[0] == "*")) {
        workloads.clear();
        if (spec.mode == exec::SweepSpec::Mode::Parallel) {
            for (const AppParams &app : parallelApps())
                workloads.push_back(app.name);
            for (const exec::TraceDecl &decl : spec.traces)
                workloads.push_back(decl.name);
        } else {
            for (const Bundle &bundle : multiprogBundles())
                workloads.push_back(bundle.name);
        }
    }
    for (const std::string &pattern : spec.exclude) {
        bool matched = false;
        for (const std::string &workload : workloads) {
            for (const exec::SweepVariant &variant : spec.variants) {
                if (exec::globMatch(pattern,
                                    workload + "/" + variant.name)) {
                    matched = true;
                    break;
                }
            }
            if (matched)
                break;
        }
        if (!matched) {
            fail("exclude pattern '" + pattern +
                 "' matches no workload/variant combination");
        }
    }
}

const std::vector<const DataRule *> &
dataRules()
{
    static const PresetTimingRule presetTiming;
    static const PresetConfigRule presetConfig;
    static const SweepSpecRule sweepSpec;
    static const ArenaCoverageRule arenaCoverage;
    static const TraceFixtureRule traceFixture;
    static const std::vector<const DataRule *> kRules{
        &presetTiming, &presetConfig, &sweepSpec, &arenaCoverage,
        &traceFixture};
    return kRules;
}

} // namespace critmem::analysis

#include "analysis/source_file.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace critmem::analysis
{

namespace
{

/** Split text into lines, tolerating a missing final newline. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else if (c != '\r') {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

/** Append every `lint:allow(a,b)` rule list found in @p comment. */
void
parseAllow(const std::string &comment, std::set<std::string> &lineSet,
           std::set<std::string> &fileSet)
{
    std::size_t pos = 0;
    while ((pos = comment.find("lint:allow", pos)) != std::string::npos) {
        std::size_t p = pos + std::string("lint:allow").size();
        bool wholeFile = false;
        if (comment.compare(p, 5, "-file") == 0) {
            wholeFile = true;
            p += 5;
        }
        if (p >= comment.size() || comment[p] != '(') {
            pos = p;
            continue;
        }
        const std::size_t close = comment.find(')', p);
        if (close == std::string::npos)
            break;
        std::string rules = comment.substr(p + 1, close - p - 1);
        std::string rule;
        std::istringstream in(rules);
        while (std::getline(in, rule, ',')) {
            const std::size_t b = rule.find_first_not_of(" \t");
            const std::size_t e = rule.find_last_not_of(" \t");
            if (b == std::string::npos)
                continue;
            (wholeFile ? fileSet : lineSet)
                .insert(rule.substr(b, e - b + 1));
        }
        pos = close;
    }
}

/** Whether a blanked-code line holds anything but whitespace. */
bool
blankCode(const std::string &code)
{
    return code.find_first_not_of(" \t") == std::string::npos;
}

} // namespace

bool
SourceFile::isHeader() const
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = path.substr(dot);
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

bool
SourceFile::suppressed(const std::string &rule, int line) const
{
    if (allowFile.count(rule))
        return true;
    if (line < 1 || static_cast<std::size_t>(line) > allow.size())
        return false;
    return allow[static_cast<std::size_t>(line) - 1].count(rule) > 0;
}

std::string
SourceFile::joinedCode() const
{
    std::string joined;
    for (const std::string &line : code) {
        joined += line;
        joined += '\n';
    }
    return joined;
}

int
SourceFile::lineOfOffset(std::size_t offset) const
{
    int line = 1;
    std::size_t consumed = 0;
    for (const std::string &text : code) {
        consumed += text.size() + 1;
        if (offset < consumed)
            return line;
        ++line;
    }
    return static_cast<int>(code.size());
}

SourceFile
makeSourceFile(std::string path, const std::string &text)
{
    SourceFile file;
    file.path = std::move(path);
    file.lines = splitLines(text);
    file.code.reserve(file.lines.size());
    file.allow.resize(file.lines.size());

    enum class State { Code, LineComment, BlockComment, Str, Chr };
    State state = State::Code;
    // Comment text accumulated for the line it ends on; suppressions
    // in a comment with no code on its line carry forward to the
    // next line that has code (so multi-line comments work).
    std::string comment;
    std::set<std::string> carry;

    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string &raw = file.lines[li];
        std::string code(raw.size(), ' ');
        if (state == State::LineComment)
            state = State::Code; // line comments end at the newline
        comment.clear();

        for (std::size_t i = 0; i < raw.size(); ++i) {
            const char c = raw[i];
            const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    comment.append(raw, i, std::string::npos);
                    i = raw.size();
                    state = State::LineComment;
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    ++i;
                } else if (c == '"') {
                    code[i] = '"';
                    state = State::Str;
                } else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Chr;
                } else {
                    code[i] = c;
                }
                break;
              case State::Str:
                if (c == '\\')
                    ++i;
                else if (c == '"') {
                    code[i] = '"';
                    state = State::Code;
                }
                break;
              case State::Chr:
                if (c == '\\')
                    ++i;
                else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Code;
                }
                break;
              case State::BlockComment:
                comment += c;
                if (c == '*' && next == '/') {
                    ++i;
                    state = State::Code;
                }
                break;
              case State::LineComment:
                break; // unreachable within a line
            }
            if (state == State::LineComment)
                break;
        }

        std::set<std::string> lineSet;
        parseAllow(comment, lineSet, file.allowFile);
        if (blankCode(code)) {
            carry.insert(lineSet.begin(), lineSet.end());
        } else {
            // A trailing comment guards its own line; pending
            // stand-alone suppressions land on this code line.
            lineSet.insert(carry.begin(), carry.end());
            carry.clear();
            file.allow[li].insert(lineSet.begin(), lineSet.end());
        }
        file.code.push_back(std::move(code));
    }
    return file;
}

SourceFile
loadSourceFile(const std::string &absPath, std::string relPath)
{
    std::ifstream in(absPath, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + absPath);
    std::ostringstream text;
    text << in.rdbuf();
    return makeSourceFile(std::move(relPath), text.str());
}

} // namespace critmem::analysis

#include "analysis/source_file.hh"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace critmem::analysis
{

namespace
{

/** Split text into lines, tolerating a missing final newline. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else if (c != '\r') {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

/** One `lint:<kind>(value,...)` marker parsed out of a comment. */
struct Tag
{
    enum class Kind { Allow, AllowFile, Domain, Thread };
    Kind kind;
    std::string value;
};

/** Append every `lint:allow/domain/thread(...)` tag in @p comment. */
void
parseTags(const std::string &comment, std::vector<Tag> &out)
{
    static const struct
    {
        const char *prefix;
        Tag::Kind kind;
    } kKinds[] = {
        // allow-file before allow: the latter is a prefix of it.
        {"lint:allow-file", Tag::Kind::AllowFile},
        {"lint:allow", Tag::Kind::Allow},
        {"lint:domain", Tag::Kind::Domain},
        {"lint:thread", Tag::Kind::Thread},
    };
    std::size_t pos = 0;
    while ((pos = comment.find("lint:", pos)) != std::string::npos) {
        bool matched = false;
        for (const auto &kind : kKinds) {
            const std::size_t len = std::strlen(kind.prefix);
            if (comment.compare(pos, len, kind.prefix) != 0)
                continue;
            std::size_t p = pos + len;
            if (p >= comment.size() || comment[p] != '(')
                break; // "lint:allowance" etc: not a marker
            const std::size_t close = comment.find(')', p);
            if (close == std::string::npos)
                return; // unterminated: ignore the rest
            std::string values = comment.substr(p + 1, close - p - 1);
            std::string value;
            std::istringstream in(values);
            while (std::getline(in, value, ',')) {
                const std::size_t b = value.find_first_not_of(" \t");
                const std::size_t e = value.find_last_not_of(" \t");
                if (b == std::string::npos)
                    continue;
                out.push_back(
                    {kind.kind, value.substr(b, e - b + 1)});
            }
            pos = close;
            matched = true;
            break;
        }
        if (!matched)
            pos += 5; // skip past "lint:"
    }
}

/** Whether a blanked-code line holds anything but whitespace. */
bool
blankCode(const std::string &code)
{
    return code.find_first_not_of(" \t") == std::string::npos;
}

} // namespace

bool
SourceFile::isHeader() const
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = path.substr(dot);
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

bool
SourceFile::suppressed(const std::string &rule, int line) const
{
    if (allowFile.count(rule))
        return true;
    if (line < 1 || static_cast<std::size_t>(line) > allow.size())
        return false;
    return allow[static_cast<std::size_t>(line) - 1].count(rule) > 0;
}

bool
SourceFile::domainMarked(const std::string &value, int line) const
{
    if (line < 1 || static_cast<std::size_t>(line) > domainMark.size())
        return false;
    return domainMark[static_cast<std::size_t>(line) - 1]
               .count(value) > 0;
}

bool
SourceFile::threadMarked(const std::string &value, int line) const
{
    if (line < 1 || static_cast<std::size_t>(line) > threadMark.size())
        return false;
    return threadMark[static_cast<std::size_t>(line) - 1]
               .count(value) > 0;
}

std::string
SourceFile::joinedCode() const
{
    std::string joined;
    for (const std::string &line : code) {
        joined += line;
        joined += '\n';
    }
    return joined;
}

int
SourceFile::lineOfOffset(std::size_t offset) const
{
    int line = 1;
    std::size_t consumed = 0;
    for (const std::string &text : code) {
        consumed += text.size() + 1;
        if (offset < consumed)
            return line;
        ++line;
    }
    return static_cast<int>(code.size());
}

SourceFile
makeSourceFile(std::string path, const std::string &text)
{
    SourceFile file;
    file.path = std::move(path);
    file.lines = splitLines(text);
    file.code.reserve(file.lines.size());
    file.allow.resize(file.lines.size());
    file.domainMark.resize(file.lines.size());
    file.threadMark.resize(file.lines.size());

    enum class State { Code, LineComment, BlockComment, Str, Chr };
    State state = State::Code;
    // Comment text accumulated for the line it ends on. Suppressions
    // and markers always guard the comment's own line; when the
    // comment has no code on its line they additionally carry forward
    // to the next line that has code (so stand-alone and multi-line
    // comments work).
    std::string comment;
    std::vector<std::size_t> carrySites;
    std::set<std::string> carryDomain, carryThread;

    for (std::size_t li = 0; li < file.lines.size(); ++li) {
        const std::string &raw = file.lines[li];
        std::string code(raw.size(), ' ');
        if (state == State::LineComment)
            state = State::Code; // line comments end at the newline
        comment.clear();

        for (std::size_t i = 0; i < raw.size(); ++i) {
            const char c = raw[i];
            const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    comment.append(raw, i, std::string::npos);
                    i = raw.size();
                    state = State::LineComment;
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    ++i;
                } else if (c == '"') {
                    code[i] = '"';
                    state = State::Str;
                } else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Chr;
                } else {
                    code[i] = c;
                }
                break;
              case State::Str:
                if (c == '\\')
                    ++i;
                else if (c == '"') {
                    code[i] = '"';
                    state = State::Code;
                }
                break;
              case State::Chr:
                if (c == '\\')
                    ++i;
                else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Code;
                }
                break;
              case State::BlockComment:
                comment += c;
                if (c == '*' && next == '/') {
                    ++i;
                    state = State::Code;
                }
                break;
              case State::LineComment:
                break; // unreachable within a line
            }
            if (state == State::LineComment)
                break;
        }

        std::vector<Tag> tags;
        parseTags(comment, tags);
        const int lineNo = static_cast<int>(li + 1);
        std::vector<std::size_t> lineSites;
        std::set<std::string> lineDomain, lineThread;
        for (const Tag &tag : tags) {
            switch (tag.kind) {
              case Tag::Kind::AllowFile:
                file.allowFile.insert(tag.value);
                file.allowSites.push_back(
                    {tag.value, lineNo, true, {}});
                break;
              case Tag::Kind::Allow:
                lineSites.push_back(file.allowSites.size());
                file.allowSites.push_back(
                    {tag.value, lineNo, false, {}});
                break;
              case Tag::Kind::Domain:
                lineDomain.insert(tag.value);
                break;
              case Tag::Kind::Thread:
                lineThread.insert(tag.value);
                break;
            }
        }

        // Every marker guards the comment's own line...
        for (const std::size_t idx : lineSites) {
            file.allow[li].insert(file.allowSites[idx].rule);
            file.allowSites[idx].applies.push_back(lineNo);
        }
        file.domainMark[li].insert(lineDomain.begin(),
                                   lineDomain.end());
        file.threadMark[li].insert(lineThread.begin(),
                                   lineThread.end());

        if (blankCode(code)) {
            // ...and a comment with no code on its line also carries
            // forward to the next code line.
            carrySites.insert(carrySites.end(), lineSites.begin(),
                              lineSites.end());
            carryDomain.insert(lineDomain.begin(), lineDomain.end());
            carryThread.insert(lineThread.begin(), lineThread.end());
        } else {
            for (const std::size_t idx : carrySites) {
                file.allow[li].insert(file.allowSites[idx].rule);
                file.allowSites[idx].applies.push_back(lineNo);
            }
            file.domainMark[li].insert(carryDomain.begin(),
                                       carryDomain.end());
            file.threadMark[li].insert(carryThread.begin(),
                                       carryThread.end());
            carrySites.clear();
            carryDomain.clear();
            carryThread.clear();
        }
        file.code.push_back(std::move(code));
    }
    return file;
}

SourceFile
loadSourceFile(const std::string &absPath, std::string relPath)
{
    std::ifstream in(absPath, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + absPath);
    std::ostringstream text;
    text << in.rdbuf();
    return makeSourceFile(std::move(relPath), text.str());
}

} // namespace critmem::analysis

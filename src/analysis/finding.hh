/**
 * @file
 * Core types of the critmem-lint static-analysis pass: a Finding is
 * one rule violation at one source location, and RuleMeta describes a
 * registered rule (id, default severity, one-line rationale).
 */

#ifndef CRITMEM_ANALYSIS_FINDING_HH
#define CRITMEM_ANALYSIS_FINDING_HH

#include <ostream>
#include <string>
#include <vector>

namespace critmem::analysis
{

/**
 * Severity of a finding. Error findings fail the `lint` build target;
 * Warning findings are reported but never affect the exit status.
 */
enum class Severity { Warning, Error };

const char *toString(Severity severity);

/** One step of the call chain attached to a semantic finding. */
struct ChainLink
{
    /** Qualified function name entered at this step. */
    std::string symbol;
    /** Where the step's definition / call site lives. */
    std::string path;
    int line = 0;
};

/** One rule violation at one location. */
struct Finding
{
    /** Stable rule id, e.g. "wall-clock". */
    std::string rule;
    Severity severity = Severity::Error;
    /** Repo-relative path with '/' separators ("" for repo-level). */
    std::string path;
    /** 1-based line number; 0 when the finding is not line-anchored. */
    int line = 0;
    std::string message;
    /**
     * For semantic findings: the call chain from the entry point to
     * the function holding the violation (empty otherwise). Printed
     * as indented continuation lines, and emitted in --json output.
     */
    std::vector<ChainLink> chain = {};

    /**
     * Baseline identity: rule, path and message — deliberately not
     * the line number (or the chain), so unrelated edits above a
     * baselined finding do not resurrect it.
     */
    std::string baselineKey() const;
};

/**
 * Render as "path:line: severity: [rule] message" (clickable), with
 * one indented "via symbol (path:line)" continuation line per chain
 * step.
 */
std::ostream &operator<<(std::ostream &os, const Finding &finding);

/** Stable report order: path, then line, then rule, then message. */
bool findingLess(const Finding &a, const Finding &b);

/** Static description of one registered rule. */
struct RuleMeta
{
    /** Stable lower-case id used in reports, suppressions, baseline. */
    const char *id;
    Severity severity;
    /** One-line rationale for --list-rules. */
    const char *desc;
};

} // namespace critmem::analysis

#endif // CRITMEM_ANALYSIS_FINDING_HH

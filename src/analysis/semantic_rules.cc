/**
 * @file
 * The SemanticRule family of critmem-lint: whole-tree rules over the
 * cross-TU symbol index and call graph (DESIGN.md section 13).
 *
 * transitive-determinism — nothing reachable from a scheduler, the
 * simulation loop or a stats-emission entry point may reach a
 * wall-clock / unseeded-random / unordered-iteration construct
 * through ANY call chain; the finding carries the full chain.
 *
 * clock-domain — CPU-cycle and DRAM-cycle quantities (typed
 * Cycle/DramCycle, named cpuCycle.. or dramCycle.., or marked with
 * lint:domain(cpu|dram)) must not mix in one expression or cross a
 * call boundary without an explicit conversion (a toCpu../toDram../
 * cpuTo../dramTo.. call or a lint:domain(convert) marker).
 *
 * aggregation-thread-only — APIs documented single-aggregation-
 * thread (ResultSink consume/begin/end, FairnessAnnotator, the fair-
 * stats splice, anything marked lint:thread(aggregation)) must not
 * be reachable from JobRunner worker-side code (functions marked
 * lint:thread(worker)).
 */

#include <algorithm>
#include <regex>
#include <set>

#include "analysis/rule.hh"
#include "analysis/symbol_index.hh"

namespace critmem::analysis
{

namespace
{

std::vector<ChainLink>
toChainLinks(const std::vector<ChainStep> &steps)
{
    std::vector<ChainLink> links;
    links.reserve(steps.size());
    for (const ChainStep &step : steps)
        links.push_back({step.qname, step.path, step.line});
    return links;
}

/** Whether any line of the def's head carries the given marker. */
bool
defMarked(const SourceFile &file, const FunctionDef &def,
          bool thread, const std::string &value)
{
    const int last = std::max(def.line, def.bodyBeginLine);
    for (int line = def.headLine; line <= last; ++line) {
        if (thread ? file.threadMarked(value, line)
                   : file.domainMarked(value, line))
            return true;
    }
    return false;
}

/**
 * transitive-determinism: multi-source reachability from the
 * deterministic entry points (Scheduler family methods, System::run,
 * stats emission: printJson / writeJsonFile / ResultSink
 * consume/begin/end / FairnessAnnotator / spliceFairStats) to any
 * line the wall-clock, unseeded-random or unordered-iter lexical
 * rules flag. Direct findings already suppressed with their own
 * lint:allow are trusted here too (the author stated a reason);
 * a chain-specific allow naming this rule's id at the flagged line
 * silences only the transitive finding.
 */
class TransitiveDeterminismRule : public SemanticRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "transitive-determinism", Severity::Error,
            "no call chain from scheduler/emission entry points to "
            "nondeterminism"};
        return kMeta;
    }

    void
    check(const SemanticModel &model,
          std::vector<Finding> &out) const override
    {
        const SymbolIndex &index = model.index;
        const std::vector<SourceFile> &files = *model.files;

        const std::vector<int> entries = entryPoints(index);
        if (entries.empty())
            return;
        std::set<int> reach;
        for (const int id : index.reachable(entries))
            reach.insert(id);

        struct DirectRule
        {
            const SourceRule *rule;
            const char *reason;
        };
        std::vector<DirectRule> direct;
        for (const SourceRule *rule : sourceRules()) {
            const std::string id = rule->meta().id;
            if (id == "wall-clock")
                direct.push_back({rule, "reads host time"});
            else if (id == "unseeded-random")
                direct.push_back(
                    {rule, "draws irreproducible randomness"});
            else if (id == "unordered-iter")
                direct.push_back(
                    {rule, "iterates an unordered container"});
        }

        std::set<std::string> seen;
        for (std::size_t f = 0; f < files.size(); ++f) {
            const SourceFile &file = files[f];
            for (const DirectRule &d : direct) {
                std::vector<Finding> raw;
                d.rule->check(file, raw);
                for (const Finding &taint : raw) {
                    // An inline allow for the direct rule states a
                    // reviewed reason; trust it transitively too.
                    if (file.suppressed(taint.rule, taint.line))
                        continue;
                    const int fn = index.enclosingFunction(
                        static_cast<int>(f), taint.line);
                    if (fn < 0 || !reach.count(fn))
                        continue;
                    const std::string token = quoted(taint.message);
                    const std::string key = file.path + "\t" +
                        std::to_string(taint.line) + "\t" + token;
                    if (!seen.insert(key).second)
                        continue;
                    const std::vector<ChainStep> steps =
                        index.chain(entries, fn, files);
                    Finding finding;
                    finding.rule = meta().id;
                    finding.severity = meta().severity;
                    finding.path = file.path;
                    finding.line = taint.line;
                    finding.message = "'" + token + "' " + d.reason +
                        " and is reachable from deterministic entry "
                        "point '" +
                        (steps.empty() ? std::string("?")
                                       : steps.front().qname) +
                        "' through the call graph";
                    finding.chain = toChainLinks(steps);
                    out.push_back(std::move(finding));
                }
            }
        }
    }

  private:
    /** First 'quoted' span of a direct finding's message. */
    static std::string
    quoted(const std::string &message)
    {
        const std::size_t open = message.find('\'');
        if (open == std::string::npos)
            return message;
        const std::size_t close = message.find('\'', open + 1);
        if (close == std::string::npos)
            return message.substr(open + 1);
        return message.substr(open + 1, close - open - 1);
    }

    static std::vector<int>
    entryPoints(const SymbolIndex &index)
    {
        std::set<int> entries;
        for (const int cls : index.family("Scheduler")) {
            for (const int m : index.methods(cls))
                entries.insert(m);
        }
        const int run = index.byQnameSuffix("System::run");
        if (run >= 0)
            entries.insert(run);
        for (const int id : index.byShortName("printJson"))
            entries.insert(id);
        for (const int id : index.byShortName("writeJsonFile"))
            entries.insert(id);
        static const std::set<std::string> kSinkApi{"consume",
                                                   "begin", "end"};
        for (const int cls : index.family("ResultSink")) {
            for (const int m : index.methods(cls)) {
                if (kSinkApi.count(
                        index.functions()
                            [static_cast<std::size_t>(m)]
                                .shortName))
                    entries.insert(m);
            }
        }
        const int annotator =
            index.classByShortName("FairnessAnnotator");
        if (annotator >= 0) {
            for (const int m : index.methods(annotator))
                entries.insert(m);
        }
        for (const int id : index.byShortName("spliceFairStats"))
            entries.insert(id);
        return {entries.begin(), entries.end()};
    }
};

/** Clock domain of a declared type/name pair; "" when unknown. */
std::string
domainOf(const std::string &type, const std::string &name)
{
    static const std::regex kDram("\\bDramCycle\\b");
    static const std::regex kCpu("\\bCycle\\b");
    if (std::regex_search(type, kDram))
        return "dram";
    if (std::regex_search(type, kCpu))
        return "cpu";
    if (name.rfind("dramCycle", 0) == 0)
        return "dram";
    if (name.rfind("cpuCycle", 0) == 0)
        return "cpu";
    return "";
}

/** Converter by naming convention: toCpu../toDram../cpuTo../dramTo.. */
bool
converterName(const std::string &name)
{
    static const std::regex kConverter(
        "^(to(Cpu|Dram)|cpuTo[A-Z]|dramTo[A-Z])");
    return std::regex_search(name, kConverter);
}

/**
 * clock-domain: flags (a) two differently-domained variables on one
 * source line with no conversion call or lint:domain marker, and
 * (b) passing a cpu-domain variable to a dram-domain parameter (or
 * vice versa) across any resolved call edge. Single-line
 * granularity for (a): a mix split across a multi-line statement is
 * part of the documented false-negative envelope.
 */
class ClockDomainRule : public SemanticRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "clock-domain", Severity::Error,
            "no CPU-cycle / DRAM-cycle mixing without an explicit "
            "conversion"};
        return kMeta;
    }

    void
    check(const SemanticModel &model,
          std::vector<Finding> &out) const override
    {
        const SymbolIndex &index = model.index;
        const std::vector<SourceFile> &files = *model.files;

        for (const FunctionNode &node : index.functions()) {
            for (const FunctionDef &def : node.defs) {
                const SourceFile &file =
                    files[static_cast<std::size_t>(def.fileIndex)];
                if (converterName(node.shortName) ||
                    defMarked(file, def, false, "convert"))
                    continue;
                const std::map<std::string, std::string> vars =
                    domainVars(index, node, def, files);
                if (!vars.empty())
                    checkLines(file, def, vars, out);
                checkCalls(index, files, file, def, vars, out);
            }
        }
    }

  private:
    /** name -> domain for everything visible in @p def. */
    static std::map<std::string, std::string>
    domainVars(const SymbolIndex &index, const FunctionNode &node,
               const FunctionDef &def,
               const std::vector<SourceFile> &files)
    {
        std::map<std::string, std::string> vars;
        if (node.classId >= 0) {
            const ClassInfo &cls =
                index.classes()[static_cast<std::size_t>(
                    node.classId)];
            for (const auto &member : cls.members) {
                std::string domain =
                    domainOf(member.second.type, member.first);
                // A lint:domain marker on the member's declaration
                // line pins its domain, overriding conventions.
                if (cls.fileIndex >= 0) {
                    const SourceFile &clsFile =
                        files[static_cast<std::size_t>(
                            cls.fileIndex)];
                    if (clsFile.domainMarked("cpu",
                                             member.second.line))
                        domain = "cpu";
                    else if (clsFile.domainMarked(
                                 "dram", member.second.line))
                        domain = "dram";
                }
                if (!domain.empty())
                    vars[member.first] = domain;
            }
        }
        for (const auto &local : def.locals) {
            const std::string domain =
                domainOf(local.second, local.first);
            if (!domain.empty())
                vars[local.first] = domain;
        }
        return vars;
    }

    void
    checkLines(const SourceFile &file, const FunctionDef &def,
               const std::map<std::string, std::string> &vars,
               std::vector<Finding> &out) const
    {
        static const std::regex kConvertCall(
            "\\b(to(Cpu|Dram)\\w*|cpuTo\\w+|dramTo\\w+)\\s*\\(");
        for (int line = def.bodyBeginLine; line <= def.bodyEndLine;
             ++line) {
            if (line < 1 ||
                static_cast<std::size_t>(line) > file.code.size())
                break;
            const std::string &text =
                file.code[static_cast<std::size_t>(line) - 1];
            std::string cpuVar, dramVar;
            std::size_t i = 0;
            while (i < text.size()) {
                if ((text[i] == '_' ||
                     (text[i] >= 'a' && text[i] <= 'z') ||
                     (text[i] >= 'A' && text[i] <= 'Z')) &&
                    (i == 0 ||
                     !(text[i - 1] == '_' ||
                       (text[i - 1] >= '0' &&
                        text[i - 1] <= '9') ||
                       (text[i - 1] >= 'a' &&
                        text[i - 1] <= 'z') ||
                       (text[i - 1] >= 'A' &&
                        text[i - 1] <= 'Z')))) {
                    std::size_t j = i;
                    while (j < text.size() &&
                           (text[j] == '_' ||
                            (text[j] >= '0' && text[j] <= '9') ||
                            (text[j] >= 'a' && text[j] <= 'z') ||
                            (text[j] >= 'A' && text[j] <= 'Z')))
                        ++j;
                    const std::string ident =
                        text.substr(i, j - i);
                    const auto it = vars.find(ident);
                    if (it != vars.end()) {
                        if (it->second == "cpu")
                            cpuVar = ident;
                        else
                            dramVar = ident;
                    }
                    i = j;
                } else {
                    ++i;
                }
            }
            if (cpuVar.empty() || dramVar.empty())
                continue;
            if (std::regex_search(text, kConvertCall))
                continue;
            if (file.domainMarked("convert", line) ||
                file.domainMarked("cpu", line) ||
                file.domainMarked("dram", line))
                continue;
            out.push_back({meta().id, meta().severity, file.path,
                           line,
                           "CPU-domain '" + cpuVar +
                               "' and DRAM-domain '" + dramVar +
                               "' mixed on one line without an "
                               "explicit conversion (use a "
                               "toCpu*/toDram* helper or mark the "
                               "line lint:domain(convert))",
                           {}});
        }
    }

    void
    checkCalls(const SymbolIndex &index,
               const std::vector<SourceFile> &files,
               const SourceFile &file, const FunctionDef &def,
               const std::map<std::string, std::string> &vars,
               std::vector<Finding> &out) const
    {
        for (const CallSite &call : def.calls) {
            if (call.callee < 0 || call.args.empty())
                continue;
            const FunctionNode &callee =
                index.functions()[static_cast<std::size_t>(
                    call.callee)];
            if (converterName(callee.shortName) ||
                callee.defs.empty())
                continue;
            const FunctionDef &calleeDef = callee.defs.front();
            if (defMarked(files[static_cast<std::size_t>(
                              calleeDef.fileIndex)],
                          calleeDef, false, "convert"))
                continue;
            const std::size_t n = std::min(
                call.args.size(), calleeDef.params.size());
            for (std::size_t k = 0; k < n; ++k) {
                const std::string &arg = call.args[k];
                const auto it = vars.find(arg);
                if (it == vars.end())
                    continue; // not a bare domained variable
                const Param &param = calleeDef.params[k];
                const std::string paramDomain =
                    domainOf(param.type, param.name);
                if (paramDomain.empty() ||
                    paramDomain == it->second)
                    continue;
                if (file.domainMarked("convert", call.line) ||
                    file.domainMarked("cpu", call.line) ||
                    file.domainMarked("dram", call.line))
                    continue;
                out.push_back(
                    {meta().id, meta().severity, file.path,
                     call.line,
                     "passing " + it->second + "-domain '" + arg +
                         "' to " + paramDomain + "-domain "
                         "parameter '" +
                         (param.name.empty() ? param.type
                                             : param.name) +
                         "' of '" + callee.qname +
                         "' without an explicit conversion",
                     {}});
            }
        }
    }
};

/**
 * aggregation-thread-only: functions marked lint:thread(worker)
 * (the JobRunner worker side) must not reach, through any call
 * chain, an API that is documented single-aggregation-thread:
 * ResultSink consume/begin/end, FairnessAnnotator, spliceFairStats,
 * or anything marked lint:thread(aggregation).
 */
class AggregationThreadOnlyRule : public SemanticRule
{
  public:
    const RuleMeta &
    meta() const override
    {
        static const RuleMeta kMeta{
            "aggregation-thread-only", Severity::Error,
            "worker-side code must not reach single-aggregation-"
            "thread APIs"};
        return kMeta;
    }

    void
    check(const SemanticModel &model,
          std::vector<Finding> &out) const override
    {
        const SymbolIndex &index = model.index;
        const std::vector<SourceFile> &files = *model.files;

        std::set<int> aggOnly;
        static const std::set<std::string> kSinkApi{"consume",
                                                   "begin", "end"};
        for (const int cls : index.family("ResultSink")) {
            for (const int m : index.methods(cls)) {
                if (kSinkApi.count(
                        index.functions()
                            [static_cast<std::size_t>(m)]
                                .shortName))
                    aggOnly.insert(m);
            }
        }
        const int annotator =
            index.classByShortName("FairnessAnnotator");
        if (annotator >= 0) {
            for (const int m : index.methods(annotator))
                aggOnly.insert(m);
        }
        for (const int id : index.byShortName("spliceFairStats"))
            aggOnly.insert(id);

        std::vector<int> workers;
        for (std::size_t n = 0; n < index.functions().size();
             ++n) {
            const FunctionNode &node = index.functions()[n];
            for (const FunctionDef &def : node.defs) {
                const SourceFile &file =
                    files[static_cast<std::size_t>(def.fileIndex)];
                if (defMarked(file, def, true, "aggregation"))
                    aggOnly.insert(static_cast<int>(n));
                if (defMarked(file, def, true, "worker")) {
                    workers.push_back(static_cast<int>(n));
                    break;
                }
            }
        }

        for (const int worker : workers) {
            const FunctionNode &node =
                index.functions()[static_cast<std::size_t>(worker)];
            for (const int id : index.reachable({worker})) {
                if (!aggOnly.count(id) || id == worker)
                    continue;
                const FunctionNode &target =
                    index.functions()[static_cast<std::size_t>(id)];
                const FunctionDef &def = node.defs.front();
                const SourceFile &file =
                    files[static_cast<std::size_t>(def.fileIndex)];
                const std::vector<ChainStep> steps =
                    index.chain({worker}, id, files);
                Finding finding;
                finding.rule = meta().id;
                finding.severity = meta().severity;
                finding.path = file.path;
                finding.line = def.headLine;
                finding.message = "worker-side '" + node.qname +
                    "' reaches single-aggregation-thread API '" +
                    target.qname +
                    "' through the call graph; only the "
                    "aggregation thread may touch sinks, the "
                    "fairness annotator or the stats splice";
                finding.chain = toChainLinks(steps);
                out.push_back(std::move(finding));
            }
        }
    }
};

} // namespace

const std::vector<const SemanticRule *> &
semanticRules()
{
    static const TransitiveDeterminismRule transitiveDeterminism;
    static const ClockDomainRule clockDomain;
    static const AggregationThreadOnlyRule aggregationThreadOnly;
    static const std::vector<const SemanticRule *> kRules{
        &transitiveDeterminism, &clockDomain,
        &aggregationThreadOnly};
    return kRules;
}

} // namespace critmem::analysis

/**
 * @file
 * The critmem-lint driver: walks the checkout, runs every registered
 * source rule over src/, tools/, bench/ and examples/ (honoring
 * inline lint:allow suppressions), builds the cross-TU symbol index
 * and runs the semantic rules over the whole tree, flags stale
 * suppressions, runs every data rule, and filters the result through
 * a checked-in baseline file.
 *
 * The baseline exists so the lint target can be adopted on a tree
 * with known findings and still fail on NEW ones; this repository
 * ships an empty baseline (every surfaced violation was fixed).
 */

#ifndef CRITMEM_ANALYSIS_ANALYZER_HH
#define CRITMEM_ANALYSIS_ANALYZER_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/rule.hh"

namespace critmem::analysis
{

/** Known-finding keys loaded from a baseline file. */
struct Baseline
{
    std::set<std::string> keys;

    /** True when @p finding is covered (and records the use). */
    bool covers(const Finding &finding) const;
};

/**
 * Parse a baseline file: '#' comments and blank lines ignored, every
 * other line is one Finding::baselineKey() (rule TAB path TAB
 * message). Throws std::runtime_error when @p path is unreadable.
 */
Baseline loadBaseline(const std::string &path);

/** Serialize @p findings as baseline lines (sorted, commented). */
std::string formatBaseline(const std::vector<Finding> &findings);

/** What to analyze and how. */
struct AnalyzerOptions
{
    /** Absolute path of the repository root. */
    std::string root;
    /** When nonempty, only run rules whose id is listed. */
    std::set<std::string> ruleFilter;
    /** Skip the data rules (fixture tests exercise them directly). */
    bool sourceOnly = false;
};

/** Outcome of one analysis run. */
struct Report
{
    /** Active findings, in stable (path, line, rule) order. */
    std::vector<Finding> findings;
    /** Findings matched and silenced by the baseline. */
    std::vector<Finding> baselined;
    std::size_t filesScanned = 0;

    /** True when no active finding has Severity::Error. */
    bool clean() const;
};

/**
 * The directories (relative to the root) whose C++ sources the
 * source rules scan. tests/ is excluded by design: tests may
 * legitimately poke at forbidden constructs, and the rule fixtures
 * under tests/analysis/fixtures/ violate rules on purpose.
 */
const std::vector<std::string> &scannedDirs();

/** Run every (filtered) rule over the checkout at @p opts.root. */
Report runAnalysis(const AnalyzerOptions &opts,
                   const Baseline &baseline);

/**
 * Run every source rule, every semantic rule (over a single-file
 * symbol index) and the stale-suppression check over one in-memory
 * file, honoring its suppressions — the entry point fixture tests
 * use. Findings appear in rule-registration order (source, then
 * semantic, then stale-suppression), unsorted.
 */
std::vector<Finding> analyzeFile(const SourceFile &file);

/**
 * Serialize @p report as deterministic JSON (stable key order,
 * sorted findings, '\n' line ends): filesScanned, clean, findings[]
 * and baselined[], each finding carrying rule/severity/path/line/
 * message and its chain[] of {symbol, path, line} steps.
 */
std::string formatJson(const Report &report);

} // namespace critmem::analysis

#endif // CRITMEM_ANALYSIS_ANALYZER_HH

/**
 * @file
 * Data-rule helpers exposed for fixture tests: the DDR3 timing
 * invariant checks (an independent reimplementation of the bounds a
 * consistent speed grade must satisfy — deliberately NOT a call into
 * DramTiming::validate(), so the two implementations cross-check each
 * other) and the sweep-spec file checks.
 */

#ifndef CRITMEM_ANALYSIS_DATA_RULES_HH
#define CRITMEM_ANALYSIS_DATA_RULES_HH

#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "sim/config.hh"

namespace critmem::analysis
{

/**
 * Append preset-timing findings for @p t at bus frequency @p busMHz.
 * @p label names the grade in messages (e.g. "DDR3-1600").
 * Invariants: tRC >= tRAS + tRP, tFAW >= 4*tRRD, tCCD covers the
 * data burst, tRAS >= tRCD + tCCD, tRFC < tREFI, and 8192 refresh
 * intervals must span 64 ms within 1%.
 */
void checkDramTiming(const DramTiming &t, std::uint32_t busMHz,
                     const std::string &label,
                     std::vector<Finding> &out);

/**
 * Append sweep-spec findings for the .sweep file at @p absPath
 * (reported under @p relPath): parse errors, names unknown to the
 * workload/scheduler/predictor registries, configs that fail
 * validate(), exclusion globs that match nothing, and campaigns that
 * expand to zero jobs.
 */
void checkSweepFile(const std::string &absPath,
                    const std::string &relPath,
                    std::vector<Finding> &out);

/**
 * Append arena-coverage findings for the arena campaign at @p absPath
 * (reported under @p relPath): one finding per scheduler in
 * schedulerRegistry() that no variant of the spec selects via a
 * sched= setting. A new scheduler is not "in the tournament" until it
 * has a column in specs/arena.sweep.
 */
void checkArenaCoverage(const std::string &absPath,
                        const std::string &relPath,
                        std::vector<Finding> &out);

} // namespace critmem::analysis

#endif // CRITMEM_ANALYSIS_DATA_RULES_HH

/**
 * @file
 * Lexical model of one C++ source file as seen by the lint pass.
 *
 * Rules never parse C++ properly (no libclang in the build image, by
 * design); instead they pattern-match over a "code view" of the file
 * in which comments and string/character literals have been blanked
 * to spaces, so that a forbidden token inside a comment or a log
 * string can never fire a rule. Suppressions and semantic markers
 * are read from the comments while they are being blanked:
 *
 *   code();            // lint:allow(rule-a,rule-b): reason
 *   // lint:allow(rule-c): guards this line AND the next code line
 *   //                     when the comment stands alone
 *   // lint:allow-file(rule-d): applies to the whole file
 *   // lint:domain(cpu|dram|convert): clock-domain marker for the
 *   //                     clock-domain semantic rule
 *   // lint:thread(worker|aggregation): thread-discipline marker for
 *   //                     the aggregation-thread-only semantic rule
 *
 * Every lint:allow site is also recorded (with the lines it ends up
 * guarding) so the analyzer can flag suppressions that no longer
 * suppress anything (the stale-suppression finding).
 */

#ifndef CRITMEM_ANALYSIS_SOURCE_FILE_HH
#define CRITMEM_ANALYSIS_SOURCE_FILE_HH

#include <set>
#include <string>
#include <vector>

namespace critmem::analysis
{

/** One lint:allow / lint:allow-file suppression site. */
struct AllowSite
{
    /** Rule id named inside lint:allow(...). */
    std::string rule;
    /** 1-based line of the comment that declares the suppression. */
    int line = 0;
    /** True for lint:allow-file. */
    bool wholeFile = false;
    /** 1-based lines this site guards (empty for wholeFile). */
    std::vector<int> applies;
};

/** One loaded source file plus its lint-relevant derived views. */
struct SourceFile
{
    /** Repo-relative path with '/' separators. */
    std::string path;
    /** Raw text split into lines (no trailing '\n'). */
    std::vector<std::string> lines;
    /** lines with comments and literals blanked to spaces. */
    std::vector<std::string> code;
    /** Per-line suppressed rule ids (index = line number - 1). */
    std::vector<std::set<std::string>> allow;
    /** File-wide suppressed rule ids. */
    std::set<std::string> allowFile;
    /** Every suppression site, in source order (staleness check). */
    std::vector<AllowSite> allowSites;
    /** Per-line lint:domain(...) values: "cpu", "dram", "convert". */
    std::vector<std::set<std::string>> domainMark;
    /** Per-line lint:thread(...) values: "worker", "aggregation". */
    std::vector<std::set<std::string>> threadMark;

    /** True for .hh/.h/.hpp files. */
    bool isHeader() const;

    /** True when @p rule is suppressed at 1-based @p line. */
    bool suppressed(const std::string &rule, int line) const;

    /** True when lint:domain(@p value) marks 1-based @p line. */
    bool domainMarked(const std::string &value, int line) const;

    /** True when lint:thread(@p value) marks 1-based @p line. */
    bool threadMarked(const std::string &value, int line) const;

    /** The whole code view joined with '\n' (for cross-line regexes). */
    std::string joinedCode() const;

    /** 1-based line number containing @p offset of joinedCode(). */
    int lineOfOffset(std::size_t offset) const;
};

/** Build a SourceFile from in-memory text (fixture tests). */
SourceFile makeSourceFile(std::string path, const std::string &text);

/**
 * Load @p absPath from disk, recording it as @p relPath.
 * Throws std::runtime_error when unreadable.
 */
SourceFile loadSourceFile(const std::string &absPath,
                          std::string relPath);

} // namespace critmem::analysis

#endif // CRITMEM_ANALYSIS_SOURCE_FILE_HH

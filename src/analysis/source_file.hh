/**
 * @file
 * Lexical model of one C++ source file as seen by the lint pass.
 *
 * Rules never parse C++ properly (no libclang in the build image, by
 * design); instead they pattern-match over a "code view" of the file
 * in which comments and string/character literals have been blanked
 * to spaces, so that a forbidden token inside a comment or a log
 * string can never fire a rule. Suppressions are read from the
 * comments while they are being blanked:
 *
 *   code();            // lint:allow(rule-a,rule-b): reason
 *   // lint:allow(rule-c): applies to the NEXT line when the
 *   //                     comment stands alone on its own line
 *   // lint:allow-file(rule-d): applies to the whole file
 */

#ifndef CRITMEM_ANALYSIS_SOURCE_FILE_HH
#define CRITMEM_ANALYSIS_SOURCE_FILE_HH

#include <set>
#include <string>
#include <vector>

namespace critmem::analysis
{

/** One loaded source file plus its lint-relevant derived views. */
struct SourceFile
{
    /** Repo-relative path with '/' separators. */
    std::string path;
    /** Raw text split into lines (no trailing '\n'). */
    std::vector<std::string> lines;
    /** lines with comments and literals blanked to spaces. */
    std::vector<std::string> code;
    /** Per-line suppressed rule ids (index = line number - 1). */
    std::vector<std::set<std::string>> allow;
    /** File-wide suppressed rule ids. */
    std::set<std::string> allowFile;

    /** True for .hh/.h/.hpp files. */
    bool isHeader() const;

    /** True when @p rule is suppressed at 1-based @p line. */
    bool suppressed(const std::string &rule, int line) const;

    /** The whole code view joined with '\n' (for cross-line regexes). */
    std::string joinedCode() const;

    /** 1-based line number containing @p offset of joinedCode(). */
    int lineOfOffset(std::size_t offset) const;
};

/** Build a SourceFile from in-memory text (fixture tests). */
SourceFile makeSourceFile(std::string path, const std::string &text);

/**
 * Load @p absPath from disk, recording it as @p relPath.
 * Throws std::runtime_error when unreadable.
 */
SourceFile loadSourceFile(const std::string &absPath,
                          std::string relPath);

} // namespace critmem::analysis

#endif // CRITMEM_ANALYSIS_SOURCE_FILE_HH

#include "analysis/finding.hh"

#include <tuple>

namespace critmem::analysis
{

const char *
toString(Severity severity)
{
    switch (severity) {
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Finding::baselineKey() const
{
    return rule + "\t" + path + "\t" + message;
}

std::ostream &
operator<<(std::ostream &os, const Finding &finding)
{
    if (!finding.path.empty()) {
        os << finding.path;
        if (finding.line > 0)
            os << ':' << finding.line;
        os << ": ";
    }
    os << toString(finding.severity) << ": [" << finding.rule << "] "
       << finding.message;
    for (const ChainLink &link : finding.chain) {
        os << "\n    via " << link.symbol;
        if (!link.path.empty()) {
            os << " (" << link.path;
            if (link.line > 0)
                os << ':' << link.line;
            os << ')';
        }
    }
    return os;
}

bool
findingLess(const Finding &a, const Finding &b)
{
    return std::tie(a.path, a.line, a.rule, a.message) <
        std::tie(b.path, b.line, b.rule, b.message);
}

} // namespace critmem::analysis

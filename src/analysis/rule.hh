/**
 * @file
 * Rule interfaces and the pluggable rule registry of critmem-lint.
 *
 * Three rule families exist. SourceRules pattern-match one
 * SourceFile at a time (determinism, protocol-bypass and hygiene
 * invariants over the C++ tree). SemanticRules see the whole loaded
 * tree at once through the cross-TU symbol index and call graph
 * (DESIGN.md section 13) — transitive reachability and convention
 * checks no single file can prove. DataRules validate checked-in
 * data against the simulator's own registries: every DDR3 timing
 * preset and every sweep campaign under specs/ is checked at build
 * time, before any workload runs — the static twin of the runtime
 * protocol checker (DESIGN.md section 8).
 */

#ifndef CRITMEM_ANALYSIS_RULE_HH
#define CRITMEM_ANALYSIS_RULE_HH

#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "analysis/source_file.hh"

namespace critmem::analysis
{

/** A per-file lexical rule. */
class SourceRule
{
  public:
    virtual ~SourceRule() = default;

    virtual const RuleMeta &meta() const = 0;

    /**
     * Append findings for @p file. Suppressions and baseline are
     * applied by the caller, not the rule.
     */
    virtual void check(const SourceFile &file,
                       std::vector<Finding> &out) const = 0;
};

struct SemanticModel;

/** A whole-tree rule over the cross-TU symbol index. */
class SemanticRule
{
  public:
    virtual ~SemanticRule() = default;

    virtual const RuleMeta &meta() const = 0;

    /**
     * Append findings for the indexed tree. Findings are anchored
     * at (path, line) like source findings; the caller applies
     * per-file suppressions and the baseline.
     */
    virtual void check(const SemanticModel &model,
                       std::vector<Finding> &out) const = 0;
};

/** What a data rule may inspect: the repository checkout. */
struct RepoContext
{
    /** Absolute path of the repository root. */
    std::string root;
};

/** A repo-level rule over checked-in data (presets, sweep specs). */
class DataRule
{
  public:
    virtual ~DataRule() = default;

    virtual const RuleMeta &meta() const = 0;

    virtual void check(const RepoContext &repo,
                       std::vector<Finding> &out) const = 0;
};

/** Every source rule, in stable registration order. */
const std::vector<const SourceRule *> &sourceRules();

/** Every semantic rule, in stable registration order. */
const std::vector<const SemanticRule *> &semanticRules();

/** Every data rule, in stable registration order. */
const std::vector<const DataRule *> &dataRules();

/**
 * Meta of the analyzer-implemented stale-suppression finding (a
 * lint:allow that no longer suppresses anything is itself an error).
 */
const RuleMeta &staleSuppressionMeta();

/**
 * Metadata of every registered rule (source, then semantic, then
 * stale-suppression, then data).
 */
std::vector<RuleMeta> allRuleMetas();

/** @return whether @p id names a registered rule. */
bool haveRule(const std::string &id);

} // namespace critmem::analysis

#endif // CRITMEM_ANALYSIS_RULE_HH
